"""End-to-end cluster failover: real ``kmt serve --socket`` subprocesses
behind the in-process :class:`~repro.engine.router.Router`.

Reuses the PR-4 differential soak harness (``make_soak_workload`` and the
path-independent response projection) to prove the distributed story keeps
the single-server contract: a SIGKILL'd backend mid-soak costs at most
retried responses — never a lost or duplicated id, never a diverging
verdict — and a backend restarted with ``--snapshot`` rejoins the ring and
answers its first repeat from the warm cache.
"""

import json
import os
import subprocess
import sys
import threading
import time

import pytest

from repro.engine.router import Router
from repro.engine.server import ResponseSink, affinity_hash

from test_server_backends import comparable_response, make_soak_workload, run_path_batch

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")


class ListSink(ResponseSink):
    def __init__(self):
        self.responses = []
        super().__init__(lambda line: self.responses.append(json.loads(line)))


class BackendProc:
    """One ``kmt serve --socket`` subprocess, announced port parsed from
    stderr; the rest of stderr is drained (and kept) on a daemon thread."""

    def __init__(self, *extra_args, port=0, workers=2):
        env = dict(os.environ)
        env["PYTHONPATH"] = _SRC + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--socket", f"127.0.0.1:{port}", "--workers", str(workers),
             *extra_args],
            stdout=subprocess.DEVNULL, stderr=subprocess.PIPE, text=True, env=env)
        self.stderr_lines = []
        self.port = None
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            line = self.proc.stderr.readline()
            if not line:
                raise AssertionError(
                    "backend exited before announcing its port:\n"
                    + "".join(self.stderr_lines))
            self.stderr_lines.append(line)
            if line.startswith("# listening on "):
                self.port = int(line.split()[3].rsplit(":", 1)[1])
                break
        assert self.port is not None, "backend never announced its port"
        self.key = f"127.0.0.1:{self.port}"
        threading.Thread(target=self._drain, daemon=True).start()

    def _drain(self):
        for line in self.proc.stderr:
            self.stderr_lines.append(line)

    def sigkill(self):
        self.proc.kill()
        self.proc.wait(timeout=30)

    def stop(self):
        if self.proc.poll() is None:
            self.proc.terminate()
            try:
                self.proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                self.proc.wait(timeout=30)


def _wait_for(predicate, timeout=15.0, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.05)
    raise AssertionError(f"timed out waiting for {message}")


def _core(response):
    """The path-independent projection, minus the router's retry marker."""
    out = comparable_response(response)
    out.pop("retries", None)
    return out


def _backend_state(router, key):
    return router.router_stats()["backends"][key]["state"]


class TestClusterFailoverSoak:
    def test_sigkill_mid_soak_loses_nothing(self):
        """The 200-request differential soak through the router, with one
        backend SIGKILL'd while its queue is full of in-flight work."""
        lines = make_soak_workload()
        reference = {r["id"]: _core(r) for r in run_path_batch(lines)}

        victim = BackendProc()
        survivor = BackendProc()
        router = Router([("127.0.0.1", victim.port), ("127.0.0.1", survivor.port)],
                        probe_interval=0.3, max_retries=2)
        router.start()
        try:
            assert router.wait_all_up(timeout=30.0)
            sink = ListSink()
            for line in lines[:80]:
                router.submit_line(line, sink)
            victim.sigkill()  # mid-soak, with dispatched-but-unanswered work
            for line in lines[80:]:
                router.submit_line(line, sink)
            assert router.wait_idle(timeout=120.0)

            # Exact id accounting: nothing lost, nothing answered twice.
            expected = sorted(json.loads(line)["id"] for line in lines)
            assert sorted(r["id"] for r in sink.responses) == expected

            # Every non-backend_down response matches the single-process
            # batch reference exactly (modulo cache-history fields).
            downs = []
            for response in sink.responses:
                if response.get("error_code") == "backend_down":
                    downs.append(response)
                    continue
                assert _core(response) == reference[response["id"]], (
                    f"{response['id']} diverges from the batch reference")
            # Two backends, two retries of budget: the survivor absorbs
            # everything the victim dropped.
            assert downs == []

            retried = [r for r in sink.responses if r.get("retries")]
            assert retried, "the kill window produced no retried responses"
            assert all(r["retries"] >= 1 for r in retried)

            stats = router.router_stats()
            assert stats["backends"][victim.key]["state"] == "down"
            assert stats["backends"][victim.key]["ejections"] >= 1
            assert stats["requests"]["retried"] >= len(retried)
        finally:
            router.shutdown(drain=False)
            survivor.stop()
            victim.stop()

    def test_snapshot_backend_rejoins_warm(self, tmp_path):
        """Kill -9 a ``--snapshot`` backend, restart it on the same port:
        the router re-admits it and its caches come back warm."""
        snapshot = str(tmp_path / "cluster.kmtsnap")
        probe = {"op": "equiv", "theory": "incnat", "id": "warm0",
                 "left": "inc(x); x > 4", "right": "x > 3; inc(x)"}

        backend = BackendProc("--snapshot", snapshot, "--checkpoint-interval", "0.2")
        port = backend.port
        router = Router([("127.0.0.1", port)], probe_interval=0.3)
        router.start()
        try:
            assert router.wait_all_up(timeout=30.0)
            sink = ListSink()
            router.submit_line(json.dumps(probe), sink)
            assert router.wait_idle(timeout=30.0)
            (first,) = sink.responses
            assert first["ok"] is True and not first["result"].get("cached")

            # Let a background checkpoint capture the now-warm cache, then
            # die without any chance of a clean final save.
            _wait_for(lambda: os.path.exists(snapshot) and os.path.getsize(snapshot) > 0,
                      message="background checkpoint")
            time.sleep(0.5)  # one more interval: the checkpoint includes warm0
            backend.sigkill()
            _wait_for(lambda: _backend_state(router, backend.key) == "down",
                      message="router to eject the killed backend")

            reborn = BackendProc("--snapshot", snapshot, port=port)
            assert reborn.port == port
            assert any("# warm start:" in line for line in reborn.stderr_lines), (
                "restarted backend did not warm-start from the snapshot:\n"
                + "".join(reborn.stderr_lines))
            _wait_for(lambda: _backend_state(router, backend.key) == "up",
                      message="router to re-admit the restarted backend")

            repeat = dict(probe, id="warm1")
            sink = ListSink()
            router.submit_line(json.dumps(repeat), sink)
            assert router.wait_idle(timeout=30.0)
            (second,) = sink.responses
            assert second["ok"] is True
            assert second["result"]["equivalent"] is True
            assert second["result"].get("cached") is True, (
                "first repeat after rejoin was not served from the warm cache")

            stats = router.router_stats()
            assert stats["backends"][backend.key]["ejections"] >= 1
            counters = router.metrics.snapshot()["counters"]
            assert "router_rejoins_total" in counters
            rejoin_total = sum(e["value"] for e in counters["router_rejoins_total"])
            assert rejoin_total >= 2  # initial join + post-restart rejoin
        finally:
            router.shutdown(drain=False)
            backend.stop()
            try:
                reborn.stop()
            except NameError:
                pass
