"""Tests for the equivalence decision procedure (paper Theorem 3.7)."""

import pytest
from hypothesis import given, settings

from repro.core import terms as T
from repro.core.decision import EquivalenceChecker
from repro.core.kmt import KMT
from repro.core.semantics import equivalent_up_to_length
from repro.theories.bitvec import BitVecTheory, BoolAssign, BoolEq
from repro.theories.incnat import Gt, IncNatTheory, Incr
from repro.utils.frozendict import FrozenDict
from tests.conftest import all_bitvec_states, bitvec_terms


class TestBasicVerdicts:
    def test_reflexivity(self, kmt_incnat):
        term = kmt_incnat.parse("inc(x); x > 1")
        assert kmt_incnat.equivalent(term, term)

    def test_zero_one(self, kmt_bitvec):
        assert not kmt_bitvec.equivalent("true", "false")
        assert kmt_bitvec.equivalent("true", "~false")

    def test_test_order_irrelevant(self, kmt_bitvec):
        assert kmt_bitvec.equivalent("a = T; b = T", "b = T; a = T")

    def test_different_actions_differ(self, kmt_bitvec):
        assert not kmt_bitvec.equivalent("a := T", "a := F")

    def test_tracing_distinguishes_repeated_assignments(self, kmt_bitvec):
        """Section 2.1: unlike KAT+B!, a:=T;a:=T is not equal to a:=T."""
        assert not kmt_bitvec.equivalent("a := T; a := T", "a := T")

    def test_theory_facts_used(self, kmt_incnat):
        """x>5 implies x>3, so the conjunction collapses (GT-Min)."""
        assert kmt_incnat.equivalent("x > 5; x > 3", "x > 5")
        assert kmt_incnat.equivalent("x > 5; ~(x > 3)", "false")
        assert not kmt_incnat.equivalent("x > 3", "x > 5")

    def test_loop_unrolling_equivalence(self, kmt_incnat):
        """Section 1.1: a loop is equivalent to its unfolding."""
        loop = "(x < 3; inc(x))*; ~(x < 3); x > 2"
        unrolled = "(true + x < 3; inc(x); (x < 3; inc(x))*); ~(x < 3); x > 2"
        assert kmt_incnat.equivalent(loop, unrolled)


class TestResultObject:
    def test_result_reports_cells(self, kmt_bitvec):
        # The sides' restricted-action sums must differ syntactically, or the
        # reflexivity fast path answers without a language comparison and
        # cells_explored stays 0 (see test_identical_sums_need_no_comparison).
        result = kmt_bitvec.check_equivalent("(b := T)*", "(b := T)*; (b := T)*")
        assert result.equivalent
        assert result.cells_explored >= 1
        assert result.signatures_explored >= 1
        assert "equivalent" in repr(result)

    def test_identical_sums_need_no_comparison(self, kmt_bitvec):
        """Both sides enable the identical sum in every signature: decided by
        reflexivity, no language comparison performed."""
        result = kmt_bitvec.check_equivalent("a = T + ~(a = T)", "true")
        assert result.equivalent
        assert result.cells_explored == 0
        assert result.signatures_explored >= 1

    def test_enumerate_mode_reports_no_signatures(self, bitvec):
        kmt = KMT(bitvec, cell_search="enumerate")
        result = kmt.check_equivalent("a = T + ~(a = T)", "true")
        assert result.equivalent
        assert result.cells_explored >= 1
        assert result.signatures_explored == 0

    def test_counterexample_available(self, kmt_bitvec):
        result = kmt_bitvec.check_equivalent("a = T; b := T", "a = T; b := F")
        assert not result.equivalent
        counterexample = result.counterexample
        assert counterexample is not None
        described = counterexample.describe()
        assert "cell" in described
        assert counterexample.word is not None

    def test_counterexample_cell_mentions_guard(self, kmt_incnat):
        result = kmt_incnat.check_equivalent("x > 1; inc(x)", "x > 2; inc(x)")
        assert not result.equivalent
        cell = dict(result.counterexample.cell)
        # The distinguishing cell satisfies x > 1 but not x > 2.
        assert cell[Gt("x", 1)] is True
        assert cell[Gt("x", 2)] is False


class TestOrderingAndEmptiness:
    def test_less_or_equal(self, kmt_incnat):
        assert kmt_incnat.less_or_equal("x > 5", "x > 3")
        assert not kmt_incnat.less_or_equal("x > 3", "x > 5")
        assert kmt_incnat.less_or_equal("inc(x)", "inc(x) + inc(y)")

    def test_is_empty(self, kmt_incnat):
        assert kmt_incnat.is_empty("false")
        assert kmt_incnat.is_empty("x > 3; ~(x > 1)")
        assert not kmt_incnat.is_empty("inc(x)")
        assert kmt_incnat.is_empty("x < 1; inc(x); inc(x); x > 5")
        assert not kmt_incnat.is_empty("x < 1; inc(x); inc(x); x > 1")

    def test_partition_groups_equivalent_terms(self, kmt_incnat):
        terms = [
            kmt_incnat.parse("inc(x); x > 1"),
            kmt_incnat.parse("x > 0; inc(x)"),
            kmt_incnat.parse("inc(x)"),
            kmt_incnat.parse("x > 0; inc(x) + false"),
        ]
        classes = kmt_incnat.partition(terms)
        as_sets = {frozenset(members) for members in classes}
        assert as_sets == {frozenset({0, 1, 3}), frozenset({2})}


class TestPruningAblation:
    """``prune_unsat_cells`` applies to the ``cell_search="enumerate"`` baseline."""

    def test_unpruned_checker_agrees(self):
        theory = BitVecTheory()
        pruned = EquivalenceChecker(theory, prune_unsat_cells=True, cell_search="enumerate")
        unpruned = EquivalenceChecker(theory, prune_unsat_cells=False, cell_search="enumerate")
        kmt = KMT(theory)
        pairs = [
            ("a = T; a := F", "a = T; a := F"),
            ("a := T; a = T", "a := T"),
            ("a := T; a = F", "false"),
            ("a = T + b = T", "b = T + a = T"),
            ("a := T", "a := F"),
        ]
        for left, right in pairs:
            p, q = kmt.parse(left), kmt.parse(right)
            assert pruned.equivalent(p, q) == unpruned.equivalent(p, q)

    def test_pruning_skips_inconsistent_cells(self):
        theory = IncNatTheory()
        kmt = KMT(theory)
        checker = EquivalenceChecker(theory, prune_unsat_cells=True, cell_search="enumerate")
        p = kmt.parse("x > 5; x > 3; inc(x)")
        result = checker.check_equivalent(p, p)
        assert result.equivalent
        assert result.cells_pruned >= 1


class TestKatTheorems:
    """The Fig. 5 'Consequences' hold in the decision procedure."""

    def test_denesting(self, kmt_bitvec):
        assert kmt_bitvec.equivalent("(a := T + b := T)*", "(a := T)*; (b := T; (a := T)*)*")

    def test_sliding(self, kmt_bitvec):
        assert kmt_bitvec.equivalent(
            "a := T; (b := T; a := T)*", "(a := T; b := T)*; a := T"
        )

    def test_pushback_neg_consequence(self, kmt_incnat):
        """inc x; x>1 == x>0; inc x  implies  inc x; ~(x>1) == ~(x>0); inc x."""
        assert kmt_incnat.equivalent("inc(x); x > 1", "x > 0; inc(x)")
        assert kmt_incnat.equivalent("inc(x); ~(x > 1)", "~(x > 0); inc(x)")

    def test_star_unroll_left_and_right(self, kmt_bitvec):
        assert kmt_bitvec.equivalent("(a := T)*", "true + a := T; (a := T)*")
        assert kmt_bitvec.equivalent("(a := T)*", "true + (a := T)*; a := T")


class TestDifferentialAgainstSemantics:
    """If the decision procedure says 'equivalent', the executable tracing
    semantics must agree on every start state (soundness, Theorem 3.1); if the
    bounded semantics finds a difference, the procedure must say 'different'
    (completeness, Theorem 3.7)."""

    @settings(max_examples=30, deadline=None)
    @given(bitvec_terms(max_leaves=4), bitvec_terms(max_leaves=4))
    def test_decision_matches_bounded_semantics(self, p, q):
        theory = BitVecTheory(variables=("a", "b", "c"))
        kmt = KMT(theory, budget=30_000)
        try:
            verdict = kmt.equivalent(p, q)
        except Exception:
            return  # budget blow-ups are exercised elsewhere
        semantic = equivalent_up_to_length(
            p, q, all_bitvec_states(), theory, max_actions=4
        )
        if verdict:
            assert semantic
        if not semantic:
            assert not verdict

    @settings(max_examples=25, deadline=None)
    @given(bitvec_terms(max_leaves=4))
    def test_every_term_equivalent_to_itself_plus_itself(self, p):
        theory = BitVecTheory(variables=("a", "b", "c"))
        kmt = KMT(theory, budget=30_000)
        try:
            assert kmt.equivalent(T.tplus(p, p), p)
        except Exception:
            return
