"""Tests for the persistent snapshot tier (:mod:`repro.engine.persist`).

Covers the codec round trip (export → import is verdict- and byte-identical,
driven by hypothesis over random BitVec terms), rejection of truncated /
corrupted / foreign snapshot files with the stable ``snapshot_invalid`` error
code and untouched caches, multi-contributor payload merging (pool
hash-consing + reference remapping), and the end-to-end warm-start paths:
``kmt serve --snapshot`` restart and a SIGKILL'd process-backend worker that
comes back warm.  The cache-integrity regressions that shipped with this tier
(torn stats reads, duplicate compiles on a concurrent miss, alphabet-intern
resets) live here too.
"""

import io
import json
import os
import signal
import threading
import time

import pytest
from hypothesis import given, settings

from repro.core import arena
from repro.engine import persist
from repro.engine.batch import SessionPool
from repro.engine.cache import LRUCache
from repro.engine.persist import (
    CheckpointManager,
    SnapshotStore,
    make_payload,
    merge_payloads,
)
from repro.engine.session import EngineSession
from repro.theories.bitvec import BitVecTheory
from repro.utils.errors import SnapshotError
from tests.conftest import bitvec_terms


def _session():
    return EngineSession(BitVecTheory(variables=("a", "b", "c")))


def _table_sizes(session):
    tables = session.stats(include_shared=False)["tables"]
    return {name: stats["puts"] for name, stats in tables.items()}


def record(**fields):
    return json.dumps(fields)


# ---------------------------------------------------------------------------
# codec round trip
# ---------------------------------------------------------------------------


class TestRoundTrip:
    @settings(max_examples=30)
    @given(bitvec_terms(max_leaves=3), bitvec_terms(max_leaves=3))
    def test_export_import_is_verdict_and_byte_identical(self, left, right):
        donor = _session()
        verdict = donor.check_equivalent(left, right)
        state = donor.export_state()
        blob = json.dumps(state, sort_keys=True)

        warm = _session()
        warm.import_state(json.loads(blob))
        replay = warm.check_equivalent(left, right)
        assert replay.equivalent == verdict.equivalent
        assert replay.cached is True
        if verdict.counterexample is not None:
            assert replay.counterexample.word == verdict.counterexample.word
            assert replay.counterexample.cell == verdict.counterexample.cell
        # The warm session re-exports to the very same bytes: entry order is
        # canonical (sort keys, not access order), so is the node pool.
        assert json.dumps(warm.export_state(), sort_keys=True) == blob

    def test_import_counts_reported(self):
        donor = _session()
        donor.check_equivalent("(a := T)*", "(a := T)*; (a := T)*")
        warm = _session()
        counts = warm.import_state(donor.export_state())
        assert counts["equiv"] == 1
        assert counts["norm"] > 0
        assert counts["aut"] > 0

    def test_store_save_load_round_trip(self, tmp_path):
        pool = SessionPool()
        session = pool.session("bitvec")
        session.check_equivalent("(b := T)*", "(b := T)*; (b := T)*")
        path = tmp_path / "snap.json"
        store = SnapshotStore(path)
        store.save(pool.export_snapshot())

        warm_pool = SessionPool()
        warm_pool.import_snapshot(store.load())
        warm = warm_pool.session("bitvec")
        result = warm.check_equivalent("(b := T)*", "(b := T)*; (b := T)*")
        assert result.equivalent and result.cached


# ---------------------------------------------------------------------------
# rejection: every bad snapshot is `snapshot_invalid` and leaves caches alone
# ---------------------------------------------------------------------------


def _donor_snapshot(tmp_path):
    pool = SessionPool()
    pool.session("bitvec").check_equivalent("(a := T)*", "(a := T)*; (a := T)*")
    path = tmp_path / "snap.json"
    SnapshotStore(path).save(pool.export_snapshot())
    return path


def _assert_rejected_cold(path):
    """Loading/importing ``path`` must fail with the stable code, no effects."""
    pool = SessionPool()
    with pytest.raises(SnapshotError) as excinfo:
        pool.import_snapshot(SnapshotStore(path).load())
    assert excinfo.value.code == "snapshot_invalid"
    session = pool.session("bitvec")
    assert _table_sizes(session) == {name: 0 for name in _table_sizes(session)}
    # The session still answers queries after the failed import.
    assert session.check_equivalent("a := T", "a := T").equivalent


class TestRejection:
    def test_truncated_file(self, tmp_path):
        path = _donor_snapshot(tmp_path)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        _assert_rejected_cold(path)

    def test_corrupted_file(self, tmp_path):
        path = _donor_snapshot(tmp_path)
        path.write_bytes(b"\x00\xffnot json at all")
        _assert_rejected_cold(path)

    def test_version_bump(self, tmp_path):
        path = _donor_snapshot(tmp_path)
        payload = json.loads(path.read_text())
        payload["version"] += 1
        path.write_text(json.dumps(payload))
        _assert_rejected_cold(path)

    def test_foreign_magic(self, tmp_path):
        path = _donor_snapshot(tmp_path)
        payload = json.loads(path.read_text())
        payload["format"] = "someone-elses-cache"
        path.write_text(json.dumps(payload))
        _assert_rejected_cold(path)

    def test_theory_stamp_mismatch(self, tmp_path):
        path = _donor_snapshot(tmp_path)
        payload = json.loads(path.read_text())
        payload["sessions"]["bitvec"]["theory"] = "bitvec(z9)"
        path.write_text(json.dumps(payload))
        _assert_rejected_cold(path)

    def test_missing_file_is_plain_error_not_crash(self, tmp_path):
        with pytest.raises(SnapshotError):
            SnapshotStore(tmp_path / "nope.json").load()

    @pytest.mark.parametrize("mutate", [
        lambda pool: pool.append(["??", 0]),            # unknown tag
        lambda pool: pool.append(["*"]),                # wrong arity
        lambda pool: pool.append(["*", len(pool) + 5]),  # out-of-range ref
        lambda pool: pool.append(["*", True]),          # bool is not a ref
        lambda pool: pool.append("not-a-node"),         # non-list node
        lambda pool: pool.append([";", 0]),             # binary tag, one child
    ])
    def test_malformed_pool_node(self, tmp_path, mutate):
        path = _donor_snapshot(tmp_path)
        payload = json.loads(path.read_text())
        mutate(payload["sessions"]["bitvec"]["pool"])
        path.write_text(json.dumps(payload))
        # A node nothing references is still validated: the pool loads as a
        # unit, so junk anywhere in it must reject the whole snapshot.
        _assert_rejected_cold(path)

    def test_entry_reference_out_of_range(self, tmp_path):
        path = _donor_snapshot(tmp_path)
        payload = json.loads(path.read_text())
        state = payload["sessions"]["bitvec"]
        state["tables"]["norm"][0]["t"] = len(state["pool"]) + 7
        path.write_text(json.dumps(payload))
        _assert_rejected_cold(path)

    def test_failed_import_leaves_warm_caches_untouched(self, tmp_path):
        path = _donor_snapshot(tmp_path)
        pool = SessionPool()
        session = pool.session("bitvec")
        session.check_equivalent("(b := F)*", "(b := F)*; (b := F)*")
        before = _table_sizes(session)
        payload = json.loads(path.read_text())
        payload["sessions"]["bitvec"]["pool"].append(["??"])
        with pytest.raises(SnapshotError):
            pool.import_snapshot(payload)
        assert _table_sizes(session) == before
        assert session.check_equivalent("(b := F)*", "(b := F)*; (b := F)*").cached


# ---------------------------------------------------------------------------
# merging payloads from several contributors (stripes / worker processes)
# ---------------------------------------------------------------------------


class TestMergePayloads:
    def _payload(self, *pairs):
        pool = SessionPool()
        session = pool.session("bitvec")
        for left, right in pairs:
            session.check_equivalent(left, right)
        return pool.export_snapshot()

    def test_overlap_is_deduped_and_disjoint_union_kept(self):
        shared = ("(a := T)*", "(a := T)*; (a := T)*")
        one = self._payload(shared)
        two = self._payload(shared, ("(b := F)*", "(b := F)*; (b := F)*"))
        merged = merge_payloads([one, two])

        pool = SessionPool()
        counts = pool.import_snapshot(merged)["bitvec"]
        assert counts["equiv"] == 2  # the shared entry appears once
        warm = pool.session("bitvec")
        assert warm.check_equivalent(*shared).cached
        assert warm.check_equivalent("(b := F)*", "(b := F)*; (b := F)*").cached

    def test_merge_is_idempotent(self):
        payload = self._payload(("(a := T)*", "(a := T)*; (a := T)*"))
        once = json.dumps(merge_payloads([payload]), sort_keys=True)
        twice = json.dumps(merge_payloads([payload, payload]), sort_keys=True)
        assert once == twice

    def test_mismatched_theory_contributor_is_skipped(self):
        keep = self._payload(("(a := T)*", "(a := T)*; (a := T)*"))
        stale = json.loads(json.dumps(
            self._payload(("(b := F)*", "(b := F)*; (b := F)*"))))
        stale["sessions"]["bitvec"]["theory"] = "bitvec(stale)"
        merged = merge_payloads([keep, stale])
        counts = SessionPool().import_snapshot(merged)["bitvec"]
        assert counts["equiv"] == 1  # the stale contributor's entry is dropped

    def test_malformed_contributor_is_skipped_not_fatal(self):
        keep = self._payload(("(a := T)*", "(a := T)*; (a := T)*"))
        bad = json.loads(json.dumps(keep))
        bad["sessions"]["bitvec"]["pool"].append(["??"])
        merged = merge_payloads([bad, keep])
        # The malformed payload came first, so its session slot exists but
        # contributes nothing; the good contributor still lands.
        counts = SessionPool().import_snapshot(merged)["bitvec"]
        assert counts["equiv"] == 1


# ---------------------------------------------------------------------------
# checkpoint manager
# ---------------------------------------------------------------------------


class TestCheckpointManager:
    def test_cold_start_when_file_missing(self, tmp_path):
        pool = SessionPool()
        manager = CheckpointManager(
            SnapshotStore(tmp_path / "snap.json"),
            pool.export_snapshot, importer=pool.import_snapshot)
        assert manager.load() is None
        stats = manager.stats()
        assert stats["loads"] == 0
        manager.close()

    def test_final_checkpoint_on_close_and_reload(self, tmp_path):
        path = tmp_path / "snap.json"
        pool = SessionPool()
        pool.session("bitvec").check_equivalent("(a := T)*", "(a := T)*; (a := T)*")
        manager = CheckpointManager(
            SnapshotStore(path), pool.export_snapshot, importer=pool.import_snapshot)
        manager.close()  # final checkpoint even without start()
        assert path.exists()

        warm_pool = SessionPool()
        warm_manager = CheckpointManager(
            SnapshotStore(path), warm_pool.export_snapshot,
            importer=warm_pool.import_snapshot)
        counts = warm_manager.load()
        assert counts["bitvec"]["equiv"] == 1
        stats = warm_manager.stats()
        assert stats["loads"] == 1 and stats["loaded_entries"] > 0
        warm_manager.close()

    def test_corrupt_file_on_boot_is_logged_cold_start(self, tmp_path):
        path = tmp_path / "snap.json"
        path.write_text("garbage")
        pool = SessionPool()
        manager = CheckpointManager(
            SnapshotStore(path), pool.export_snapshot, importer=pool.import_snapshot)
        assert manager.load() is None  # lenient: boot must not die on a bad file
        assert manager.stats()["load_errors"] == 1
        manager.close()


# ---------------------------------------------------------------------------
# regression: torn stats reads
# ---------------------------------------------------------------------------


class TestStatsSnapshotConsistency:
    def test_counters_never_tear_under_concurrent_traffic(self):
        """``stats_snapshot`` is taken under the table lock, so an observer
        can never see a ``put`` whose leading ``miss`` it missed (the old
        attribute-by-attribute read could, making hit rates nonsensical)."""
        cache = LRUCache(maxsize=64, name="t")
        stop = threading.Event()
        torn = []

        def hammer(seed):
            for index in range(4000):
                cache.get_or_compute((seed, index % 97), lambda: index)

        def poll():
            while not stop.is_set():
                snap = cache.stats_snapshot()
                if snap["puts"] > snap["misses"]:
                    torn.append(snap)
                lookups = snap["hits"] + snap["misses"]
                expected = round(snap["hits"] / lookups, 4) if lookups else 0.0
                if snap["hit_rate"] != expected:
                    torn.append(snap)

        workers = [threading.Thread(target=hammer, args=(seed,)) for seed in range(4)]
        poller = threading.Thread(target=poll)
        poller.start()
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        stop.set()
        poller.join()
        assert torn == []


# ---------------------------------------------------------------------------
# regression: duplicate compile on a concurrent miss
# ---------------------------------------------------------------------------


class TestSingleFlight:
    def test_concurrent_misses_compute_once_and_share_the_object(self):
        cache = LRUCache(maxsize=16, name="t")
        threads = 8
        barrier = threading.Barrier(threads)
        calls = []
        results = []
        lock = threading.Lock()

        def compute():
            calls.append(1)
            time.sleep(0.02)  # long enough for every waiter to pile up
            return object()

        def worker():
            barrier.wait()
            value = cache.get_or_compute("hot", compute)
            with lock:
                results.append(value)

        pool = [threading.Thread(target=worker) for _ in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert len(calls) == 1, "compute ran more than once for one key"
        assert all(value is results[0] for value in results)
        snap = cache.stats_snapshot()
        assert snap["misses"] == 1 and snap["puts"] == 1
        assert snap["hits"] == threads - 1

    def test_leader_failure_elects_a_new_leader(self):
        cache = LRUCache(maxsize=16, name="t")
        threads = 4
        barrier = threading.Barrier(threads)
        attempts = []
        results = []
        lock = threading.Lock()

        def compute():
            with lock:
                attempts.append(1)
                first = len(attempts) == 1
            if first:
                time.sleep(0.01)
                raise RuntimeError("leader died")
            return "ok"

        def worker():
            barrier.wait()
            try:
                value = cache.get_or_compute("hot", compute)
            except RuntimeError:
                value = "raised"
            with lock:
                results.append(value)

        pool = [threading.Thread(target=worker) for _ in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert results.count("raised") == 1  # only the failed leader sees it
        assert results.count("ok") == threads - 1


# ---------------------------------------------------------------------------
# regression: alphabet-intern reset broke live-sigma identity
# ---------------------------------------------------------------------------


class TestInternOverflowKeepsLiveAlphabets:
    def test_live_alphabet_survives_overflow(self, monkeypatch):
        """Overflow used to clear the whole intern table; a live automaton's
        alphabet then re-interned onto a *different* canonical tuple and the
        kernels' identity fast path silently stopped firing."""
        sigma = ("persist-test-p", "persist-test-q")
        canon = arena.intern_sigma(sigma)

        class LiveAutomaton:
            pass

        holder = LiveAutomaton()
        arena.note_sigma_use(canon, holder)

        monkeypatch.setattr(arena, "_INTERN_LIMIT", 4)
        for index in range(64):  # far past the cap: forces eviction sweeps
            arena.intern_sigma((f"persist-test-junk-{index}",))

        assert arena.intern_sigma(("persist-test-p", "persist-test-q")) is canon
        assert arena.sigma_index(canon) == {"persist-test-p": 0, "persist-test-q": 1}
        del holder  # release: the alphabet is evictable again (no assertion —
        # WeakSet clearing is GC-timing dependent; liveness is what's gated)


# ---------------------------------------------------------------------------
# end to end: serve --snapshot restart, process-backend warm respawn
# ---------------------------------------------------------------------------


class TestServeSnapshotRestart:
    def _serve(self, monkeypatch, capsys, snapshot, lines):
        from repro.cli import main

        monkeypatch.setattr("sys.stdin", io.StringIO("\n".join(lines) + "\n"))
        code = main(["serve", "--workers", "2", "--snapshot", str(snapshot)])
        captured = capsys.readouterr()
        assert code == 0
        return [json.loads(line) for line in captured.out.splitlines()], captured.err

    def test_restart_answers_first_repeat_from_the_snapshot(
            self, monkeypatch, capsys, tmp_path):
        snapshot = tmp_path / "serve.json"
        query = record(op="equiv", theory="bitvec", id="q",
                       left="(b := T)*", right="(b := T)*; (b := T)*")

        replies, _ = self._serve(
            monkeypatch, capsys, snapshot, [query, record(op="quit")])
        first = next(r for r in replies if r.get("id") == "q")
        assert first["ok"] and first["result"]["equivalent"]
        assert snapshot.exists()  # final checkpoint on clean shutdown

        traced = json.loads(query)
        traced["trace"] = True
        replies, err = self._serve(
            monkeypatch, capsys, snapshot,
            [json.dumps(traced), record(op="stats", id="s"), record(op="quit")])
        assert "warm start" in err
        repeat = next(r for r in replies if r.get("id") == "q")
        assert repeat["ok"] and repeat["result"]["equivalent"]
        cache_deltas = repeat["trace"]["cache"]
        assert cache_deltas["equiv"]["hits"] >= 1, (
            f"first repeated query missed the imported equiv memo: {cache_deltas}")
        assert cache_deltas["equiv"]["misses"] == 0
        stats = next(r for r in replies if r.get("id") == "s")
        assert "snapshot" in json.dumps(stats)

    def test_checkpoint_interval_requires_snapshot(self, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.setattr("sys.stdin", io.StringIO(""))
        assert main(["serve", "--checkpoint-interval", "5"]) == 2


@pytest.mark.slow
class TestProcessBackendWarmRespawn:
    def test_sigkilled_worker_comes_back_warm(self):
        from repro.engine.server import QueryServer, ResponseSink

        server = QueryServer(workers=2, stripes=2, backend="process")
        server.start()
        assert server.wait_ready(timeout=120)
        try:
            responses = []
            sink = ResponseSink(lambda line: responses.append(json.loads(line)))

            def ask(obj):
                server.submit_line(json.dumps(obj), sink)
                server.wait_idle(timeout=120)

            query = {"op": "equiv", "theory": "bitvec",
                     "left": "(b := T)*", "right": "(b := T)*; (b := T)*"}
            ask(dict(query, id=1))
            assert responses[0]["ok"] and responses[0]["result"]["equivalent"]

            server.export_snapshot()  # arms the supervisor's warm payload

            for worker in server.backend.worker_info():
                os.kill(worker["pid"], signal.SIGKILL)
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                if server.wait_ready(timeout=120):
                    break
            assert server.backend.warm_restores >= 1
            assert server.backend.warm_restore_errors == 0

            responses.clear()
            ask(dict(query, id=2, trace=True))
            repeat = responses[0]
            assert repeat["ok"] and repeat["result"]["equivalent"]
            cache_deltas = repeat["trace"]["cache"]
            assert cache_deltas["equiv"]["hits"] >= 1, (
                f"respawned worker answered cold: {cache_deltas}")
        finally:
            server.shutdown(drain=True)
