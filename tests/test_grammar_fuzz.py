"""Grammar-based fuzzing of both parsers against docs/GRAMMAR.md.

Hypothesis generates random While programs and core terms *as source text*
from the published grammar, then property-checks the two sides of the
parsing contract:

* **round-trip** — ``parse(pretty(parse(text)))`` compiles to the identical
  hash-consed term (200+ generated programs per theory, over the ``incnat``
  and ``sets`` presets — the latter exercises theory-nested phrases like
  ``in(X, 3)`` / ``add(X, i)``);
* **positional sanity** — corrupting a valid program never produces a
  diagnostic pointing outside the text: every positioned :class:`ParseError`
  carries an in-bounds offset, a line/column pair consistent with
  :func:`line_and_column`, and a caret frame quoting the offending line.

Only parsing and compilation run here (no normalization / decision
procedures), so arbitrarily-shaped loops are safe to generate.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import parser as core_parser
from repro.lang import parse_program
from repro.theories import build_theory
from repro.utils.errors import ParseError, caret_frame, line_and_column

INCNAT = build_theory("incnat")
SETS = build_theory("sets")

#: Theory-phrase pools per preset (tests, actions) — drawn from the table in
#: docs/GRAMMAR.md.  The ``sets`` pool mixes inner-theory (nat) phrases with
#: the set-specific forms.
INCNAT_TESTS = ("x > 0", "x > 2", "y > 1", "x < 3", "x >= 1", "y = 2")
INCNAT_ACTIONS = ("inc(x)", "inc(y)", "x := 1", "y := 0", "x += 2", "y *= 3")
SETS_TESTS = ("i > 0", "i > 2", "i < 4", "in(X, 1)", "in(X, 3)")
SETS_ACTIONS = ("inc(i)", "i := 0", "add(X, 1)", "add(X, i)")


def preds_text(tests):
    """Random predicate source text over the given primitive-test pool."""
    leaves = st.one_of(st.sampled_from(tests), st.just("true"), st.just("false"))

    def extend(children):
        return st.one_of(
            children.map(lambda p: f"~({p})"),
            st.tuples(children, children).map(lambda pq: f"({pq[0]}; {pq[1]})"),
            st.tuples(children, children).map(lambda pq: f"({pq[0]} + {pq[1]})"),
        )

    return st.recursive(leaves, extend, max_leaves=3)


def statements_text(tests, actions, depth=2):
    """Random statement source text following the GRAMMAR.md productions."""
    preds = preds_text(tests)
    atoms = st.one_of(
        st.just("skip;"),
        st.just("abort;"),
        preds.map(lambda p: f"assume {p};"),
        preds.map(lambda p: f"assert {p};"),
        st.sampled_from(actions).map(lambda a: f"{a};"),
    )
    if depth <= 0:
        return atoms
    inner = programs_text(tests, actions, depth=depth - 1)
    compound = st.one_of(
        st.tuples(preds, inner).map(lambda pb: f"if ({pb[0]}) {{ {pb[1]} }}"),
        st.tuples(preds, inner, inner).map(
            lambda pbe: f"if ({pbe[0]}) {{ {pbe[1]} }} else {{ {pbe[2]} }}"),
        st.tuples(preds, inner).map(lambda pb: f"while ({pb[0]}) {{ {pb[1]} }}"),
    )
    return st.one_of(atoms, compound)


def programs_text(tests, actions, depth=2):
    """1–4 statements joined by random (newline-heavy) whitespace."""
    return st.lists(
        statements_text(tests, actions, depth=depth), min_size=1, max_size=4,
    ).flatmap(
        lambda stmts: st.sampled_from(("\n", " ", "\n    ", "\n\n")).map(
            lambda sep: sep.join(stmts))
    )


def terms_text(tests, actions):
    """Random core-grammar term source text (expr/seq/star/atom)."""
    leaves = st.one_of(
        st.sampled_from(tests + actions),
        st.just("true"), st.just("false"), st.just("skip"), st.just("drop"),
    )

    def extend(children):
        return st.one_of(
            st.tuples(children, children).map(lambda pq: f"{pq[0]} + {pq[1]}"),
            st.tuples(children, children).map(lambda pq: f"({pq[0]}); ({pq[1]})"),
            children.map(lambda p: f"({p})*"),
        )

    return st.recursive(leaves, extend, max_leaves=4)


def assert_round_trips(text, theory):
    program = parse_program(text, theory)
    reparsed = parse_program(program.pretty(), theory)
    # Hash-consing makes "compiles to the same term" an identity check.
    assert reparsed.compile() is program.compile()
    # pretty() itself is a fixpoint up to a second round.
    assert parse_program(reparsed.pretty(), theory).compile() is program.compile()


class TestProgramRoundTrip:
    @settings(max_examples=200)
    @given(programs_text(INCNAT_TESTS, INCNAT_ACTIONS))
    def test_incnat_programs_round_trip(self, text):
        assert_round_trips(text, INCNAT)

    @settings(max_examples=200)
    @given(programs_text(SETS_TESTS, SETS_ACTIONS))
    def test_sets_programs_round_trip(self, text):
        assert_round_trips(text, SETS)

    @settings(max_examples=100)
    @given(programs_text(INCNAT_TESTS, INCNAT_ACTIONS))
    def test_statement_spans_are_in_bounds_and_ordered(self, text):
        program = parse_program(text, INCNAT)
        spans = []

        def collect(stmt):
            if stmt.span is not None:
                spans.append(stmt.span)
            for child in getattr(stmt, "statements", ()):
                collect(child)
            for attr in ("then_branch", "else_branch", "body"):
                child = getattr(stmt, attr, None)
                if child is not None:
                    collect(child)

        collect(program.body)
        assert spans, "a non-empty program must record statement spans"
        for start, end in spans:
            assert 0 <= start < end <= len(text)
            # A span quotes real source: it starts and ends on non-space.
            assert not text[start].isspace() and not text[end - 1].isspace()


class TestTermRoundTrip:
    @settings(max_examples=200)
    @given(terms_text(INCNAT_TESTS, INCNAT_ACTIONS))
    def test_incnat_terms_round_trip(self, text):
        term = core_parser.parse_term(text, INCNAT)
        assert core_parser.parse_term(term.pretty(), INCNAT) is term

    @settings(max_examples=100)
    @given(terms_text(SETS_TESTS, SETS_ACTIONS))
    def test_sets_terms_round_trip(self, text):
        term = core_parser.parse_term(text, SETS)
        assert core_parser.parse_term(term.pretty(), SETS) is term


#: Junk injected into valid programs: characters the tokenizer rejects plus
#: structurally-misplaced tokens both parsers must diagnose.
_CORRUPTIONS = ("?", "@", "$", ")", "}", "(", ";;", ":=", "else", "then", "~")


def assert_positional_sanity(error, text):
    """The diagnostics contract for a rejection of ``text``."""
    if error.position is None:
        return  # a few semantic rejections (e.g. "must be a test") are global
    assert 0 <= error.position <= len(text)
    line, column = line_and_column(text, error.position)
    assert (error.line, error.column) == (line, column)
    message = str(error)
    assert f"line {line}, column {column}" in message
    # The caret frame quotes the offending line verbatim.
    assert caret_frame(text, error.position).splitlines()[0] in message


class TestParseFailurePositions:
    @settings(max_examples=200)
    @given(programs_text(INCNAT_TESTS, INCNAT_ACTIONS),
           st.sampled_from(_CORRUPTIONS), st.floats(0, 1))
    def test_corrupted_programs_fail_in_bounds(self, text, junk, where):
        corrupted = (lambda i: text[:i] + junk + text[i:])(int(where * len(text)))
        try:
            parse_program(corrupted, INCNAT)
        except ParseError as error:
            assert_positional_sanity(error, corrupted)

    @settings(max_examples=200)
    @given(terms_text(INCNAT_TESTS, INCNAT_ACTIONS),
           st.sampled_from(_CORRUPTIONS), st.floats(0, 1))
    def test_corrupted_terms_fail_in_bounds(self, text, junk, where):
        corrupted = (lambda i: text[:i] + junk + text[i:])(int(where * len(text)))
        try:
            core_parser.parse_term(corrupted, INCNAT)
        except ParseError as error:
            assert_positional_sanity(error, corrupted)

    def test_junk_character_always_positioned(self):
        try:
            parse_program("assume x > 1;\ninc(x)?;", INCNAT)
        except ParseError as error:
            assert error.position is not None
            assert (error.line, error.column) == (2, 7)
        else:  # pragma: no cover - the parser must reject this
            raise AssertionError("junk character was accepted")
