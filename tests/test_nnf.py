"""Tests for negation normal form (paper Fig. 7)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core import terms as T
from repro.core.nnf import is_nnf, nnf, nnf_neg
from repro.smt.literals import atoms_of, evaluate
from repro.theories.bitvec import BoolEq
from tests.conftest import bitvec_preds


class TestNnfExamples:
    def test_constants(self):
        assert nnf(T.pzero()) is T.pzero()
        assert nnf(T.pone()) is T.pone()
        assert nnf_neg(T.pzero()) is T.pone()
        assert nnf_neg(T.pone()) is T.pzero()

    def test_de_morgan_and(self):
        a = T.pprim(BoolEq("a"))
        b = T.pprim(BoolEq("b"))
        result = nnf(T.pnot(T.pand(a, b)))
        assert result == T.por(T.pnot(a), T.pnot(b))

    def test_de_morgan_or(self):
        a = T.pprim(BoolEq("a"))
        b = T.pprim(BoolEq("b"))
        result = nnf(T.pnot(T.por(a, b)))
        assert result == T.pand(T.pnot(a), T.pnot(b))

    def test_double_negation_eliminated(self):
        a = T.pprim(BoolEq("a"))
        # Build ~~a without the smart constructor collapsing it.
        with T.smart_constructors_disabled():
            double = T.pnot(T.pnot(a))
        assert nnf(double) is a

    def test_primitive_negation_kept(self):
        a = T.pprim(BoolEq("a"))
        assert nnf(T.pnot(a)) == T.pnot(a)


class TestNnfProperties:
    @given(bitvec_preds(max_leaves=6))
    def test_nnf_is_in_nnf(self, pred):
        assert is_nnf(nnf(pred))

    @given(bitvec_preds(max_leaves=6))
    def test_nnf_idempotent(self, pred):
        once = nnf(pred)
        assert nnf(once) == once

    @given(bitvec_preds(max_leaves=6), st.data())
    def test_nnf_preserves_truth(self, pred, data):
        """nnf(p) and p agree under every assignment of the primitive tests."""
        atoms = atoms_of(pred)
        assignment = {
            alpha: data.draw(st.booleans(), label=str(alpha)) for alpha in atoms
        }
        assert evaluate(nnf(pred), assignment) == evaluate(pred, assignment)

    @given(bitvec_preds(max_leaves=6), st.data())
    def test_nnf_neg_is_negation(self, pred, data):
        atoms = atoms_of(pred)
        assignment = {
            alpha: data.draw(st.booleans(), label=str(alpha)) for alpha in atoms
        }
        assert evaluate(nnf_neg(pred), assignment) == (not evaluate(pred, assignment))


class TestIsNnf:
    def test_negated_compound_is_not_nnf(self):
        a = T.pprim(BoolEq("a"))
        b = T.pprim(BoolEq("b"))
        with T.smart_constructors_disabled():
            pred = T.pnot(T.pand(a, b))
        assert not is_nnf(pred)

    def test_plain_conjunction_is_nnf(self):
        a = T.pprim(BoolEq("a"))
        b = T.pprim(BoolEq("b"))
        assert is_nnf(T.pand(T.pnot(a), b))
