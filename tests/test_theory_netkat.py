"""Tests for tracing NetKAT (paper Fig. 4, Section 2.5)."""

import pytest

from repro.core import terms as T
from repro.core.kmt import KMT
from repro.core.semantics import Trace
from repro.theories.netkat import FieldAssign, FieldEq, NetKatTheory
from repro.utils.errors import ParseError, TheoryError
from repro.utils.frozendict import FrozenDict


@pytest.fixture
def theory():
    return NetKatTheory({"sw": (1, 2, 3), "dst": (1, 2), "tag": None})


@pytest.fixture
def kmt(theory):
    return KMT(theory)


class TestSemantics:
    def test_initial_state_uses_first_domain_value(self, theory):
        state = theory.initial_state()
        assert state["sw"] == 1 and state["dst"] == 1
        assert state["tag"] == 0  # open-domain fields default to 0

    def test_pred_and_act(self, theory):
        packet = FrozenDict(sw=2, dst=1)
        trace = Trace.initial(packet)
        assert theory.pred(FieldEq("sw", 2), trace)
        assert not theory.pred(FieldEq("sw", 1), trace)
        rewritten = theory.act(FieldAssign("dst", 2), packet)
        assert rewritten["dst"] == 2 and rewritten["sw"] == 2

    def test_foreign_primitives_rejected(self, theory):
        from repro.theories.incnat import Gt, Incr

        with pytest.raises(TheoryError):
            theory.pred(Gt("x", 1), Trace.initial(FrozenDict()))
        with pytest.raises(TheoryError):
            theory.act(Incr("x"), FrozenDict())


class TestPushback:
    def test_write_then_read_same_value(self, theory):
        assert theory.push_back(FieldAssign("sw", 2), FieldEq("sw", 2)) == [T.pone()]

    def test_write_then_read_other_value(self, theory):
        assert theory.push_back(FieldAssign("sw", 2), FieldEq("sw", 3)) == [T.pzero()]

    def test_write_other_field_commutes(self, theory):
        assert theory.push_back(FieldAssign("dst", 2), FieldEq("sw", 3)) == [
            T.pprim(FieldEq("sw", 3))
        ]

    def test_subterms_empty(self, theory):
        assert list(theory.subterms(FieldEq("sw", 1))) == []


class TestSatisfiability:
    def test_one_field_two_values_contradicts(self, theory):
        assert not theory.satisfiable_conjunction(
            [(FieldEq("sw", 1), True), (FieldEq("sw", 2), True)]
        )

    def test_positive_and_matching_negative_contradicts(self, theory):
        assert not theory.satisfiable_conjunction(
            [(FieldEq("sw", 1), True), (FieldEq("sw", 1), False)]
        )

    def test_finite_domain_exhaustion(self, theory):
        """Excluding every value of a finite-domain field is unsatisfiable (PA-Match-All)."""
        literals = [(FieldEq("dst", 1), False), (FieldEq("dst", 2), False)]
        assert not theory.satisfiable_conjunction(literals)
        # ... but excluding only one value is fine.
        assert theory.satisfiable_conjunction([(FieldEq("dst", 1), False)])

    def test_open_domain_never_exhausted(self, theory):
        literals = [(FieldEq("tag", value), False) for value in range(10)]
        assert theory.satisfiable_conjunction(literals)


class TestParsing:
    def test_phrases(self, theory):
        from repro.core.parser import tokenize

        def phrase(text):
            return theory.parse_phrase(tokenize(text)[:-1])

        assert phrase("sw = 2") == ("test", FieldEq("sw", 2))
        assert phrase("dst <- 1") == ("action", FieldAssign("dst", 1))
        assert phrase("tag = foo") == ("test", FieldEq("tag", "foo"))
        with pytest.raises(ParseError):
            phrase("sw := 2")

    def test_parse_terms(self, kmt):
        term = kmt.parse("sw = 1; dst <- 2; sw <- 2")
        assert isinstance(term, T.Term)


class TestNetKatLaws:
    def test_pa_mod_filter_holds(self, kmt):
        """f <- v ; f = v  ==  f <- v."""
        assert kmt.equivalent("sw <- 2; sw = 2", "sw <- 2")

    def test_pa_mod_comm_holds(self, kmt):
        """f <- v ; f' = v'  ==  f' = v' ; f <- v for distinct fields."""
        assert kmt.equivalent("sw <- 2; dst = 1", "dst = 1; sw <- 2")

    def test_pa_contra_holds(self, kmt):
        assert kmt.equivalent("sw = 1; sw = 2", "false")

    def test_pa_match_all_holds(self, kmt):
        """Σ_v f = v == 1 over the declared finite domain."""
        assert kmt.equivalent("dst = 1 + dst = 2", "true")
        assert not kmt.equivalent("sw = 1 + sw = 2", "true")  # sw also has value 3

    def test_merging_laws_rejected_by_tracing_semantics(self, kmt):
        """Section 2.5: the packet-merging NetKAT axioms do NOT hold here."""
        # PA-Mod-Mod: f <- v; f <- v' == f <- v'
        assert not kmt.equivalent("sw <- 1; sw <- 2", "sw <- 2")
        # PA-Filter-Mod: f = v; f <- v == f = v
        assert not kmt.equivalent("sw = 1; sw <- 1", "sw = 1")
        # PA-Mod-Mod-Comm on distinct fields
        assert not kmt.equivalent("sw <- 1; dst <- 2", "dst <- 2; sw <- 1")


class TestNetworkVerification:
    def test_reachability_in_logical_crossbar(self, kmt):
        """A 2-switch line topology: packets at sw1 destined to host 2 reach sw2."""
        policy = "(sw = 1; dst = 2; sw <- 2) + (sw = 2; dst = 1; sw <- 1)"
        ingress = "sw = 1; dst = 2"
        program = f"{ingress}; {policy}; sw = 2"
        assert not kmt.is_empty(program)
        # Packets for host 1 entering at switch 1 are dropped by the policy.
        assert kmt.is_empty(f"sw = 1; dst = 1; {policy}; sw = 2")

    def test_drop_all_firewall(self, kmt):
        policy = "dst = 1; sw <- 3"
        assert kmt.is_empty(f"dst = 2; {policy}")
