"""Tests for the unbounded-map theory (paper Sections 1.1 and 2.3)."""

import pytest

from repro.core import terms as T
from repro.core.kmt import KMT
from repro.core.semantics import Trace
from repro.theories.bitvec import BitVecTheory, BoolAssign, BoolEq
from repro.theories.incnat import Gt, IncNatTheory, Incr
from repro.theories.maps import MapEq, MapTheory, MapWrite, NatBoolMapAdapter
from repro.theories.product import ProductTheory
from repro.utils.errors import ParseError
from repro.utils.frozendict import FrozenDict


@pytest.fixture
def incnat():
    return IncNatTheory(variables=("i",))


@pytest.fixture
def bitvec():
    return BitVecTheory(variables=("parity",))


@pytest.fixture
def inner(incnat, bitvec):
    return ProductTheory(incnat, bitvec)


@pytest.fixture
def adapter(incnat, bitvec):
    return NatBoolMapAdapter(
        incnat, bitvec, key_variables=("i",), value_variables=("parity",)
    )


@pytest.fixture
def theory(inner, adapter):
    return MapTheory(inner, adapter, map_variables=("odd",))


@pytest.fixture
def kmt(theory):
    return KMT(theory)


class TestAdapter:
    def test_key_eq_pred(self, adapter, incnat):
        assert adapter.key_eq_pred("i", 3) == incnat.eq("i", 3)
        assert adapter.key_eq_pred(3, 3) is T.pone()
        assert adapter.key_eq_pred(2, 3) is T.pzero()

    def test_value_eq_pred(self, adapter, bitvec):
        assert adapter.value_eq_pred("parity", True) == bitvec.eq("parity", True)
        assert adapter.value_eq_pred("parity", False) == T.pnot(bitvec.eq("parity", True))
        assert adapter.value_eq_pred(True, True) is T.pone()
        assert adapter.value_eq_pred(True, False) is T.pzero()

    def test_eval(self, adapter):
        inner_state = (FrozenDict(i=4), FrozenDict(parity=True))
        assert adapter.eval_key("i", inner_state) == 4
        assert adapter.eval_key(9, inner_state) == 9
        assert adapter.eval_value("parity", inner_state) is True
        assert adapter.eval_value(False, inner_state) is False

    def test_parsers(self, adapter):
        assert adapter.parse_key("7") == 7
        assert adapter.parse_key("i") == "i"
        assert adapter.parse_value("T") is True
        assert adapter.parse_value("F") is False


class TestSemantics:
    def test_initial_state(self, theory):
        maps, inner_state = theory.initial_state()
        assert maps == FrozenDict(odd=FrozenDict())
        assert inner_state[0] == FrozenDict(i=0)

    def test_write_then_read(self, theory):
        state = theory.initial_state()
        state = theory.act(Incr("i"), state)                     # i = 1
        state = theory.act(BoolAssign("parity", True), state)    # parity = T
        state = theory.act(MapWrite("odd", "i", "parity"), state)
        trace = Trace.initial(state)
        assert theory.pred(MapEq("odd", 1, True), trace)
        assert not theory.pred(MapEq("odd", 1, False), trace)
        assert not theory.pred(MapEq("odd", 0, True), trace)
        assert theory.pred(Gt("i", 0), trace)
        assert theory.pred(BoolEq("parity"), trace)

    def test_unwritten_key_matches_nothing(self, theory):
        trace = Trace.initial(theory.initial_state())
        assert not theory.pred(MapEq("odd", 5, True), trace)
        assert not theory.pred(MapEq("odd", 5, False), trace)


class TestPushback:
    def test_write_other_map_commutes(self, theory):
        result = theory.push_back(MapWrite("even", "i", "parity"), MapEq("odd", 1, True))
        assert result == [T.pprim(MapEq("odd", 1, True))]

    def test_precise_weakest_precondition(self, theory, incnat, bitvec):
        """X[e1]:=e2; X[c1]=c2  WP  (e1=c1; e2=c2) + (~(e1=c1); X[c1]=c2)."""
        overwrite, untouched = theory.push_back(
            MapWrite("odd", "i", "parity"), MapEq("odd", 1, True)
        )
        key_eq = incnat.eq("i", 1)
        value_eq = bitvec.eq("parity", True)
        assert overwrite == T.pand(key_eq, value_eq)
        assert untouched == T.pand(T.pnot(key_eq), T.pprim(MapEq("odd", 1, True)))

    def test_write_commutes_with_inner_tests(self, theory):
        result = theory.push_back(MapWrite("odd", "i", "parity"), Gt("i", 2))
        assert result == [T.pprim(Gt("i", 2))]

    def test_inner_action_commutes_with_map_test(self, theory):
        result = theory.push_back(Incr("i"), MapEq("odd", 1, True))
        assert result == [T.pprim(MapEq("odd", 1, True))]

    def test_inner_pair_delegates(self, theory):
        assert theory.push_back(Incr("i"), Gt("i", 2)) == [T.pprim(Gt("i", 1))]

    def test_subterms_cover_key_and_value_equalities(self, theory, incnat, bitvec):
        subs = list(theory.subterms(MapEq("odd", 1, True)))
        assert incnat.eq("i", 1) in subs
        assert bitvec.eq("parity", True) in subs


class TestSatisfiability:
    def test_cell_cannot_hold_two_values(self, theory):
        assert not theory.satisfiable_conjunction(
            [(MapEq("odd", 1, True), True), (MapEq("odd", 1, False), True)]
        )

    def test_distinct_cells_independent(self, theory):
        assert theory.satisfiable_conjunction(
            [(MapEq("odd", 1, True), True), (MapEq("odd", 2, False), True)]
        )

    def test_positive_and_negative_same_cell_value(self, theory):
        assert not theory.satisfiable_conjunction(
            [(MapEq("odd", 1, True), True), (MapEq("odd", 1, True), False)]
        )

    def test_inner_conflict_detected(self, theory):
        assert not theory.satisfiable_conjunction(
            [(MapEq("odd", 1, True), True), (Gt("i", 4), True), (Gt("i", 5), False), (Gt("i", 6), True)]
        )


class TestParsing:
    def test_phrases(self, theory):
        from repro.core.parser import tokenize

        def phrase(text):
            return theory.parse_phrase(tokenize(text)[:-1])

        assert phrase("odd[1] = T") == ("test", MapEq("odd", 1, True))
        assert phrase("odd[i] := parity") == ("action", MapWrite("odd", "i", "parity"))
        assert phrase("odd[0] := F") == ("action", MapWrite("odd", 0, False))
        assert phrase("i > 2") == ("test", Gt("i", 2))
        with pytest.raises(ParseError):
            phrase("odd{1} = T")

    def test_parse_term(self, kmt):
        term = kmt.parse("i := 0; parity := F; odd[i] := parity; odd[0] = F")
        assert isinstance(term, T.Term)


class TestEndToEnd:
    def test_written_cell_reads_back(self, kmt):
        assert kmt.equivalent(
            "i := 1; parity := T; odd[i] := parity; odd[1] = T",
            "i := 1; parity := T; odd[i] := parity",
        )

    def test_overwrite_changes_value(self, kmt):
        """Writing the cell again with a different value falsifies the old test."""
        assert kmt.is_empty(
            "i := 1; parity := T; odd[i] := parity; parity := F; odd[i] := parity; odd[1] = T"
        )

    def test_pmap_parity_program(self, kmt):
        """A bounded Fig. 1(c): odd[i] := parity while flipping parity."""
        program = (
            "i := 0; parity := F; "
            "(i < 3; odd[i] := parity; inc(i); flip parity)*; ~(i < 3)"
        )
        assert kmt.equivalent(f"{program}; odd[1] = T", program)
        assert kmt.is_empty(f"{program}; odd[0] = T")
        assert kmt.is_empty(f"{program}; odd[2] = T")
        assert kmt.equivalent(f"{program}; odd[2] = F", program)
