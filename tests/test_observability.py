"""End-to-end observability tests: tracing, metrics and logs through the stack.

Exercises the ``"trace": true`` phase breakdown through the batch runner, the
legacy serve loop, and the concurrent server under *both* execution backends
(the process backend round-trips the trace over the worker pipe); the
``metrics`` protocol op; the extended ``stats`` block (uptime, per-op counts,
queue/exec latency split); the slow-query log; the Prometheus scrape endpoint
fed by a live server; and the new CLI flags.
"""

import io
import json
import logging
import re
import urllib.request

import pytest

from repro.cli import main
from repro.engine.batch import BatchRunner, run_query, serve
from repro.engine.server import QueryServer, serve_stdio
from repro.engine.session import EngineSession
from repro.engine.telemetry import MetricsExporter, configure_logging
from repro.theories import build_theory


def record(**fields):
    return json.dumps(fields)


def _responses(stdout):
    return [json.loads(line) for line in stdout.getvalue().splitlines()]


def _assert_trace_consistent(trace):
    """The acceptance-criteria invariant: phases sum into the exec window."""
    attributed = sum(phase["ms"] for phase in trace["phases"].values())
    assert trace["unattributed_ms"] >= 0.0
    assert attributed <= trace["exec_ms"] + 0.5
    assert attributed + trace["unattributed_ms"] == pytest.approx(
        trace["exec_ms"], abs=0.5)
    for name, start_ms, duration_ms, depth in trace["spans"]:
        assert isinstance(name, str) and depth >= 0
        assert duration_ms >= 0.0


@pytest.fixture
def quiet_logging():
    """Restore the silent-by-default ``kmt`` hierarchy after the test."""
    yield
    logger = logging.getLogger("kmt")
    for handler in list(logger.handlers):
        if not isinstance(handler, logging.NullHandler):
            logger.removeHandler(handler)
            handler.close()
    logger.setLevel(logging.NOTSET)


# ---------------------------------------------------------------------------
# run_query / batch runner
# ---------------------------------------------------------------------------


class TestRunQuery:
    def test_untraced_request_pays_nothing(self):
        session = EngineSession(build_theory("incnat"))
        result, trace = run_query(session, {"op": "sat", "pred": "x > 0"})
        assert result["satisfiable"] is True
        assert trace is None

    def test_traced_request_has_phase_breakdown(self):
        session = EngineSession(build_theory("incnat"))
        request = {"op": "equiv", "left": "inc(x); x > 1", "right": "x > 0; inc(x)",
                   "trace": True}
        result, trace = run_query(session, request)
        assert result["equivalent"] is True
        assert "normalize" in trace["phases"]
        assert "signatures" in trace["phases"]
        _assert_trace_consistent(trace)
        # Cold caches: the normalization and equivalence tables record misses.
        assert trace["cache"]["norm"]["misses"] >= 2
        assert trace["cache"]["equiv"]["misses"] >= 1

    def test_warm_cache_trace_shows_hits_not_work(self):
        session = EngineSession(build_theory("incnat"))
        request = {"op": "equiv", "left": "inc(x); x > 1", "right": "x > 0; inc(x)",
                   "trace": True}
        run_query(session, request)
        _, warm = run_query(session, request)
        assert warm["cache"]["equiv"]["hits"] >= 1
        # Memoized verdict: no signature search runs the second time.
        assert "signatures" not in warm["phases"]

    def test_force_trace_without_flag(self):
        session = EngineSession(build_theory("incnat"))
        _, trace = run_query(session, {"op": "sat", "pred": "x > 0"}, force_trace=True)
        assert trace is not None

    def test_trace_deactivated_after_error(self):
        from repro.engine.telemetry import current_trace

        session = EngineSession(build_theory("incnat"))
        with pytest.raises(Exception):
            run_query(session, {"op": "sat", "pred": "this ( is not + syntax"},
                      force_trace=True)
        assert current_trace() is None


class TestBatchRunnerObservability:
    def test_trace_block_in_response(self):
        runner = BatchRunner(default_theory="incnat")
        (response,) = runner.run_lines([
            record(op="equiv", left="inc(x); x > 1", right="x > 0; inc(x)",
                   trace=True, id="q"),
        ])
        assert response["ok"] is True
        trace = response["trace"]
        assert trace["total_ms"] >= trace["exec_ms"] - 0.001
        _assert_trace_consistent(trace)

    def test_untraced_response_has_no_trace_key(self):
        runner = BatchRunner(default_theory="incnat")
        (response,) = runner.run_lines([record(op="sat", pred="x > 0")])
        assert "trace" not in response

    def test_metrics_op(self):
        runner = BatchRunner(default_theory="incnat")
        responses = runner.run_lines([
            record(op="sat", pred="x > 0", id="a"),
            record(op="metrics", id="m"),
        ])
        by_id = {r["id"]: r for r in responses}
        snapshot = by_id["m"]["result"]
        (entry,) = snapshot["counters"]["requests_total"]
        assert entry["labels"] == {"op": "sat", "outcome": "ok", "theory": "incnat"}
        assert entry["value"] == 1
        (hist,) = snapshot["histograms"]["request_latency_ms"]
        assert hist["count"] == 1

    def test_error_outcome_labelled(self):
        runner = BatchRunner(default_theory="incnat")
        responses = runner.run_lines([
            record(op="sat", pred="x > 0 ) (", id="bad"),
            record(op="metrics", id="m"),
        ])
        by_id = {r["id"]: r for r in responses}
        assert by_id["bad"]["ok"] is False
        outcomes = {e["labels"]["outcome"]
                    for e in by_id["m"]["result"]["counters"]["requests_total"]}
        assert by_id["bad"]["error_code"] in outcomes

    def test_slow_query_log(self, tmp_path, quiet_logging):
        path = tmp_path / "slow.jsonl"
        configure_logging(level="info", log_file=str(path))
        runner = BatchRunner(default_theory="incnat", slow_query_ms=0.0)
        (response,) = runner.run_lines([
            record(op="equiv", left="inc(x); x > 1", right="x > 0; inc(x)", id="q"),
        ])
        # The client did not ask for a trace, so the response carries none...
        assert "trace" not in response
        events = [json.loads(line) for line in path.read_text().splitlines()]
        slow = [e for e in events if e["event"] == "slow_query"]
        assert len(slow) == 1
        # ...but the log event has the full phase breakdown anyway.
        assert slow[0]["op"] == "equiv"
        assert slow[0]["total_ms"] > 0.0
        assert "normalize" in slow[0]["phases"]
        assert slow[0]["level"] == "warning"

    def test_fast_queries_not_logged(self, tmp_path, quiet_logging):
        path = tmp_path / "slow.jsonl"
        configure_logging(level="info", log_file=str(path))
        runner = BatchRunner(default_theory="incnat", slow_query_ms=60_000.0)
        runner.run_lines([record(op="sat", pred="x > 0")])
        events = [json.loads(line) for line in path.read_text().splitlines()
                  if path.exists()] if path.exists() else []
        assert not [e for e in events if e["event"] == "slow_query"]


class TestLegacyServeObservability:
    def test_trace_over_legacy_serve(self):
        stdin = io.StringIO(record(op="equiv", left="inc(x); x > 1",
                                   right="x > 0; inc(x)", trace=True, id="q") + "\n")
        stdout = io.StringIO()
        serve(stdin, stdout, default_theory="incnat")
        (response,) = _responses(stdout)
        _assert_trace_consistent(response["trace"])

    def test_slow_query_log_over_legacy_serve(self, tmp_path, quiet_logging):
        path = tmp_path / "slow.jsonl"
        configure_logging(level="warning", log_file=str(path))
        stdin = io.StringIO(record(op="sat", pred="x > 0", id="q") + "\n")
        stdout = io.StringIO()
        serve(stdin, stdout, default_theory="incnat", slow_query_ms=0.0)
        (response,) = _responses(stdout)
        assert "trace" not in response
        events = [json.loads(line) for line in path.read_text().splitlines()]
        assert [e["event"] for e in events if e["event"] == "slow_query"]


# ---------------------------------------------------------------------------
# concurrent server, both backends
# ---------------------------------------------------------------------------


def _serve_requests(server, lines):
    stdin = io.StringIO("\n".join(lines) + "\n")
    stdout = io.StringIO()
    serve_stdio(stdin, stdout, server=server)
    return {r.get("id"): r for r in _responses(stdout)}


@pytest.mark.parametrize("backend", ["thread", "process"])
class TestServerObservability:
    def test_trace_roundtrip_and_consistency(self, backend):
        server = QueryServer(workers=2, backend=backend, default_theory="incnat")
        try:
            out = _serve_requests(server, [
                record(op="equiv", left="inc(x); x > 1", right="x > 0; inc(x)",
                       trace=True, id="traced"),
                record(op="sat", pred="x > 0", id="plain"),
            ])
            trace = out["traced"]["trace"]
            # Scheduler-stamped timings arrive alongside the executor's block —
            # through the worker pipe, for the process backend.
            assert trace["queue_ms"] >= 0.0
            assert trace["total_ms"] >= trace["exec_ms"] - 0.001
            assert "normalize" in trace["phases"]
            _assert_trace_consistent(trace)
            assert "trace" not in out["plain"]
        finally:
            server.shutdown()

    def test_stats_satellites(self, backend):
        server = QueryServer(workers=2, backend=backend, default_theory="incnat")
        try:
            _serve_requests(server, [
                record(op="sat", pred="x > 0", id="a"),
                record(op="equiv", left="x > 0", right="x > 0", id="b"),
                record(op="sat", pred="x > 1", id="c"),
            ])
            stats = server.server_stats()
            assert stats["uptime_s"] >= 0.0
            assert re.match(r"^\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}Z$",
                            stats["started_at"])
            assert stats["requests"]["completed"] == 3
            assert stats["requests"]["by_op"] == {"equiv": 1, "sat": 2}
            # The single latency sample is split into queue wait vs execution.
            for window in ("latency_ms", "queue_ms", "exec_ms"):
                block = stats[window]
                assert block["count"] == 3
                for quantile in ("p50", "p90", "p99", "max"):
                    assert block[quantile] >= 0.0
            # queue + exec compose into end-to-end latency (same clock reads).
            assert stats["latency_ms"]["max"] >= stats["exec_ms"]["p50"] - 0.001
        finally:
            server.shutdown()

    def test_metrics_op_over_protocol(self, backend):
        server = QueryServer(workers=2, backend=backend, default_theory="incnat")
        try:
            out = _serve_requests(server, [
                record(op="sat", pred="x > 0", id="a"),
            ])
            assert out["a"]["ok"] is True
            # Ask once the request has completed; the control op itself
            # answers inline from whatever has been recorded so far.
            out = _serve_requests(server, [record(op="metrics", id="m")])
            snapshot = out["m"]["result"]
            entries = snapshot["counters"]["requests_total"]
            sat = [e for e in entries if e["labels"].get("op") == "sat"]
            assert sat and sat[0]["value"] == 1
            assert sat[0]["labels"]["theory"] == "incnat"
            (hist,) = [h for h in snapshot["histograms"]["request_latency_ms"]
                       if h["labels"].get("op") == "sat"]
            assert hist["count"] == 1
            assert sum(hist["counts"]) == hist["count"]
            gauges = snapshot["gauges"]
            assert gauges["workers"] == [{"labels": {}, "value": 2}]
            assert gauges["uptime_seconds"][0]["value"] >= 0.0
        finally:
            server.shutdown()

    def test_slow_query_log_no_client_trace(self, backend, tmp_path, quiet_logging):
        path = tmp_path / "slow.jsonl"
        configure_logging(level="warning", log_file=str(path))
        server = QueryServer(workers=2, backend=backend, default_theory="incnat",
                             slow_query_ms=0.0)
        try:
            out = _serve_requests(server, [
                record(op="equiv", left="inc(x); x > 1", right="x > 0; inc(x)",
                       id="q"),
            ])
            assert "trace" not in out["q"]
        finally:
            server.shutdown()
        events = [json.loads(line) for line in path.read_text().splitlines()]
        slow = [e for e in events if e["event"] == "slow_query"]
        assert len(slow) == 1
        assert slow[0]["op"] == "equiv"
        assert "normalize" in slow[0]["phases"]
        assert slow[0]["queue_ms"] >= 0.0
        assert slow[0]["total_ms"] >= slow[0]["exec_ms"] - 0.001


class TestServerMetricsSnapshot:
    def test_cache_counters_appear(self):
        server = QueryServer(workers=1, backend="thread", default_theory="incnat")
        try:
            _serve_requests(server, [
                record(op="equiv", left="inc(x); x > 1", right="x > 0; inc(x)",
                       id="q"),
            ])
            snapshot = server.metrics_snapshot()
            misses = snapshot["counters"]["cache_misses_total"]
            tables = {e["labels"]["table"] for e in misses
                      if e["labels"]["theory"] == "incnat"}
            assert "norm" in tables
        finally:
            server.shutdown()

    def test_rejected_counter(self):
        server = QueryServer(workers=1, backend="thread", default_theory="incnat")
        try:
            out = _serve_requests(server, [record(op="launch_missiles", id="bad")])
            assert out["bad"]["ok"] is False
            snapshot = server.metrics_snapshot()
            (entry,) = snapshot["counters"]["rejected_total"]
            assert entry["value"] == 1
        finally:
            server.shutdown()

    def test_disabled_registry(self):
        server = QueryServer(workers=1, backend="thread", default_theory="incnat",
                             enable_metrics=False)
        try:
            _serve_requests(server, [record(op="sat", pred="x > 0", id="a")])
            snapshot = server.metrics_snapshot()
            assert "requests_total" not in snapshot["counters"]
            # Gauges still report: they are sampled at snapshot time.
            assert snapshot["gauges"]["workers"][0]["value"] == 1
        finally:
            server.shutdown()


class TestExporterAgainstLiveServer:
    def test_scrape_has_per_theory_histogram_buckets(self):
        server = QueryServer(workers=2, backend="thread", default_theory="incnat")
        try:
            _serve_requests(server, [
                record(op="equiv", left="inc(x); x > 1", right="x > 0; inc(x)",
                       id="q", theory="incnat"),
            ])
            with MetricsExporter(server.metrics_prometheus) as exporter:
                url = f"http://{exporter.host}:{exporter.port}/metrics"
                with urllib.request.urlopen(url, timeout=5) as response:
                    assert response.status == 200
                    text = response.read().decode("utf-8")
            buckets = re.findall(
                r'kmt_request_latency_ms_bucket\{le="([^"]+)",op="equiv",'
                r'theory="incnat"\} (\d+)', text)
            assert buckets, text
            assert buckets[-1][0] == "+Inf" and int(buckets[-1][1]) == 1
            counts = [int(c) for _, c in buckets]
            assert counts == sorted(counts)
            assert "# TYPE kmt_requests_total counter" in text
        finally:
            server.shutdown()


# ---------------------------------------------------------------------------
# CLI flags
# ---------------------------------------------------------------------------


class TestCliObservability:
    def test_batch_slow_query_flags(self, tmp_path, capsys, quiet_logging):
        batch_file = tmp_path / "requests.jsonl"
        batch_file.write_text(
            record(op="equiv", left="inc(x); x > 1", right="x > 0; inc(x)", id="q")
            + "\n")
        log_file = tmp_path / "events.jsonl"
        code = main(["--theory", "incnat", "batch", str(batch_file),
                     "--slow-query-ms", "0", "--log-file", str(log_file)])
        assert code == 0
        (response,) = [json.loads(line) for line in
                       capsys.readouterr().out.splitlines()]
        assert response["ok"] is True and "trace" not in response
        events = [json.loads(line) for line in log_file.read_text().splitlines()]
        assert [e for e in events if e["event"] == "slow_query"]

    def test_batch_log_level_to_stderr(self, tmp_path, capsys, quiet_logging):
        batch_file = tmp_path / "requests.jsonl"
        batch_file.write_text(record(op="sat", pred="x > 0") + "\n")
        code = main(["--theory", "incnat", "batch", str(batch_file),
                     "--log-level", "debug"])
        assert code == 0

    def test_serve_metrics_requires_concurrent_server(self, capsys):
        code = main(["--theory", "incnat", "serve", "--legacy",
                     "--metrics", "127.0.0.1:0"])
        assert code == 2
        assert "--metrics requires the concurrent server" in capsys.readouterr().err

    def test_serve_stdio_with_metrics_endpoint(self, tmp_path, capsys,
                                               monkeypatch, quiet_logging):
        import sys

        lines = [
            record(op="equiv", left="inc(x); x > 1", right="x > 0; inc(x)", id="q"),
            record(op="quit"),
        ]
        monkeypatch.setattr(sys, "stdin", io.StringIO("\n".join(lines) + "\n"))
        code = main(["--theory", "incnat", "serve", "--workers", "2",
                     "--metrics", "127.0.0.1:0",
                     "--slow-query-ms", "1e9",
                     "--log-file", str(tmp_path / "events.jsonl")])
        captured = capsys.readouterr()
        assert code == 0
        assert "# metrics on http://127.0.0.1:" in captured.err
        responses = [json.loads(line) for line in captured.out.splitlines()]
        assert any(r.get("id") == "q" and r.get("ok") for r in responses)
