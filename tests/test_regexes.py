"""Tests for the regular interpretation of restricted actions (paper Fig. 10)."""

import pytest

from repro.core import terms as T
from repro.core.regexes import accepts_word, is_empty_language, language_up_to
from repro.theories.bitvec import BoolAssign
from repro.utils.errors import KmtError

A = T.tprim(BoolAssign("a", True))
B = T.tprim(BoolAssign("b", True))
PI_A = BoolAssign("a", True)
PI_B = BoolAssign("b", True)


class TestLanguageUpTo:
    def test_one_is_epsilon(self):
        assert language_up_to(T.tone(), 3) == {()}

    def test_zero_is_empty(self):
        assert language_up_to(T.tzero(), 3) == frozenset()

    def test_primitive(self):
        assert language_up_to(A, 3) == {(PI_A,)}
        assert language_up_to(A, 0) == frozenset()

    def test_plus_unions(self):
        assert language_up_to(T.tplus(A, B), 2) == {(PI_A,), (PI_B,)}

    def test_seq_concatenates(self):
        assert language_up_to(T.tseq(A, B), 2) == {(PI_A, PI_B)}
        assert language_up_to(T.tseq(A, B), 1) == frozenset()

    def test_star_enumerates_up_to_bound(self):
        words = language_up_to(T.tstar(A), 3)
        assert words == {(), (PI_A,), (PI_A, PI_A), (PI_A, PI_A, PI_A)}

    def test_nested_star_and_plus(self):
        words = language_up_to(T.tstar(T.tplus(A, B)), 2)
        assert ((PI_A, PI_B)) in words
        assert ((PI_B, PI_B)) in words
        assert len(words) == 1 + 2 + 4

    def test_rejects_non_restricted(self):
        from repro.theories.bitvec import BoolEq

        with pytest.raises(KmtError):
            language_up_to(T.ttest(T.pprim(BoolEq("a"))), 2)


class TestHelpers:
    def test_accepts_word_agrees_with_enumeration(self):
        term = T.tseq(T.tstar(A), B)
        for word in language_up_to(term, 3):
            assert accepts_word(term, word)
        assert not accepts_word(term, (PI_B, PI_B))

    def test_is_empty_language(self):
        assert is_empty_language(T.tzero())
        assert not is_empty_language(T.tstar(A))
