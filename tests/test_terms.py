"""Unit tests for the hash-consed term language and its smart constructors."""

import pytest
from hypothesis import given

from repro.core import terms as T
from repro.theories.bitvec import BoolAssign, BoolEq
from tests.conftest import bitvec_preds, bitvec_terms


class TestPredSmartConstructors:
    def test_constants_are_singletons(self):
        assert T.pzero() is T.pzero()
        assert T.pone() is T.pone()

    def test_not_constants(self):
        assert T.pnot(T.pzero()) is T.pone()
        assert T.pnot(T.pone()) is T.pzero()

    def test_double_negation(self):
        a = T.pprim(BoolEq("a"))
        assert T.pnot(T.pnot(a)) is a

    def test_and_units_and_annihilators(self):
        a = T.pprim(BoolEq("a"))
        assert T.pand(T.pone(), a) is a
        assert T.pand(a, T.pone()) is a
        assert T.pand(T.pzero(), a) is T.pzero()
        assert T.pand(a, T.pzero()) is T.pzero()

    def test_and_idempotent(self):
        a = T.pprim(BoolEq("a"))
        assert T.pand(a, a) is a

    def test_and_contradiction(self):
        a = T.pprim(BoolEq("a"))
        assert T.pand(a, T.pnot(a)) is T.pzero()
        assert T.pand(T.pnot(a), a) is T.pzero()

    def test_or_units_and_annihilators(self):
        a = T.pprim(BoolEq("a"))
        assert T.por(T.pzero(), a) is a
        assert T.por(a, T.pzero()) is a
        assert T.por(T.pone(), a) is T.pone()
        assert T.por(a, T.pone()) is T.pone()

    def test_or_idempotent_and_excluded_middle(self):
        a = T.pprim(BoolEq("a"))
        assert T.por(a, a) is a
        assert T.por(a, T.pnot(a)) is T.pone()

    def test_pand_all_empty_is_one(self):
        assert T.pand_all([]) is T.pone()

    def test_por_all_empty_is_zero(self):
        assert T.por_all([]) is T.pzero()

    def test_type_errors(self):
        with pytest.raises(TypeError):
            T.pand(T.pone(), "not a pred")
        with pytest.raises(TypeError):
            T.pnot(42)


class TestTermSmartConstructors:
    def test_constants(self):
        assert T.tzero() is T.ttest(T.pzero())
        assert T.tone() is T.ttest(T.pone())

    def test_seq_units(self):
        p = T.tprim(BoolAssign("a", True))
        assert T.tseq(T.tone(), p) is p
        assert T.tseq(p, T.tone()) is p

    def test_seq_annihilators(self):
        p = T.tprim(BoolAssign("a", True))
        assert T.tseq(T.tzero(), p) is T.tzero()
        assert T.tseq(p, T.tzero()) is T.tzero()

    def test_plus_unit_and_idempotence(self):
        p = T.tprim(BoolAssign("a", True))
        assert T.tplus(T.tzero(), p) is p
        assert T.tplus(p, T.tzero()) is p
        assert T.tplus(p, p) is p

    def test_adjacent_tests_merge(self):
        a = T.pprim(BoolEq("a"))
        b = T.pprim(BoolEq("b"))
        merged = T.tseq(T.ttest(a), T.ttest(b))
        assert isinstance(merged, T.TTest)
        assert merged.pred == T.pand(a, b)
        merged_plus = T.tplus(T.ttest(a), T.ttest(b))
        assert isinstance(merged_plus, T.TTest)
        assert merged_plus.pred == T.por(a, b)

    def test_star_of_test_is_one(self):
        a = T.pprim(BoolEq("a"))
        assert T.tstar(T.ttest(a)) is T.tone()
        assert T.tstar(T.tzero()) is T.tone()
        assert T.tstar(T.tone()) is T.tone()

    def test_star_idempotent(self):
        p = T.tprim(BoolAssign("a", True))
        assert T.tstar(T.tstar(p)) is T.tstar(p)

    def test_tseq_all_and_tplus_all(self):
        p = T.tprim(BoolAssign("a", True))
        q = T.tprim(BoolAssign("b", False))
        assert T.tseq_all([]) is T.tone()
        assert T.tplus_all([]) is T.tzero()
        seq = T.tseq_all([p, q])
        assert isinstance(seq, T.TSeq)
        assert seq.left is p and seq.right is q


class TestHashConsing:
    def test_structurally_equal_terms_are_identical(self):
        a1 = T.pand(T.pprim(BoolEq("a")), T.pprim(BoolEq("b")))
        a2 = T.pand(T.pprim(BoolEq("a")), T.pprim(BoolEq("b")))
        assert a1 is a2

    def test_disabled_hash_consing_still_equal(self):
        with T.hash_consing_disabled():
            a1 = T.pand(T.pprim(BoolEq("a")), T.pprim(BoolEq("b")))
            a2 = T.pand(T.pprim(BoolEq("a")), T.pprim(BoolEq("b")))
            assert a1 is not a2
            assert a1 == a2
            assert hash(a1) == hash(a2)

    def test_disabled_smart_constructors_keep_structure(self):
        a = T.pprim(BoolEq("a"))
        with T.smart_constructors_disabled():
            raw = T.pand(T.pone(), a)
            assert isinstance(raw, T.PAnd)
        # Back to normal afterwards.
        assert T.pand(T.pone(), a) is a


class TestQueries:
    def test_is_restricted(self):
        pi = T.tprim(BoolAssign("a", True))
        assert T.is_restricted(T.tseq(pi, T.tstar(pi)))
        assert T.is_restricted(T.tone())
        assert not T.is_restricted(T.ttest(T.pprim(BoolEq("a"))))
        assert not T.is_restricted(T.tseq(pi, T.ttest(T.pprim(BoolEq("a")))))

    def test_primitive_actions_collection(self):
        pi1 = BoolAssign("a", True)
        pi2 = BoolAssign("b", False)
        term = T.tplus(T.tseq(T.tprim(pi1), T.tprim(pi2)), T.tstar(T.tprim(pi1)))
        assert T.primitive_actions(term) == {pi1, pi2}

    def test_primitive_tests_collection(self):
        alpha = BoolEq("a")
        beta = BoolEq("b")
        pred = T.por(T.pnot(T.pprim(alpha)), T.pand(T.pprim(beta), T.pone()))
        assert T.primitive_tests_of_pred(pred) == {alpha, beta}
        term = T.tseq(T.ttest(pred), T.tprim(BoolAssign("c", True)))
        assert T.primitive_tests_of_term(term) == {alpha, beta}

    def test_pred_of_term(self):
        a = T.pprim(BoolEq("a"))
        assert T.pred_of_term(T.ttest(a)) is a
        assert T.pred_of_term(T.tprim(BoolAssign("a", True))) is None

    def test_size_monotone(self):
        a = T.pprim(BoolEq("a"))
        b = T.pprim(BoolEq("b"))
        assert T.pand(a, b).size > a.size
        assert T.pnot(a).size == a.size + 1

    def test_operator_overloads(self):
        a = T.pprim(BoolEq("a"))
        b = T.pprim(BoolEq("b"))
        pi = T.tprim(BoolAssign("a", True))
        assert a + b == T.por(a, b)
        assert a * b == T.pand(a, b)
        assert ~a == T.pnot(a)
        assert a * pi == T.tseq(T.ttest(a), pi)
        assert (pi + pi) is pi
        assert pi.star() == T.tstar(pi)
        assert a.as_term() == T.ttest(a)


class TestHypothesisProperties:
    @given(bitvec_preds())
    def test_pred_hash_consistent_with_equality(self, pred):
        rebuilt = _rebuild_pred(pred)
        assert rebuilt == pred
        assert hash(rebuilt) == hash(pred)

    @given(bitvec_terms())
    def test_term_pretty_is_string(self, term):
        assert isinstance(term.pretty(), str)
        assert term.size >= 1

    @given(bitvec_preds())
    def test_sort_key_total_order(self, pred):
        key = pred.sort_key()
        assert isinstance(key, tuple) and len(key) == 2


def _rebuild_pred(pred):
    """Reconstruct a predicate bottom-up (exercises the intern table)."""
    if isinstance(pred, (T.PZero, T.POne, T.PPrim)):
        return pred
    if isinstance(pred, T.PNot):
        return T.pnot(_rebuild_pred(pred.arg))
    if isinstance(pred, T.PAnd):
        return T.pand(_rebuild_pred(pred.left), _rebuild_pred(pred.right))
    if isinstance(pred, T.POr):
        return T.por(_rebuild_pred(pred.left), _rebuild_pred(pred.right))
    raise AssertionError(pred)
