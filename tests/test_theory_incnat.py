"""Tests for the IncNat theory of increasing naturals (paper Fig. 2, §1.2)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import terms as T
from repro.core.semantics import Trace, eval_pred
from repro.theories.incnat import AssignNat, Gt, IncNatTheory, Incr
from repro.utils.errors import ParseError, TheoryError
from repro.utils.frozendict import FrozenDict


@pytest.fixture
def theory():
    return IncNatTheory(variables=("x", "y"))


class TestPrimitives:
    def test_negative_bounds_rejected(self):
        with pytest.raises(TheoryError):
            Gt("x", -1)
        with pytest.raises(TheoryError):
            AssignNat("x", -2)

    def test_str_forms(self):
        assert str(Gt("x", 3)) == "x > 3"
        assert str(Incr("x")) == "inc(x)"
        assert str(AssignNat("x", 7)) == "x := 7"


class TestSemantics:
    def test_initial_state(self, theory):
        assert theory.initial_state() == FrozenDict(x=0, y=0)

    def test_pred_and_act(self, theory):
        state = FrozenDict(x=3, y=0)
        trace = Trace.initial(state)
        assert theory.pred(Gt("x", 2), trace)
        assert not theory.pred(Gt("x", 3), trace)
        assert theory.act(Incr("x"), state)["x"] == 4
        assert theory.act(AssignNat("y", 9), state)["y"] == 9

    def test_unset_variables_default_to_zero(self, theory):
        trace = Trace.initial(FrozenDict())
        assert not theory.pred(Gt("z", 0), trace)
        assert theory.act(Incr("z"), FrozenDict())["z"] == 1

    def test_foreign_primitives_rejected(self, theory):
        from repro.theories.bitvec import BoolAssign, BoolEq

        with pytest.raises(TheoryError):
            theory.pred(BoolEq("a"), Trace.initial(FrozenDict()))
        with pytest.raises(TheoryError):
            theory.act(BoolAssign("a", True), FrozenDict())
        with pytest.raises(TheoryError):
            theory.push_back(Incr("x"), BoolEq("a"))
        with pytest.raises(TheoryError):
            theory.subterms(BoolEq("a"))


class TestPushback:
    def test_inc_gt_general(self, theory):
        """Inc-GT: inc x; x > n == (x > n-1); inc x   for n > 0."""
        assert theory.push_back(Incr("x"), Gt("x", 4)) == [T.pprim(Gt("x", 3))]

    def test_inc_gt_zero(self, theory):
        """Inc-GT-Z: inc x; x > 0 == inc x."""
        assert theory.push_back(Incr("x"), Gt("x", 0)) == [T.pone()]

    def test_gt_comm(self, theory):
        """GT-Comm: inc y; x > n == (x > n); inc y."""
        assert theory.push_back(Incr("y"), Gt("x", 4)) == [T.pprim(Gt("x", 4))]

    def test_assign_gt(self, theory):
        """Assgn-GT resolves statically on the constants."""
        assert theory.push_back(AssignNat("x", 5), Gt("x", 3)) == [T.pone()]
        assert theory.push_back(AssignNat("x", 3), Gt("x", 3)) == [T.pzero()]
        assert theory.push_back(AssignNat("y", 5), Gt("x", 3)) == [T.pprim(Gt("x", 3))]

    def test_subterms_are_all_smaller_bounds(self, theory):
        subs = set(theory.subterms(Gt("x", 3)))
        assert subs == {T.pprim(Gt("x", m)) for m in range(3)}

    @given(
        st.sampled_from(["x", "y"]),
        st.integers(0, 6),
        st.one_of(
            st.builds(Incr, st.sampled_from(["x", "y"])),
            st.builds(AssignNat, st.sampled_from(["x", "y"]), st.integers(0, 6)),
        ),
        st.integers(0, 6),
        st.integers(0, 6),
    )
    def test_pushback_sound_against_semantics(self, test_var, bound, action, x0, y0):
        """WP soundness: pi;alpha holds after iff the pushed-back sum holds before."""
        theory = IncNatTheory()
        alpha = Gt(test_var, bound)
        pushed = T.por_all(theory.push_back(action, alpha))
        state = FrozenDict(x=x0, y=y0)
        trace = Trace.initial(state)
        after = trace.append(theory.act(action, state), action)
        assert theory.pred(alpha, after) == eval_pred(pushed, trace, theory)


class TestSatisfiability:
    def test_conjunction_bounds(self, theory):
        assert theory.satisfiable_conjunction([(Gt("x", 3), True), (Gt("x", 10), False)])
        assert not theory.satisfiable_conjunction([(Gt("x", 5), True), (Gt("x", 3), False)])
        assert theory.satisfiable_conjunction([(Gt("x", 5), True), (Gt("y", 3), False)])

    def test_satisfiable_pred_via_dpll(self, theory):
        pred = T.pand(T.pprim(Gt("x", 5)), T.pnot(T.pprim(Gt("x", 8))))
        assert theory.satisfiable(pred)
        contradiction = T.pand(T.pprim(Gt("x", 5)), T.pnot(T.pprim(Gt("x", 5))))
        assert not theory.satisfiable(contradiction)


class TestSugar:
    def test_encodings(self, theory):
        assert theory.gt("x", 3) == T.pprim(Gt("x", 3))
        assert theory.ge("x", 0) is T.pone()
        assert theory.ge("x", 4) == T.pprim(Gt("x", 3))
        assert theory.lt("x", 0) is T.pzero()
        assert theory.lt("x", 3) == T.pnot(T.pprim(Gt("x", 2)))
        assert theory.le("x", 3) == T.pnot(T.pprim(Gt("x", 3)))
        assert theory.eq("x", 0) == T.pnot(T.pprim(Gt("x", 0)))
        assert theory.eq("x", 4) == T.pand(T.pprim(Gt("x", 3)), T.pnot(T.pprim(Gt("x", 4))))

    def test_sugar_is_semantically_correct(self, theory):
        for value in range(0, 6):
            state = FrozenDict(x=value)
            trace = Trace.initial(state)
            assert eval_pred(theory.lt("x", 3), trace, theory) == (value < 3)
            assert eval_pred(theory.le("x", 3), trace, theory) == (value <= 3)
            assert eval_pred(theory.ge("x", 3), trace, theory) == (value >= 3)
            assert eval_pred(theory.eq("x", 3), trace, theory) == (value == 3)

    def test_parse_phrases(self, theory):
        from repro.core.parser import tokenize

        def phrase(text):
            return theory.parse_phrase(tokenize(text)[:-1])

        assert phrase("x > 3") == ("test", Gt("x", 3))
        assert phrase("inc(x)") == ("action", Incr("x"))
        assert phrase("inc x") == ("action", Incr("x"))
        assert phrase("x := 4") == ("action", AssignNat("x", 4))
        kind, pred = phrase("x < 2")
        assert kind == "pred" and pred == theory.lt("x", 2)
        kind, pred = phrase("x = 2")
        assert kind == "pred" and pred == theory.eq("x", 2)
        with pytest.raises(ParseError):
            phrase("x ? 3")


class TestEndToEnd:
    def test_counters_commute(self, kmt_incnat):
        """Fig. 9 row 3."""
        assert kmt_incnat.equivalent(
            "inc(x)*; x > 3; inc(y)*; y > 3", "inc(x)*; inc(y)*; x > 3; y > 3"
        )

    def test_unbounded_state_reasoning(self, kmt_incnat):
        """The paper's headline: x grows without bound, yet equivalence is decidable."""
        assert kmt_incnat.equivalent("inc(x)*; x > 10", "inc(x)*; inc(x)*; x > 10")
        assert not kmt_incnat.equivalent("inc(x)*; x > 10", "inc(x)*; x > 11")

    def test_pnat_shape(self, kmt_incnat):
        """A bounded version of Fig. 1(a): the assert can be strengthened."""
        program = "x < 1; (x < 2; inc(x); inc(y); inc(y))*; ~(x < 2); y > 1"
        stronger = "x < 1; (x < 2; inc(x); inc(y); inc(y))*; ~(x < 2); y > 1; y > 0"
        assert kmt_incnat.equivalent(program, stronger)
