"""Tests for the KMT facade object (parsing, coercion, recursive knot)."""

import pytest

from repro.core import terms as T
from repro.core.kmt import KMT
from repro.core.normalform import NormalForm
from repro.theories.bitvec import BitVecTheory
from repro.theories.incnat import Gt, IncNatTheory, Incr
from repro.utils.errors import TheoryError
from repro.utils.frozendict import FrozenDict


class TestConstruction:
    def test_attaches_theory(self):
        theory = IncNatTheory()
        kmt = KMT(theory)
        assert theory.kmt is kmt
        assert "incnat" in repr(kmt)

    def test_unattached_theory_refuses_recursive_calls(self):
        theory = IncNatTheory()
        with pytest.raises(TheoryError):
            theory.require_kmt()


class TestCoercion:
    def test_strings_preds_and_terms_accepted(self, kmt_incnat):
        term = kmt_incnat.parse("inc(x)")
        pred = kmt_incnat.parse_pred("x > 1")
        assert kmt_incnat.equivalent(term, "inc(x)")
        assert kmt_incnat.equivalent(pred, "x > 1")
        assert kmt_incnat.equivalent(T.ttest(pred), pred)

    def test_bad_input_rejected(self, kmt_incnat):
        with pytest.raises(TypeError):
            kmt_incnat.equivalent(42, "inc(x)")

    def test_satisfiable_accepts_strings(self, kmt_incnat):
        assert kmt_incnat.satisfiable("x > 1; ~(x > 5)")
        assert not kmt_incnat.satisfiable("x > 5; ~(x > 5)")


class TestDerivedOperations:
    def test_normalize_returns_normal_form(self, kmt_incnat):
        nf = kmt_incnat.normalize(kmt_incnat.parse("inc(x); x > 1"))
        assert isinstance(nf, NormalForm)

    def test_normalize_with_stats(self, kmt_incnat):
        nf, stats = kmt_incnat.normalize_with_stats(kmt_incnat.parse("inc(x)*; x > 1"))
        assert len(nf) == 3
        assert stats.steps > 0

    def test_pretty_round(self, kmt_incnat):
        term = kmt_incnat.parse("inc(x); x > 1")
        assert kmt_incnat.parse(kmt_incnat.pretty(term)) == term
        pred = kmt_incnat.parse_pred("x > 1")
        assert kmt_incnat.pretty(pred) == "x > 1"

    def test_run_uses_initial_state_by_default(self):
        kmt = KMT(IncNatTheory(variables=("x",)))
        traces = kmt.run("inc(x); inc(x)")
        (trace,) = traces
        assert trace.last_state["x"] == 2
        assert kmt.accepts("inc(x); x > 0")
        assert not kmt.accepts("x > 3")

    def test_output_states(self):
        kmt = KMT(IncNatTheory(variables=("x",)))
        states = kmt.output_states("inc(x) + inc(x); inc(x)")
        assert {s["x"] for s in states} == {1, 2}

    def test_run_with_explicit_state(self, kmt_incnat):
        traces = kmt_incnat.run("x > 3", state=FrozenDict(x=5, y=0))
        assert len(traces) == 1

    def test_eval_pred_on_trace(self, kmt_incnat):
        from repro.core.semantics import Trace

        trace = Trace.initial(FrozenDict(x=4, y=0))
        assert kmt_incnat.eval_pred(kmt_incnat.parse_pred("x > 3"), trace)


class TestWeakestPrecondition:
    def test_primitive_test(self, kmt_incnat):
        wp = kmt_incnat.weakest_precondition(Incr("x"), T.pprim(Gt("x", 3)))
        assert wp == T.pprim(Gt("x", 2))

    def test_compound_test(self, kmt_incnat):
        pred = T.pand(T.pprim(Gt("x", 3)), T.pnot(T.pprim(Gt("x", 5))))
        wp = kmt_incnat.weakest_precondition(Incr("x"), pred)
        # inc x; (x>3 ; ~(x>5))  ==  (x>2 ; ~(x>4)); inc x
        assert wp == T.pand(T.pprim(Gt("x", 2)), T.pnot(T.pprim(Gt("x", 4))))

    def test_constant_tests(self, kmt_incnat):
        assert kmt_incnat.weakest_precondition(Incr("x"), T.pone()) is T.pone()
        assert kmt_incnat.weakest_precondition(Incr("x"), T.pzero()) is T.pzero()


class TestBudgetThreading:
    def test_budget_respected(self):
        from repro.utils.errors import NormalizationBudgetExceeded

        kmt = KMT(BitVecTheory(), budget=1_000)
        with pytest.raises(NormalizationBudgetExceeded):
            kmt.normalize(kmt.parse("(flip a + flip b + flip c)*"))
