"""Tests for the extensible concrete-syntax parser (paper Section 4)."""

import pytest
from hypothesis import given, settings

from repro.core import terms as T
from repro.core.parser import Parser, match_phrase, parse_pred, parse_term, phrase_text, tokenize
from repro.core.pretty import pretty_pred, pretty_term
from repro.theories.bitvec import BitVecTheory, BoolAssign, BoolEq
from repro.theories.incnat import AssignNat, Gt, IncNatTheory, Incr
from repro.utils.errors import ParseError
from tests.conftest import bitvec_terms, incnat_terms


@pytest.fixture
def nat():
    return IncNatTheory()


@pytest.fixture
def bools():
    return BitVecTheory()


class TestTokenizer:
    def test_basic_tokens(self):
        tokens = tokenize("inc(x); x > 3 + ~(y := 2)*")
        kinds = [t.kind for t in tokens]
        assert kinds[-1] == "end"
        values = [t.value for t in tokens[:-1]]
        assert values == ["inc", "(", "x", ")", ";", "x", ">", "3", "+", "~", "(", "y", ":=", "2", ")", "*"]

    def test_multi_char_symbols(self):
        values = [t.value for t in tokenize("a := b <- c <= d >= e != f") if t.kind == "sym"]
        assert values == [":=", "<-", "<=", ">=", "!="]

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            tokenize("x § y")

    def test_position_reported(self):
        tokens = tokenize("ab cd")
        assert tokens[0].pos == 0
        assert tokens[1].pos == 3


class TestMatchPhrase:
    def test_captures_placeholders(self):
        tokens = tokenize("x > 3")[:-1]
        assert match_phrase(tokens, "WORD", ">", "NUM") == ["x", 3]

    def test_length_mismatch(self):
        tokens = tokenize("x > 3")[:-1]
        assert match_phrase(tokens, "WORD", ">") is None

    def test_literal_mismatch(self):
        tokens = tokenize("x < 3")[:-1]
        assert match_phrase(tokens, "WORD", ">", "NUM") is None

    def test_phrase_text(self):
        assert phrase_text(tokenize("inc ( x )")[:-1]) == "inc ( x )"


class TestGrammar:
    def test_constants(self, nat):
        assert parse_term("true", nat) is T.tone()
        assert parse_term("skip", nat) is T.tone()
        assert parse_term("1", nat) is T.tone()
        assert parse_term("false", nat) is T.tzero()
        assert parse_term("drop", nat) is T.tzero()
        assert parse_term("0", nat) is T.tzero()

    def test_precedence_star_seq_plus(self, nat):
        term = parse_term("inc(x) + inc(y); inc(x)*", nat)
        assert isinstance(term, T.TPlus)
        assert isinstance(term.right, T.TSeq)
        assert isinstance(term.right.right, T.TStar)

    def test_parentheses_override(self, nat):
        term = parse_term("(inc(x) + inc(y)); inc(x)", nat)
        assert isinstance(term, T.TSeq)
        assert isinstance(term.left, T.TPlus)

    def test_negation_forms(self, nat):
        for text in ("~(x > 3)", "!(x > 3)", "not (x > 3)", "~x > 3"):
            pred = parse_pred(text, nat)
            assert pred == T.pnot(T.pprim(Gt("x", 3)))

    def test_negation_of_action_rejected(self, nat):
        with pytest.raises(ParseError):
            parse_term("~inc(x)", nat)

    def test_if_then_else_desugaring(self, bools):
        term = parse_term("if (a = T) then b := T else b := F", bools)
        expected = T.tplus(
            T.tseq(T.ttest(T.pprim(BoolEq("a"))), T.tprim(BoolAssign("b", True))),
            T.tseq(T.pnot(T.pprim(BoolEq("a"))).as_term(), T.tprim(BoolAssign("b", False))),
        )
        assert term == expected

    def test_while_do_desugaring(self, nat):
        term = parse_term("while (x < 2) do inc(x) end", nat)
        guard = T.pnot(T.pprim(Gt("x", 1)))
        expected = T.tseq(
            T.tstar(T.tseq(T.ttest(guard), T.tprim(Incr("x")))), T.ttest(T.pnot(guard))
        )
        assert term == expected

    def test_while_without_end_keyword(self, nat):
        assert parse_term("while (x < 2) do inc(x)", nat) == parse_term(
            "while (x < 2) do inc(x) end", nat
        )

    def test_if_condition_must_be_test(self, nat):
        with pytest.raises(ParseError):
            parse_term("if (inc(x)) then inc(x) else inc(y)", nat)

    def test_trailing_garbage_rejected(self, nat):
        with pytest.raises(ParseError):
            parse_term("inc(x) )", nat)

    def test_empty_input_rejected(self, nat):
        with pytest.raises(ParseError):
            parse_term("", nat)
        with pytest.raises(ParseError):
            parse_term("( )", nat)

    def test_parse_pred_rejects_actions(self, nat):
        with pytest.raises(ParseError):
            parse_pred("inc(x)", nat)

    def test_merged_adjacent_tests_still_a_pred(self, nat):
        pred = parse_pred("x > 1; x > 2", nat)
        assert pred == T.pand(T.pprim(Gt("x", 1)), T.pprim(Gt("x", 2)))

    def test_numbers_inside_phrases_not_confused_with_constants(self, nat):
        term = parse_term("x := 1; x > 0", nat)
        assert isinstance(term, T.TSeq)
        assert term.left == T.tprim(AssignNat("x", 1))

    def test_theory_error_message_mentions_phrase(self, nat):
        with pytest.raises(ParseError) as excinfo:
            parse_term("launch missiles", nat)
        assert "launch" in str(excinfo.value)


class TestParserObject:
    def test_parser_reusable_entrypoints(self, nat):
        parser = Parser(nat, "x > 1")
        assert parser.parse_pred() == T.pprim(Gt("x", 1))

    def test_expect_errors(self, nat):
        parser = Parser(nat, "inc(x")
        with pytest.raises(ParseError):
            parser.parse_term()


class TestRoundTrip:
    """pretty-printing then re-parsing yields the same term."""

    @settings(max_examples=50, deadline=None)
    @given(bitvec_terms(max_leaves=5))
    def test_bitvec_roundtrip(self, term):
        theory = BitVecTheory()
        assert parse_term(pretty_term(term), theory) == term

    @settings(max_examples=50, deadline=None)
    @given(incnat_terms(max_leaves=5))
    def test_incnat_roundtrip(self, term):
        theory = IncNatTheory()
        assert parse_term(pretty_term(term), theory) == term

    def test_pred_roundtrip_examples(self, nat):
        for text in ("x > 3", "~(x > 3)", "x > 1; x > 2", "x > 1 + x > 2"):
            pred = parse_pred(text, nat)
            assert parse_pred(pretty_pred(pred), nat) == pred
