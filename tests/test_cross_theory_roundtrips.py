"""Cross-theory consistency checks: pretty-printing round trips and
normalization soundness for every shipped theory.

Each theory's own test module digs into its specifics; this module sweeps a
fixed battery of representative terms across *all* theories and checks the
generic invariants that tie the pipeline together:

* pretty-printing then re-parsing is the identity;
* normalization produces restricted actions only and preserves the decision
  procedure's verdicts (``p == nf(p)``);
* the normal form converted back to a term is still equivalent to the input;
* equivalence is reflexive and stable under pretty/re-parse.
"""

import pytest

from repro.core import terms as T
from repro.core.kmt import KMT
from repro.core.pretty import pretty_term
from repro.theories.bitvec import BitVecTheory
from repro.theories.incnat import IncNatTheory
from repro.theories.ltlf import LtlfTheory
from repro.theories.maps import MapTheory, NatBoolMapAdapter
from repro.theories.netkat import NetKatTheory
from repro.theories.product import ProductTheory
from repro.theories.sets import NatExpressionAdapter, SetTheory
from repro.theories.temporal_netkat import temporal_netkat


def _incnat():
    return IncNatTheory(variables=("x", "y"))


def _bitvec():
    return BitVecTheory(variables=("a", "b"))


def _product():
    return ProductTheory(IncNatTheory(variables=("x",)), BitVecTheory(variables=("a",)))


def _netkat():
    return NetKatTheory({"sw": (1, 2), "dst": (1, 2)})


def _sets():
    nat = IncNatTheory(variables=("i",))
    return SetTheory(nat, NatExpressionAdapter(nat, variables=("i",)), set_variables=("X",))


def _maps():
    nat = IncNatTheory(variables=("i",))
    bools = BitVecTheory(variables=("p",))
    adapter = NatBoolMapAdapter(nat, bools, key_variables=("i",), value_variables=("p",))
    return MapTheory(ProductTheory(nat, bools), adapter, map_variables=("m",))


def _ltlf():
    return LtlfTheory(IncNatTheory(variables=("x",)))


def _temporal_netkat():
    return temporal_netkat({"sw": (1, 2)})


CASES = [
    ("incnat", _incnat, ["inc(x); x > 2", "x := 3; x > 1 + inc(y)", "(x < 2; inc(x))*; ~(x < 2)", "x += 2; x *= 3; x > 5"]),
    ("bitvec", _bitvec, ["a := T; a = T", "flip a; b = F", "(a = F; a := T)*"]),
    ("product", _product, ["x < 1; a = T; inc(x)", "a := T + inc(x); x > 0"]),
    ("netkat", _netkat, ["sw = 1; dst <- 2; sw <- 2", "(sw = 1; sw <- 2 + sw = 2; sw <- 1)*"]),
    ("sets", _sets, ["add(X, i); in(X, 3)", "(inc(i); add(X, i))*; i > 2"]),
    ("maps", _maps, ["i := 1; p := T; m[i] := p; m[1] = T"]),
    ("ltlf", _ltlf, ["inc(x); last(x > 0)", "x > 1; since(x > 0, x > 1)", "ev(x > 2); inc(x)"]),
    ("temporal-netkat", _temporal_netkat, ["sw = 1; sw <- 2; ev(sw = 1)"]),
]


@pytest.mark.parametrize(
    "name,builder,sources", CASES, ids=[name for name, _, _ in CASES]
)
class TestAcrossTheories:
    def test_pretty_parse_roundtrip(self, name, builder, sources):
        kmt = KMT(builder())
        for source in sources:
            term = kmt.parse(source)
            assert kmt.parse(pretty_term(term)) == term

    def test_normal_forms_are_restricted(self, name, builder, sources):
        kmt = KMT(builder())
        for source in sources:
            nf = kmt.normalize(kmt.parse(source))
            for _, action in nf:
                assert T.is_restricted(action)

    def test_normalization_preserves_equivalence(self, name, builder, sources):
        kmt = KMT(builder())
        for source in sources:
            term = kmt.parse(source)
            nf_term = kmt.normalize(term).to_term()
            assert kmt.equivalent(term, nf_term)

    def test_equivalence_reflexive(self, name, builder, sources):
        kmt = KMT(builder())
        for source in sources:
            term = kmt.parse(source)
            assert kmt.equivalent(term, term)

    def test_self_plus_self_collapses(self, name, builder, sources):
        kmt = KMT(builder())
        for source in sources:
            term = kmt.parse(source)
            assert kmt.equivalent(T.tplus(term, term), term)
