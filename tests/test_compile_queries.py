"""End-to-end tests for the compiled decision path and the new query ops.

Covers, layer by layer:

* the decision procedure's compiled comparison path (``inclusion`` via
  per-signature product emptiness, ``member`` via cached automata, agreement
  with ``less_or_equal``);
* the engine session's ``aut`` LRU (warm reuse across queries,
  ``states_compiled`` accounting in every stats aggregation);
* the batch protocol / wire codec / server / CLI surface of the
  ``inclusion`` and ``member`` request kinds;
* the randomized differential harness required by the acceptance criteria:
  200 seeded pairs across IncNat + BitVec + Sets, asserting identical
  verdicts and valid witness words between the compiled path (both cell
  strategies) and the legacy derivative-based ``language_compare`` path.
"""

from __future__ import annotations

import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import automata
from repro.core import terms as T
from repro.core.decision import EquivalenceChecker, InclusionResult
from repro.core.kmt import KMT
from repro.engine.batch import (
    decode_wire_request,
    decode_wire_response,
    encode_wire_request,
    encode_wire_response,
    run_batch_lines,
)
from repro.engine.server import QueryServer, ResponseSink, merge_pool_stats
from repro.engine.session import EngineSession
from repro.theories.bitvec import BitVecTheory, BoolAssign, BoolEq
from repro.theories.incnat import AssignNat, Gt, IncNatTheory, Incr
from repro.theories.sets import NatExpressionAdapter, SetAdd, SetIn, SetTheory
from repro.utils.errors import KmtError
from repro import cli

DIFFERENTIAL_PAIRS = {"bitvec": 80, "incnat": 80, "sets": 40}  # >= 200 total


def accepts(action, word):
    """Derivative-based membership oracle (independent of the compiled IR)."""
    state = automata.canonical(action)
    for pi in word:
        state = automata.derivative(state, pi)
    return automata.nullable(state)


# ---------------------------------------------------------------------------
# decision-level behavior
# ---------------------------------------------------------------------------


class TestInclusionDecision:
    def test_basic_verdicts(self, kmt_incnat):
        assert kmt_incnat.includes("inc(x)", "inc(x) + inc(y)")
        assert not kmt_incnat.includes("inc(x) + inc(y)", "inc(x)")
        assert kmt_incnat.includes("inc(x)", "(inc(x))*")

    def test_matches_less_or_equal(self, kmt_incnat):
        pairs = [
            ("inc(x)", "inc(x) + inc(y)"),
            ("x > 1; inc(x)", "inc(x)"),
            ("inc(x)", "x > 1; inc(x)"),
            ("(inc(x))*", "(inc(x) + inc(y))*"),
            ("x > 2", "x > 1"),
            ("x > 1", "x > 2"),
        ]
        for left, right in pairs:
            assert kmt_incnat.includes(left, right) == kmt_incnat.less_or_equal(left, right)

    def test_witness_word_is_one_sided_and_shortest(self, kmt_bitvec):
        result = kmt_bitvec.check_inclusion("(a := T)*", "a := T")
        assert not result.includes
        cex = result.counterexample
        # epsilon is the shortest word in L((a:=T)*) \ L(a:=T).
        assert cex.word == ()
        assert accepts(cex.left_actions, cex.word)
        assert not accepts(cex.right_actions, cex.word)

    def test_guarded_witness_carries_cell(self, kmt_bitvec):
        result = kmt_bitvec.check_inclusion("b := T", "a = T; b := T")
        assert not result.includes
        cell = dict(result.counterexample.cell)
        assert cell == {BoolEq("a"): False}

    def test_enumerate_mode_agrees(self):
        kmt_sig = KMT(IncNatTheory())
        kmt_enum = KMT(IncNatTheory(), cell_search="enumerate")
        for left, right in [
            ("inc(x)", "inc(x) + inc(y)"),
            ("x > 1; inc(x) + inc(y)", "x > 1; inc(x)"),
        ]:
            sig = kmt_sig.check_inclusion(left, right)
            enum = kmt_enum.check_inclusion(left, right)
            assert sig.includes == enum.includes
            assert enum.signatures_explored == 0  # enumerator never solves

    def test_use_compiled_false_honored(self):
        """The legacy path must really avoid compilation on every op."""
        legacy = KMT(IncNatTheory(variables=("x", "y")), use_compiled=False)
        assert legacy.includes("inc(x)", "inc(x) + inc(y)")
        result = legacy.check_inclusion("inc(x) + inc(y)", "inc(x)")
        assert not result.includes
        assert accepts(result.counterexample.left_actions, result.counterexample.word)
        assert not accepts(result.counterexample.right_actions, result.counterexample.word)
        assert legacy.member("(inc(x))*", ["inc(x)", "inc(x)"])
        assert not legacy.member("(inc(x))*", ["inc(y)"])
        assert not legacy.is_empty("inc(x)")
        assert legacy.is_empty("x > 1; ~(x > 1)")
        assert legacy.checker.states_compiled == 0  # nothing ever compiled

    def test_inclusion_result_repr_and_bool(self, kmt_incnat):
        result = kmt_incnat.check_inclusion("inc(x)", "inc(x) + inc(y)")
        assert isinstance(result, InclusionResult)
        assert bool(result) is True
        assert "included" in repr(result)
        with pytest.raises(AttributeError):
            result.includes = False


class TestMemberDecision:
    def test_basic_membership(self, kmt_incnat):
        assert kmt_incnat.member("(inc(x))*; x > 1", ["inc(x)", "inc(x)"])
        assert kmt_incnat.member("(inc(x))*", [])
        assert not kmt_incnat.member("(inc(x))*", ["inc(y)"])

    def test_word_element_forms(self, kmt_incnat):
        # One string spelling several actions, and a bare string as the word.
        assert kmt_incnat.member("(inc(x))*; inc(y)", "inc(x); inc(x); inc(y)")
        assert kmt_incnat.member("inc(x)", "inc(x)")
        # Raw primitive actions and TPrim terms.
        assert kmt_incnat.member("(inc(x))*", [Incr("x"), T.tprim(Incr("x"))])

    def test_unsatisfiable_guard_blocks_membership(self, kmt_incnat):
        # The only summand's guard is unsatisfiable, so nothing is a member.
        assert not kmt_incnat.member("x > 3; ~(x > 3); inc(x)", ["inc(x)"])
        assert not kmt_incnat.member("x > 3; ~(x > 3); inc(x)", [])

    def test_rejects_non_primitive_word_elements(self, kmt_incnat):
        with pytest.raises(KmtError):
            kmt_incnat.member("inc(x)", ["inc(x) + inc(y)"])
        with pytest.raises(KmtError):
            kmt_incnat.member("inc(x)", ["x > 1"])

    def test_member_agrees_with_trace_semantics(self, kmt_bitvec):
        # b := T; a := T admits exactly that action sequence.
        assert kmt_bitvec.member("b := T; a := T", ["b := T", "a := T"])
        assert not kmt_bitvec.member("b := T; a := T", ["a := T", "b := T"])


# ---------------------------------------------------------------------------
# engine sessions: the aut cache and stats plumbing
# ---------------------------------------------------------------------------


class TestAutCache:
    def test_warm_session_reuses_compiled_automata(self):
        session = EngineSession(IncNatTheory(variables=("x", "y")))
        session.check_equivalent("(inc(x))*; x > 1", "(inc(x))*; (inc(x))*; x > 1")
        compiled_cold = session.kmt.checker.states_compiled
        assert compiled_cold > 0
        assert session.caches.aut.stats.puts > 0
        # A different query over the same restricted sums: the equivalence
        # and signature memos are cleared so the comparison genuinely re-runs,
        # and the automata must come from the aut LRU without recompiling.
        session.caches.equiv.clear()
        session.caches.sig.clear()
        session.check_equivalent("(inc(x))*; x > 1", "(inc(x))*; (inc(x))*; x > 1")
        assert session.kmt.checker.states_compiled == compiled_cold
        assert session.caches.aut.stats.hits > 0

    def test_inclusion_and_member_share_the_aut_cache(self):
        session = EngineSession(IncNatTheory(variables=("x",)))
        session.check_inclusion("inc(x)", "(inc(x))*")
        hits_before = session.caches.aut.stats.hits
        # Membership compiles the same normal-form actions: all cache hits.
        compiled_before = session.kmt.checker.states_compiled
        assert session.member("(inc(x))*", ["inc(x)", "inc(x)"])
        assert session.kmt.checker.states_compiled == compiled_before
        assert session.caches.aut.stats.hits > hits_before

    def test_states_compiled_in_session_stats(self):
        session = EngineSession(IncNatTheory(variables=("x",)))
        session.check_equivalent("inc(x)", "(inc(x))*")
        stats = session.stats()
        assert stats["session"]["states_compiled"] > 0
        assert "aut" in stats["tables"]

    def test_identical_sums_skip_compilation(self):
        """Reflexivity fast path: p vs p compiles nothing at all."""
        session = EngineSession(IncNatTheory(variables=("x",)))
        result = session.check_equivalent("inc(x)", "inc(x)")
        assert result.equivalent
        assert session.kmt.checker.states_compiled == 0
        assert session.caches.aut.stats.lookups == 0

    def test_private_checker_memo_without_caches(self):
        """A bare checker (no engine bundle) still memoizes compilations."""
        checker = EquivalenceChecker(IncNatTheory(variables=("x",)))
        kmt = KMT(IncNatTheory(variables=("x",)))
        nf = kmt.checker.normalize(kmt.parse("(inc(x))*"))
        checker.member_nf(nf, (Incr("x"),))
        compiled = checker.states_compiled
        checker.member_nf(nf, (Incr("x"), Incr("x")))
        assert checker.states_compiled == compiled


class TestStatsAggregation:
    def test_sharded_pool_reports_states_compiled(self):
        from repro.engine.server import ShardedSessionPool

        pool = ShardedSessionPool(stripes=2)
        session = pool.session("incnat", 0)
        with session.lock:
            session.check_equivalent("inc(x)", "(inc(x))*")
        stats = pool.stats()
        assert stats["incnat"]["states_compiled"] > 0
        assert "aut" in stats["incnat"]["tables"]

    def test_merge_pool_stats_sums_states_compiled(self):
        block = {
            "incnat": {
                "stripes": 1, "queries": 2, "states_compiled": 5,
                "tables": {}, "totals": {"hits": 0, "misses": 0},
            },
            "shared": {"tables": {}},
        }
        merged = merge_pool_stats([block, block])
        assert merged["incnat"]["states_compiled"] == 10


# ---------------------------------------------------------------------------
# batch protocol
# ---------------------------------------------------------------------------


class TestBatchProtocol:
    def test_inclusion_and_member_ops(self):
        lines = [
            json.dumps({"op": "inclusion", "left": "inc(x)", "right": "inc(x) + inc(y)"}),
            json.dumps({"op": "inclusion", "left": "inc(x) + inc(y)", "right": "inc(x)"}),
            json.dumps({"op": "member", "term": "(inc(x))*", "word": ["inc(x)", "inc(x)"]}),
            json.dumps({"op": "member", "term": "(inc(x))*", "word": "inc(y)"}),
        ]
        responses, _pool = run_batch_lines(lines)
        assert [r["ok"] for r in responses] == [True] * 4
        assert responses[0]["result"]["includes"] is True
        assert responses[1]["result"]["includes"] is False
        assert responses[1]["result"]["witness_word"] == ["inc(y)"]
        assert "counterexample" in responses[1]["result"]
        assert responses[2]["result"]["member"] is True
        assert responses[3]["result"]["member"] is False

    def test_member_missing_word_is_missing_field(self):
        responses, _pool = run_batch_lines([json.dumps({"op": "member", "term": "inc(x)"})])
        assert responses[0]["ok"] is False
        assert responses[0]["error_code"] == "missing_field"

    def test_member_invalid_word_is_invalid_request(self):
        responses, _pool = run_batch_lines(
            [json.dumps({"op": "member", "term": "inc(x)", "word": ["inc(x) + inc(y)"]})]
        )
        assert responses[0]["ok"] is False
        assert responses[0]["error_code"] == "invalid_request"

    def test_cached_inclusion_replay_is_flagged(self):
        lines = [
            json.dumps({"op": "inclusion", "left": "inc(x)", "right": "inc(x) + inc(y)"}),
            json.dumps({"op": "inclusion", "left": "inc(x)", "right": "inc(x) + inc(y)"}),
        ]
        responses, _pool = run_batch_lines(lines)
        assert "cached" not in responses[0]["result"]
        assert responses[1]["result"].get("cached") is True

    def test_stats_response_carries_aut_table(self):
        lines = [
            json.dumps({"op": "equiv", "left": "inc(x)", "right": "(inc(x))*"}),
            json.dumps({"op": "stats"}),
        ]
        responses, _pool = run_batch_lines(lines)
        block = responses[1]["result"]["incnat"]
        assert "aut" in block["tables"]
        assert block["session"]["states_compiled"] > 0


# ---------------------------------------------------------------------------
# concurrent server (both backends execute the new ops)
# ---------------------------------------------------------------------------


class _ListSink(ResponseSink):
    def __init__(self, ordered=False):
        self.responses = []
        super().__init__(lambda line: self.responses.append(json.loads(line)),
                         ordered=ordered)


def _serve_new_ops(backend):
    requests = [
        {"op": "inclusion", "id": "inc-yes", "left": "inc(x)", "right": "inc(x) + inc(y)"},
        {"op": "inclusion", "id": "inc-no", "left": "inc(x) + inc(y)", "right": "inc(x)"},
        {"op": "member", "id": "mem-yes", "term": "(inc(x))*", "word": ["inc(x)"]},
        {"op": "member", "id": "mem-no", "term": "(inc(x))*", "word": ["inc(y)"]},
    ]
    sink = _ListSink()
    with QueryServer(workers=2, queue_limit=16, backend=backend) as server:
        for record in requests:
            assert server.submit_line(json.dumps(record), sink) == "queued"
        server.wait_idle(timeout=60)
    by_id = {response["id"]: response for response in sink.responses}
    assert by_id["inc-yes"]["result"]["includes"] is True
    assert by_id["inc-no"]["result"]["includes"] is False
    assert by_id["inc-no"]["result"]["witness_word"] == ["inc(y)"]
    assert by_id["mem-yes"]["result"]["member"] is True
    assert by_id["mem-no"]["result"]["member"] is False


class TestServerBackends:
    def test_thread_backend_executes_new_ops(self):
        _serve_new_ops("thread")

    @pytest.mark.slow
    def test_process_backend_executes_new_ops(self):
        _serve_new_ops("process")


# ---------------------------------------------------------------------------
# wire codec round-trips for the new request kinds
# ---------------------------------------------------------------------------


_word_values = st.lists(st.text(max_size=16), max_size=4) | st.text(max_size=16)


@st.composite
def new_op_requests(draw):
    op = draw(st.sampled_from(["inclusion", "member"]))
    record = {"op": op}
    if op == "inclusion":
        for field in ("left", "right"):
            if draw(st.booleans()) or draw(st.booleans()):
                record[field] = draw(st.text(max_size=30))
    else:
        if draw(st.booleans()) or draw(st.booleans()):
            record["term"] = draw(st.text(max_size=30))
        if draw(st.booleans()) or draw(st.booleans()):
            record["word"] = draw(_word_values)
    if draw(st.booleans()):
        record["id"] = draw(st.integers(-10**6, 10**6) | st.text(max_size=12))
    if draw(st.booleans()):
        record["theory"] = draw(st.text(max_size=12))
    if draw(st.booleans()):
        record["deadline_ms"] = draw(st.integers(1, 10**6))
    return record


class TestWireRoundTrip:
    @given(record=new_op_requests())
    def test_new_op_requests_round_trip_exactly(self, record):
        assert decode_wire_request(encode_wire_request(record)) == record

    @given(
        includes=st.booleans(),
        witness=st.lists(st.text(max_size=8), max_size=4),
        request_id=st.integers(-10**6, 10**6) | st.text(max_size=8),
    )
    def test_new_op_responses_round_trip_exactly(self, includes, witness, request_id):
        response = {
            "id": request_id, "ok": True, "op": "inclusion", "theory": "incnat",
            "result": {"includes": includes, "witness_word": witness},
        }
        assert decode_wire_response(encode_wire_response(response)) == response


# ---------------------------------------------------------------------------
# CLI verbs
# ---------------------------------------------------------------------------


class TestCli:
    def test_incl_verdicts_and_exit_codes(self, capsys):
        assert cli.main(["--theory", "incnat", "incl", "inc(x)", "inc(x) + inc(y)"]) == 0
        assert "included" in capsys.readouterr().out
        assert cli.main(["--theory", "incnat", "incl", "inc(x) + inc(y)", "inc(x)"]) == 1
        out = capsys.readouterr().out
        assert "NOT included" in out
        assert "witness" in out

    def test_member_verdicts_and_exit_codes(self, capsys):
        assert cli.main(
            ["--theory", "incnat", "member", "(inc(x))*; x > 1", "inc(x)", "inc(x)"]
        ) == 0
        assert "member" in capsys.readouterr().out
        assert cli.main(["--theory", "incnat", "member", "(inc(x))*", "inc(y)"]) == 1
        assert "NOT a member" in capsys.readouterr().out

    def test_member_empty_word(self, capsys):
        assert cli.main(["--theory", "incnat", "member", "(inc(x))*"]) == 0
        capsys.readouterr()


# ---------------------------------------------------------------------------
# randomized differential harness: compiled vs derivative vs enumerator
# ---------------------------------------------------------------------------


def _random_pred(rng, leaf, depth):
    roll = rng.random()
    if depth <= 0 or roll < 0.5:
        return leaf(rng)
    if roll < 0.65:
        return T.pnot(_random_pred(rng, leaf, depth - 1))
    if roll < 0.85:
        return T.pand(_random_pred(rng, leaf, depth - 1), _random_pred(rng, leaf, depth - 1))
    return T.por(_random_pred(rng, leaf, depth - 1), _random_pred(rng, leaf, depth - 1))


def _leaf_term(rng, pred_leaf, action_leaf):
    if rng.random() < 0.4:
        return T.ttest(_random_pred(rng, pred_leaf, 1))
    return T.tprim(action_leaf(rng))


def _random_term(rng, pred_leaf, action_leaf, depth):
    """Small random terms; stars only wrap leaves (starred compound bodies
    test normalization *performance*, not differential agreement)."""
    roll = rng.random()
    if depth <= 0 or roll < 0.3:
        return _leaf_term(rng, pred_leaf, action_leaf)
    if roll < 0.4:
        return T.tstar(T.tprim(action_leaf(rng)))
    if roll < 0.7:
        return T.tseq(
            _random_term(rng, pred_leaf, action_leaf, depth - 1),
            _random_term(rng, pred_leaf, action_leaf, depth - 1),
        )
    return T.tplus(
        _random_term(rng, pred_leaf, action_leaf, depth - 1),
        _random_term(rng, pred_leaf, action_leaf, depth - 1),
    )


def _bitvec_generators():
    variables = ("a", "b", "c")

    def pred_leaf(rng):
        return T.pprim(BoolEq(rng.choice(variables)))

    def action_leaf(rng):
        return BoolAssign(rng.choice(variables), rng.random() < 0.5)

    return (lambda: BitVecTheory(variables=variables)), pred_leaf, action_leaf


def _incnat_generators():
    variables = ("x", "y")

    def pred_leaf(rng):
        return T.pprim(Gt(rng.choice(variables), rng.randint(0, 4)))

    def action_leaf(rng):
        if rng.random() < 0.6:
            return Incr(rng.choice(variables))
        return AssignNat(rng.choice(variables), rng.randint(0, 4))

    return (lambda: IncNatTheory(variables=variables)), pred_leaf, action_leaf


def _sets_generators():
    set_vars = ("X", "Y")

    def build():
        nat = IncNatTheory(variables=("i",))
        adapter = NatExpressionAdapter(nat, variables=("i",))
        return SetTheory(nat, adapter, set_variables=set_vars)

    def pred_leaf(rng):
        if rng.random() < 0.6:
            return T.pprim(SetIn(rng.choice(set_vars), rng.randint(0, 2)))
        return T.pprim(Gt("i", rng.randint(0, 2)))

    def action_leaf(rng):
        if rng.random() < 0.7:
            expr = "i" if rng.random() < 0.4 else rng.randint(0, 2)
            return SetAdd(rng.choice(set_vars), expr)
        return Incr("i")

    return build, pred_leaf, action_leaf


def _equivalent_variant(rng, p, other, leaf):
    """Pairs provably equivalent by a KAT law (not syntactically so)."""
    choice = rng.randrange(4)
    if choice == 0:
        return p, T.tplus(p, p)
    if choice == 1:
        return p, T.tseq(p, T.tone())
    if choice == 2:
        return T.tstar(leaf), T.tplus(T.tone(), T.tseq(leaf, T.tstar(leaf)))
    return T.tplus(p, other), T.tplus(other, p)


def _assert_valid_counterexample(theory, result, negate=False):
    """The cell must be satisfiable and the word one-sided (left-only for
    inclusion witnesses — ``negate`` selects that shape)."""
    cex = result.counterexample
    assert cex is not None
    if cex.cell:
        assert theory.satisfiable_conjunction(list(cex.cell))
    word = tuple(cex.word)
    left, right = accepts(cex.left_actions, word), accepts(cex.right_actions, word)
    if negate:
        assert left and not right
    else:
        assert left != right


def _run_differential(theory_builder, seed, pairs):
    build, pred_leaf, action_leaf = theory_builder()
    rng = random.Random(seed)
    # Three configurations, each with its own theory instance (no shared
    # memo leakage): the compiled default, the compiled enumerator, and the
    # legacy derivative-pairwise path.
    compiled_sig = EquivalenceChecker(build(), budget=60_000, cell_search="signature")
    compiled_enum = EquivalenceChecker(build(), budget=60_000, cell_search="enumerate")
    derivative_sig = EquivalenceChecker(build(), budget=60_000, cell_search="signature",
                                        use_compiled=False)
    witness_theory = build()
    compared = inequivalent = equivalent = attempts = 0
    while compared < pairs:
        attempts += 1
        assert attempts < pairs * 20, "too many generation attempts"
        p = _random_term(rng, pred_leaf, action_leaf, depth=3)
        q = _random_term(rng, pred_leaf, action_leaf, depth=3)
        if rng.random() < 0.45:
            p, q = _equivalent_variant(rng, p, q, T.tprim(action_leaf(rng)))
        try:
            results = [
                checker.check_equivalent(p, q)
                for checker in (compiled_sig, compiled_enum, derivative_sig)
            ]
        except KmtError:
            continue  # pushback budget blow-ups are exercised elsewhere
        verdicts = {result.equivalent for result in results}
        assert len(verdicts) == 1, f"verdict mismatch on {p!r} vs {q!r}"
        if not results[0].equivalent:
            inequivalent += 1
            for result in results:
                _assert_valid_counterexample(witness_theory, result)
            # Inclusion differential: p <= q iff p + q == q, under the
            # compiled product-emptiness op, the equivalence reduction, and
            # the legacy derivative containment path.
            incl = compiled_sig.check_inclusion(p, q)
            assert incl.includes == compiled_sig.equivalent(T.tplus(p, q), q)
            assert incl.includes == derivative_sig.check_inclusion(p, q).includes
            if not incl.includes:
                _assert_valid_counterexample(witness_theory, incl, negate=True)
        else:
            equivalent += 1
            # Equivalence implies mutual inclusion.
            assert compiled_sig.check_inclusion(p, q).includes
        compared += 1
    assert compared >= pairs
    assert inequivalent >= 10 and equivalent >= 10  # both verdicts exercised


class TestDifferential:
    def test_bitvec_differential(self):
        _run_differential(_bitvec_generators, seed=20260729,
                          pairs=DIFFERENTIAL_PAIRS["bitvec"])

    def test_incnat_differential(self):
        _run_differential(_incnat_generators, seed=20260730,
                          pairs=DIFFERENTIAL_PAIRS["incnat"])

    def test_sets_differential(self):
        _run_differential(_sets_generators, seed=20260731,
                          pairs=DIFFERENTIAL_PAIRS["sets"])
