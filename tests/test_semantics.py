"""Tests for the tracing semantics (paper Fig. 5, Section 3.1)."""

import pytest
from hypothesis import given, settings

from repro.core import terms as T
from repro.core.semantics import (
    LogEntry,
    Trace,
    accepts,
    equivalent_up_to_length,
    eval_pred,
    eval_term,
    output_states,
    run,
    semantically_equivalent_on,
    trace_labels,
)
from repro.theories.bitvec import BitVecTheory, BoolAssign, BoolEq
from repro.theories.incnat import AssignNat, Gt, IncNatTheory, Incr
from repro.utils.errors import KmtError
from repro.utils.frozendict import FrozenDict
from tests.conftest import all_bitvec_states, bitvec_terms


@pytest.fixture
def nat():
    return IncNatTheory(variables=("x", "y"))


@pytest.fixture
def bools():
    return BitVecTheory(variables=("a", "b"))


class TestTrace:
    def test_trace_must_be_nonempty(self):
        with pytest.raises(KmtError):
            Trace(())

    def test_initial_and_append(self):
        t = Trace.initial(FrozenDict(x=0))
        assert len(t) == 1
        assert t.last_state == FrozenDict(x=0)
        t2 = t.append(FrozenDict(x=1), Incr("x"))
        assert len(t2) == 2
        assert t2.last_state == FrozenDict(x=1)
        assert t2.first_state == FrozenDict(x=0)
        # append is persistent
        assert len(t) == 1

    def test_label_collects_actions(self):
        t = Trace.initial(FrozenDict(x=0)).append(FrozenDict(x=1), Incr("x")).append(
            FrozenDict(x=2), Incr("x")
        )
        assert t.label() == (Incr("x"), Incr("x"))

    def test_prefix(self):
        t = Trace.initial(FrozenDict(x=0)).append(FrozenDict(x=1), Incr("x"))
        assert t.prefix() == Trace.initial(FrozenDict(x=0))
        assert Trace.initial(FrozenDict(x=0)).prefix() is None

    def test_map_states(self):
        t = Trace.initial((1, "keep")).append((2, "keep"), "step")
        projected = t.map_states(lambda s: s[0])
        assert projected.states() == (1, 2)
        assert projected.label() == ("step",)

    def test_equality_and_hash(self):
        t1 = Trace.initial(FrozenDict(x=0))
        t2 = Trace.initial(FrozenDict(x=0))
        assert t1 == t2 and hash(t1) == hash(t2)
        assert len({t1, t2}) == 1

    def test_log_entry_repr(self):
        assert "_" in repr(LogEntry(FrozenDict(), None))


class TestPredEvaluation:
    def test_constants(self, nat):
        t = Trace.initial(FrozenDict(x=0))
        assert eval_pred(T.pone(), t, nat)
        assert not eval_pred(T.pzero(), t, nat)

    def test_primitive_and_connectives(self, nat):
        t = Trace.initial(FrozenDict(x=5, y=0))
        gt3 = T.pprim(Gt("x", 3))
        gty = T.pprim(Gt("y", 0))
        assert eval_pred(gt3, t, nat)
        assert not eval_pred(gty, t, nat)
        assert eval_pred(T.pand(gt3, T.pnot(gty)), t, nat)
        assert eval_pred(T.por(gty, gt3), t, nat)


class TestTermEvaluation:
    def test_test_filters(self, nat):
        t = Trace.initial(FrozenDict(x=5, y=0))
        assert eval_term(T.ttest(T.pprim(Gt("x", 3))), t, nat) == {t}
        assert eval_term(T.ttest(T.pprim(Gt("x", 7))), t, nat) == set()

    def test_action_extends_trace(self, nat):
        t = Trace.initial(FrozenDict(x=0, y=0))
        (result,) = eval_term(T.tprim(Incr("x")), t, nat)
        assert result.last_state == FrozenDict(x=1, y=0)
        assert result.label() == (Incr("x"),)

    def test_seq_and_plus(self, nat):
        t = Trace.initial(FrozenDict(x=0, y=0))
        term = T.tplus(T.tprim(Incr("x")), T.tprim(Incr("y")))
        results = eval_term(term, t, nat)
        assert {r.last_state for r in results} == {FrozenDict(x=1, y=0), FrozenDict(x=0, y=1)}
        seq = T.tseq(T.tprim(Incr("x")), T.tprim(Incr("x")))
        (result,) = eval_term(seq, t, nat)
        assert result.last_state == FrozenDict(x=2, y=0)

    def test_star_unrolls_until_fixpoint_or_bound(self, nat):
        t = Trace.initial(FrozenDict(x=0, y=0))
        term = T.tstar(T.tseq(T.ttest(T.pnot(T.pprim(Gt("x", 1)))), T.tprim(Incr("x"))))
        results = eval_term(term, t, nat, star_bound=10)
        # x can be incremented while x <= 1, i.e. 0, 1 or 2 increments.
        assert {r.last_state["x"] for r in results} == {0, 1, 2}

    def test_star_bound_truncates(self, nat):
        t = Trace.initial(FrozenDict(x=0, y=0))
        term = T.tstar(T.tprim(Incr("x")))
        results = eval_term(term, t, nat, star_bound=3)
        assert {r.last_state["x"] for r in results} == {0, 1, 2, 3}

    def test_trace_records_every_action_not_just_final_state(self, bools):
        """The tracing semantics distinguishes a:=T;a:=T from a:=T (Section 2.1)."""
        state = FrozenDict(a=False, b=False)
        once = T.tprim(BoolAssign("a", True))
        twice = T.tseq(once, once)
        assert output_states(once, state, bools) == output_states(twice, state, bools)
        assert trace_labels(once, state, bools) != trace_labels(twice, state, bools)

    def test_run_and_accepts(self, nat):
        state = FrozenDict(x=0, y=0)
        program = T.tseq(T.tprim(Incr("x")), T.ttest(T.pprim(Gt("x", 0))))
        assert accepts(program, state, nat)
        rejecting = T.tseq(T.tprim(Incr("x")), T.ttest(T.pprim(Gt("x", 5))))
        assert not accepts(rejecting, state, nat)
        assert run(T.tzero(), state, nat) == set()


class TestKatLawsSemantically:
    """Spot-check the Fig. 5 axioms in the executable semantics."""

    def setup_method(self):
        self.theory = BitVecTheory(variables=("a", "b", "c"))
        self.states = all_bitvec_states()

    def _equiv(self, p, q, star_bound=6):
        return semantically_equivalent_on(p, q, self.states, self.theory, star_bound)

    def test_plus_comm_assoc_idem(self):
        p = T.tprim(BoolAssign("a", True))
        q = T.tprim(BoolAssign("b", False))
        r = T.ttest(T.pprim(BoolEq("c")))
        assert self._equiv(T.tplus(p, q), T.tplus(q, p))
        assert self._equiv(T.tplus(p, T.tplus(q, r)), T.tplus(T.tplus(p, q), r))
        assert self._equiv(T.tplus(p, p), p)

    def test_seq_distributes(self):
        p = T.tprim(BoolAssign("a", True))
        q = T.tprim(BoolAssign("b", False))
        r = T.tprim(BoolAssign("c", True))
        assert self._equiv(T.tseq(p, T.tplus(q, r)), T.tplus(T.tseq(p, q), T.tseq(p, r)))
        assert self._equiv(T.tseq(T.tplus(p, q), r), T.tplus(T.tseq(p, r), T.tseq(q, r)))

    def test_star_unroll(self):
        p = T.tseq(T.ttest(T.pnot(T.pprim(BoolEq("a")))), T.tprim(BoolAssign("a", True)))
        star = T.tstar(p)
        unrolled = T.tplus(T.tone(), T.tseq(p, star))
        assert equivalent_up_to_length(star, unrolled, self.states, self.theory, max_actions=4)

    def test_boolean_embedding(self):
        a = T.pprim(BoolEq("a"))
        assert self._equiv(T.ttest(T.pand(a, T.pnot(a))), T.tzero())
        assert self._equiv(T.ttest(T.por(a, T.pnot(a))), T.tone())


class TestSemanticEquivalenceHelper:
    @settings(max_examples=25, deadline=None)
    @given(bitvec_terms(max_leaves=3))
    def test_every_term_is_self_equivalent(self, term):
        theory = BitVecTheory(variables=("a", "b", "c"))
        assert semantically_equivalent_on(term, term, all_bitvec_states(), theory, star_bound=4)

    def test_detects_difference(self):
        theory = BitVecTheory(variables=("a",))
        p = T.tprim(BoolAssign("a", True))
        q = T.tprim(BoolAssign("a", False))
        assert not semantically_equivalent_on(p, q, [FrozenDict(a=False)], theory)
