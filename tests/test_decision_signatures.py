"""Signature-guided cell search: behavior, caching, and the randomized
differential test against the legacy cell enumerator.

The differential test is the acceptance gate for the solver-guided search:
both strategies must return identical verdicts over generated terms, and
every counterexample must be *valid* — its cell theory-satisfiable and its
word accepted by exactly one side's restricted actions within that cell.
"""

from __future__ import annotations

import random

import pytest

from repro.core import automata
from repro.core import terms as T
from repro.core.decision import EquivalenceChecker
from repro.core.kmt import KMT
from repro.engine.session import EngineSession
from repro.theories.bitvec import BitVecTheory, BoolAssign, BoolEq
from repro.theories.incnat import AssignNat, Gt, IncNatTheory, Incr
from repro.utils.errors import KmtError

DIFFERENTIAL_PAIRS_PER_THEORY = 200


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def accepts(action, word):
    """Derivative-based membership: does the restricted action accept ``word``?"""
    state = automata.canonical(action)
    for pi in word:
        state = automata.derivative(state, pi)
    return automata.nullable(state)


def assert_valid_counterexample(theory, result):
    """A counterexample's cell must be satisfiable, its word one-sided."""
    cex = result.counterexample
    assert cex is not None
    if cex.cell:
        assert theory.satisfiable_conjunction(list(cex.cell))
    word = tuple(cex.word)
    assert accepts(cex.left_actions, word) != accepts(cex.right_actions, word)


# ---------------------------------------------------------------------------
# behavior of the signature search
# ---------------------------------------------------------------------------


class TestSignatureSearchBehavior:
    def test_shared_guard_context_collapses_cells(self):
        """A conjunction of k irrelevant tests costs 2 signatures, not 2^k."""
        theory = BitVecTheory()
        prefix = "a = T; b = T; c = T; d = T"
        left = f"{prefix}; (e := T)*"
        right = f"{prefix}; (e := T)*; (e := T)*"
        sig = KMT(theory).check_equivalent(left, right)
        enum = KMT(BitVecTheory(), cell_search="enumerate").check_equivalent(left, right)
        assert sig.equivalent and enum.equivalent
        assert sig.signatures_explored == 2
        assert enum.cells_explored == 2 ** 4
        assert sig.cells_explored < enum.cells_explored

    def test_irrelevant_atoms_left_out_of_witness(self):
        """The counterexample cell only mentions tests some guard depends on."""
        theory = BitVecTheory()
        kmt = KMT(theory)
        result = kmt.check_equivalent("a = T; b := T", "a = T; b := F")
        assert not result.equivalent
        cell = dict(result.counterexample.cell)
        assert cell == {BoolEq("a"): True}

    def test_memo_dedupes_identical_action_pairs(self):
        """Signatures with equal enabled sums run language_compare once."""
        theory = BitVecTheory()
        kmt = KMT(theory)
        # Both guards select the same action, so the 2+ signatures all compare
        # the same restricted-action pair.
        result = kmt.check_equivalent(
            "a = T; b := T + ~(a = T); b := T", "b := T"
        )
        assert result.equivalent
        assert result.signatures_explored >= 2
        assert result.cells_explored < result.signatures_explored

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            EquivalenceChecker(BitVecTheory(), cell_search="bogus")

    def test_many_signatures_no_recursion_blowup(self):
        """Worst case: independent guards, signatures == cells.

        The blocking set must stay a flat clause list — an early version
        nested it into one formula and died with RecursionError near 1000
        signatures (and went quadratic well before that).
        """
        n = 10
        term = " + ".join(f"a{i} = T; b{i} := T" for i in range(n))
        result = KMT(BitVecTheory()).check_equivalent(term, term)
        assert result.equivalent
        assert result.signatures_explored == 2 ** n

    def test_counterexamples_valid_in_both_modes(self):
        pairs = [
            ("x > 1", "x > 2"),
            ("inc(x); x > 1", "inc(x); x > 2"),
            ("x > 1; inc(x) + inc(y)", "x > 1; inc(x)"),
        ]
        for mode in ("signature", "enumerate"):
            theory = IncNatTheory()
            kmt = KMT(theory, cell_search=mode)
            for left, right in pairs:
                result = kmt.check_equivalent(left, right)
                assert not result.equivalent
                assert_valid_counterexample(theory, result)

    def test_warm_session_skips_repeated_signatures(self):
        """The sig memo is threaded through EngineCaches across queries."""
        session = EngineSession(IncNatTheory(variables=("x",)))
        session.check_equivalent("x > 1; inc(x)", "x > 2; inc(x)")
        # A different query (different guards, so a fresh normal-form pair)
        # whose signatures compare the same restricted-action pairs.
        session.check_equivalent("x > 3; inc(x)", "x > 4; inc(x)")
        assert session.caches.sig.stats.lookups > 0
        assert session.caches.sig.stats.hits > 0


# ---------------------------------------------------------------------------
# randomized differential: signature search vs legacy enumerator
# ---------------------------------------------------------------------------


def _random_pred(rng, leaf, depth):
    roll = rng.random()
    if depth <= 0 or roll < 0.5:
        return leaf(rng)
    if roll < 0.65:
        return T.pnot(_random_pred(rng, leaf, depth - 1))
    if roll < 0.85:
        return T.pand(_random_pred(rng, leaf, depth - 1), _random_pred(rng, leaf, depth - 1))
    return T.por(_random_pred(rng, leaf, depth - 1), _random_pred(rng, leaf, depth - 1))


def _leaf_term(rng, pred_leaf, action_leaf):
    if rng.random() < 0.4:
        return T.ttest(_random_pred(rng, pred_leaf, 1))
    return T.tprim(action_leaf(rng))


def _random_term(rng, pred_leaf, action_leaf, depth):
    """A random small term.  Stars only wrap leaves: starred compound bodies
    make ``language_compare`` state counts (and normal forms) explode, which
    tests decision *performance*, not differential agreement — the scaling
    story lives in ``benchmarks/bench_cell_search.py``."""
    roll = rng.random()
    if depth <= 0 or roll < 0.3:
        return _leaf_term(rng, pred_leaf, action_leaf)
    if roll < 0.4:
        return T.tstar(T.tprim(action_leaf(rng)))
    if roll < 0.7:
        return T.tseq(
            _random_term(rng, pred_leaf, action_leaf, depth - 1),
            _random_term(rng, pred_leaf, action_leaf, depth - 1),
        )
    return T.tplus(
        _random_term(rng, pred_leaf, action_leaf, depth - 1),
        _random_term(rng, pred_leaf, action_leaf, depth - 1),
    )


def _bitvec_generators():
    variables = ("a", "b", "c")

    def pred_leaf(rng):
        return T.pprim(BoolEq(rng.choice(variables)))

    def action_leaf(rng):
        return BoolAssign(rng.choice(variables), rng.random() < 0.5)

    return BitVecTheory(variables=variables), pred_leaf, action_leaf


def _incnat_generators():
    variables = ("x", "y")

    def pred_leaf(rng):
        return T.pprim(Gt(rng.choice(variables), rng.randint(0, 4)))

    def action_leaf(rng):
        if rng.random() < 0.6:
            return Incr(rng.choice(variables))
        return AssignNat(rng.choice(variables), rng.randint(0, 4))

    return IncNatTheory(variables=variables), pred_leaf, action_leaf


def _equivalent_variant(rng, p, other, leaf):
    """A pair of terms provably equivalent by a KAT law (not syntactically so)."""
    choice = rng.randrange(4)
    if choice == 0:
        return p, T.tplus(p, p)
    if choice == 1:
        return p, T.tseq(p, T.tone())
    if choice == 2:
        # Star unrolling: m* == 1 + m; m* — over a leaf body only (starred
        # compound bodies blow up normalization, see ``_random_term``).
        return T.tstar(leaf), T.tplus(T.tone(), T.tseq(leaf, T.tstar(leaf)))
    # Commuted sum with an unrelated term.
    return T.tplus(p, other), T.tplus(other, p)


def _run_differential(theory_builder, seed, pairs=DIFFERENTIAL_PAIRS_PER_THEORY):
    theory, pred_leaf, action_leaf = theory_builder()
    rng = random.Random(seed)
    signature = EquivalenceChecker(theory, budget=60_000, cell_search="signature")
    enumerate_ = EquivalenceChecker(theory, budget=60_000, cell_search="enumerate")
    compared = 0
    inequivalent = 0
    equivalent = 0
    attempts = 0
    while compared < pairs:
        attempts += 1
        assert attempts < pairs * 20, "too many generation attempts"
        p = _random_term(rng, pred_leaf, action_leaf, depth=3)
        q = _random_term(rng, pred_leaf, action_leaf, depth=3)
        if rng.random() < 0.45:
            # Random independent pairs are almost always inequivalent; derive
            # q from p by a KAT law so the "exhaust every signature" path
            # (the equivalent verdict) gets real coverage too.
            p, q = _equivalent_variant(rng, p, q, T.tprim(action_leaf(rng)))
        try:
            sig_result = signature.check_equivalent(p, q)
            enum_result = enumerate_.check_equivalent(p, q)
        except KmtError:
            continue  # pushback budget blow-ups are exercised elsewhere
        assert sig_result.equivalent == enum_result.equivalent, (
            f"verdict mismatch on {p!r} vs {q!r}"
        )
        if not sig_result.equivalent:
            inequivalent += 1
            assert_valid_counterexample(theory, sig_result)
            assert_valid_counterexample(theory, enum_result)
        else:
            equivalent += 1
        compared += 1
    assert compared >= pairs
    # The generated population must exercise both verdicts to mean anything.
    assert inequivalent >= 20
    assert equivalent >= 20


class TestDifferential:
    def test_bitvec_differential(self):
        _run_differential(_bitvec_generators, seed=20260729)

    def test_incnat_differential(self):
        _run_differential(_incnat_generators, seed=20260730)
