"""Tests for EngineSession: cached normalization, decisions, cross-theory reuse."""

import pytest

from repro.core import terms as T
from repro.engine.session import EngineSession
from repro.theories.bitvec import BitVecTheory
from repro.theories.incnat import IncNatTheory
from repro.theories.netkat import NetKatTheory


@pytest.fixture
def session():
    return EngineSession(IncNatTheory(variables=("x", "y")))


class TestCachedNormalization:
    def test_repeated_normalize_hits_cache(self, session):
        term = session.parse("inc(x)*; x > 2")
        first = session.normalize(term)
        misses = session.caches.norm.stats.misses
        second = session.normalize(term)
        assert first is second
        assert session.caches.norm.stats.hits >= 1
        assert session.caches.norm.stats.misses == misses

    def test_string_and_term_queries_share_cache(self, session):
        nf1 = session.normalize("inc(x); x > 1")
        nf2 = session.normalize(session.parse("inc(x); x > 1"))
        assert nf1 is nf2

    def test_normalizer_memo_survives_queries(self, session):
        session.normalize("(inc(x))*; x > 1")
        session.normalize("(inc(x))*; x > 2")
        assert session.stats()["session"]["pb_star_memo"] >= 1

    def test_budget_applies_per_query_not_per_session(self):
        # A session whose lifetime total exceeds the budget must keep working
        # as long as each individual query stays under it.
        session = EngineSession(IncNatTheory(variables=("x",)), budget=100)
        for bound in range(20):
            session.normalize(f"inc(x)*; x > {bound}")
        assert session.stats()["session"]["normalization_steps"] > 100


class TestCachedDecisions:
    def test_equivalence_verdict_cached(self, session):
        assert session.equivalent("inc(x); x > 1", "x > 0; inc(x)")
        hits_before = session.caches.equiv.stats.hits
        assert session.equivalent("inc(x); x > 1", "x > 0; inc(x)")
        assert session.caches.equiv.stats.hits > hits_before

    def test_symmetric_lookup_reuses_positive_verdict(self, session):
        assert session.equivalent("inc(x); x > 1", "x > 0; inc(x)")
        puts_before = session.caches.equiv.stats.puts
        assert session.equivalent("x > 0; inc(x)", "inc(x); x > 1")
        # The mirrored verdict was reused, not recomputed and re-stored.
        assert session.caches.equiv.stats.puts == puts_before

    def test_inequivalence_and_counterexample(self, session):
        result = session.check_equivalent("x > 1", "x > 2")
        assert not result.equivalent
        assert result.counterexample is not None

    def test_leq_and_empty_and_sat(self, session):
        assert session.less_or_equal("inc(x)", "inc(x) + inc(y)")
        assert session.is_empty("x > 3; ~(x > 3)")
        assert not session.is_empty("inc(x)")
        assert session.satisfiable("x > 3; ~(x > 5)")
        assert not session.satisfiable("x > 5; ~(x > 3)")

    def test_partition_matches_kmt(self, session):
        terms = [
            session.parse("inc(x); x > 1"),
            session.parse("x > 0; inc(x)"),
            session.parse("inc(x)"),
        ]
        assert session.partition(terms) == [[0, 1], [2]]

    def test_sat_conjunction_memo_used(self, session):
        session.equivalent("inc(x)*; x > 2", "inc(x)*; inc(x)*; x > 2")
        session.equivalent("inc(x)*; x > 2", "inc(x)*; x > 2; inc(x)*")
        assert session.caches.sat_conj.stats.hits > 0


class TestSessionAgreesWithKMT:
    @pytest.mark.parametrize(
        "left,right",
        [
            ("inc(x); x > 1", "x > 0; inc(x)"),
            ("inc(x)*; x > 10", "inc(x)*; inc(x)*; x > 10"),
            ("x > 1", "x > 2"),
            ("x := 3; x > 2", "x := 3"),
        ],
    )
    def test_same_verdicts(self, left, right, kmt_incnat, session):
        assert session.equivalent(left, right) == kmt_incnat.equivalent(left, right)


class TestCrossTheoryReuse:
    def test_independent_sessions_coexist(self):
        nat = EngineSession(IncNatTheory(variables=("x",)))
        boolean = EngineSession(BitVecTheory(variables=("a",)))
        net = EngineSession(NetKatTheory({"sw": (1, 2)}))

        assert nat.equivalent("inc(x); x > 1", "x > 0; inc(x)")
        assert boolean.equivalent("a := T; a = T", "a := T")
        assert net.equivalent("sw <- 1; sw = 1", "sw <- 1")

        # Interleave: caches stay per-session and verdicts stay correct.
        assert nat.equivalent("inc(x); x > 1", "x > 0; inc(x)")
        assert boolean.equivalent("a := T; a = T", "a := T")
        assert nat.caches is not boolean.caches
        assert nat.caches.norm.stats.hits >= 1
        assert boolean.caches.norm.stats.hits >= 1

    def test_sessions_share_derivative_cache(self):
        nat = EngineSession(IncNatTheory(variables=("x",)))
        boolean = EngineSession(BitVecTheory(variables=("a",)))
        assert nat.caches.deriv is boolean.caches.deriv

    def test_clear_caches_keeps_session_usable(self):
        session = EngineSession(IncNatTheory(variables=("x",)))
        assert session.equivalent("inc(x); x > 1", "x > 0; inc(x)")
        session.clear_caches()
        assert session.equivalent("inc(x); x > 1", "x > 0; inc(x)")


class TestStatsSurface:
    def test_stats_shape(self, session):
        session.equivalent("inc(x); x > 1", "x > 0; inc(x)")
        stats = session.stats()
        assert "tables" in stats and "session" in stats and "totals" in stats
        assert stats["session"]["queries"] > 0
        assert stats["session"]["theory"]


class TestPredAndTermInputs:
    def test_pred_input_coerced(self, session):
        from repro.theories.incnat import Gt

        pred = T.pprim(Gt("x", 1))
        assert not session.is_empty(pred)
        assert session.satisfiable(pred)
