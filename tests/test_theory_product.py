"""Tests for disjoint products of theories (paper Fig. 3b, Section 2.2)."""

import pytest

from repro.core import terms as T
from repro.core.kmt import KMT
from repro.core.semantics import Trace
from repro.theories.bitvec import BitVecTheory, BoolAssign, BoolEq
from repro.theories.incnat import Gt, IncNatTheory, Incr
from repro.theories.product import ProductTheory
from repro.utils.errors import TheoryError
from repro.utils.frozendict import FrozenDict


@pytest.fixture
def product():
    return ProductTheory(IncNatTheory(variables=("x",)), BitVecTheory(variables=("a",)))


@pytest.fixture
def kmt(product):
    return KMT(product)


class TestOwnership:
    def test_owns_both_sides(self, product):
        assert product.owns_test(Gt("x", 1))
        assert product.owns_test(BoolEq("a"))
        assert product.owns_action(Incr("x"))
        assert product.owns_action(BoolAssign("a", True))

    def test_unknown_primitive_rejected(self, product):
        class Alien:
            pass

        assert not product.owns_test(Alien())
        with pytest.raises(TheoryError):
            product.push_back(Alien(), Gt("x", 1))


class TestSemantics:
    def test_initial_state_is_pair(self, product):
        left, right = product.initial_state()
        assert left == FrozenDict(x=0)
        assert right == FrozenDict(a=False)

    def test_pred_projects_to_owner(self, product):
        state = (FrozenDict(x=5), FrozenDict(a=True))
        trace = Trace.initial(state)
        assert product.pred(Gt("x", 3), trace)
        assert product.pred(BoolEq("a"), trace)
        assert not product.pred(Gt("x", 7), trace)

    def test_act_updates_correct_component(self, product):
        state = (FrozenDict(x=5), FrozenDict(a=True))
        after_inc = product.act(Incr("x"), state)
        assert after_inc[0]["x"] == 6 and after_inc[1]["a"] is True
        after_assign = product.act(BoolAssign("a", False), state)
        assert after_assign[0]["x"] == 5 and after_assign[1]["a"] is False


class TestPushback:
    def test_same_side_delegates(self, product):
        assert product.push_back(Incr("x"), Gt("x", 2)) == [T.pprim(Gt("x", 1))]
        assert product.push_back(BoolAssign("a", True), BoolEq("a")) == [T.pone()]

    def test_mixed_sides_commute(self, product):
        """L-R-Comm / R-L-Comm: an action of one side commutes with a test of the other."""
        assert product.push_back(Incr("x"), BoolEq("a")) == [T.pprim(BoolEq("a"))]
        assert product.push_back(BoolAssign("a", True), Gt("x", 2)) == [T.pprim(Gt("x", 2))]

    def test_subterms_delegate(self, product):
        assert set(product.subterms(Gt("x", 2))) == {T.pprim(Gt("x", 0)), T.pprim(Gt("x", 1))}
        assert list(product.subterms(BoolEq("a"))) == []


class TestSatisfiability:
    def test_components_checked_independently(self, product):
        assert product.satisfiable_conjunction(
            [(Gt("x", 2), True), (BoolEq("a"), False)]
        )
        assert not product.satisfiable_conjunction(
            [(Gt("x", 5), True), (Gt("x", 3), False), (BoolEq("a"), True)]
        )
        assert not product.satisfiable_conjunction(
            [(BoolEq("a"), True), (BoolEq("a"), False)]
        )


class TestParsing:
    def test_parse_tries_both_sides(self, kmt):
        term = kmt.parse("x > 3; a = T; inc(x); a := F")
        assert isinstance(term, T.Term)

    def test_parse_failure_mentions_right_theory(self, kmt):
        from repro.utils.errors import ParseError

        with pytest.raises(ParseError):
            kmt.parse("f <- 3")  # a NetKAT phrase neither component understands


class TestEndToEnd:
    def test_population_count(self, kmt):
        """Fig. 9 row 6 (population count over naturals and booleans)."""
        lhs = "x < 1; a = T; inc(x); (true + a = T; inc(x)); x > 1"
        rhs = "x < 1; a = T; a = T; inc(x); inc(x)"
        assert kmt.equivalent(lhs, rhs)

    def test_cross_theory_commutation(self, kmt):
        assert kmt.equivalent("inc(x); a = T", "a = T; inc(x)")
        assert kmt.equivalent("a := T; x > 1", "x > 1; a := T")

    def test_kozen_style_mixed_loop(self, kmt):
        """Loops over boolean and numeric state (the Section 2.2 motivation)."""
        program = "a := T; (a = T; x < 2; inc(x))*; ~(x < 2); a = T"
        simplified = "a := T; (a = T; x < 2; inc(x))*; ~(x < 2)"
        assert kmt.equivalent(program, simplified)

    def test_nested_products(self):
        nested = ProductTheory(
            ProductTheory(IncNatTheory(variables=("x",)), BitVecTheory(variables=("a",))),
            BitVecTheory(variables=("z",)),
        )
        kmt = KMT(nested)
        assert kmt.equivalent("inc(x); z = T; a := T", "z = T; inc(x); a := T")
