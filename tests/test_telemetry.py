"""Unit tests for the telemetry subsystem (:mod:`repro.engine.telemetry`).

Covers the span recorder (nesting/self-time accounting, the span cap,
activation guards), the metrics registry (snapshot shape, histogram bucket
placement, cross-worker merging), the Prometheus text renderer (line grammar,
cumulative buckets, label escaping), the JSON-lines log formatter, and the
scrape endpoint — plus edge cases of :func:`repro.engine.server.merge_pool_stats`,
the cache-table analogue of :func:`merge_metrics`.
"""

import io
import json
import logging
import re
import time
import urllib.error
import urllib.request

import pytest

from repro.engine.telemetry import (
    DEFAULT_MAX_SPANS,
    HISTOGRAM_BUCKETS_MS,
    JsonLinesFormatter,
    MetricsExporter,
    MetricsRegistry,
    Trace,
    activate,
    configure_logging,
    current_trace,
    deactivate,
    empty_snapshot,
    log_event,
    merge_metrics,
    next_request_id,
    render_prometheus,
)
from repro.engine.server import merge_pool_stats


# ---------------------------------------------------------------------------
# Trace: span recorder
# ---------------------------------------------------------------------------


class TestTrace:
    def test_single_span_records_phase_and_span(self):
        trace = Trace()
        with trace.span("compile"):
            pass
        payload = trace.payload()
        assert set(payload["phases"]) == {"compile"}
        assert payload["phases"]["compile"]["count"] == 1
        assert payload["phases"]["compile"]["ms"] >= 0.0
        (name, start_ms, duration_ms, depth), = payload["spans"]
        assert name == "compile" and depth == 0
        assert start_ms >= 0.0 and duration_ms >= 0.0

    def test_nested_child_charges_parent_self_time(self):
        trace = Trace()
        with trace.span("outer"):
            time.sleep(0.002)
            with trace.span("inner"):
                time.sleep(0.01)
        phases = trace.phase_ms
        # Inner slept ~10ms; outer's *self* time excludes it entirely.
        assert phases["inner"] >= 8.0
        assert phases["outer"] < phases["inner"]
        # The inclusive span record for outer still covers the child.
        outer_span = next(s for s in trace.spans if s[0] == "outer")
        assert outer_span[2] >= phases["inner"]
        # Self times sum to at most the inclusive outer duration.
        assert trace.attributed_ms() <= outer_span[2] + 0.5

    def test_span_depths(self):
        trace = Trace()
        with trace.span("a"):
            with trace.span("b"):
                with trace.span("c"):
                    pass
        depth = {name: depth for name, _, _, depth in trace.spans}
        assert depth == {"a": 0, "b": 1, "c": 2}

    def test_span_cap_drops_but_still_aggregates(self):
        trace = Trace(max_spans=4)
        for _ in range(10):
            with trace.span("tick"):
                pass
        payload = trace.payload()
        assert len(payload["spans"]) == 4
        assert payload["spans_dropped"] == 6
        assert payload["phases"]["tick"]["count"] == 10

    def test_default_cap(self):
        assert Trace().max_spans == DEFAULT_MAX_SPANS

    def test_counters(self):
        trace = Trace()
        trace.count("memo_hits")
        trace.count("memo_hits", 2)
        assert trace.payload()["counters"] == {"memo_hits": 3}

    def test_no_counters_key_when_unused(self):
        trace = Trace()
        with trace.span("x"):
            pass
        assert "counters" not in trace.payload()

    def test_unwind_closes_open_spans(self):
        trace = Trace()
        trace.begin("outer")
        trace.begin("inner")
        trace.unwind()
        assert trace._stack == []
        assert set(trace.phase_ms) == {"outer", "inner"}

    def test_activate_deactivate(self):
        assert current_trace() is None
        trace = Trace()
        activate(trace)
        try:
            assert current_trace() is trace
            with pytest.raises(RuntimeError):
                activate(Trace())
        finally:
            deactivate()
        assert current_trace() is None
        deactivate()  # idempotent

    def test_payload_rounding(self):
        trace = Trace()
        with trace.span("p"):
            pass
        block = trace.payload()
        text = json.dumps(block)  # must be JSON-able
        assert "p" in text


# ---------------------------------------------------------------------------
# MetricsRegistry
# ---------------------------------------------------------------------------


class TestMetricsRegistry:
    def test_counter_labels_and_values(self):
        reg = MetricsRegistry()
        reg.inc("requests_total", {"theory": "incnat", "op": "equiv"})
        reg.inc("requests_total", (("op", "equiv"), ("theory", "incnat")), value=2)
        reg.inc("requests_total", {"theory": "bitvec", "op": "sat"})
        snap = reg.snapshot()
        entries = snap["counters"]["requests_total"]
        by_labels = {tuple(sorted(e["labels"].items())): e["value"] for e in entries}
        # dict and pair-tuple spellings of the same label set coalesce
        assert by_labels[(("op", "equiv"), ("theory", "incnat"))] == 3
        assert by_labels[(("op", "sat"), ("theory", "bitvec"))] == 1

    def test_gauge_overwrites(self):
        reg = MetricsRegistry()
        reg.set_gauge("queue_depth", 5)
        reg.set_gauge("queue_depth", 2)
        assert reg.snapshot()["gauges"]["queue_depth"] == [{"labels": {}, "value": 2}]

    def test_histogram_bucket_placement(self):
        reg = MetricsRegistry()
        reg.observe("request_latency_ms", 3.0, {"op": "equiv"})
        (entry,) = reg.snapshot()["histograms"]["request_latency_ms"]
        assert entry["buckets_ms"] == list(HISTOGRAM_BUCKETS_MS)
        assert entry["count"] == 1 and entry["sum_ms"] == 3.0
        # 3.0 ms lands in the le=4 bucket (ladder ... 1, 2, 4, 8 ...)
        assert entry["counts"][HISTOGRAM_BUCKETS_MS.index(4.0)] == 1
        assert sum(entry["counts"]) == 1

    def test_histogram_boundary_goes_to_lower_bucket(self):
        reg = MetricsRegistry()
        reg.observe("h", 2.0)
        (entry,) = reg.snapshot()["histograms"]["h"]
        # le is an inclusive upper bound: an exact 2.0 belongs in le=2.
        assert entry["counts"][HISTOGRAM_BUCKETS_MS.index(2.0)] == 1

    def test_histogram_overflow_bucket(self):
        reg = MetricsRegistry()
        reg.observe("h", 10_000_000.0)
        (entry,) = reg.snapshot()["histograms"]["h"]
        assert entry["counts"][-1] == 1
        assert len(entry["counts"]) == len(HISTOGRAM_BUCKETS_MS) + 1

    def test_snapshot_is_plain_data(self):
        reg = MetricsRegistry()
        reg.inc("c")
        reg.set_gauge("g", 1.5)
        reg.observe("h", 7.0)
        json.dumps(reg.snapshot())  # no exotic types

    def test_empty_snapshot_shape(self):
        assert empty_snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}


class TestMergeMetrics:
    def _snap(self, **observations):
        reg = MetricsRegistry()
        for op, values in observations.items():
            for v in values:
                reg.inc("requests_total", {"op": op})
                reg.observe("latency_ms", v, {"op": op})
        return reg.snapshot()

    def test_merge_sums_counters_and_buckets(self):
        merged = merge_metrics([self._snap(equiv=[1.0, 3.0]), self._snap(equiv=[100.0])])
        (counter,) = merged["counters"]["requests_total"]
        assert counter["value"] == 3
        (hist,) = merged["histograms"]["latency_ms"]
        assert hist["count"] == 3 and hist["sum_ms"] == 104.0
        assert sum(hist["counts"]) == 3

    def test_merge_disjoint_names_union(self):
        merged = merge_metrics([self._snap(equiv=[1.0]), self._snap(sat=[2.0])])
        ops = {e["labels"]["op"] for e in merged["counters"]["requests_total"]}
        assert ops == {"equiv", "sat"}
        assert len(merged["histograms"]["latency_ms"]) == 2

    def test_merge_with_empty_snapshot_is_identity(self):
        one = self._snap(equiv=[5.0])
        assert merge_metrics([one, empty_snapshot()]) == merge_metrics([one])

    def test_merge_no_snapshots(self):
        assert merge_metrics([]) == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_merge_gauges_sum(self):
        a = MetricsRegistry()
        a.set_gauge("sessions", 2)
        b = MetricsRegistry()
        b.set_gauge("sessions", 3)
        merged = merge_metrics([a.snapshot(), b.snapshot()])
        assert merged["gauges"]["sessions"] == [{"labels": {}, "value": 5}]

    def test_mismatched_bucket_ladders_raise(self):
        one = self._snap(equiv=[1.0])
        other = self._snap(equiv=[1.0])
        other["histograms"]["latency_ms"][0]["buckets_ms"] = [1.0, 2.0]
        other["histograms"]["latency_ms"][0]["counts"] = [0, 1, 0]
        with pytest.raises(ValueError, match="bucket ladders differ"):
            merge_metrics([one, other])


# ---------------------------------------------------------------------------
# Prometheus exposition
# ---------------------------------------------------------------------------

_SAMPLE_LINE = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"'
    r'(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? -?[0-9.+einfEINF]+$'
)


class TestRenderPrometheus:
    def _rendered(self):
        reg = MetricsRegistry()
        reg.inc("requests_total", {"theory": "incnat", "op": "equiv"}, value=4)
        reg.set_gauge("queue_depth", 2)
        for v in (0.1, 3.0, 3.5, 9000.0, 100000.0):
            reg.observe("request_latency_ms", v, {"theory": "incnat", "op": "equiv"})
        return render_prometheus(reg.snapshot())

    def test_every_line_parses(self):
        for line in self._rendered().splitlines():
            if line.startswith("#"):
                assert re.match(r"^# (HELP|TYPE) kmt_[a-z_]+ ", line), line
            else:
                assert _SAMPLE_LINE.match(line), line

    def test_type_lines(self):
        text = self._rendered()
        assert "# TYPE kmt_requests_total counter" in text
        assert "# TYPE kmt_queue_depth gauge" in text
        assert "# TYPE kmt_request_latency_ms histogram" in text

    def test_counter_and_gauge_samples(self):
        text = self._rendered()
        assert 'kmt_requests_total{op="equiv",theory="incnat"} 4' in text
        assert "kmt_queue_depth 2" in text

    def test_histogram_buckets_cumulative_and_inf(self):
        text = self._rendered()
        bucket = re.compile(
            r'kmt_request_latency_ms_bucket\{le="([^"]+)",op="equiv",theory="incnat"\} (\d+)')
        pairs = bucket.findall(text)
        assert pairs, text
        counts = [int(c) for _, c in pairs]
        assert counts == sorted(counts), "bucket counts must be cumulative"
        assert pairs[-1][0] == "+Inf"
        assert counts[-1] == 5
        # 0.1 <= 0.25; 3.0 and 3.5 <= 4; 9000 <= 16384 but > 8192 → only +Inf... no:
        # ladder tops out at 8192, so 9000 and 100000 live only in +Inf.
        by_le = {le: int(c) for le, c in pairs}
        assert by_le["0.25"] == 1
        assert by_le["4"] == 3
        assert by_le["8192"] == 3
        assert f'kmt_request_latency_ms_count{{op="equiv",theory="incnat"}} 5' in text

    def test_sum_line(self):
        assert re.search(
            r'kmt_request_latency_ms_sum\{op="equiv",theory="incnat"\} 109006\.6',
            self._rendered())

    def test_label_escaping(self):
        reg = MetricsRegistry()
        reg.inc("requests_total", {"theory": 'we"ird\\th\neory'})
        text = render_prometheus(reg.snapshot())
        assert r'theory="we\"ird\\th\neory"' in text

    def test_custom_prefix(self):
        reg = MetricsRegistry()
        reg.inc("c")
        assert "acme_c 1" in render_prometheus(reg.snapshot(), prefix="acme_")

    def test_trailing_newline(self):
        assert self._rendered().endswith("\n")


class TestMetricsExporter:
    def test_scrape_roundtrip(self):
        reg = MetricsRegistry()
        reg.inc("requests_total", {"theory": "incnat"}, value=7)
        with MetricsExporter(lambda: render_prometheus(reg.snapshot())) as exporter:
            url = f"http://{exporter.host}:{exporter.port}/metrics"
            with urllib.request.urlopen(url, timeout=5) as response:
                assert response.status == 200
                assert response.headers["Content-Type"].startswith("text/plain; version=0.0.4")
                body = response.read().decode("utf-8")
        assert 'kmt_requests_total{theory="incnat"} 7' in body

    def test_live_rerender_per_scrape(self):
        reg = MetricsRegistry()
        with MetricsExporter(lambda: render_prometheus(reg.snapshot())) as exporter:
            url = f"http://{exporter.host}:{exporter.port}/metrics"
            first = urllib.request.urlopen(url, timeout=5).read().decode()
            reg.inc("requests_total")
            second = urllib.request.urlopen(url, timeout=5).read().decode()
        assert "kmt_requests_total 1" not in first
        assert "kmt_requests_total 1" in second

    def test_unknown_path_404(self):
        with MetricsExporter(lambda: "") as exporter:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(
                    f"http://{exporter.host}:{exporter.port}/nope", timeout=5)
            assert excinfo.value.code == 404

    def test_render_failure_is_500_not_crash(self):
        def boom():
            raise RuntimeError("no metrics for you")

        with MetricsExporter(boom) as exporter:
            url = f"http://{exporter.host}:{exporter.port}/metrics"
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(url, timeout=5)
            assert excinfo.value.code == 500


# ---------------------------------------------------------------------------
# structured logging
# ---------------------------------------------------------------------------


class TestStructuredLogging:
    def _capture(self, level="info"):
        stream = io.StringIO()
        logger = configure_logging(level=level, stream=stream)
        return logger, stream

    def teardown_method(self):
        # Leave the hierarchy silent for other tests.
        logger = logging.getLogger("kmt")
        for handler in list(logger.handlers):
            if not isinstance(handler, logging.NullHandler):
                logger.removeHandler(handler)
                handler.close()
        logger.setLevel(logging.NOTSET)

    def test_log_event_emits_json_line(self):
        logger, stream = self._capture()
        log_event(logging.getLogger("kmt.server"), logging.INFO, "server_start",
                  backend="thread", workers=4)
        (line,) = stream.getvalue().splitlines()
        event = json.loads(line)
        assert event["event"] == "server_start"
        assert event["logger"] == "kmt.server"
        assert event["level"] == "info"
        assert event["backend"] == "thread" and event["workers"] == 4
        assert re.match(r"^\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}\.\d{3}Z$", event["ts"])

    def test_level_filtering(self):
        logger, stream = self._capture(level="warning")
        log_event(logging.getLogger("kmt.server"), logging.INFO, "quiet")
        log_event(logging.getLogger("kmt.server"), logging.WARNING, "loud")
        events = [json.loads(l)["event"] for l in stream.getvalue().splitlines()]
        assert events == ["loud"]

    def test_envelope_collision_gets_prefixed(self):
        logger, stream = self._capture()
        log_event(logging.getLogger("kmt.x"), logging.INFO, "e", ts="custom")
        event = json.loads(stream.getvalue())
        assert re.match(r"^\d{4}-", event["ts"])
        assert event["field_ts"] == "custom"

    def test_reconfigure_replaces_handler(self):
        _, first = self._capture()
        logger, second = self._capture()
        log_event(logging.getLogger("kmt.y"), logging.INFO, "once")
        assert first.getvalue() == ""
        assert len(second.getvalue().splitlines()) == 1
        non_null = [h for h in logger.handlers
                    if not isinstance(h, logging.NullHandler)]
        assert len(non_null) == 1

    def test_log_file(self, tmp_path):
        path = tmp_path / "events.jsonl"
        configure_logging(level="debug", log_file=str(path))
        log_event(logging.getLogger("kmt.z"), logging.DEBUG, "to_disk", n=1)
        event = json.loads(path.read_text().strip())
        assert event["event"] == "to_disk" and event["n"] == 1

    def test_bad_level_raises(self):
        with pytest.raises(ValueError, match="unknown log level"):
            configure_logging(level="chatty")

    def test_plain_record_degrades_gracefully(self):
        formatter = JsonLinesFormatter()
        record = logging.LogRecord("kmt.other", logging.INFO, __file__, 1,
                                   "plain %s", ("message",), None)
        event = json.loads(formatter.format(record))
        assert event["event"] == "plain message"

    def test_next_request_id_unique_and_pid_tagged(self):
        import os

        a, b = next_request_id(), next_request_id()
        assert a != b
        assert a.startswith(f"{os.getpid()}-")


# ---------------------------------------------------------------------------
# merge_pool_stats edge cases (cache-table merging across workers)
# ---------------------------------------------------------------------------


def _worker_block(theory, hits, misses, stripes=1, queries=1, shared_hits=0):
    return {
        theory: {
            "stripes": stripes,
            "queries": queries,
            "states_compiled": 0,
            "tables": {
                "norm": {"hits": hits, "misses": misses, "evictions": 0,
                         "size": misses, "capacity": 1024,
                         "hit_rate": hits / max(1, hits + misses)},
            },
            "totals": {"hits": hits, "misses": misses},
        },
        "shared": {
            "tables": {
                "deriv": {"hits": shared_hits, "misses": 0, "evictions": 0,
                          "size": 0, "capacity": 4096,
                          "hit_rate": 1.0 if shared_hits else 0.0},
            },
        },
    }


class TestMergePoolStats:
    def test_empty_block_list(self):
        merged = merge_pool_stats([])
        assert merged == {"shared": {"tables": {}}}

    def test_disjoint_theory_sets(self):
        merged = merge_pool_stats([
            _worker_block("incnat", hits=3, misses=1),
            _worker_block("bitvec", hits=0, misses=5),
        ])
        assert set(merged) == {"incnat", "bitvec", "shared"}
        assert merged["incnat"]["totals"] == {"hits": 3, "misses": 1}
        assert merged["bitvec"]["totals"] == {"hits": 0, "misses": 5}
        assert merged["incnat"]["tables"]["norm"]["hit_rate"] == pytest.approx(0.75)

    def test_overlapping_theories_sum(self):
        merged = merge_pool_stats([
            _worker_block("incnat", hits=3, misses=1, stripes=2, queries=10),
            _worker_block("incnat", hits=1, misses=3, stripes=2, queries=4),
        ])
        block = merged["incnat"]
        assert block["stripes"] == 4 and block["queries"] == 14
        assert block["tables"]["norm"]["hits"] == 4
        assert block["tables"]["norm"]["misses"] == 4
        assert block["tables"]["norm"]["hit_rate"] == pytest.approx(0.5)

    def test_shared_blocks_fold_into_one(self):
        merged = merge_pool_stats([
            _worker_block("incnat", 1, 1, shared_hits=2),
            _worker_block("incnat", 1, 1, shared_hits=5),
        ])
        assert merged["shared"]["tables"]["deriv"]["hits"] == 7

    def test_respawned_worker_fresh_snapshot_merges_cleanly(self):
        # A crashed worker respawns with zeroed caches; its first snapshot
        # must fold in without perturbing the veterans' counts.
        veteran = _worker_block("incnat", hits=10, misses=2, queries=12)
        respawned = _worker_block("incnat", hits=0, misses=0, queries=0)
        merged = merge_pool_stats([veteran, respawned])
        block = merged["incnat"]
        assert block["totals"] == {"hits": 10, "misses": 2}
        assert block["queries"] == 12
        assert block["tables"]["norm"]["hit_rate"] == pytest.approx(10 / 12, abs=1e-3)
        for counter in block["tables"]["norm"].values():
            if isinstance(counter, (int, float)):
                assert counter >= 0

    def test_respawned_worker_missing_theory_block(self):
        # The respawned worker has not touched bitvec yet at snapshot time.
        veteran = merge_pool_stats([
            _worker_block("incnat", 1, 1),
            _worker_block("bitvec", 2, 2),
        ])
        partial = _worker_block("incnat", 1, 0)
        merged = merge_pool_stats([veteran, partial])
        assert merged["bitvec"]["totals"] == {"hits": 2, "misses": 2}
        assert merged["incnat"]["totals"] == {"hits": 2, "misses": 1}
