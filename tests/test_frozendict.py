"""Unit tests for the immutable mapping used as theory state."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.frozendict import EMPTY_FROZENDICT, FrozenDict


class TestBasics:
    def test_lookup_and_len(self):
        d = FrozenDict({"x": 1, "y": 2})
        assert d["x"] == 1
        assert len(d) == 2
        assert set(d) == {"x", "y"}
        assert "x" in d and "z" not in d

    def test_get_default(self):
        d = FrozenDict({"x": 1})
        assert d.get("x") == 1
        assert d.get("z") is None
        assert d.get("z", 7) == 7

    def test_kwargs_constructor(self):
        assert FrozenDict(x=1)["x"] == 1
        assert FrozenDict({"x": 1}, y=2) == FrozenDict({"x": 1, "y": 2})

    def test_missing_key_raises(self):
        with pytest.raises(KeyError):
            FrozenDict()["missing"]

    def test_empty_constant(self):
        assert len(EMPTY_FROZENDICT) == 0


class TestValueSemantics:
    def test_equality_order_independent(self):
        assert FrozenDict({"x": 1, "y": 2}) == FrozenDict({"y": 2, "x": 1})

    def test_equality_with_plain_dict(self):
        assert FrozenDict({"x": 1}) == {"x": 1}

    def test_hash_equal_for_equal_values(self):
        assert hash(FrozenDict({"x": 1, "y": 2})) == hash(FrozenDict({"y": 2, "x": 1}))

    def test_usable_in_sets(self):
        s = {FrozenDict({"x": 1}), FrozenDict({"x": 1}), FrozenDict({"x": 2})}
        assert len(s) == 2

    def test_repr_is_deterministic(self):
        assert repr(FrozenDict({"b": 2, "a": 1})) == repr(FrozenDict({"a": 1, "b": 2}))


class TestFunctionalUpdates:
    def test_set_returns_new_mapping(self):
        d = FrozenDict({"x": 1})
        d2 = d.set("x", 5)
        assert d["x"] == 1
        assert d2["x"] == 5

    def test_set_new_key(self):
        d = FrozenDict({"x": 1}).set("y", 2)
        assert d == FrozenDict({"x": 1, "y": 2})

    def test_update(self):
        d = FrozenDict({"x": 1, "y": 2}).update({"y": 3, "z": 4})
        assert d == FrozenDict({"x": 1, "y": 3, "z": 4})

    def test_remove(self):
        d = FrozenDict({"x": 1, "y": 2}).remove("x")
        assert d == FrozenDict({"y": 2})
        assert d.remove("not-there") == d

    def test_to_dict_copy(self):
        d = FrozenDict({"x": 1})
        plain = d.to_dict()
        plain["x"] = 99
        assert d["x"] == 1


class TestProperties:
    @given(st.dictionaries(st.text(max_size=3), st.integers(), max_size=5))
    def test_roundtrip_through_dict(self, data):
        assert FrozenDict(data).to_dict() == data

    @given(
        st.dictionaries(st.text(max_size=3), st.integers(), max_size=5),
        st.text(max_size=3),
        st.integers(),
    )
    def test_set_then_get(self, data, key, value):
        assert FrozenDict(data).set(key, value)[key] == value
