"""Tests for the static-analysis ops: verify / prog_equiv / dead_code.

Covers the session-level API (`repro.analysis.checks`), the JSONL batch
surface (field validation, error codes), exact dead-code span reporting
against multi-line sources, the Fig. 1 programs from the paper, temporal
(LTLf) postconditions through ``verify``, and a small deterministic
differential run across the batch / thread-server / process-server paths.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.analysis import checks
from repro.engine.batch import run_batch_lines
from repro.engine.server import serve_stdio
from repro.engine.session import EngineSession
from repro.theories import build_theory
from repro.theories.incnat import IncNatTheory
from repro.utils import trace as trace_mod

#: Fig. 1a (Pnat) — the paper's counting loop, split into a Hoare triple.
PNAT_PRE = "i < 2"
PNAT_PROGRAM = """\
while (i < 5) {
    i += 1;
    j += 2;
}
"""
PNAT_POST = "j > 5"


def record(**fields):
    return json.dumps(fields)


@pytest.fixture
def session():
    return EngineSession(IncNatTheory(variables=("i", "j")))


class TestVerify:
    def test_fig1_pnat_triple_holds(self, session):
        result = checks.verify(session, PNAT_PRE, PNAT_PROGRAM, PNAT_POST)
        assert result["holds"] is True
        assert result["signatures_explored"] >= 1
        assert "counterexample" not in result

    def test_over_strong_post_fails_with_witness(self, session):
        result = checks.verify(session, PNAT_PRE, PNAT_PROGRAM, "j > 20")
        assert result["holds"] is False
        assert "counterexample" in result
        # The witness trace is the machine-readable action word: a run the
        # program can take that ends in a state violating the post.
        assert isinstance(result["witness_trace"], list)
        assert result["witness_trace"], "expected at least one action"
        assert all(isinstance(step, str) for step in result["witness_trace"])

    def test_trivial_triples(self, session):
        assert checks.verify(session, "false", "inc(i);", "i > 100")["holds"] is True
        assert checks.verify(session, "true", "abort;", "false")["holds"] is True
        assert checks.verify(session, "true", "skip;", "i > 0")["holds"] is False

    def test_pred_objects_accepted(self, session):
        pre = session.parse_pred(PNAT_PRE)
        post = session.parse_pred(PNAT_POST)
        result = checks.verify(session, pre, PNAT_PROGRAM, post)
        assert result["holds"] is True

    def test_fig1_pset_triple(self):
        session = EngineSession(build_theory("sets"))
        program = "while (i < 4) { add(X, i); inc(i); }"
        assert checks.verify(session, "i < 1", program, "in(X, 3)")["holds"] is True
        result = checks.verify(session, "i < 1", program, "in(X, 9)")
        assert result["holds"] is False
        assert "counterexample" in result

    def test_temporal_post_over_ltlf(self):
        # Satellite: temporal verification — LTLf postconditions work through
        # the same op because the preset registry already serves ltlf-*.
        session = EngineSession(build_theory("ltlf-nat"))
        assert checks.verify(session, "true", "inc(x);", "ev(x > 0)")["holds"] is True
        result = checks.verify(session, "true", "skip;", "ev(x > 0)")
        assert result["holds"] is False
        assert "since" in result["counterexample"]

    def test_non_string_program_is_type_error(self, session):
        with pytest.raises(TypeError):
            checks.verify(session, "true", ["not", "text"], "true")


class TestProgEquiv:
    def test_structural_variants_equivalent(self, session):
        result = checks.prog_equiv(session, "skip;",
                                   "if (i > 0) { } else { }")
        assert result["equivalent"] is True

    def test_loop_unrolling_equivalent(self, session):
        once = "while (i < 2) { inc(i); }"
        unrolled = "if (i < 2) { inc(i); while (i < 2) { inc(i); } } else { }"
        assert checks.prog_equiv(session, once, unrolled)["equivalent"] is True

    def test_inequivalent_carries_counterexample(self, session):
        result = checks.prog_equiv(session, "inc(i);", "inc(i); inc(i);")
        assert result["equivalent"] is False
        assert "distinguishing word" in result["counterexample"]


class TestDeadCode:
    def test_live_program_has_no_dead_statements(self, session):
        result = checks.dead_code(session, PNAT_PROGRAM)
        assert result["dead"] == 0
        assert result["total"] >= 3  # while header + two body statements

    def test_unsatisfiable_branch_reports_guard_reason(self, session):
        source = ("assume i > 4;\n"
                  "if (i < 3) {\n"
                  "    i += 1;\n"
                  "}\n")
        result = checks.dead_code(session, source)
        dead = [s for s in result["statements"] if s["dead"]]
        assert [s["text"] for s in dead] == ["i += 1"]
        entry = dead[0]
        # Exact span: the statement text, excluding the trailing ';'.
        start = source.index("i += 1")
        assert entry["span"] == {"start": start, "end": start + len("i += 1"),
                                 "line": 3, "column": 5}
        reason = entry["reason"]
        assert reason["kind"] == "guard"
        assert reason["guard"] == "i < 3"
        assert reason["negated"] is False
        assert reason["span"]["start"] == source.index("i < 3")

    def test_statements_after_abort_are_dead(self, session):
        source = "inc(i);\nabort;\ninc(j);\nskip;\n"
        result = checks.dead_code(session, source)
        texts = {s["text"]: s["dead"] for s in result["statements"]}
        assert texts == {"inc(i)": False, "abort": False,
                         "inc(j)": True, "skip": True}
        dead = [s for s in result["statements"] if s["dead"]]
        assert all(s["reason"]["kind"] == "abort" for s in dead)
        assert result["dead"] == 2

    def test_false_loop_body_is_dead_but_exit_is_live(self, session):
        source = ("assume i > 2;\n"
                  "while (i < 1) {\n"
                  "    inc(j);\n"
                  "}\n"
                  "inc(i);\n")
        result = checks.dead_code(session, source)
        by_text = {s["text"]: s for s in result["statements"]}
        assert by_text["inc(j)"]["dead"] is True
        assert by_text["inc(j)"]["reason"]["kind"] == "guard"
        assert by_text["inc(j)"]["reason"]["guard"] == "i < 1"
        assert by_text["inc(i)"]["dead"] is False

    def test_statements_nested_under_dead_code_are_dead(self, session):
        source = ("abort;\n"
                  "if (i > 0) {\n"
                  "    inc(i);\n"
                  "} else {\n"
                  "    inc(j);\n"
                  "}\n")
        result = checks.dead_code(session, source)
        assert result["dead"] == result["total"] - 1  # everything after abort
        nested = [s for s in result["statements"] if s["text"] in ("inc(i)", "inc(j)")]
        assert len(nested) == 2 and all(s["dead"] for s in nested)

    def test_assume_reason_wins_over_outer_guard(self, session):
        source = ("if (i > 0) {\n"
                  "    assume i > 9;\n"
                  "    assume i < 5;\n"
                  "    inc(i);\n"
                  "}\n")
        result = checks.dead_code(session, source)
        by_text = {s["text"]: s for s in result["statements"]}
        entry = by_text["inc(i)"]
        assert entry["dead"] is True
        # The innermost constraint on the path is the second assume.
        assert entry["reason"]["kind"] == "assume"
        assert entry["reason"]["span"]["start"] == source.index("assume i < 5")

    def test_trace_counters_recorded(self, session):
        trace = trace_mod.Trace()
        trace_mod.activate(trace)
        try:
            checks.dead_code(session, "abort; inc(i);")
        finally:
            trace_mod.deactivate()
        assert trace.counters["statements_analyzed"] == 2
        assert trace.counters["dead_statements"] == 1
        assert trace.phase_counts.get("prog_compile") == 1


class TestCompileCache:
    def test_program_compile_is_memoized(self, session):
        checks.verify(session, PNAT_PRE, PNAT_PROGRAM, PNAT_POST)
        misses = session.caches.prog.stats.misses
        checks.dead_code(session, PNAT_PROGRAM)
        assert session.caches.prog.stats.hits >= 1
        assert session.caches.prog.stats.misses == misses

    def test_repeat_verify_replays_cached_verdict(self, session):
        first = checks.verify(session, PNAT_PRE, PNAT_PROGRAM, PNAT_POST)
        assert "cached" not in first
        second = checks.verify(session, PNAT_PRE, PNAT_PROGRAM, PNAT_POST)
        assert second["cached"] is True
        assert second["holds"] is first["holds"]

    def test_session_methods_delegate(self, session):
        assert session.verify(PNAT_PRE, PNAT_PROGRAM, PNAT_POST)["holds"] is True
        assert session.prog_equiv("skip;", "skip;")["equivalent"] is True
        assert session.dead_code("abort; inc(i);")["dead"] == 1


class TestBatchSurface:
    def test_three_ops_round_trip(self):
        lines = [
            record(op="verify", pre=PNAT_PRE, program=PNAT_PROGRAM, post=PNAT_POST),
            record(op="prog_equiv", left="inc(x);", right="inc(x);"),
            record(op="dead_code", program="abort; inc(x);"),
        ]
        responses, _ = run_batch_lines(lines)
        assert all(r["ok"] for r in responses)
        assert responses[0]["result"]["holds"] is True
        assert responses[1]["result"]["equivalent"] is True
        assert responses[2]["result"]["dead"] == 1

    def test_malformed_program_is_parse_error(self):
        responses, _ = run_batch_lines(
            [record(op="dead_code", program="while (x > 0 { }")])
        assert responses[0]["ok"] is False
        assert responses[0]["error_code"] == "parse_error"
        # The diagnostic carries the precise location and a caret frame.
        assert "line 1" in responses[0]["error"]
        assert "unterminated" in responses[0]["error"]
        assert "^" in responses[0]["error"]

    def test_missing_fields_reported(self):
        responses, _ = run_batch_lines([
            record(op="verify", pre="x > 0", program="inc(x);"),
            record(op="prog_equiv", left="inc(x);"),
            record(op="dead_code"),
        ])
        assert all(r["ok"] is False for r in responses)
        assert all(r["error_code"] == "missing_field" for r in responses)
        assert "post" in responses[0]["error"]
        assert "right" in responses[1]["error"]
        assert "program" in responses[2]["error"]

    def test_non_string_program_is_invalid_request(self):
        responses, _ = run_batch_lines(
            [record(op="dead_code", program=["skip;"])])
        assert responses[0]["ok"] is False
        assert responses[0]["error_code"] == "invalid_request"

    def test_ltlf_theory_selectable_per_record(self):
        responses, _ = run_batch_lines([
            record(op="verify", theory="ltlf-nat", pre="true",
                   program="inc(x);", post="ev(x > 0)"),
        ])
        assert responses[0]["ok"]
        assert responses[0]["result"]["holds"] is True


class TestDifferentialPaths:
    """The same deterministic workload through all three execution paths."""

    WORKLOAD = [
        record(id=1, op="verify", pre=PNAT_PRE, program=PNAT_PROGRAM, post=PNAT_POST),
        record(id=2, op="verify", pre=PNAT_PRE, program=PNAT_PROGRAM, post="j > 20"),
        record(id=3, op="prog_equiv", left="skip;", right="if (x > 0) { } else { }"),
        record(id=4, op="prog_equiv", left="inc(x);", right="inc(x); inc(x);"),
        record(id=5, op="dead_code", program="assume x > 4; if (x < 3) { inc(x); }"),
        record(id=6, op="dead_code", program="while (x > 0 { }"),  # parse error
    ]

    @staticmethod
    def _comparable(response):
        out = {k: v for k, v in response.items() if k not in ("result", "error")}
        result = response.get("result")
        if isinstance(result, dict):
            out["result"] = {k: v for k, v in result.items()
                             if k not in ("cells_explored", "cells_pruned", "cached")}
        return out

    def _run_server(self, backend):
        stdin = io.StringIO("\n".join(self.WORKLOAD) + "\n")
        stdout = io.StringIO()
        serve_stdio(stdin, stdout, workers=2, backend=backend)
        lines = [json.loads(line) for line in stdout.getvalue().splitlines()]
        return sorted(lines, key=lambda r: r["id"])

    def test_batch_thread_process_agree(self):
        batch, _ = run_batch_lines(list(self.WORKLOAD))
        batch = sorted(batch, key=lambda r: r["id"])
        thread = self._run_server("thread")
        process = self._run_server("process")
        expected = [self._comparable(r) for r in batch]
        assert [self._comparable(r) for r in thread] == expected
        assert [self._comparable(r) for r in process] == expected
        # Spot-check the verdicts themselves (shared across paths).
        by_id = {r["id"]: r for r in batch}
        assert by_id[1]["result"]["holds"] is True
        assert by_id[2]["result"]["holds"] is False
        assert by_id[3]["result"]["equivalent"] is True
        assert by_id[4]["result"]["equivalent"] is False
        assert by_id[5]["result"]["dead"] == 1
        assert by_id[6]["ok"] is False and by_id[6]["error_code"] == "parse_error"
