"""Shared fixtures and hypothesis strategies for the KMT test suite."""

from __future__ import annotations

import pytest
from hypothesis import settings
from hypothesis import strategies as st

# Derandomize hypothesis: with per-run random seeds the generators very
# occasionally produce a pathological term (sums nested under star) whose
# normalization grinds for minutes, wedging CI and tier-1 runs.  A fixed
# example stream keeps every run reproducible; per-example deadlines are
# disabled because wall-clock limits flake on slow single-core runners.
settings.register_profile("repro", derandomize=True, deadline=None)
settings.load_profile("repro")

from repro.core import terms as T
from repro.core.kmt import KMT
from repro.theories.bitvec import BitVecTheory, BoolAssign, BoolEq
from repro.theories.incnat import AssignNat, Gt, IncNatTheory, Incr
from repro.theories.netkat import NetKatTheory
from repro.theories.product import ProductTheory
from repro.utils.frozendict import FrozenDict


# ---------------------------------------------------------------------------
# theory / KMT fixtures
# ---------------------------------------------------------------------------


@pytest.fixture
def bitvec():
    return BitVecTheory(variables=("a", "b", "c"))


@pytest.fixture
def incnat():
    return IncNatTheory(variables=("x", "y"))


@pytest.fixture
def netkat():
    return NetKatTheory({"sw": (1, 2, 3), "dst": (1, 2)})


@pytest.fixture
def kmt_bitvec(bitvec):
    return KMT(bitvec)


@pytest.fixture
def kmt_incnat(incnat):
    return KMT(incnat)


@pytest.fixture
def kmt_netkat(netkat):
    return KMT(netkat)


@pytest.fixture
def kmt_product():
    return KMT(ProductTheory(IncNatTheory(variables=("x",)), BitVecTheory(variables=("a",))))


# ---------------------------------------------------------------------------
# hypothesis strategies: BitVec terms (finite state, good for differential tests)
# ---------------------------------------------------------------------------

BITVEC_VARS = ("a", "b", "c")
INCNAT_VARS = ("x", "y")


def bitvec_primitive_tests():
    return st.sampled_from([BoolEq(v) for v in BITVEC_VARS])


def bitvec_primitive_actions():
    return st.sampled_from(
        [BoolAssign(v, value) for v in BITVEC_VARS for value in (True, False)]
    )


def bitvec_preds(max_leaves=4):
    """Random predicates over the BitVec theory."""
    leaves = st.one_of(
        st.just(T.pzero()),
        st.just(T.pone()),
        bitvec_primitive_tests().map(T.pprim),
    )

    def extend(children):
        return st.one_of(
            children.map(T.pnot),
            st.tuples(children, children).map(lambda ab: T.pand(*ab)),
            st.tuples(children, children).map(lambda ab: T.por(*ab)),
        )

    return st.recursive(leaves, extend, max_leaves=max_leaves)


def bitvec_terms(max_leaves=4, allow_star=True):
    """Random terms over the BitVec theory (kept small for decidability tests)."""
    leaves = st.one_of(
        bitvec_preds(max_leaves=2).map(T.ttest),
        bitvec_primitive_actions().map(T.tprim),
    )

    def extend(children):
        options = [
            st.tuples(children, children).map(lambda pq: T.tplus(*pq)),
            st.tuples(children, children).map(lambda pq: T.tseq(*pq)),
        ]
        if allow_star:
            options.append(children.map(T.tstar))
        return st.one_of(*options)

    return st.recursive(leaves, extend, max_leaves=max_leaves)


def bitvec_states():
    """All-variable boolean states for the BITVEC_VARS universe."""
    return st.builds(
        lambda values: FrozenDict(dict(zip(BITVEC_VARS, values))),
        st.tuples(*[st.booleans() for _ in BITVEC_VARS]),
    )


def all_bitvec_states():
    """The full (deterministic) list of states over BITVEC_VARS."""
    states = []
    for bits in range(2 ** len(BITVEC_VARS)):
        assignment = {
            var: bool((bits >> index) & 1) for index, var in enumerate(BITVEC_VARS)
        }
        states.append(FrozenDict(assignment))
    return states


# ---------------------------------------------------------------------------
# hypothesis strategies: IncNat
# ---------------------------------------------------------------------------


def incnat_primitive_tests(max_bound=4):
    return st.builds(Gt, st.sampled_from(INCNAT_VARS), st.integers(0, max_bound))


def incnat_primitive_actions(max_value=4):
    return st.one_of(
        st.builds(Incr, st.sampled_from(INCNAT_VARS)),
        st.builds(AssignNat, st.sampled_from(INCNAT_VARS), st.integers(0, max_value)),
    )


def incnat_preds(max_leaves=4):
    leaves = st.one_of(
        st.just(T.pzero()),
        st.just(T.pone()),
        incnat_primitive_tests().map(T.pprim),
    )

    def extend(children):
        return st.one_of(
            children.map(T.pnot),
            st.tuples(children, children).map(lambda ab: T.pand(*ab)),
            st.tuples(children, children).map(lambda ab: T.por(*ab)),
        )

    return st.recursive(leaves, extend, max_leaves=max_leaves)


def incnat_terms(max_leaves=4, allow_star=True):
    leaves = st.one_of(
        incnat_preds(max_leaves=2).map(T.ttest),
        incnat_primitive_actions().map(T.tprim),
    )

    def extend(children):
        options = [
            st.tuples(children, children).map(lambda pq: T.tplus(*pq)),
            st.tuples(children, children).map(lambda pq: T.tseq(*pq)),
        ]
        if allow_star:
            options.append(children.map(T.tstar))
        return st.one_of(*options)

    return st.recursive(leaves, extend, max_leaves=max_leaves)


def incnat_states(max_value=5):
    return st.builds(
        lambda values: FrozenDict(dict(zip(INCNAT_VARS, values))),
        st.tuples(*[st.integers(0, max_value) for _ in INCNAT_VARS]),
    )


# ---------------------------------------------------------------------------
# restricted actions (for automata tests)
# ---------------------------------------------------------------------------


def restricted_actions(max_leaves=5):
    """Random restricted actions over a tiny BitVec action alphabet."""
    leaves = st.one_of(
        st.just(T.tone()),
        st.just(T.tzero()),
        st.sampled_from(
            [T.tprim(BoolAssign("a", True)), T.tprim(BoolAssign("b", True)), T.tprim(BoolAssign("c", False))]
        ),
    )

    def extend(children):
        return st.one_of(
            st.tuples(children, children).map(lambda pq: T.tplus(*pq)),
            st.tuples(children, children).map(lambda pq: T.tseq(*pq)),
            children.map(T.tstar),
        )

    return st.recursive(leaves, extend, max_leaves=max_leaves)
