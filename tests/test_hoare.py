"""Tests for the Hoare-logic layer (KAT subsumes propositional Hoare logic)."""

import pytest

from repro.analysis import HoareLogic, HoareTriple
from repro.core import terms as T
from repro.core.kmt import KMT
from repro.theories.bitvec import BitVecTheory
from repro.theories.incnat import IncNatTheory


@pytest.fixture
def kmt():
    return KMT(IncNatTheory(variables=("x", "y")))


@pytest.fixture
def hoare(kmt):
    return HoareLogic(kmt)


class TestTripleObject:
    def test_encoding_shape(self, kmt):
        triple = HoareTriple(
            kmt.parse_pred("x > 1"), kmt.parse("inc(x)"), kmt.parse_pred("x > 2")
        )
        encoding = triple.encoding()
        assert isinstance(encoding, T.TSeq)
        assert "{" in repr(triple)

    def test_type_checking(self, kmt):
        with pytest.raises(TypeError):
            HoareTriple("not a pred", kmt.parse("inc(x)"), kmt.parse_pred("x > 1"))
        with pytest.raises(TypeError):
            HoareTriple(kmt.parse_pred("x > 1"), "not a term", kmt.parse_pred("x > 1"))

    def test_string_arguments_parsed(self, hoare):
        triple = hoare.triple("x > 1", "inc(x)", "x > 2")
        assert isinstance(triple, HoareTriple)


class TestValidity:
    def test_increment_strengthens_bound(self, hoare):
        assert hoare.holds("x > 1", "inc(x)", "x > 2")
        assert hoare.holds("x > 1", "inc(x)", "x > 1")
        assert not hoare.holds("x > 1", "inc(x)", "x > 3")

    def test_assignment_establishes_postcondition(self, hoare):
        assert hoare.holds("true", "x := 5", "x > 4")
        assert not hoare.holds("true", "x := 5", "x > 5")

    def test_add_and_mul(self, hoare):
        assert hoare.holds("x > 2", "x += 3", "x > 5")
        assert hoare.holds("x > 2", "x *= 2", "x > 5")
        assert not hoare.holds("x > 2", "x *= 2", "x > 6")

    def test_loop_triple(self, hoare):
        assert hoare.holds("x < 1", "while (x < 3) do inc(x) end", "x = 3")
        assert not hoare.holds("x < 1", "while (x < 3) do inc(x) end", "x > 3")

    def test_nondeterministic_program(self, hoare):
        assert hoare.holds("true", "inc(x) + x := 7", "x > 0")
        assert not hoare.holds("true", "inc(x) + x := 0", "x > 0")

    def test_vacuous_precondition(self, hoare):
        assert hoare.holds("false", "inc(x)", "false")

    def test_explain_counterexample(self, hoare):
        assert hoare.explain("x > 1", "inc(x)", "x > 2") is None
        counterexample = hoare.explain("x > 1", "inc(x)", "x > 3")
        assert counterexample is not None
        assert "cell" in counterexample.describe()


class TestDerivedRules:
    def test_skip_rule(self, hoare):
        assert hoare.skip_rule(hoare.kmt.parse_pred("x > 1"))

    def test_sequence_rule(self, hoare):
        assert hoare.sequence_rule("x > 0", "inc(x)", "x > 1", "inc(x)", "x > 2")

    def test_sequence_rule_bad_premise(self, hoare):
        with pytest.raises(ValueError):
            hoare.sequence_rule("x > 0", "inc(x)", "x > 5", "inc(x)", "x > 2")

    def test_consequence_rule(self, hoare):
        assert hoare.consequence_rule("x > 5", "x > 1", "inc(x)", "x > 2", "x > 0")

    def test_consequence_rule_rejects_non_implication(self, hoare):
        with pytest.raises(ValueError):
            hoare.consequence_rule("x > 0", "x > 1", "inc(x)", "x > 2", "x > 0")

    def test_while_rule(self, hoare):
        # Invariant x <= 4 for the loop while (x < 4) inc(x).
        assert hoare.while_rule("x <= 4", "x < 4", "inc(x)")

    def test_while_rule_bad_invariant(self, hoare):
        with pytest.raises(ValueError):
            hoare.while_rule("x <= 2", "x < 4", "inc(x)")


class TestOverBitVec:
    def test_boolean_programs(self):
        kmt = KMT(BitVecTheory(variables=("a", "b")))
        hoare = HoareLogic(kmt)
        assert hoare.holds("true", "a := T; b := F", "a = T; b = F")
        assert hoare.holds("a = T", "flip a", "a = F")
        assert not hoare.holds("true", "flip a", "a = T")
        assert hoare.holds("true", "if (a = T) then b := T else b := F", "a = T; b = T + a = F; b = F")
