"""Regression tests for ParseError diagnostics: line/column, caret, expected.

docs/GRAMMAR.md promises that every rejection from either parser carries the
flat offset (backward compatible ``position``), a 1-based line/column pair, an
``expected …`` clause where the grammar knows what it wanted, and a caret
frame quoting the offending source line.  These tests pin that contract on
deterministic multi-line inputs; tests/test_grammar_fuzz.py checks the same
invariants on generated corruptions.
"""

from __future__ import annotations

import pytest

from repro.core import parser as core_parser
from repro.lang import parse_program
from repro.theories.incnat import IncNatTheory
from repro.utils.errors import ParseError, caret_frame, line_and_column


@pytest.fixture
def nat():
    return IncNatTheory(variables=("x", "y"))


class TestLineAndColumn:
    def test_first_character(self):
        assert line_and_column("abc", 0) == (1, 1)

    def test_after_newlines(self):
        text = "ab\ncd\nef"
        assert line_and_column(text, 3) == (2, 1)
        assert line_and_column(text, 7) == (3, 2)

    def test_position_at_end_of_text(self):
        text = "ab\ncd"
        assert line_and_column(text, len(text)) == (2, 3)

    def test_position_past_end_clamps(self):
        assert line_and_column("ab", 99) == (1, 3)

    def test_position_on_newline_char(self):
        assert line_and_column("ab\ncd", 2) == (1, 3)


class TestCaretFrame:
    def test_points_at_offset_within_line(self):
        frame = caret_frame("ab\ncde\nf", 4)
        assert frame == "  | cde\n  |  ^"

    def test_tabs_expand_consistently(self):
        # The caret must line up under the offending character even when the
        # line mixes tabs into the indentation.
        frame = caret_frame("\tx ?= 1", 3)
        excerpt, caret = frame.splitlines()
        assert "\t" not in frame
        assert caret.index("^") == excerpt.index("?")

    def test_end_of_input_points_past_last_char(self):
        frame = caret_frame("ab", 2)
        assert frame == "  | ab\n  |   ^"


class TestCoreParserDiagnostics:
    def test_unexpected_character_full_anatomy(self, nat):
        text = "x > 1;\nx ? 2"
        with pytest.raises(ParseError) as exc:
            core_parser.parse_term(text, nat)
        error = exc.value
        assert error.position == text.index("?")
        assert (error.line, error.column) == (2, 3)
        assert error.bare_message == "unexpected character '?'"
        message = str(error)
        assert "(at line 2, column 3)" in message
        assert "  | x ? 2\n  |   ^" in message

    def test_missing_close_paren_expected_clause(self, nat):
        with pytest.raises(ParseError) as exc:
            core_parser.parse_term("(x > 1; inc(x)", nat)
        error = exc.value
        assert error.expected == ("')'",)
        assert "expected ')'" in str(error)
        assert error.position == len("(x > 1; inc(x)")
        assert "end of input" in str(error)

    def test_empty_input_lists_atom_alternatives(self, nat):
        with pytest.raises(ParseError) as exc:
            core_parser.parse_term("", nat)
        message = str(exc.value)
        assert "expected one of:" in message
        for spelling in ("'('", "'~'", "a theory phrase"):
            assert spelling in message

    def test_trailing_input_expected_clause(self, nat):
        text = "inc(x) ) x > 1"
        with pytest.raises(ParseError) as exc:
            core_parser.parse_term(text, nat)
        assert "trailing input" in str(exc.value)
        assert "end of input" in str(exc.value)
        assert exc.value.position == text.rindex(")")

    def test_theory_phrase_error_anchored_at_phrase(self, nat):
        text = "inc(x);\nx +== 1"
        with pytest.raises(ParseError) as exc:
            core_parser.parse_term(text, nat)
        error = exc.value
        assert error.position == text.index("x +== 1")
        assert (error.line, error.column) == (2, 1)
        assert "cannot parse phrase" in error.bare_message

    def test_position_only_error_still_backward_compatible(self, nat):
        # Callers that predate line/column read .position; it must stay the
        # flat character offset into the originally-parsed text.
        with pytest.raises(ParseError) as exc:
            core_parser.parse_term("x > 1 +", nat)
        assert isinstance(exc.value.position, int)

    def test_error_without_position_has_no_location(self, nat):
        with pytest.raises(ParseError) as exc:
            core_parser.parse_pred("inc(x)", nat)
        error = exc.value
        assert error.position is None
        assert error.line is None and error.column is None
        assert "line" not in str(error)


class TestProgramParserDiagnostics:
    def test_error_inside_guard_reanchored_to_program(self, nat):
        # The guard is parsed by the core grammar on a slice; the diagnostic
        # must still point into the full multi-line program source.
        text = ("assume x > 1;\n"
                "while (x ? 3) {\n"
                "    inc(x);\n"
                "}\n")
        with pytest.raises(ParseError) as exc:
            parse_program(text, nat)
        error = exc.value
        assert error.position == text.index("?")
        assert (error.line, error.column) == (2, 10)
        assert "  | while (x ? 3) {" in str(error)

    def test_error_inside_assume_reanchored(self, nat):
        text = "skip;\nskip;\nassume x >> 1;\n"
        with pytest.raises(ParseError) as exc:
            parse_program(text, nat)
        error = exc.value
        assert error.line == 3
        assert error.position >= text.index("x >>")

    def test_missing_brace_expected_clause(self, nat):
        text = "if (x > 1) {\n    inc(x);\n"
        with pytest.raises(ParseError) as exc:
            parse_program(text, nat)
        error = exc.value
        assert "'}'" in str(error)
        assert "end of input" in str(error)
        assert error.line == 3  # EOF lands just past the last newline

    def test_statement_junk_positioned(self, nat):
        text = "inc(x);\n} inc(y);"
        with pytest.raises(ParseError) as exc:
            parse_program(text, nat)
        error = exc.value
        assert error.position == text.index("}")
        assert (error.line, error.column) == (2, 1)

    def test_unterminated_guard_paren(self, nat):
        text = "while (x > 0 {\n    inc(x);\n}"
        with pytest.raises(ParseError) as exc:
            parse_program(text, nat)
        assert "unterminated" in str(exc.value)
        assert exc.value.line is not None
