"""Tests for the command-line interface (the paper's partitioning tool)."""

import pytest

from repro.cli import build_theory, main
from repro.theories.bitvec import BitVecTheory
from repro.theories.incnat import IncNatTheory
from repro.theories.ltlf import LtlfTheory
from repro.theories.netkat import NetKatTheory
from repro.theories.product import ProductTheory
from repro.utils.errors import KmtError


class TestTheoryPresets:
    def test_known_presets(self):
        assert isinstance(build_theory("incnat"), IncNatTheory)
        assert isinstance(build_theory("bitvec"), BitVecTheory)
        assert isinstance(build_theory("netkat"), NetKatTheory)
        assert isinstance(build_theory("product"), ProductTheory)
        assert isinstance(build_theory("ltlf-nat"), LtlfTheory)
        assert isinstance(build_theory("temporal-netkat"), LtlfTheory)

    def test_unknown_preset(self):
        with pytest.raises(KmtError):
            build_theory("quantum-gravity")


class TestEquivCommand:
    def test_equivalent_terms_exit_zero(self, capsys):
        code = main(["--theory", "incnat", "equiv", "inc(x); x > 1", "x > 0; inc(x)"])
        out = capsys.readouterr().out
        assert code == 0
        assert "equivalent" in out

    def test_inequivalent_terms_exit_one(self, capsys):
        code = main(["--theory", "incnat", "equiv", "x > 1", "x > 2"])
        out = capsys.readouterr().out
        assert code == 1
        assert "NOT equivalent" in out
        assert "counterexample" in out

    def test_bitvec_theory_selection(self, capsys):
        code = main(["--theory", "bitvec", "equiv", "a := T; a = T", "a := T"])
        assert code == 0


class TestNormCommand:
    def test_norm_prints_summands(self, capsys):
        code = main(["--theory", "incnat", "norm", "inc(x)*; x > 1"])
        captured = capsys.readouterr()
        assert code == 0
        assert "+" in captured.out
        assert "summands" in captured.err


class TestSatCommand:
    def test_sat(self, capsys):
        assert main(["--theory", "incnat", "sat", "x > 3; ~(x > 5)"]) == 0
        assert "satisfiable" in capsys.readouterr().out

    def test_unsat(self, capsys):
        assert main(["--theory", "incnat", "sat", "x > 5; ~(x > 3)"]) == 1
        assert "unsatisfiable" in capsys.readouterr().out


class TestRunCommand:
    def test_run_prints_traces(self, capsys):
        code = main(["--theory", "incnat", "run", "inc(x); inc(x)"])
        out = capsys.readouterr().out
        assert code == 0
        assert "inc(x)" in out

    def test_run_rejecting_program(self, capsys):
        code = main(["--theory", "incnat", "run", "x > 5"])
        assert code == 1
        assert "no traces" in capsys.readouterr().out


class TestClassesCommand:
    def test_partitions_file(self, tmp_path, capsys):
        terms_file = tmp_path / "terms.txt"
        terms_file.write_text(
            "\n".join(
                [
                    "# population of equivalent and inequivalent terms",
                    "inc(x); x > 1",
                    "x > 0; inc(x)",
                    "inc(x)",
                    "",
                ]
            )
        )
        code = main(["--theory", "incnat", "classes", str(terms_file)])
        out = capsys.readouterr().out
        assert code == 0
        assert "class 0:" in out and "class 1:" in out
        assert "class 2:" not in out


class TestErrorHandling:
    def test_kmt_errors_reported_cleanly(self, capsys):
        code = main(["--theory", "nosuch", "sat", "true"])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_budget_flag_threaded_through(self, capsys):
        code = main(
            ["--theory", "bitvec", "--budget", "2000", "equiv",
             "(flip a + flip b + flip c)*", "(flip a + flip b + flip c)*"]
        )
        assert code == 2
        assert "budget" in capsys.readouterr().err


class TestCellSearchFlag:
    def test_signature_output_by_default(self, capsys):
        code = main(["--theory", "incnat", "equiv", "inc(x); x > 1", "x > 0; inc(x)"])
        out = capsys.readouterr().out
        assert code == 0
        assert "signatures" in out

    def test_enumerate_flag(self, capsys):
        code = main(
            ["--theory", "incnat", "--cell-search", "enumerate", "equiv",
             "inc(x); x > 1", "x > 0; inc(x)"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "cells explored" in out
        assert "signatures" not in out


class TestTheoryPresets:
    def test_sets_preset(self, capsys):
        code = main(["--theory", "sets", "equiv", "add(X, 3); in(X, 3)", "add(X, 3)"])
        assert code == 0
        assert "equivalent" in capsys.readouterr().out

    def test_maps_preset(self, capsys):
        code = main(["--theory", "maps", "sat", "m[1] = T"])
        assert code == 0
        assert "satisfiable" in capsys.readouterr().out


class TestVerifyCommand:
    def test_valid_triple_exits_zero(self, capsys):
        code = main(["--theory", "incnat", "verify",
                     "i < 2", "while (i < 5) { i += 1; j += 2; }", "j > 5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "valid" in out

    def test_invalid_triple_prints_witness(self, capsys):
        code = main(["--theory", "incnat", "verify",
                     "i < 2", "while (i < 5) { i += 1; j += 2; }", "j > 20"])
        out = capsys.readouterr().out
        assert code == 1
        assert "INVALID" in out
        assert "counterexample" in out
        assert "witness" in out

    def test_program_from_file(self, tmp_path, capsys):
        path = tmp_path / "prog.while"
        path.write_text("inc(i);\n", encoding="utf-8")
        code = main(["--theory", "incnat", "verify", "true", f"@{path}", "i > 0"])
        assert code == 0

    def test_parse_error_reported_cleanly(self, capsys):
        code = main(["--theory", "incnat", "verify", "true", "while (i { }", "true"])
        captured = capsys.readouterr()
        assert code == 2
        assert "error:" in captured.err


class TestProgEquivCommand:
    def test_equivalent_programs(self, capsys):
        code = main(["--theory", "incnat", "prog-equiv",
                     "skip;", "if (i > 0) { } else { }"])
        out = capsys.readouterr().out
        assert code == 0
        assert "equivalent" in out

    def test_inequivalent_programs(self, capsys):
        code = main(["--theory", "incnat", "prog-equiv", "inc(i);", "skip;"])
        out = capsys.readouterr().out
        assert code == 1
        assert "NOT equivalent" in out


class TestDeadCodeCommand:
    def test_dead_statement_reported_with_caret(self, capsys):
        code = main(["--theory", "incnat", "dead-code",
                     "assume i > 4;\nif (i < 3) {\n    inc(i);\n}"])
        captured = capsys.readouterr()
        assert code == 1
        assert "DEAD" in captured.out
        assert "3:5" in captured.out          # the dead inc(i) statement
        assert "^" in captured.out            # caret frame into the source
        assert "reason: guard (i < 3)" in captured.out
        assert "1 dead of" in captured.err

    def test_live_program_exits_zero(self, capsys):
        code = main(["--theory", "incnat", "dead-code", "inc(i); inc(j);"])
        captured = capsys.readouterr()
        assert code == 0
        assert "DEAD" not in captured.out
