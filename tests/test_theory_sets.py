"""Tests for the unbounded-set theory (paper Fig. 3c, Section 2.3)."""

import pytest

from repro.core import terms as T
from repro.core.kmt import KMT
from repro.core.semantics import Trace
from repro.theories.incnat import Gt, IncNatTheory, Incr
from repro.theories.sets import NatExpressionAdapter, SetAdd, SetIn, SetTheory
from repro.utils.errors import ParseError
from repro.utils.frozendict import FrozenDict


@pytest.fixture
def incnat():
    return IncNatTheory(variables=("i", "j"))


@pytest.fixture
def adapter(incnat):
    return NatExpressionAdapter(incnat, variables=("i", "j"))


@pytest.fixture
def theory(incnat, adapter):
    return SetTheory(incnat, adapter, set_variables=("X",))


@pytest.fixture
def kmt(theory):
    return KMT(theory)


class TestAdapter:
    def test_parse_expr(self, adapter):
        assert adapter.parse_expr("i") == "i"
        assert adapter.parse_expr("42") == 42

    def test_eq_pred_variable(self, adapter, incnat):
        assert adapter.eq_pred("i", 3) == incnat.eq("i", 3)

    def test_eq_pred_constant(self, adapter):
        assert adapter.eq_pred(5, 5) is T.pone()
        assert adapter.eq_pred(4, 5) is T.pzero()

    def test_eq_subterms_cover_declared_variables(self, adapter, incnat):
        subs = adapter.eq_subterms(2)
        assert incnat.eq("i", 2) in subs and incnat.eq("j", 2) in subs

    def test_eval_expr(self, adapter):
        state = FrozenDict(i=7)
        assert adapter.eval_expr("i", state) == 7
        assert adapter.eval_expr("missing", state) == 0
        assert adapter.eval_expr(3, state) == 3


class TestSemantics:
    def test_initial_state(self, theory):
        sets, inner = theory.initial_state()
        assert sets == FrozenDict(X=frozenset())
        assert inner == FrozenDict(i=0, j=0)

    def test_add_and_membership(self, theory):
        state = theory.initial_state()
        state = theory.act(Incr("i"), state)          # i = 1
        state = theory.act(SetAdd("X", "i"), state)   # X = {1}
        trace = Trace.initial(state)
        assert theory.pred(SetIn("X", 1), trace)
        assert not theory.pred(SetIn("X", 0), trace)
        assert theory.pred(Gt("i", 0), trace)

    def test_add_constant_expression(self, theory):
        state = theory.act(SetAdd("X", 9), theory.initial_state())
        assert theory.pred(SetIn("X", 9), Trace.initial(state))


class TestPushback:
    def test_add_other_set_commutes(self, theory):
        assert theory.push_back(SetAdd("Y", "i"), SetIn("X", 3)) == [T.pprim(SetIn("X", 3))]

    def test_add_in_axiom(self, theory, incnat):
        """Add-In: add(X, e); in(X, c) == ((e = c) + in(X, c)); add(X, e)."""
        result = theory.push_back(SetAdd("X", "i"), SetIn("X", 3))
        assert incnat.eq("i", 3) in result
        assert T.pprim(SetIn("X", 3)) in result

    def test_add_commutes_with_inner_tests(self, theory):
        assert theory.push_back(SetAdd("X", "i"), Gt("i", 2)) == [T.pprim(Gt("i", 2))]

    def test_inner_action_commutes_with_membership(self, theory):
        assert theory.push_back(Incr("i"), SetIn("X", 3)) == [T.pprim(SetIn("X", 3))]

    def test_inner_pair_delegates(self, theory):
        assert theory.push_back(Incr("i"), Gt("i", 2)) == [T.pprim(Gt("i", 1))]

    def test_subterms_of_membership_cover_equalities(self, theory, incnat):
        subs = list(theory.subterms(SetIn("X", 2)))
        assert incnat.eq("i", 2) in subs

    def test_subterms_of_inner_test_delegate(self, theory):
        assert T.pprim(Gt("i", 0)) in set(theory.subterms(Gt("i", 2)))


class TestSatisfiability:
    def test_membership_atoms_independent(self, theory):
        assert theory.satisfiable_conjunction(
            [(SetIn("X", 1), True), (SetIn("X", 2), False), (Gt("i", 3), True)]
        )

    def test_conflicting_membership(self, theory):
        assert not theory.satisfiable_conjunction(
            [(SetIn("X", 1), True), (SetIn("X", 1), False)]
        )

    def test_inner_conflict_detected(self, theory):
        assert not theory.satisfiable_conjunction(
            [(SetIn("X", 1), True), (Gt("i", 7), True), (Gt("i", 5), False)]
        )
        assert theory.satisfiable_conjunction(
            [(SetIn("X", 1), True), (Gt("i", 5), True), (Gt("i", 7), False)]
        )


class TestParsing:
    def test_phrases(self, theory):
        from repro.core.parser import tokenize

        def phrase(text):
            return theory.parse_phrase(tokenize(text)[:-1])

        assert phrase("in(X, 3)") == ("test", SetIn("X", 3))
        assert phrase("add(X, i)") == ("action", SetAdd("X", "i"))
        assert phrase("add(X, 9)") == ("action", SetAdd("X", 9))
        assert phrase("i > 3") == ("test", Gt("i", 3))
        with pytest.raises(ParseError):
            phrase("del(X, i)")

    def test_parse_term(self, kmt):
        term = kmt.parse("(inc(i); add(X, i))*; i > 3; in(X, 3)")
        assert isinstance(term, T.Term)


class TestEndToEnd:
    def test_paper_nonemptiness_claim(self, kmt):
        """Section 2.3: (inc i; add(x,i))*; i > N; in(x, N) is non-empty."""
        assert not kmt.is_empty("(inc(i); add(X, i))*; i > 4; in(X, 4)")

    def test_added_value_is_member(self, kmt):
        assert kmt.equivalent("i := 3; add(X, i); in(X, 3)", "i := 3; add(X, i)")

    def test_added_value_other_constant_unconstrained(self, kmt):
        """Membership of a different constant depends on the initial set."""
        assert not kmt.equivalent("i := 3; add(X, i); in(X, 4)", "i := 3; add(X, i)")
        assert not kmt.is_empty("i := 3; add(X, i); in(X, 4)")

    def test_membership_persists(self, kmt):
        """Sets only grow: once in(X, c) holds it keeps holding."""
        assert kmt.equivalent(
            "in(X, 2); inc(i); add(X, i); in(X, 2)", "in(X, 2); inc(i); add(X, i)"
        )

    def test_pset_like_program(self, kmt):
        """A bounded analogue of Fig. 1(b): insert i while i < 3, then check membership."""
        program = "i < 1; (i < 3; add(X, i); inc(i))*; ~(i < 3); in(X, 2)"
        dropped_assert = "i < 1; (i < 3; add(X, i); inc(i))*; ~(i < 3)"
        assert kmt.equivalent(program, dropped_assert)
        missing = "i < 1; (i < 3; add(X, i); inc(i))*; ~(i < 3); in(X, 7)"
        assert not kmt.equivalent(missing, dropped_assert)
