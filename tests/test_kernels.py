"""Tests for the flat-arena batched kernels (:mod:`repro.core.kernels`).

Covers, layer by layer:

* the seeded kernel differential required by the acceptance criteria: 200
  pairs **per theory** (incnat, bitvec, sets) holding ``flat_compare`` /
  ``flat_includes`` to *identical verdicts and identical shortest witness
  words* against the legacy tuple walk, with the derivative
  ``language_compare`` as verdict oracle and ``accepts_word`` validating
  every witness — plus a forced pure-Python run proving the no-numpy
  fallback keeps the same contract;
* cooperative cancellation checkpoints inside the batched kernels (the
  vectorized level BFS, the legacy-walk fallback, and both
  ``accepts_batch`` paths);
* ``accepts_batch`` parity with the scalar ``accepts`` loop across batch
  sizes, unknown symbols, and the empty word;
* the ``kernel`` trace phase and its counters;
* the arena layer: process-wide sigma interning, ``ArenaPool`` weak
  tracking, and ``aut_bytes`` in every stats aggregation (session, sharded
  pool, merged worker blocks);
* batched membership end to end (``member_nf_many`` → ``KMT.member_many``
  → ``EngineSession.member_many``) against the scalar path on every
  kernel/compile configuration;
* the ``walk_kernel`` plumbing: validation, end-to-end flat/legacy
  agreement through the full decision procedure, the pool/runner conflict
  check, and the CLI flag.

The vectorized BFS only engages above ``_BFS_NUMPY_MIN_PAIRS`` product
codes in production (small walks are faster pair-at-a-time); the
differential tests monkeypatch that floor to 0 so the random small automata
genuinely exercise the numpy path when numpy is importable.
"""

from __future__ import annotations

import gc
import random

import pytest

from repro import cli
from repro.core import kernels
from repro.core import terms as T
from repro.core.arena import ArenaPool, intern_sigma, sigma_index
from repro.core.automata import language_compare
from repro.core.compile import compile_automaton, compiled_compare, compiled_includes
from repro.core.decision import WALK_KERNELS, EquivalenceChecker
from repro.core.kernels import accepts_batch, flat_compare, flat_includes
from repro.core.kmt import KMT
from repro.core.regexes import accepts_word
from repro.engine.batch import BatchRunner, SessionPool
from repro.engine.server import ShardedSessionPool, merge_pool_stats
from repro.engine.session import EngineSession
from repro.theories.bitvec import BitVecTheory, BoolAssign
from repro.theories.incnat import AssignNat, IncNatTheory, Incr
from repro.theories.sets import SetAdd
from repro.utils.errors import QueryCancelled
from repro.utils.trace import Trace, activate, deactivate

#: Acceptance criterion: >= 200 seeded pairs per theory.
KERNEL_PAIRS = 200

A = T.tprim(BoolAssign("a", True))
B = T.tprim(BoolAssign("b", True))
PI_A = BoolAssign("a", True)


# ---------------------------------------------------------------------------
# random action-term generators (restricted actions: no tests, per theory)
# ---------------------------------------------------------------------------


def _bitvec_action(rng):
    return BoolAssign(rng.choice(("a", "b", "c")), rng.random() < 0.5)


def _incnat_action(rng):
    if rng.random() < 0.6:
        return Incr(rng.choice(("x", "y")))
    return AssignNat(rng.choice(("x", "y")), rng.randint(0, 4))


def _sets_action(rng):
    if rng.random() < 0.7:
        expr = "i" if rng.random() < 0.4 else rng.randint(0, 2)
        return SetAdd(rng.choice(("X", "Y")), expr)
    return Incr("i")


def _random_action_term(rng, action_leaf, depth):
    roll = rng.random()
    if depth <= 0 or roll < 0.35:
        r = rng.random()
        if r < 0.08:
            return T.tone()
        if r < 0.13:
            return T.tzero()
        return T.tprim(action_leaf(rng))
    if roll < 0.45:
        return T.tstar(_random_action_term(rng, action_leaf, depth - 1))
    if roll < 0.75:
        return T.tseq(
            _random_action_term(rng, action_leaf, depth - 1),
            _random_action_term(rng, action_leaf, depth - 1),
        )
    return T.tplus(
        _random_action_term(rng, action_leaf, depth - 1),
        _random_action_term(rng, action_leaf, depth - 1),
    )


def _equivalent_variant(rng, p, q):
    """Pairs provably equivalent by a KA law (not always syntactically so)."""
    choice = rng.randrange(4)
    if choice == 0:
        return p, T.tplus(p, p)
    if choice == 1:
        return p, T.tseq(p, T.tone())
    if choice == 2:
        return T.tstar(p), T.tplus(T.tone(), T.tseq(p, T.tstar(p)))
    return T.tplus(p, q), T.tplus(q, p)


def _run_kernel_differential(action_leaf, seed, pairs):
    """Hold flat vs legacy to tuple equality (verdict AND witness word) over
    ``pairs`` seeded random automaton pairs, with the derivative oracle on
    verdicts and one-sidedness checks on every witness."""
    rng = random.Random(seed)
    compared = inequivalent = equivalent = attempts = 0
    while compared < pairs:
        attempts += 1
        assert attempts < pairs * 20, "too many generation attempts"
        p = _random_action_term(rng, action_leaf, depth=3)
        q = _random_action_term(rng, action_leaf, depth=3)
        if rng.random() < 0.45:
            p, q = _equivalent_variant(rng, p, q)
        a, b = compile_automaton(p), compile_automaton(q)
        legacy_eq = compiled_compare(a, b)
        flat_eq = flat_compare(a, b)
        assert flat_eq == legacy_eq, f"compare mismatch on {p!r} vs {q!r}"
        assert legacy_eq[0] == language_compare(p, q)[0], \
            f"derivative oracle disagrees on {p!r} vs {q!r}"
        legacy_inc = compiled_includes(a, b)
        flat_inc = flat_includes(a, b)
        assert flat_inc == legacy_inc, f"includes mismatch on {p!r} vs {q!r}"
        if legacy_eq[0]:
            equivalent += 1
            assert legacy_inc == (True, None)
        else:
            inequivalent += 1
            word = flat_eq[1]
            assert accepts_word(p, word) != accepts_word(q, word)
            if not flat_inc[0]:
                witness = flat_inc[1]
                assert accepts_word(p, witness) and not accepts_word(q, witness)
        compared += 1
    assert inequivalent >= 10 and equivalent >= 10  # both verdicts exercised


class TestKernelDifferential:
    @pytest.fixture(autouse=True)
    def _engage_vectorized_bfs(self, monkeypatch):
        # Production routes small products to the legacy walk; force the
        # vectorized BFS (when numpy is importable) so these pairs actually
        # differentiate it.  Without numpy the run is the pure fallback —
        # the contract under test is identical either way.
        monkeypatch.setattr(kernels, "_BFS_NUMPY_MIN_PAIRS", 0)

    def test_bitvec_differential(self):
        _run_kernel_differential(_bitvec_action, seed=20260807, pairs=KERNEL_PAIRS)

    def test_incnat_differential(self):
        _run_kernel_differential(_incnat_action, seed=20260808, pairs=KERNEL_PAIRS)

    def test_sets_differential(self):
        _run_kernel_differential(_sets_action, seed=20260809, pairs=KERNEL_PAIRS)

    def test_forced_pure_python_fallback(self, monkeypatch):
        """Same contract with numpy hidden (what the no-numpy CI lane runs)."""
        monkeypatch.setattr(kernels, "_np", None)
        _run_kernel_differential(_bitvec_action, seed=20260810, pairs=60)


# ---------------------------------------------------------------------------
# cooperative cancellation inside the batched kernels
# ---------------------------------------------------------------------------


def _ticking_cancel(limit):
    calls = []

    def cancel():
        calls.append(1)
        if len(calls) >= limit:
            raise QueryCancelled("deadline")

    return cancel


def _deep_chain_pair(n):
    """``a^n`` vs ``a^(n+1)``: inequivalent with the witness ``n`` levels deep,
    so the BFS runs several levels before finding a mismatch."""
    chain = A
    for _ in range(n - 1):
        chain = T.tseq(chain, A)
    return compile_automaton(chain), compile_automaton(T.tseq(chain, A))


class TestCancellation:
    def test_cancel_inside_vectorized_bfs(self, monkeypatch):
        if not kernels.HAVE_NUMPY:
            pytest.skip("numpy unavailable: vectorized BFS never engages")
        monkeypatch.setattr(kernels, "_BFS_NUMPY_MIN_PAIRS", 0)
        a, b = _deep_chain_pair(6)
        with pytest.raises(QueryCancelled):
            flat_compare(a, b, cancel=_ticking_cancel(2))
        with pytest.raises(QueryCancelled):
            flat_includes(b, a, cancel=_ticking_cancel(2))

    def test_cancel_inside_fallback_walk(self, monkeypatch):
        monkeypatch.setattr(kernels, "_np", None)
        a, b = _deep_chain_pair(6)
        with pytest.raises(QueryCancelled):
            flat_compare(a, b, cancel=_ticking_cancel(2))

    def test_fastpath_never_cancels(self):
        """Equal tables decide before any checkpoint — deadline-safe."""
        a = compile_automaton(T.tstar(T.tplus(A, B)))
        b = compile_automaton(T.tseq(T.tstar(A), T.tstar(T.tseq(B, T.tstar(A)))))

        def explode():
            raise QueryCancelled("should not be consulted")

        assert flat_compare(a, b, cancel=explode) == (True, None)

    def test_cancel_inside_accepts_batch_vectorized(self):
        if not kernels.HAVE_NUMPY:
            pytest.skip("numpy unavailable: vectorized membership never engages")
        aut = compile_automaton(T.tstar(T.tplus(A, B)))
        words = [(PI_A,) * 4] * kernels._BATCH_NUMPY_MIN
        with pytest.raises(QueryCancelled):
            accepts_batch(aut, words, cancel=_ticking_cancel(2))

    def test_cancel_inside_accepts_batch_loop(self, monkeypatch):
        monkeypatch.setattr(kernels, "_np", None)
        aut = compile_automaton(T.tstar(A))
        with pytest.raises(QueryCancelled):
            accepts_batch(aut, [(PI_A,)] * 10, cancel=_ticking_cancel(3))


# ---------------------------------------------------------------------------
# batched membership parity
# ---------------------------------------------------------------------------


def _random_words(rng, aut, count):
    unknown = BoolAssign("zz", True)
    assert unknown not in aut.sigma
    pool = list(aut.sigma) + [unknown]
    words = [()]
    while len(words) < count:
        words.append(tuple(rng.choice(pool) for _ in range(rng.randint(0, 5))))
    return words


class TestAcceptsBatch:
    def _parity(self, count):
        rng = random.Random(count)
        term = _random_action_term(rng, _bitvec_action, depth=3)
        aut = compile_automaton(term)
        words = _random_words(rng, aut, count)
        assert accepts_batch(aut, words) == [aut.accepts(word) for word in words]

    def test_large_batch_matches_scalar_accepts(self):
        self._parity(count=40)  # >= _BATCH_NUMPY_MIN: the gather path

    def test_small_batch_matches_scalar_accepts(self):
        self._parity(count=3)  # < _BATCH_NUMPY_MIN: the loop path

    def test_fallback_matches_scalar_accepts(self, monkeypatch):
        monkeypatch.setattr(kernels, "_np", None)
        self._parity(count=40)

    def test_empty_batch(self):
        assert accepts_batch(compile_automaton(A), []) == []

    def test_empty_language_automaton(self):
        aut = compile_automaton(T.tzero())
        words = [(), (PI_A,), (PI_A, PI_A)] * 4
        assert accepts_batch(aut, words) == [False] * len(words)


# ---------------------------------------------------------------------------
# the kernel trace phase and counters
# ---------------------------------------------------------------------------


class TestTraceCounters:
    def _traced(self, fn):
        trace = activate(Trace())
        try:
            fn()
        finally:
            deactivate()
        return trace

    def test_fastpath_hit_counted_under_kernel_phase(self):
        a = compile_automaton(T.tstar(T.tplus(A, B)))
        b = compile_automaton(T.tseq(T.tstar(A), T.tstar(T.tseq(B, T.tstar(A)))))
        trace = self._traced(lambda: flat_compare(a, b))
        assert trace.counters["kernel_fastpath_hits"] == 1
        assert trace.phase_counts.get("kernel") == 1

    def test_bfs_levels_and_pairs_counted(self, monkeypatch):
        if not kernels.HAVE_NUMPY:
            pytest.skip("numpy unavailable: vectorized BFS never engages")
        monkeypatch.setattr(kernels, "_BFS_NUMPY_MIN_PAIRS", 0)
        a, b = _deep_chain_pair(4)
        trace = self._traced(lambda: flat_compare(a, b))
        assert trace.counters["kernel_levels"] >= 2
        assert trace.counters["kernel_pairs"] >= 1
        assert "kernel_fastpath_hits" not in trace.counters

    def test_walk_fallback_counted(self, monkeypatch):
        monkeypatch.setattr(kernels, "_np", None)
        a, b = _deep_chain_pair(3)
        trace = self._traced(lambda: flat_compare(a, b))
        assert trace.counters["kernel_walk_fallbacks"] == 1

    def test_batch_words_counted(self):
        aut = compile_automaton(T.tstar(A))
        trace = self._traced(lambda: accepts_batch(aut, [(), (PI_A,)]))
        assert trace.counters["kernel_batch_words"] == 2


# ---------------------------------------------------------------------------
# the arena layer: interning, pools, aut_bytes aggregation
# ---------------------------------------------------------------------------


class TestArena:
    def test_sigma_interned_across_automata(self):
        a = compile_automaton(T.tseq(A, B))
        b = compile_automaton(T.tplus(A, B))
        assert a.sigma == b.sigma
        assert a.sigma is b.sigma  # one canonical tuple per alphabet
        assert sigma_index(a.sigma) is sigma_index(b.sigma)  # one shared index
        assert intern_sigma(tuple(a.sigma)) is a.sigma

    def test_arena_pool_tracks_live_bytes(self):
        pool = ArenaPool()
        aut = compile_automaton(T.tseq(A, B), pool=pool)
        assert pool.live_count == 1
        assert aut.nbytes > 0
        assert pool.aut_bytes == aut.nbytes
        stats = pool.stats()
        assert stats["automata"] == 1 and stats["adopted"] == 1
        assert stats["aut_bytes"] == aut.nbytes
        # Weak tracking: dropping the only strong reference releases the
        # bytes (the aut LRU's eviction policy owns lifetime, not the pool).
        del aut
        gc.collect()
        assert pool.live_count == 0 and pool.aut_bytes == 0
        assert pool.stats()["adopted"] == 1  # lifetime counter survives

    def test_session_stats_report_aut_bytes(self):
        session = EngineSession(IncNatTheory(variables=("x",)))
        session.check_equivalent("inc(x)", "(inc(x))*")
        stats = session.stats()
        assert stats["session"]["aut_bytes"] > 0
        assert stats["aut_bytes"] == stats["session"]["aut_bytes"]

    def test_sharded_pool_aggregates_aut_bytes(self):
        pool = ShardedSessionPool(stripes=2)
        session = pool.session("incnat", 0)
        with session.lock:
            session.check_equivalent("inc(x)", "(inc(x))*")
        assert pool.stats()["incnat"]["aut_bytes"] > 0

    def test_merge_pool_stats_sums_aut_bytes(self):
        block = {
            "incnat": {
                "stripes": 1, "queries": 2, "states_compiled": 5, "aut_bytes": 640,
                "tables": {}, "totals": {"hits": 0, "misses": 0},
            },
            "shared": {"tables": {}},
        }
        merged = merge_pool_stats([block, block])
        assert merged["incnat"]["aut_bytes"] == 1280


# ---------------------------------------------------------------------------
# batched membership end to end
# ---------------------------------------------------------------------------

_MEMBER_TERM = "(inc(x))*; inc(y)"
_MEMBER_WORDS = [
    [],
    ["inc(x)"],
    ["inc(y)"],
    ["inc(x)", "inc(y)"],
    ["inc(x)", "inc(x)", "inc(y)"],
    ["inc(y)", "inc(y)"],
    ["inc(x)", "inc(y)", "inc(x)"],
    ["inc(x)", "inc(x)"],
    ["inc(x)", "inc(x)", "inc(x)", "inc(y)"],
]


class TestMemberMany:
    def _expected(self, kmt):
        return [kmt.member(_MEMBER_TERM, word) for word in _MEMBER_WORDS]

    def test_matches_scalar_member_on_every_configuration(self):
        for kwargs in (
            {},
            {"walk_kernel": "legacy"},
            {"use_compiled": False},
        ):
            kmt = KMT(IncNatTheory(variables=("x", "y")), **kwargs)
            assert kmt.member_many(_MEMBER_TERM, _MEMBER_WORDS) == self._expected(kmt), kwargs

    def test_session_member_many(self):
        session = EngineSession(IncNatTheory(variables=("x", "y")))
        verdicts = session.member_many(_MEMBER_TERM, _MEMBER_WORDS)
        assert verdicts == [session.member(_MEMBER_TERM, word) for word in _MEMBER_WORDS]
        # One public entry point = one query (plus the scalar replays above).
        assert session.queries == 1 + len(_MEMBER_WORDS)

    def test_member_many_reuses_the_aut_cache(self):
        session = EngineSession(IncNatTheory(variables=("x", "y")))
        session.member_many(_MEMBER_TERM, _MEMBER_WORDS)
        compiled = session.kmt.checker.states_compiled
        assert compiled > 0
        session.member_many(_MEMBER_TERM, [["inc(y)"], ["inc(x)"]])
        assert session.kmt.checker.states_compiled == compiled


# ---------------------------------------------------------------------------
# walk_kernel plumbing
# ---------------------------------------------------------------------------


class TestWalkKernelPlumbing:
    def test_known_kernels(self):
        assert WALK_KERNELS == ("flat", "legacy")

    def test_invalid_walk_kernel_rejected(self):
        with pytest.raises(ValueError):
            EquivalenceChecker(IncNatTheory(), walk_kernel="numpy")
        with pytest.raises(ValueError):
            KMT(IncNatTheory(), walk_kernel="")

    def test_flat_and_legacy_agree_through_the_decision_procedure(self):
        flat = KMT(IncNatTheory(variables=("x", "y")))
        legacy = KMT(IncNatTheory(variables=("x", "y")), walk_kernel="legacy")
        pairs = [
            ("(inc(x))*; x > 1", "(inc(x))*; (inc(x))*; x > 1"),
            ("inc(x) + inc(y)", "inc(y) + inc(x)"),
            ("inc(x); inc(y)", "inc(y); inc(x)"),
            ("(inc(x))*", "inc(x)"),
        ]
        for left, right in pairs:
            flat_result = flat.check_equivalent(left, right)
            legacy_result = legacy.check_equivalent(left, right)
            assert flat_result.equivalent == legacy_result.equivalent
            if not flat_result.equivalent:
                assert (flat_result.counterexample.word
                        == legacy_result.counterexample.word)

    def test_batch_runner_pool_conflict(self):
        pool = SessionPool(walk_kernel="legacy")
        with pytest.raises(ValueError, match="walk_kernel"):
            BatchRunner(pool=pool, walk_kernel="flat")
        assert BatchRunner(pool=pool).pool.walk_kernel == "legacy"
        assert BatchRunner(pool=pool, walk_kernel="legacy").pool is pool
        assert BatchRunner(walk_kernel="legacy").pool.walk_kernel == "legacy"
        assert BatchRunner().pool.walk_kernel == "flat"

    def test_session_pool_builds_matching_sessions(self):
        pool = SessionPool(walk_kernel="legacy")
        session = pool.session("incnat")
        assert session.kmt.checker.walk_kernel == "legacy"
        assert ShardedSessionPool(stripes=1, walk_kernel="legacy") \
            .session("incnat", 0).kmt.checker.walk_kernel == "legacy"

    def test_cli_walk_kernel_flag(self, capsys):
        base = ["--theory", "incnat", "--walk-kernel"]
        assert cli.main(base + ["legacy", "equiv", "inc(x)", "inc(x)"]) == 0
        assert "equivalent" in capsys.readouterr().out
        assert cli.main(base + ["flat", "incl", "inc(x)", "inc(x) + inc(y)"]) == 0
        capsys.readouterr()
        with pytest.raises(SystemExit):  # argparse rejects unknown kernels
            cli.main(base + ["nope", "equiv", "inc(x)", "inc(x)"])
        capsys.readouterr()
