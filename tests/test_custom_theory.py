"""A client theory defined purely against the public interface.

The framework's promise (Section 1) is that outsiders can define new concrete
KATs without touching the core.  This test module plays the outsider: it
defines a *modular traffic-light* theory from scratch — a finite ordered cycle
with a monotone-within-a-phase "advance to" action — using only the public
`Theory` API, and then checks that everything the framework derives (parsing,
semantics, normalization, equivalence, emptiness, Hoare triples) works on it.

It doubles as a regression test that the `Theory` interface is actually
sufficient: if a framework change makes some hidden hook mandatory, this
module is the canary.
"""

from dataclasses import dataclass

import pytest

from repro.analysis import HoareLogic
from repro.core import terms as T
from repro.core.kmt import KMT
from repro.core.parser import match_phrase, phrase_text
from repro.core.theory import Theory
from repro.theories.product import ProductTheory
from repro.theories.bitvec import BitVecTheory
from repro.utils.errors import ParseError, TheoryError
from repro.utils.frozendict import FrozenDict

PHASES = ("RED", "AMBER", "GREEN")
RANK = {name: index for index, name in enumerate(PHASES)}


@dataclass(frozen=True)
class PhaseAtLeast:
    """Primitive test ``light >= PHASE`` in the RED < AMBER < GREEN order."""

    var: str
    phase: str

    def __str__(self):
        return f"{self.var} >= {self.phase}"


@dataclass(frozen=True)
class AdvanceTo:
    """Primitive action ``advance(light, PHASE)``: move forward to at least PHASE."""

    var: str
    phase: str

    def __str__(self):
        return f"advance({self.var}, {self.phase})"


class TrafficTheory(Theory):
    name = "traffic"

    def owns_test(self, alpha):
        return isinstance(alpha, PhaseAtLeast)

    def owns_action(self, pi):
        return isinstance(pi, AdvanceTo)

    def initial_state(self):
        return FrozenDict()

    def pred(self, alpha, trace):
        return RANK[trace.last_state.get(alpha.var, "RED")] >= RANK[alpha.phase]

    def act(self, pi, state):
        current = state.get(pi.var, "RED")
        if RANK[current] >= RANK[pi.phase]:
            return state.set(pi.var, current)
        return state.set(pi.var, pi.phase)

    def push_back(self, pi, alpha):
        if not isinstance(pi, AdvanceTo) or not isinstance(alpha, PhaseAtLeast):
            raise TheoryError("foreign primitives")
        if pi.var != alpha.var:
            return [T.pprim(alpha)]
        if RANK[pi.phase] >= RANK[alpha.phase]:
            return [T.pone()]
        return [T.pprim(alpha)]

    def subterms(self, alpha):
        return []

    def satisfiable_conjunction(self, literals):
        lower = {}
        upper = {}
        for alpha, polarity in literals:
            rank = RANK[alpha.phase]
            if polarity:
                lower[alpha.var] = max(lower.get(alpha.var, 0), rank)
            else:
                upper[alpha.var] = min(upper.get(alpha.var, len(PHASES)), rank)
        for var, need in lower.items():
            if need >= upper.get(var, len(PHASES)):
                return False
        return all(cap > 0 for cap in upper.values())

    def parse_phrase(self, tokens):
        matched = match_phrase(tokens, "WORD", ">=", "WORD")
        if matched is not None and matched[1] in RANK:
            return ("test", PhaseAtLeast(matched[0], matched[1]))
        matched = match_phrase(tokens, "advance", "(", "WORD", ",", "WORD", ")")
        if matched is not None and matched[1] in RANK:
            return ("action", AdvanceTo(matched[0], matched[1]))
        raise ParseError(f"traffic theory cannot parse {phrase_text(tokens)!r}")


@pytest.fixture
def kmt():
    return KMT(TrafficTheory())


class TestDerivedMachinery:
    def test_parsing(self, kmt):
        term = kmt.parse("light >= AMBER; advance(light, GREEN)")
        assert isinstance(term, T.TSeq)

    def test_semantics(self, kmt):
        traces = kmt.run("advance(light, AMBER); light >= AMBER")
        assert len(traces) == 1
        assert next(iter(traces)).last_state["light"] == "AMBER"

    def test_pushback_axiom(self, kmt):
        assert kmt.equivalent("advance(light, GREEN); light >= AMBER", "advance(light, GREEN)")
        assert kmt.equivalent(
            "advance(light, AMBER); light >= GREEN", "light >= GREEN; advance(light, AMBER)"
        )

    def test_monotonicity_is_captured(self, kmt):
        """Once GREEN is reached, advancing never loses it."""
        assert kmt.equivalent(
            "light >= GREEN; advance(light, AMBER); light >= GREEN",
            "light >= GREEN; advance(light, AMBER)",
        )

    def test_unreachable_phase_is_empty(self, kmt):
        assert kmt.is_empty("~(light >= AMBER); advance(light, AMBER); light >= GREEN")
        assert not kmt.is_empty("advance(light, AMBER); light >= AMBER")

    def test_normalization_of_guarded_loop(self, kmt):
        loop = "(~(light >= GREEN); advance(light, GREEN))*; light >= GREEN"
        nf = kmt.normalize(kmt.parse(loop))
        for _, action in nf:
            assert T.is_restricted(action)
        assert not kmt.is_empty(loop)

    def test_satisfiability(self, kmt):
        assert kmt.satisfiable("light >= AMBER; ~(light >= GREEN)")
        assert not kmt.satisfiable("light >= GREEN; ~(light >= AMBER)")
        assert not kmt.satisfiable("~(light >= RED)")

    def test_counterexample_on_failure(self, kmt):
        result = kmt.check_equivalent(
            "advance(light, AMBER); light >= GREEN", "advance(light, AMBER)"
        )
        assert not result.equivalent
        assert result.counterexample is not None

    def test_hoare_layer_works_unmodified(self, kmt):
        hoare = HoareLogic(kmt)
        assert hoare.holds("true", "advance(light, GREEN)", "light >= GREEN")
        assert hoare.holds("light >= AMBER", "advance(light, RED)", "light >= AMBER")
        assert not hoare.holds("true", "advance(light, AMBER)", "light >= GREEN")

    def test_composes_with_shipped_theories(self):
        """The new theory drops straight into a product with BitVec."""
        theory = ProductTheory(TrafficTheory(), BitVecTheory(variables=("button",)))
        kmt = KMT(theory)
        assert kmt.equivalent(
            "button = T; advance(light, GREEN); light >= AMBER",
            "button = T; advance(light, GREEN)",
        )
        assert kmt.equivalent(
            "advance(light, GREEN); button = T", "button = T; advance(light, GREEN)"
        )
