"""End-to-end integration tests: whole programs, composed theories, Fig. 1/9 scenarios."""

import pytest

from repro.core import terms as T
from repro.core.kmt import KMT
from repro.lang import parse_program
from repro.theories.bitvec import BitVecTheory
from repro.theories.incnat import IncNatTheory
from repro.theories.ltlf import LtlfTheory
from repro.theories.maps import MapTheory, NatBoolMapAdapter
from repro.theories.product import ProductTheory
from repro.theories.sets import NatExpressionAdapter, SetTheory


class TestFig9Microbenchmarks:
    """Every decidable row of the paper's Fig. 9 as a correctness assertion."""

    def test_row1_star_vs_predicate(self):
        kmt = KMT(IncNatTheory())
        # a* == 1 for any test a, so a* != a unless a is a tautology.
        assert not kmt.equivalent("(x > 2; ~(x > 7))*", "x > 2; ~(x > 7)")
        assert kmt.equivalent("(x > 2; ~(x > 7))*", "true")

    def test_row2_star_absorbs_second_star(self):
        kmt = KMT(IncNatTheory())
        assert kmt.equivalent("inc(x)*; x > 10", "inc(x)*; inc(x)*; x > 10")

    def test_row3_independent_counters_commute(self):
        kmt = KMT(IncNatTheory())
        assert kmt.equivalent(
            "inc(x)*; x > 3; inc(y)*; y > 3", "inc(x)*; inc(y)*; x > 3; y > 3"
        )

    def test_row4_parity_loop(self):
        kmt = KMT(BitVecTheory())
        assert kmt.equivalent("x = F; (flip x; flip x)*", "(flip x; flip x)*; x = F")

    def test_row5_boolean_disjunction_associativity(self):
        kmt = KMT(BitVecTheory())
        lhs = (
            "w := F; x := T; y := F; z := F; "
            "(if(w = T + x = T + y = T + z = T) then a := T else a := F)"
        )
        rhs = (
            "w := F; x := T; y := F; z := F; "
            "(if((w = T + x = T) + (y = T + z = T)) then a := T else a := F)"
        )
        assert kmt.equivalent(lhs, rhs)

    def test_row6_population_count(self):
        kmt = KMT(ProductTheory(IncNatTheory(), BitVecTheory()))
        lhs = "y < 1; a = T; inc(y); (1 + b = T; inc(y)); (1 + c = T; inc(y)); y > 2"
        rhs = "y < 1; a = T; b = T; c = T; inc(y); inc(y); inc(y)"
        assert kmt.equivalent(lhs, rhs)

    @pytest.mark.slow
    def test_row7_flip3_exceeds_budget(self):
        from repro.utils.errors import NormalizationBudgetExceeded

        kmt = KMT(BitVecTheory(), budget=100_000)
        with pytest.raises(NormalizationBudgetExceeded):
            kmt.equivalent("(flip x + flip y + flip z)*", "(flip x + flip y + flip z)*")


class TestPnatEndToEnd:
    """Fig. 1(a), scaled to small constants so the run stays quick."""

    def setup_method(self):
        self.theory = IncNatTheory(variables=("i", "j"))
        self.kmt = KMT(self.theory)
        self.program = parse_program(
            """
            assume i < 2;
            while (i < 4) {
                inc(i);
                inc(j); inc(j);
            }
            assert j > 3;
            """,
            self.theory,
        ).compile()

    def test_program_is_satisfiable(self):
        assert not self.kmt.is_empty(self.program)

    def test_assert_is_redundant(self):
        without = parse_program(
            """
            assume i < 2;
            while (i < 4) {
                inc(i);
                inc(j); inc(j);
            }
            """,
            self.theory,
        ).compile()
        assert self.kmt.equivalent(self.program, without)

    def test_semantics_matches_decision(self):
        """Running the compiled program agrees with the equivalence verdicts."""
        from repro.utils.frozendict import FrozenDict

        traces = self.kmt.run(self.program, state=FrozenDict(i=0, j=0), star_bound=8)
        final_states = {t.last_state for t in traces}
        assert final_states == {FrozenDict(i=4, j=8)}


class TestPsetEndToEnd:
    """Fig. 1(b) adapted to the shipped Set theory (Section 2.3)."""

    def setup_method(self):
        nat = IncNatTheory(variables=("i",))
        adapter = NatExpressionAdapter(nat, variables=("i",))
        self.theory = SetTheory(nat, adapter, set_variables=("X",))
        self.kmt = KMT(self.theory)

    def test_loop_inserts_counter_values(self):
        program = "i < 1; (i < 4; add(X, i); inc(i))*; ~(i < 4)"
        for member in range(4):
            assert self.kmt.equivalent(f"{program}; in(X, {member})", program)
        assert not self.kmt.equivalent(f"{program}; in(X, 7)", program)

    def test_paper_claim_about_unbounded_membership(self):
        assert not self.kmt.is_empty("(inc(i); add(X, i))*; i > 3; in(X, 3)")


class TestPmapEndToEnd:
    """Fig. 1(c): the parity map, with bounded loop constants."""

    def setup_method(self):
        nat = IncNatTheory(variables=("i",))
        bools = BitVecTheory(variables=("parity",))
        inner = ProductTheory(nat, bools)
        adapter = NatBoolMapAdapter(
            nat, bools, key_variables=("i",), value_variables=("parity",)
        )
        self.theory = MapTheory(inner, adapter, map_variables=("odd",))
        self.kmt = KMT(self.theory)
        self.program = (
            "i := 0; parity := F; "
            "(i < 4; odd[i] := parity; inc(i); flip parity)*; ~(i < 4)"
        )

    def test_odd_indices_map_to_true(self):
        assert self.kmt.equivalent(f"{self.program}; odd[1] = T", self.program)
        assert self.kmt.equivalent(f"{self.program}; odd[3] = T", self.program)

    def test_even_indices_map_to_false(self):
        assert self.kmt.equivalent(f"{self.program}; odd[0] = F", self.program)
        assert self.kmt.equivalent(f"{self.program}; odd[2] = F", self.program)

    def test_wrong_parity_is_empty(self):
        assert self.kmt.is_empty(f"{self.program}; odd[2] = T")


class TestCompositionality:
    """Higher-order theories stack: LTLf over a product, sets over naturals."""

    def test_ltlf_over_product(self):
        base = ProductTheory(IncNatTheory(variables=("n",)), BitVecTheory(variables=("flag",)))
        theory = LtlfTheory(base)
        kmt = KMT(theory)
        program = kmt.parse("flag := T; inc(n); flag := F")
        was_set = T.ttest(theory.ever(base.right.eq("flag", True)))
        assert kmt.equivalent(program, T.tseq(program, was_set))

    def test_temporal_population_count(self):
        base = ProductTheory(IncNatTheory(variables=("n",)), BitVecTheory(variables=("a",)))
        theory = LtlfTheory(base)
        kmt = KMT(theory)
        lhs = kmt.parse("n < 1; a = T; inc(n); n > 0")
        rhs = kmt.parse("n < 1; a = T; inc(n)")
        assert kmt.equivalent(lhs, rhs)

    def test_three_way_product(self):
        theory = ProductTheory(
            IncNatTheory(variables=("x",)),
            ProductTheory(BitVecTheory(variables=("a",)), IncNatTheory(variables=("z",))),
        )
        kmt = KMT(theory)
        assert kmt.equivalent("inc(x); a = T; inc(z)", "a = T; inc(x); inc(z)")
