"""Cluster router tests: the consistent-hash ring's contracts, admission
control, and the full failover story over live (and scripted) backends.

The ring properties are the load-bearing ones — *stable assignment* and
*minimal remapping* are what make the router's cache-affinity claims true —
so they are pinned with Hypothesis over key sets and ring sizes, plus an
explicit check that the router and the in-server stripe picker agree on the
routing key for every query op.
"""

import json
import socket
import threading
import time

import pytest

from hypothesis import given, settings, strategies as st

from repro.engine.batch import (
    ERROR_BACKEND_DOWN,
    ERROR_INVALID,
    ERROR_QUEUE_FULL,
    ERROR_RATE_LIMITED,
    ERROR_SHUTDOWN,
    QUERY_OPS,
)
from repro.engine.router import (
    ConsistentHashRing,
    Router,
    TokenBucket,
    parse_backends,
)
from repro.engine.server import (
    ResponseSink,
    SocketServer,
    _affinity_stripe,
    affinity_hash,
)
from repro.utils.errors import KmtError


class ListSink(ResponseSink):
    def __init__(self, ordered=False):
        self.responses = []
        super().__init__(lambda line: self.responses.append(json.loads(line)),
                         ordered=ordered)


def record(**fields):
    return json.dumps(fields)


def equiv_line(i, **extra):
    return record(op="equiv", left=f"inc(x); x > {i + 1}",
                  right=f"x > {i}; inc(x)", **extra)


# ---------------------------------------------------------------------------
# consistent-hash ring properties
# ---------------------------------------------------------------------------

_nodes = st.sets(
    st.integers(min_value=0, max_value=99).map(lambda i: f"10.0.0.{i}:7000"),
    min_size=1, max_size=8)
_keys = st.lists(st.integers(min_value=0, max_value=2**32 - 1),
                 min_size=1, max_size=64)


class TestConsistentHashRing:
    @settings(max_examples=50, deadline=None)
    @given(nodes=_nodes, keys=_keys)
    def test_assignment_is_stable_and_order_independent(self, nodes, keys):
        """Same membership -> same owners, however the ring was assembled."""
        ordered = sorted(nodes)
        forward = ConsistentHashRing(ordered, replicas=16)
        backward = ConsistentHashRing(reversed(ordered), replicas=16)
        rebuilt = ConsistentHashRing(replicas=16)
        for node in ordered:
            rebuilt.add(node)
        for key in keys:
            owner = forward.lookup(key)
            assert owner in nodes
            assert backward.lookup(key) == owner
            assert rebuilt.lookup(key) == owner

    @settings(max_examples=50, deadline=None)
    @given(nodes=_nodes, keys=_keys, data=st.data())
    def test_leave_remaps_only_the_leavers_keys(self, nodes, keys, data):
        ring = ConsistentHashRing(nodes, replicas=16)
        leaver = data.draw(st.sampled_from(sorted(nodes)))
        before = {key: ring.lookup(key) for key in keys}
        ring.remove(leaver)
        for key in keys:
            after = ring.lookup(key)
            if before[key] != leaver:
                assert after == before[key]
            elif len(nodes) > 1:
                assert after is not None and after != leaver
            else:
                assert after is None

    @settings(max_examples=50, deadline=None)
    @given(nodes=_nodes, keys=_keys)
    def test_join_steals_keys_only_for_itself(self, nodes, keys):
        ring = ConsistentHashRing(nodes, replicas=16)
        before = {key: ring.lookup(key) for key in keys}
        joiner = "joiner.example:7999"
        ring.add(joiner)
        for key in keys:
            assert ring.lookup(key) in (before[key], joiner)

    @settings(max_examples=50, deadline=None)
    @given(nodes=_nodes, keys=_keys)
    def test_preference_is_the_failover_order(self, nodes, keys):
        """preference()[1] is exactly where a key lands when its owner dies."""
        ring = ConsistentHashRing(nodes, replicas=16)
        for key in keys:
            order = ring.preference(key)
            assert order[0] == ring.lookup(key)
            assert sorted(order) == sorted(nodes)  # distinct, exhaustive
            if len(nodes) > 1:
                survivor = ConsistentHashRing(nodes, replicas=16)
                survivor.remove(order[0])
                assert survivor.lookup(key) == order[1]

    def test_membership_bookkeeping(self):
        ring = ConsistentHashRing(["a:1", "b:2"], replicas=8)
        assert len(ring) == 2 and "a:1" in ring and "c:3" not in ring
        ring.add("a:1")  # idempotent
        assert len(ring) == 2
        ring.remove("c:3")  # absent: no-op
        ring.remove("a:1")
        ring.remove("b:2")
        assert ring.lookup(123) is None and ring.preference(123) == []
        with pytest.raises(ValueError):
            ConsistentHashRing(replicas=0)


# ---------------------------------------------------------------------------
# router / server routing-key agreement
# ---------------------------------------------------------------------------

_SAMPLE_QUERIES = {
    "equiv": {"op": "equiv", "left": "inc(x); x > 1", "right": "x > 0; inc(x)"},
    "leq": {"op": "leq", "left": "x > 1", "right": "x > 0"},
    "inclusion": {"op": "inclusion", "left": "x > 1", "right": "x > 0"},
    "member": {"op": "member", "term": "inc(x)*", "word": ["inc(x)"],
               "pred": "x > 0"},
    "norm": {"op": "norm", "term": "inc(x); x > 1"},
    "sat": {"op": "sat", "pred": "x > 3"},
    "empty": {"op": "empty", "term": "x > 1; x < 1"},
    "verify": {"op": "verify", "pre": "x > 0", "program": "inc(x)",
               "post": "x > 1"},
    "prog_equiv": {"op": "prog_equiv", "left": "inc(x)", "right": "inc(x)"},
    "dead_code": {"op": "dead_code", "program": "if x > 0 { inc(x) }"},
}


class TestRoutingKeyAgreement:
    def test_every_query_op_has_a_sample(self):
        assert sorted(_SAMPLE_QUERIES) == sorted(QUERY_OPS)

    @pytest.mark.parametrize("op", sorted(QUERY_OPS))
    def test_ring_key_and_stripe_share_one_hash(self, op):
        """The server's stripe picker is the router's ring key mod stripes —
        same backend, same warm stripe, through the router or direct."""
        base = dict(_SAMPLE_QUERIES[op])
        for stripes in (1, 2, 4, 7):
            assert _affinity_stripe(base, stripes) == affinity_hash(base) % stripes

    @pytest.mark.parametrize("op", sorted(QUERY_OPS))
    def test_affinity_ignores_identity_fields(self, op):
        """id/priority never shift routing: repeats stay on warm caches."""
        base = dict(_SAMPLE_QUERIES[op])
        decorated = dict(base, id="q999", priority=7)
        assert affinity_hash(decorated) == affinity_hash(base)
        assert _affinity_stripe(decorated, 4) == _affinity_stripe(base, 4)

    def test_content_changes_the_key(self):
        a = {"op": "sat", "pred": "x > 3"}
        b = {"op": "sat", "pred": "x > 4"}
        assert affinity_hash(a) != affinity_hash(b)


# ---------------------------------------------------------------------------
# admission control primitives
# ---------------------------------------------------------------------------

class TestTokenBucket:
    def test_burst_then_refill(self):
        bucket = TokenBucket(rate=10.0, burst=3)
        # Synthetic clock: anchored after construction (the bucket's refill
        # baseline is the real monotonic clock at __init__).
        t0 = time.monotonic() + 100.0
        assert [bucket.allow(t0) for _ in range(3)] == [True, True, True]
        assert bucket.allow(t0) is False
        assert bucket.allow(t0 + 0.05) is False  # half a token: still short
        assert bucket.allow(t0 + 0.15) is True   # 1.5 tokens banked
        assert bucket.allow(t0 + 0.15) is False

    def test_bank_is_capped_at_burst(self):
        bucket = TokenBucket(rate=100.0, burst=2)
        t0 = time.monotonic() + 100.0
        bucket.allow(t0)
        results = [bucket.allow(t0 + 60.0) for _ in range(3)]
        assert results == [True, True, False]

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0, burst=1)
        with pytest.raises(ValueError):
            TokenBucket(rate=1, burst=0)


class TestParseBackends:
    def test_parses_and_orders(self):
        assert parse_backends(["127.0.0.1:7001", "h2:7002"]) == \
            [("127.0.0.1", 7001), ("h2", 7002)]

    @pytest.mark.parametrize("specs", [[], ["no-port"], ["host:"], [":7001"],
                                       ["h:70x1"], ["h:1", "h:1"]])
    def test_rejects_bad_specs(self, specs):
        with pytest.raises(KmtError):
            parse_backends(specs)


# ---------------------------------------------------------------------------
# router unit behaviour (no live backends needed)
# ---------------------------------------------------------------------------

class TestRouterIntake:
    def test_priority_must_be_a_number(self):
        router = Router(["127.0.0.1:1"])
        sink = ListSink()
        outcome = router.submit_line(
            record(op="sat", pred="x > 0", id="q0", priority="high"), sink)
        assert outcome == "error"
        (response,) = sink.responses
        assert response["ok"] is False
        assert response["error_code"] == ERROR_INVALID
        assert response["id"] == "q0"

    def test_rate_limit_rejects_after_burst(self):
        router = Router(["127.0.0.1:1"], rate_limit=1000.0, rate_burst=1)
        sink = ListSink()
        first = router.submit_line(record(op="sat", pred="x > 0", id="q0"), sink)
        second = router.submit_line(record(op="sat", pred="x > 1", id="q1"), sink)
        assert (first, second) == ("queued", "rejected")
        by_id = {r["id"]: r for r in sink.responses}
        # q0 was admitted (and, with no live backend, answered backend_down);
        # q1 hit the empty bucket before costing anything.
        assert by_id["q0"]["error_code"] == ERROR_BACKEND_DOWN
        assert by_id["q1"]["error_code"] == ERROR_RATE_LIMITED
        assert "rate_limited" in router.router_stats()["requests"]["errors"]

    def test_empty_ring_answers_backend_down(self):
        router = Router([("127.0.0.1", 1)])  # never started: ring stays empty
        sink = ListSink()
        assert router.submit_line(record(op="sat", pred="x > 0", id="q0"),
                                  sink) == "queued"
        (response,) = sink.responses
        assert response["ok"] is False
        assert response["error_code"] == ERROR_BACKEND_DOWN
        assert "retries" not in response  # nothing was ever dispatched
        assert router.wait_idle(timeout=1.0)  # capacity fully released

    def test_send_queue_drains_highest_priority_first(self):
        from repro.engine.router import _RoutedQuery

        router = Router(["127.0.0.1:1"])
        link = next(iter(router._links.values()))
        sink = ListSink()

        def entry(name, priority):
            return _RoutedQuery({"op": "sat", "pred": name, "id": name},
                                router._next_internal_id(), sink, sink.next_seq(),
                                0, None, 0, priority)

        for name, priority in (("bulk-a", 0), ("urgent", 5),
                               ("bulk-b", 0), ("mid", 2)):
            link.submit(entry(name, priority))
        drained = [link._send_queue.get_nowait()[2].record["pred"]
                   for _ in range(4)]
        assert drained == ["urgent", "mid", "bulk-a", "bulk-b"]  # FIFO within tier

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            Router(["127.0.0.1:1"], queue_limit=0)
        with pytest.raises(ValueError):
            Router(["127.0.0.1:1"], rate_limit=-1)


# ---------------------------------------------------------------------------
# scripted backends: deterministic failure modes
# ---------------------------------------------------------------------------

class ScriptedBackend:
    """A protocol-fluent fake backend with a scripted failure mode.

    Always answers ``ping`` (so the router's revive probe admits it to the
    ring); queries are handled per ``mode``:

    * ``"flaky"`` — drop the connection on the first query (the in-band
      EOF/reset failure signal), forcing a failover retry;
    * ``"blackhole"`` — swallow queries silently (accepted but never
      answered), holding router capacity forever.
    """

    def __init__(self, mode):
        self.mode = mode
        self.queries_seen = []
        self._listener = socket.create_server(("127.0.0.1", 0))
        self._listener.settimeout(0.2)
        self.host, self.port = self._listener.getsockname()[:2]
        self.key = f"{self.host}:{self.port}"
        self._closing = False
        self._conns = []
        self._lock = threading.Lock()
        self._accept = threading.Thread(target=self._accept_loop, daemon=True)
        self._accept.start()

    def _accept_loop(self):
        while True:
            try:
                conn, _ = self._listener.accept()
            except TimeoutError:
                if self._closing:
                    return
                continue
            except OSError:
                return
            conn.settimeout(None)
            with self._lock:
                if self._closing:
                    conn.close()
                    return
                self._conns.append(conn)
            threading.Thread(target=self._serve_conn, args=(conn,),
                             daemon=True).start()

    def _serve_conn(self, conn):
        reader = conn.makefile("r", encoding="utf-8", newline="\n")
        try:
            for raw in reader:
                request = json.loads(raw)
                if request.get("op") == "ping":
                    reply = {"id": request.get("id"), "op": "ping", "ok": True,
                             "result": {"pong": True}}
                    conn.sendall((json.dumps(reply) + "\n").encode("utf-8"))
                    continue
                with self._lock:
                    self.queries_seen.append(request)
                if self.mode == "flaky":
                    conn.shutdown(socket.SHUT_RDWR)
                    return
                # blackhole: accepted, never answered
        except (OSError, ValueError, json.JSONDecodeError):
            pass

    def close(self):
        with self._lock:
            self._closing = True
            conns = list(self._conns)
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            conn.close()
        self._listener.close()


def _keyed_lines(router, owner_key, count, start=0):
    """Query lines whose affinity key the ring assigns to ``owner_key``."""
    lines = []
    i = start
    while len(lines) < count:
        line = equiv_line(i, id=f"q{i}")
        if router.ring.lookup(affinity_hash(json.loads(line))) == owner_key:
            lines.append(line)
        i += 1
        assert i < start + 10_000, "no keys map to this backend?!"
    return lines


def _wait_for(predicate, timeout=10.0, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.02)
    raise AssertionError(f"timed out waiting for {message}")


# ---------------------------------------------------------------------------
# live integration: routing, affinity, fan-out, failover
# ---------------------------------------------------------------------------

@pytest.fixture
def two_backends():
    with SocketServer(port=0, workers=2) as a, SocketServer(port=0, workers=2) as b:
        router = Router([("127.0.0.1", a.port), ("127.0.0.1", b.port)],
                        probe_interval=60.0)
        router.start()
        assert router.wait_all_up(timeout=10.0)
        try:
            yield router, a, b
        finally:
            router.shutdown(drain=False)


class TestRouterIntegration:
    def test_routes_answers_and_restores_ids(self, two_backends):
        router, _, _ = two_backends
        sink = ListSink()
        total = 16
        for i in range(total):
            assert router.submit_line(equiv_line(i, id=f"q{i}"), sink) == "queued"
        assert router.wait_idle(timeout=30.0)
        assert sorted(r["id"] for r in sink.responses) == \
            sorted(f"q{i}" for i in range(total))
        for response in sink.responses:
            assert response["ok"] is True
            assert response["result"]["equivalent"] is True
            assert "retries" not in response  # healthy cluster: zero retries
        stats = router.router_stats()
        assert stats["requests"]["completed"] == total
        assert stats["requests"]["retried"] == 0
        routed = [info["routed"] for info in stats["backends"].values()]
        assert sum(routed) == total
        assert all(info["state"] == "up" for info in stats["backends"].values())

    def test_affinity_is_sticky(self, two_backends):
        """Identical content always routes to the ring owner — the backend
        whose stripe caches are warm for it."""
        router, _, _ = two_backends
        line = equiv_line(3)
        owner = router.ring.lookup(affinity_hash(json.loads(line)))
        before = {k: link.routed for k, link in router._links.items()}
        sink = ListSink()
        for i in range(6):
            router.submit_line(equiv_line(3, id=f"r{i}"), sink)
        assert router.wait_idle(timeout=30.0)
        for key, link in router._links.items():
            expected = 6 if key == owner else 0
            assert link.routed - before[key] == expected

    def test_missing_id_uses_line_number_fallback(self, two_backends):
        router, _, _ = two_backends
        sink = ListSink()
        router.submit_line(equiv_line(0), sink, lineno=41)
        assert router.wait_idle(timeout=30.0)
        (response,) = sink.responses
        assert response["id"] == 41

    def test_stats_and_metrics_fan_out(self, two_backends):
        router, _, _ = two_backends
        sink = ListSink()
        for i in range(4):
            router.submit_line(equiv_line(i, id=f"q{i}"), sink)
        assert router.wait_idle(timeout=30.0)

        assert router.submit_line(record(op="stats", id="s1"), sink) == "control"
        stats = next(r for r in sink.responses if r["id"] == "s1")
        assert stats["ok"] is True
        merged = stats["result"]
        assert "incnat" in merged  # merged per-theory pool blocks
        block = merged["router"]
        assert sorted(block["ring"]["nodes"]) == sorted(router._links)
        assert block["queue"]["limit"] == router.queue_limit
        assert block["requests"]["completed"] == 4
        assert sorted(block["backend_servers"]) == sorted(router._links)

        assert router.submit_line(record(op="metrics", id="m1"), sink) == "control"
        metrics = next(r for r in sink.responses if r["id"] == "m1")
        counters = metrics["result"]["counters"]
        assert "router_requests_total" in counters   # the router's own
        assert "requests_total" in counters          # merged from backends
        routed_total = sum(entry["value"]
                           for entry in counters["router_requests_total"])
        assert routed_total == 4

    def test_ping_is_local_and_lists_membership(self, two_backends):
        router, _, _ = two_backends
        sink = ListSink()
        assert router.submit_line(record(op="ping", id="p1"), sink) == "control"
        (response,) = sink.responses
        assert response["ok"] is True
        assert response["result"]["router"] is True
        assert sorted(response["result"]["backends_up"]) == sorted(router._links)
        assert response["result"]["backends_down"] == []

    def test_failover_retries_on_next_replica(self):
        """A backend dropping mid-flight costs a retry, never an id."""
        flaky = ScriptedBackend("flaky")
        with SocketServer(port=0, workers=2) as real:
            router = Router([("127.0.0.1", real.port), (flaky.host, flaky.port)],
                            probe_interval=60.0)
            router.start()
            try:
                assert router.wait_all_up(timeout=10.0)
                flaky_lines = _keyed_lines(router, flaky.key, 3)
                real_key = f"127.0.0.1:{real.port}"
                real_lines = _keyed_lines(router, real_key, 3, start=10_000)
                sink = ListSink()
                for line in flaky_lines + real_lines:
                    router.submit_line(line, sink)
                assert router.wait_idle(timeout=30.0)

                wanted = sorted(json.loads(line)["id"]
                                for line in flaky_lines + real_lines)
                assert sorted(r["id"] for r in sink.responses) == wanted  # no loss, no dups
                for response in sink.responses:
                    assert response["ok"] is True
                    assert response["result"]["equivalent"] is True
                retried = [r for r in sink.responses if r.get("retries")]
                assert retried, "no response records a failover retry"
                assert all(r["retries"] >= 1 for r in retried)

                stats = router.router_stats()
                assert stats["backends"][flaky.key]["state"] == "down"
                assert stats["backends"][flaky.key]["ejections"] >= 1
                assert stats["requests"]["retried"] >= 1
                assert stats["requests"]["errors"] == {}
            finally:
                router.shutdown(drain=False)
        flaky.close()

    def test_all_backends_down_is_a_structured_error(self):
        flaky = ScriptedBackend("flaky")
        router = Router([(flaky.host, flaky.port)],
                        probe_interval=60.0, max_retries=2)
        router.start()
        try:
            assert router.wait_all_up(timeout=10.0)
            sink = ListSink()
            router.submit_line(record(op="sat", pred="x > 0", id="q0"), sink)
            assert router.wait_idle(timeout=10.0)
            (response,) = sink.responses
            assert response["ok"] is False
            assert response["error_code"] == ERROR_BACKEND_DOWN
            assert response["id"] == "q0"
            assert response["retries"] == 1  # dispatched once, retried into nothing

            # The ring is empty now: rejection is immediate, with no retries.
            router.submit_line(record(op="sat", pred="x > 1", id="q1"), sink)
            assert router.wait_idle(timeout=10.0)
            late = next(r for r in sink.responses if r["id"] == "q1")
            assert late["error_code"] == ERROR_BACKEND_DOWN
            assert "retries" not in late
        finally:
            router.shutdown(drain=False)
        flaky.close()

    def test_queue_full_then_shutdown_answers_everything(self):
        blackhole = ScriptedBackend("blackhole")
        router = Router([(blackhole.host, blackhole.port)],
                        queue_limit=1, probe_interval=60.0)
        router.start()
        try:
            assert router.wait_all_up(timeout=10.0)
            sink = ListSink()
            assert router.submit_line(record(op="sat", pred="x > 0", id="held"),
                                      sink) == "queued"
            _wait_for(lambda: blackhole.queries_seen, message="query to arrive")
            outcome = router.submit_line(
                record(op="sat", pred="x > 1", id="over"), sink, block=False)
            assert outcome == "rejected"
            over = next(r for r in sink.responses if r["id"] == "over")
            assert over["error_code"] == ERROR_QUEUE_FULL
        finally:
            router.shutdown(drain=False)
        held = next(r for r in sink.responses if r["id"] == "held")
        assert held["error_code"] == ERROR_SHUTDOWN  # answered, not leaked
        assert router.wait_idle(timeout=1.0)
        blackhole.close()

    def test_rejects_queries_after_drain_begins(self, two_backends):
        router, _, _ = two_backends
        router.drain()
        sink = ListSink()
        assert router.submit_line(record(op="sat", pred="x > 0", id="q0"),
                                  sink) == "rejected"
        (response,) = sink.responses
        assert response["error_code"] == ERROR_SHUTDOWN
