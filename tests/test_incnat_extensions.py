"""Tests for the Section 1.2 IncNat extensions: ``x += k`` and ``x *= k``.

The paper notes the theory of increasing naturals stays sound and complete
when extended with monotonically increasing, *invertible* operations such as
adding or multiplying by a constant.  These tests check the weakest
preconditions of the new actions against the executable semantics, exercise
the parser syntax, and re-verify the Fig. 1(a) program written exactly as in
the paper (``i += 1; j += 2``).
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import terms as T
from repro.core.kmt import KMT
from repro.core.semantics import Trace, eval_pred
from repro.lang import parse_program
from repro.theories.incnat import AddConst, Gt, IncNatTheory, MulConst
from repro.utils.errors import TheoryError
from repro.utils.frozendict import FrozenDict


@pytest.fixture
def theory():
    return IncNatTheory(variables=("i", "j"))


@pytest.fixture
def kmt(theory):
    return KMT(theory)


class TestPrimitives:
    def test_negative_add_rejected(self):
        with pytest.raises(TheoryError):
            AddConst("x", -1)

    def test_zero_multiplier_rejected(self):
        with pytest.raises(TheoryError):
            MulConst("x", 0)

    def test_str_forms(self):
        assert str(AddConst("j", 2)) == "j += 2"
        assert str(MulConst("j", 3)) == "j *= 3"

    def test_ownership(self, theory):
        assert theory.owns_action(AddConst("j", 2))
        assert theory.owns_action(MulConst("j", 2))


class TestSemantics:
    def test_add_and_mul_act(self, theory):
        state = FrozenDict(i=3, j=2)
        assert theory.act(AddConst("j", 5), state)["j"] == 7
        assert theory.act(MulConst("j", 4), state)["j"] == 8
        assert theory.act(AddConst("k", 2), state)["k"] == 2  # unset var counts from 0

    def test_monotone(self, theory):
        """Both operations never decrease the variable (the soundness condition)."""
        for value in range(6):
            state = FrozenDict(j=value)
            assert theory.act(AddConst("j", 3), state)["j"] >= value
            assert theory.act(MulConst("j", 2), state)["j"] >= value


class TestWeakestPreconditions:
    def test_add_shifts_bound(self, theory):
        assert theory.push_back(AddConst("j", 2), Gt("j", 5)) == [T.pprim(Gt("j", 3))]

    def test_add_saturates_to_true(self, theory):
        assert theory.push_back(AddConst("j", 7), Gt("j", 5)) == [T.pone()]
        assert theory.push_back(AddConst("j", 6), Gt("j", 5)) == [T.pone()]

    def test_add_exact_boundary(self, theory):
        # j += 5 ; j > 5  ==  (j > 0) ; j += 5
        assert theory.push_back(AddConst("j", 5), Gt("j", 5)) == [T.pprim(Gt("j", 0))]

    def test_add_other_variable_commutes(self, theory):
        assert theory.push_back(AddConst("i", 2), Gt("j", 5)) == [T.pprim(Gt("j", 5))]

    def test_mul_divides_bound(self, theory):
        assert theory.push_back(MulConst("j", 2), Gt("j", 5)) == [T.pprim(Gt("j", 2))]
        assert theory.push_back(MulConst("j", 3), Gt("j", 5)) == [T.pprim(Gt("j", 1))]
        assert theory.push_back(MulConst("j", 1), Gt("j", 5)) == [T.pprim(Gt("j", 5))]

    def test_mul_other_variable_commutes(self, theory):
        assert theory.push_back(MulConst("i", 2), Gt("j", 5)) == [T.pprim(Gt("j", 5))]

    @given(
        st.integers(0, 8),            # test bound
        st.integers(0, 5),            # add amount / mul factor source
        st.booleans(),                # add or mul
        st.integers(0, 10),           # concrete value of j
    )
    def test_wp_sound_against_semantics(self, bound, amount, use_add, j_value):
        """pi ; (j > n) holds after iff the pushed-back test holds before."""
        theory = IncNatTheory()
        if use_add:
            action = AddConst("j", amount)
        else:
            action = MulConst("j", amount + 1)
        alpha = Gt("j", bound)
        pushed = T.por_all(theory.push_back(action, alpha))
        state = FrozenDict(j=j_value)
        before = Trace.initial(state)
        after = before.append(theory.act(action, state), action)
        assert theory.pred(alpha, after) == eval_pred(pushed, before, theory)

    def test_wp_never_grows_in_the_ordering(self, theory):
        """The pushed-back test stays within the subterm closure of the original."""
        from repro.core.ordering import OrderingContext

        ctx = OrderingContext(theory)
        alpha = T.pprim(Gt("j", 6))
        for action in (AddConst("j", 2), MulConst("j", 2), AddConst("j", 9)):
            for pushed in theory.push_back(action, alpha.alpha):
                assert ctx.pred_leq(pushed, alpha)


class TestParsingAndEquivalence:
    def test_parse_syntax(self, kmt):
        term = kmt.parse("j += 2; j *= 3")
        assert isinstance(term, T.TSeq)
        assert term.left == T.tprim(AddConst("j", 2))
        assert term.right == T.tprim(MulConst("j", 3))

    def test_add_equivalent_to_repeated_inc(self, kmt):
        """j += 2 is NOT equal to inc(j); inc(j) as traces, but reaches the same tests."""
        assert not kmt.equivalent("j += 2", "inc(j); inc(j)")
        assert kmt.equivalent("j += 2; j > 1", "j += 2; true; j > 1")

    def test_add_then_test(self, kmt):
        assert kmt.equivalent("j += 2; j > 5", "j > 3; j += 2")
        assert kmt.equivalent("j += 2; j > 1", "j += 2")

    def test_mul_then_test(self, kmt):
        assert kmt.equivalent("j *= 2; j > 5", "j > 2; j *= 2")
        assert kmt.equivalent("j := 3; j *= 2; j > 5", "j := 3; j *= 2")
        assert kmt.is_empty("j := 3; j *= 2; j > 6")

    def test_shift_and_add_composition(self, kmt):
        """Fig. 1(b)'s j := (j << 1) + 3 becomes j *= 2; j += 3."""
        assert kmt.equivalent("j *= 2; j += 3; j > 4", "j > 0; j *= 2; j += 3")
        assert kmt.equivalent("j *= 2; j += 3; j > 2", "j *= 2; j += 3")

    def test_loop_with_add(self, kmt):
        """A += loop behaves like the paper's Pnat loop."""
        assert kmt.equivalent("(j < 4; j += 2)*; j > 5", "(j < 4; j += 2)*; j > 5")
        assert kmt.is_empty("j < 1; (j < 4; j += 2)*; ~(j < 4); j > 5")
        assert not kmt.is_empty("j < 1; (j < 4; j += 2)*; ~(j < 4); j > 3")


class TestFig1aFaithful:
    def test_pnat_with_paper_syntax(self, theory, kmt):
        """Fig. 1(a) written with += exactly as in the paper (small constants)."""
        body = """
        assume i < 2;
        while (i < 4) {
            i += 1;
            j += 2;
        }
        """
        program = parse_program(body + "assert j > 3;", theory).compile()
        stripped = parse_program(body, theory).compile()
        assert kmt.equivalent(program, stripped)
        too_strong = parse_program(body + "assert j > 11;", theory).compile()
        assert not kmt.equivalent(too_strong, stripped)
