"""Tests for the engine's fingerprint/interning layer."""

from repro.core import terms as T
from repro.core.normalform import NormalForm
from repro.engine import intern


class TestFingerprintIdentity:
    def test_equal_terms_share_fingerprint(self, incnat):
        from repro.theories.incnat import Gt, Incr

        a = T.tseq(T.tprim(Incr("x")), T.ttest(T.pprim(Gt("x", 1))))
        b = T.tseq(T.tprim(Incr("x")), T.ttest(T.pprim(Gt("x", 1))))
        assert a is b  # hash consing
        assert intern.fingerprint(a) == intern.fingerprint(b)

    def test_distinct_terms_distinct_fingerprints(self):
        from repro.theories.incnat import Gt

        p = T.pprim(Gt("x", 1))
        q = T.pprim(Gt("x", 2))
        assert intern.fingerprint(p) != intern.fingerprint(q)

    def test_preds_and_terms_do_not_collide(self):
        from repro.theories.incnat import Gt

        pred = T.pprim(Gt("z", 9))
        term = T.ttest(pred)
        assert intern.fingerprint(pred) != intern.fingerprint(term)


class TestFingerprintStability:
    def test_stable_across_intern_table_clear(self):
        from repro.theories.incnat import Gt

        before = intern.fingerprint(T.por(T.pprim(Gt("x", 3)), T.pnot(T.pprim(Gt("x", 5)))))
        T.clear_intern_table()
        after = intern.fingerprint(T.por(T.pprim(Gt("x", 3)), T.pnot(T.pprim(Gt("x", 5)))))
        assert before == after

    def test_stable_without_hash_consing(self):
        from repro.theories.incnat import Gt

        with T.hash_consing_disabled():
            a = T.pand(T.pprim(Gt("x", 1)), T.pprim(Gt("y", 2)))
            b = T.pand(T.pprim(Gt("x", 1)), T.pprim(Gt("y", 2)))
        assert intern.fingerprint(a) == intern.fingerprint(b)

    def test_install_assigns_eagerly(self):
        from repro.theories.incnat import Gt

        intern.install()
        try:
            T.clear_intern_table()
            node = T.pprim(Gt("eager", 7))
            # The hook ran at construction: the slot is already populated.
            assert getattr(node, "_fp", None) is not None
        finally:
            intern.uninstall()


class TestNormalFormFingerprints:
    def test_equal_nfs_share_key(self):
        from repro.theories.incnat import Gt, Incr

        pairs = {(T.pprim(Gt("x", 1)), T.tprim(Incr("x")))}
        x = NormalForm(pairs)
        y = NormalForm(set(pairs))
        assert intern.fingerprint_normal_form(x) == intern.fingerprint_normal_form(y)

    def test_different_nfs_differ(self):
        from repro.theories.incnat import Gt, Incr

        x = NormalForm({(T.pprim(Gt("x", 1)), T.tprim(Incr("x")))})
        y = NormalForm({(T.pprim(Gt("x", 2)), T.tprim(Incr("x")))})
        assert intern.fingerprint_normal_form(x) != intern.fingerprint_normal_form(y)
