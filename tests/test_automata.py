"""Tests for Brzozowski derivatives and Hopcroft–Karp equivalence (Section 4.1)."""

import pytest
from hypothesis import given, settings

from repro.core import terms as T
from repro.utils.errors import CounterexampleBoundExceeded
from repro.core.automata import (
    alphabet,
    canonical,
    counterexample_word,
    derivative,
    derivative_states,
    language_equivalent,
    language_is_empty,
    nullable,
)
from repro.core.regexes import accepts_word, language_up_to
from repro.theories.bitvec import BoolAssign
from tests.conftest import restricted_actions

A = T.tprim(BoolAssign("a", True))
B = T.tprim(BoolAssign("b", True))
PI_A = BoolAssign("a", True)
PI_B = BoolAssign("b", True)


class TestNullable:
    def test_constants(self):
        assert nullable(T.tone())
        assert not nullable(T.tzero())

    def test_primitive_not_nullable(self):
        assert not nullable(A)

    def test_star_always_nullable(self):
        assert nullable(T.tstar(A))

    def test_seq_and_plus(self):
        assert nullable(T.tseq(T.tstar(A), T.tstar(B)))
        assert not nullable(T.tseq(A, T.tstar(B)))
        assert nullable(T.tplus(A, T.tone()))
        assert not nullable(T.tplus(A, B))


class TestDerivative:
    def test_primitive(self):
        assert derivative(A, PI_A) is T.tone()
        assert derivative(A, PI_B) is T.tzero()

    def test_sequence(self):
        d = derivative(T.tseq(A, B), PI_A)
        assert d == B
        assert derivative(T.tseq(A, B), PI_B) is T.tzero()

    def test_nullable_sequence_skips_ahead(self):
        d = derivative(T.tseq(T.tstar(A), B), PI_B)
        assert nullable(d)

    def test_star(self):
        star = T.tstar(A)
        assert derivative(star, PI_A) == star

    def test_alphabet(self):
        assert alphabet(T.tseq(A, T.tstar(B))) == {PI_A, PI_B}


class TestCanonical:
    def test_flattens_and_sorts_sums(self):
        left = T.tplus(A, T.tplus(B, A))
        right = T.tplus(T.tplus(B, A), B)
        assert canonical(left) == canonical(right)

    def test_right_associates_sequences(self):
        left = T.tseq(T.tseq(A, B), A)
        right = T.tseq(A, T.tseq(B, A))
        assert canonical(left) == canonical(right)

    def test_drops_units(self):
        with T.smart_constructors_disabled():
            messy = T.tseq(T.tone(), T.tseq(A, T.tone()))
        assert canonical(messy) == A

    def test_zero_annihilates(self):
        with T.smart_constructors_disabled():
            messy = T.tseq(A, T.tzero())
        assert canonical(messy) is T.tzero()

    def test_derivatives_stay_finite_on_large_sums(self):
        """Without ACI-canonicalisation the derivative states of this sum grow forever."""
        chains = [T.tseq_all([A] * k) for k in range(1, 8)]
        chains.append(T.tseq(T.tstar(A), T.tseq_all([A] * 5)))
        big = T.tplus_all(chains)
        states = derivative_states(big, max_states=500)
        assert len(states) < 50


class TestLanguageQueries:
    def test_language_is_empty(self):
        assert language_is_empty(T.tzero())
        assert not language_is_empty(T.tone())
        assert not language_is_empty(T.tstar(A))
        assert language_is_empty(T.tseq(A, T.tzero()))

    def test_equivalence_basics(self):
        assert language_equivalent(T.tstar(T.tstar(A)), T.tstar(A))
        assert language_equivalent(T.tplus(A, B), T.tplus(B, A))
        assert not language_equivalent(A, B)
        assert not language_equivalent(T.tstar(A), A)

    def test_denesting_law(self):
        """(a + b)* == a*;(b;a*)*  (the Denesting consequence of Fig. 5)."""
        lhs = T.tstar(T.tplus(A, B))
        rhs = T.tseq(T.tstar(A), T.tstar(T.tseq(B, T.tstar(A))))
        assert language_equivalent(lhs, rhs)

    def test_sliding_law(self):
        """a;(b;a)* == (a;b)*;a."""
        lhs = T.tseq(A, T.tstar(T.tseq(B, A)))
        rhs = T.tseq(T.tstar(T.tseq(A, B)), A)
        assert language_equivalent(lhs, rhs)

    def test_counterexample_word(self):
        word = counterexample_word(T.tstar(A), T.tseq(A, T.tstar(A)))
        assert word == ()  # epsilon distinguishes a* from a;a*
        assert counterexample_word(T.tstar(A), T.tstar(A)) is None

    def test_counterexample_word_bound_hit_raises(self):
        """Regression: a truncated search must not report "equivalent".

        ``a;a;a`` vs ``a;a;a;a`` differ only at words of length 3/4; with
        ``max_length=2`` the search cannot reach the difference, and the old
        code returned ``None`` — indistinguishable from a proved equivalence.
        """
        m = T.tseq(A, T.tseq(A, A))
        n = T.tseq(A, T.tseq(A, T.tseq(A, A)))
        with pytest.raises(CounterexampleBoundExceeded) as excinfo:
            counterexample_word(m, n, max_length=2)
        assert excinfo.value.max_length == 2
        # With room to run, the same pair yields the genuine shortest witness.
        assert counterexample_word(m, n, max_length=8) == (PI_A, PI_A, PI_A)
        # An equivalence decided within the bound still returns None (the
        # product space is exhausted before any truncation happens).
        assert counterexample_word(T.tstar(A), T.tstar(A), max_length=1) is None

    def test_accepts_word(self):
        term = T.tseq(A, T.tstar(B))
        assert accepts_word(term, (PI_A,))
        assert accepts_word(term, (PI_A, PI_B, PI_B))
        assert not accepts_word(term, (PI_B,))
        assert not accepts_word(term, ())


class TestAgainstEnumeration:
    """Differential testing of the automaton against brute-force enumeration."""

    MAX_LEN = 6

    @settings(max_examples=60, deadline=None)
    @given(restricted_actions(max_leaves=5), restricted_actions(max_leaves=5))
    def test_equivalence_matches_bounded_language_comparison(self, m, n):
        equal = language_equivalent(m, n)
        bounded_equal = language_up_to(m, self.MAX_LEN) == language_up_to(n, self.MAX_LEN)
        if equal:
            assert bounded_equal
        if not bounded_equal:
            assert not equal

    @settings(max_examples=60, deadline=None)
    @given(restricted_actions(max_leaves=5))
    def test_emptiness_matches_enumeration(self, m):
        assert language_is_empty(m) == (not language_up_to(m, self.MAX_LEN))
        # Emptiness of restricted actions is stable under canonicalisation.
        assert language_is_empty(m) == language_is_empty(canonical(m))

    @settings(max_examples=40, deadline=None)
    @given(restricted_actions(max_leaves=5))
    def test_words_accepted_iff_enumerated(self, m):
        for word in language_up_to(m, 3):
            assert accepts_word(m, word)

    @settings(max_examples=40, deadline=None)
    @given(restricted_actions(max_leaves=4))
    def test_canonical_preserves_language(self, m):
        assert language_equivalent(m, canonical(m))
