"""Tests for Temporal NetKAT = LTLf(NetKAT) (paper Section 2.6)."""

import pytest

from repro.core import terms as T
from repro.core.kmt import KMT
from repro.theories.ltlf import LtlfTheory
from repro.theories.netkat import FieldAssign, FieldEq, NetKatTheory
from repro.theories.temporal_netkat import temporal_netkat, waypoint_query


@pytest.fixture
def theory():
    return temporal_netkat({"sw": (1, 2, 3), "dst": (1, 2)})


@pytest.fixture
def kmt(theory):
    return KMT(theory)


class TestConstruction:
    def test_composition_shape(self, theory):
        assert isinstance(theory, LtlfTheory)
        assert isinstance(theory.inner, NetKatTheory)
        assert theory.inner.fields["sw"] == (1, 2, 3)

    def test_owns_both_kinds_of_primitives(self, theory):
        assert theory.owns_test(FieldEq("sw", 1))
        assert theory.owns_action(FieldAssign("sw", 2))
        assert theory.owns_test(theory.ever(theory.inner.eq("sw", 2)).alpha)

    def test_parses_mixed_syntax(self, kmt):
        term = kmt.parse("sw = 1; dst <- 2; ev(sw = 1)")
        assert isinstance(term, T.Term)


class TestWaypointing:
    def test_waypoint_query_helper(self, theory):
        pred = waypoint_query(theory, "sw", 2)
        assert isinstance(pred, T.PPrim)

    def test_route_through_waypoint_verified(self, kmt, theory):
        """Every packet delivered by this program passed through switch 2."""
        program = kmt.parse("sw = 1; sw <- 2; sw <- 3")
        waypoint = T.ttest(waypoint_query(theory, "sw", 2))
        assert kmt.equivalent(program, T.tseq(program, waypoint))

    def test_route_bypassing_waypoint_rejected(self, kmt, theory):
        program = kmt.parse("sw = 1; sw <- 3")
        waypoint = T.ttest(waypoint_query(theory, "sw", 2))
        assert not kmt.equivalent(program, T.tseq(program, waypoint))

    def test_branching_routes_one_missing_waypoint(self, kmt, theory):
        """If only one branch visits the firewall, the waypoint property fails."""
        program = kmt.parse("(dst = 1; sw <- 2; sw <- 3) + (dst = 2; sw <- 3)")
        waypoint = T.ttest(waypoint_query(theory, "sw", 2))
        assert not kmt.equivalent(program, T.tseq(program, waypoint))

    def test_per_branch_verification(self, kmt, theory):
        branch = kmt.parse("dst = 1; sw <- 2; sw <- 3")
        waypoint = T.ttest(waypoint_query(theory, "sw", 2))
        assert kmt.equivalent(branch, T.tseq(branch, waypoint))


class TestTemporalNetworkQueries:
    def test_history_last(self, kmt, theory):
        """After forwarding to sw 3 from sw 2, last(sw = 2) holds."""
        program = kmt.parse("sw = 2; sw <- 3")
        check = T.ttest(theory.last(theory.inner.eq("sw", 2)))
        assert kmt.equivalent(program, T.tseq(program, check))

    def test_field_rewrite_hides_old_value_but_history_remembers(self, kmt, theory):
        program = kmt.parse("dst = 1; dst <- 2")
        now = T.ttest(theory.inner.eq("dst", 1))
        before = T.ttest(theory.ever(theory.inner.eq("dst", 1)))
        assert not kmt.equivalent(program, T.tseq(program, now))
        assert kmt.equivalent(program, T.tseq(program, before))

    def test_temporal_emptiness(self, kmt, theory):
        """No start-anchored trace of this program ever saw sw = 2."""
        program = T.tseq(T.ttest(theory.start()), kmt.parse("sw = 1; sw <- 3"))
        saw_waypoint = T.ttest(theory.ever(theory.inner.eq("sw", 2)))
        assert kmt.is_empty(T.tseq(program, saw_waypoint))
        # Without the anchor the packet may have visited switch 2 before.
        unanchored = kmt.parse("sw = 1; sw <- 3")
        assert not kmt.is_empty(T.tseq(unanchored, saw_waypoint))

    def test_slice_isolation(self, kmt, theory):
        """Slice-1 packets entering at switch 1 never traverse switch 3."""
        ingress = T.ttest(T.pand(theory.start(), theory.inner.eq("sw", 1)))
        policy = kmt.parse("(dst = 1; sw <- 2) + (dst = 2; sw <- 3)")
        violation = T.ttest(
            T.pand(theory.inner.eq("dst", 1), theory.ever(theory.inner.eq("sw", 3)))
        )
        assert kmt.is_empty(T.tseq(ingress, T.tseq(policy, violation)))
        # Without the ingress constraint the property is violable (the packet
        # may already have been at switch 3 before the policy ran).
        assert not kmt.is_empty(T.tseq(policy, violation))
