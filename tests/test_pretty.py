"""Tests for the pretty printer."""

import pytest

from repro.core import terms as T
from repro.core.normalform import NormalForm
from repro.core.pretty import pretty_normal_form, pretty_pred, pretty_term
from repro.theories.incnat import Gt, Incr


def gt(var, bound):
    return T.pprim(Gt(var, bound))


def inc(var):
    return T.tprim(Incr(var))


class TestPredPrinting:
    def test_constants(self):
        assert pretty_pred(T.pzero()) == "false"
        assert pretty_pred(T.pone()) == "true"

    def test_primitive(self):
        assert pretty_pred(gt("x", 3)) == "x > 3"

    def test_negation_of_primitive(self):
        assert pretty_pred(T.pnot(gt("x", 3))) == "not x > 3"

    def test_negation_of_compound_parenthesized(self):
        pred = T.pnot(T.pand(gt("x", 1), gt("y", 2)))
        assert pretty_pred(pred) == "not (x > 1; y > 2)"

    def test_and_inside_or_parenthesization(self):
        pred = T.pand(T.por(gt("x", 1), gt("y", 2)), gt("x", 0))
        assert pretty_pred(pred) == "(x > 1 + y > 2); x > 0"


class TestTermPrinting:
    def test_primitive_action(self):
        assert pretty_term(inc("x")) == "inc(x)"

    def test_seq_and_plus(self):
        term = T.tplus(T.tseq(inc("x"), inc("y")), inc("x"))
        assert pretty_term(term) == "inc(x); inc(y) + inc(x)"

    def test_star_of_primitive(self):
        assert pretty_term(T.tstar(inc("x"))) == "inc(x)*"

    def test_star_of_compound(self):
        term = T.tstar(T.tseq(inc("x"), inc("y")))
        assert pretty_term(term) == "(inc(x); inc(y))*"

    def test_embedded_test(self):
        term = T.tseq(T.ttest(gt("x", 1)), inc("x"))
        assert pretty_term(term) == "x > 1; inc(x)"


class TestNormalFormPrinting:
    def test_vacuous(self):
        assert pretty_normal_form(NormalForm.zero()) == "false"

    def test_sum_of_summands(self):
        nf = NormalForm({(gt("x", 1), inc("x")), (T.pone(), T.tone())})
        rendered = pretty_normal_form(nf)
        assert "x > 1; inc(x)" in rendered
        assert " + " in rendered

    def test_errors_on_non_terms(self):
        with pytest.raises(TypeError):
            pretty_term("not a term")
        with pytest.raises(TypeError):
            pretty_pred(42)
