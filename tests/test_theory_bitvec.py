"""Tests for the BitVec theory (paper Fig. 3a, Section 2.1)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import terms as T
from repro.core.semantics import Trace
from repro.theories.bitvec import BitVecTheory, BoolAssign, BoolEq
from repro.utils.errors import ParseError, TheoryError
from repro.utils.frozendict import FrozenDict


@pytest.fixture
def theory():
    return BitVecTheory(variables=("a", "b"))


class TestSemantics:
    def test_initial_state_all_false(self, theory):
        assert theory.initial_state() == FrozenDict(a=False, b=False)

    def test_pred_reads_last_state(self, theory):
        trace = Trace.initial(FrozenDict(a=True, b=False))
        assert theory.pred(BoolEq("a"), trace)
        assert not theory.pred(BoolEq("b"), trace)

    def test_unset_variables_read_false(self, theory):
        trace = Trace.initial(FrozenDict())
        assert not theory.pred(BoolEq("zzz"), trace)

    def test_act_updates(self, theory):
        state = FrozenDict(a=False, b=False)
        assert theory.act(BoolAssign("a", True), state)["a"] is True
        assert theory.act(BoolAssign("a", True), state)["b"] is False

    def test_foreign_primitives_rejected(self, theory):
        from repro.theories.incnat import Gt, Incr

        with pytest.raises(TheoryError):
            theory.pred(Gt("x", 1), Trace.initial(FrozenDict()))
        with pytest.raises(TheoryError):
            theory.act(Incr("x"), FrozenDict())
        with pytest.raises(TheoryError):
            theory.push_back(Incr("x"), BoolEq("a"))


class TestPushback:
    def test_true_true_axiom(self, theory):
        """b := T ; b = T  ==  b := T."""
        assert theory.push_back(BoolAssign("a", True), BoolEq("a")) == [T.pone()]

    def test_false_true_axiom(self, theory):
        """b := F ; b = T  ==  0."""
        assert theory.push_back(BoolAssign("a", False), BoolEq("a")) == [T.pzero()]

    def test_commute_different_variables(self, theory):
        assert theory.push_back(BoolAssign("b", True), BoolEq("a")) == [T.pprim(BoolEq("a"))]

    def test_subterms_empty(self, theory):
        assert list(theory.subterms(BoolEq("a"))) == []

    @given(st.sampled_from(["a", "b"]), st.booleans(), st.sampled_from(["a", "b"]))
    def test_pushback_sound_against_semantics(self, assign_var, assign_value, test_var):
        """pi;alpha and (sum of pushed-back tests);pi accept the same states."""
        theory = BitVecTheory(variables=("a", "b"))
        pi = BoolAssign(assign_var, assign_value)
        alpha = BoolEq(test_var)
        pushed = T.por_all(theory.push_back(pi, alpha))
        for a_val in (False, True):
            for b_val in (False, True):
                state = FrozenDict(a=a_val, b=b_val)
                trace = Trace.initial(state)
                after = trace.append(theory.act(pi, state), pi)
                lhs_holds = theory.pred(alpha, after)
                from repro.core.semantics import eval_pred

                rhs_holds = eval_pred(pushed, trace, theory)
                assert lhs_holds == rhs_holds


class TestSatisfiability:
    def test_conjunction_conflicting_polarities(self, theory):
        assert not theory.satisfiable_conjunction([(BoolEq("a"), True), (BoolEq("a"), False)])
        assert theory.satisfiable_conjunction([(BoolEq("a"), True), (BoolEq("b"), False)])

    def test_satisfiable_pred(self, theory):
        a = T.pprim(BoolEq("a"))
        b = T.pprim(BoolEq("b"))
        assert theory.satisfiable(T.por(a, b))
        assert not theory.satisfiable(T.pand(a, T.pnot(a)))


class TestSugarAndParsing:
    def test_eq_and_assign_builders(self, theory):
        assert theory.eq("a") == T.pprim(BoolEq("a"))
        assert theory.eq("a", False) == T.pnot(T.pprim(BoolEq("a")))
        assert theory.assign("a", True) == T.tprim(BoolAssign("a", True))

    def test_flip_expansion(self, theory):
        flip = theory.flip("a")
        assert isinstance(flip, T.TPlus)

    def test_parse_phrases(self, theory):
        from repro.core.parser import tokenize

        def phrase(text):
            return theory.parse_phrase(tokenize(text)[:-1])

        assert phrase("a = T") == ("test", BoolEq("a"))
        kind, pred = phrase("a = F")
        assert kind == "pred" and pred == T.pnot(T.pprim(BoolEq("a")))
        assert phrase("a := T") == ("action", BoolAssign("a", True))
        assert phrase("a := F") == ("action", BoolAssign("a", False))
        kind, term = phrase("flip a")
        assert kind == "term" and isinstance(term, T.TPlus)
        with pytest.raises(ParseError):
            phrase("a + b")
        with pytest.raises(ParseError):
            phrase("a > 3")

    def test_describe_and_variables(self, theory):
        assert "bitvec" in theory.describe()
        assert theory.test_variables(BoolEq("a")) == ("a",)
        assert theory.action_variables(BoolAssign("a", True)) == ("a",)


class TestEndToEnd:
    def test_parity_loop(self, kmt_bitvec):
        """Fig. 9 row 4: x = F; (flip x; flip x)* == (flip x; flip x)*; x = F."""
        assert kmt_bitvec.equivalent(
            "a = F; (flip a; flip a)*", "(flip a; flip a)*; a = F"
        )

    def test_flip_twice_is_not_identity_in_traces(self, kmt_bitvec):
        """flip;flip restores the state but produces a longer trace."""
        assert not kmt_bitvec.equivalent("flip a; flip a", "true")

    def test_assignment_then_test(self, kmt_bitvec):
        assert kmt_bitvec.equivalent("a := T; a = T", "a := T")
        assert kmt_bitvec.equivalent("a := F; a = T", "false")
        assert kmt_bitvec.equivalent("a := T; b = T", "b = T; a := T")
