"""Tests for the compiled symbolic automaton IR (:mod:`repro.core.compile`).

Unit tests pin the IR invariants (dense BFS numbering, canonical alphabet
order, accepting bitset, shortest-access back-pointers), Hopcroft
minimization (canonical minimal sizes, language preservation), and the three
query operations; the hypothesis section holds the compiled product walks to
the derivative-based oracles of :mod:`repro.core.automata` over random
restricted actions.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core import terms as T
from repro.core.automata import (
    canonical,
    derivative,
    language_compare,
    language_is_empty,
    nullable,
    sorted_alphabet,
)
from repro.core.compile import (
    CompiledAutomaton,
    compile_automaton,
    compiled_compare,
    compiled_includes,
)
from repro.core.regexes import accepts_word, language_up_to
from repro.theories.bitvec import BoolAssign
from repro.utils.errors import KmtError, QueryCancelled
from tests.conftest import restricted_actions

A = T.tprim(BoolAssign("a", True))
B = T.tprim(BoolAssign("b", True))
PI_A = BoolAssign("a", True)
PI_B = BoolAssign("b", True)


class TestCompileStructure:
    def test_trivial_automata(self):
        one = compile_automaton(T.tone())
        assert one.state_count == 1 and one.accepts(()) and not one.is_empty()
        zero = compile_automaton(T.tzero())
        assert zero.state_count == 1 and zero.is_empty() and not zero.accepts(())

    def test_alphabet_is_canonical_order(self):
        aut = compile_automaton(T.tseq(B, A))
        assert aut.sigma == sorted_alphabet(canonical(T.tseq(B, A)))
        assert aut.sigma == tuple(sorted({PI_A, PI_B}, key=repr))

    def test_initial_state_is_zero_and_transitions_dense(self):
        aut = compile_automaton(T.tseq(A, B))
        assert aut.initial == 0
        # Flat arena layout: one contiguous row-major int table.
        assert len(aut.delta) == aut.state_count * len(aut.sigma)
        assert len(aut.back) == 2 * aut.state_count
        for state in range(aut.state_count):
            row = aut.row(state)
            assert len(row) == len(aut.sigma)
            for target in row:
                assert 0 <= target < aut.state_count

    def test_transitions_agree_with_derivatives(self):
        """Each table step simulates one Brzozowski derivative step."""
        m = T.tplus(T.tseq(A, T.tstar(B)), B)
        aut = compile_automaton(m, minimize=False)
        # Replay the BFS: walk every state's access word through derivatives
        # and check nullability against the accepting bitset.
        for state in range(aut.state_count):
            term = canonical(m)
            for pi in aut.access_word(state):
                term = derivative(term, pi)
            assert nullable(term) == aut.is_accepting(state)

    def test_back_pointers_give_shortest_access_words(self):
        aut = compile_automaton(T.tseq(A, T.tseq(B, A)))
        # BFS numbering: access-word lengths are nondecreasing in state id.
        lengths = [len(aut.access_word(s)) for s in range(aut.state_count)]
        assert lengths == sorted(lengths)
        assert aut.access_word(0) == ()

    def test_shortest_accepted_word(self):
        aut = compile_automaton(T.tplus(T.tseq(A, B), T.tseq(A, T.tseq(B, A))))
        assert aut.shortest_accepted_word() == (PI_A, PI_B)
        assert compile_automaton(T.tzero()).shortest_accepted_word() is None
        assert compile_automaton(T.tstar(A)).shortest_accepted_word() == ()

    def test_rejects_non_restricted_actions(self):
        with pytest.raises(KmtError):
            compile_automaton(T.ttest(T.pprim(object())))

    def test_immutable(self):
        aut = compile_automaton(A)
        with pytest.raises(AttributeError, match="attempted to set"):
            aut.sigma = ()
        # Deletion must report a deletion, not claim an attempted set.
        with pytest.raises(AttributeError, match="attempted to delete"):
            del aut.accepting

    def test_cancel_hook_fires(self):
        calls = []

        def cancel():
            calls.append(1)
            if len(calls) > 1:
                raise QueryCancelled("stop")

        with pytest.raises(QueryCancelled):
            compile_automaton(T.tseq(A, T.tseq(B, A)), cancel=cancel)


class TestMinimization:
    def test_minimal_sizes(self):
        # a* over {a}: a single accepting state.
        assert compile_automaton(T.tstar(A)).state_count == 1
        # 1 + a;a* denotes a*; minimization must collapse to the same DFA.
        unrolled = T.tplus(T.tone(), T.tseq(A, T.tstar(A)))
        assert compile_automaton(unrolled).state_count == 1
        # a;b over {a,b}: start, after-a, accept, dead.
        assert compile_automaton(T.tseq(A, B)).state_count == 4

    def test_raw_states_recorded(self):
        unrolled = T.tplus(T.tone(), T.tseq(A, T.tstar(A)))
        aut = compile_automaton(unrolled)
        assert aut.raw_states >= aut.state_count
        raw = compile_automaton(unrolled, minimize=False)
        assert raw.state_count == aut.raw_states

    def test_minimization_preserves_language(self):
        m = T.tplus(T.tseq(T.tstar(A), B), T.tseq(A, T.tstar(T.tplus(A, B))))
        minimized = compile_automaton(m)
        raw = compile_automaton(m, minimize=False)
        assert minimized.state_count <= raw.state_count
        for word in language_up_to(m, 4):
            assert minimized.accepts(word) and raw.accepts(word)
        equivalent, word = compiled_compare(minimized, raw)
        assert equivalent and word is None

    def test_syntactic_variants_compile_to_same_size(self):
        """The cached artifact depends on the language, not the syntax."""
        variants = [
            T.tstar(T.tplus(A, B)),
            T.tseq(T.tstar(A), T.tstar(T.tseq(B, T.tstar(A)))),  # denesting
        ]
        sizes = {compile_automaton(v).state_count for v in variants}
        assert len(sizes) == 1


class TestCompiledCompare:
    def test_equivalent_pair(self):
        a = compile_automaton(T.tstar(T.tplus(A, B)))
        b = compile_automaton(T.tseq(T.tstar(A), T.tstar(T.tseq(B, T.tstar(A)))))
        assert compiled_compare(a, b) == (True, None)

    def test_witness_is_shortest(self):
        # a;a;a vs a;a;a;a first differ at the length-3 word.
        m = compile_automaton(T.tseq(A, T.tseq(A, A)))
        n = compile_automaton(T.tseq(A, T.tseq(A, T.tseq(A, A))))
        equivalent, word = compiled_compare(m, n)
        assert not equivalent
        assert word == (PI_A, PI_A, PI_A)

    def test_disjoint_alphabets_use_dead_sink(self):
        equivalent, word = compiled_compare(compile_automaton(A), compile_automaton(B))
        assert not equivalent
        assert word in ((PI_A,), (PI_B,))
        # Two empty-language automata over different alphabets are equivalent.
        assert compiled_compare(
            compile_automaton(T.tseq(A, T.tzero())),
            compile_automaton(T.tseq(B, T.tzero())),
        ) == (True, None)


class TestCompiledIncludes:
    def test_reflexive_and_strict(self):
        a = compile_automaton(A)
        a_or_b = compile_automaton(T.tplus(A, B))
        assert compiled_includes(a, a) == (True, None)
        assert compiled_includes(a, a_or_b) == (True, None)
        included, word = compiled_includes(a_or_b, a)
        assert not included
        assert word == (PI_B,)  # a shortest word in L(a+b) \ L(a)

    def test_star_containment(self):
        once = compile_automaton(A)
        star = compile_automaton(T.tstar(A))
        assert compiled_includes(once, star) == (True, None)
        included, word = compiled_includes(star, once)
        assert not included and word in ((), (PI_A, PI_A))
        assert word == ()  # epsilon is the shortest one-sided word

    def test_empty_language_included_in_everything(self):
        empty = compile_automaton(T.tzero())
        assert compiled_includes(empty, compile_automaton(B)) == (True, None)
        included, word = compiled_includes(compile_automaton(B), empty)
        assert not included and word == (PI_B,)


class TestAgainstDerivativeOracles:
    """The compiled walks must agree with the derivative-based module."""

    @settings(max_examples=80, deadline=None)
    @given(restricted_actions(max_leaves=5), restricted_actions(max_leaves=5))
    def test_compare_matches_language_compare(self, m, n):
        am, an = compile_automaton(m), compile_automaton(n)
        equivalent, word = compiled_compare(am, an)
        assert equivalent == language_compare(m, n)[0]
        if not equivalent:
            assert accepts_word(m, word) != accepts_word(n, word)

    @settings(max_examples=80, deadline=None)
    @given(restricted_actions(max_leaves=5), restricted_actions(max_leaves=5))
    def test_includes_matches_definition(self, m, n):
        included, word = compiled_includes(compile_automaton(m), compile_automaton(n))
        # L(m) <= L(n) iff L(m + n) == L(n).
        assert included == language_compare(T.tplus(m, n), n)[0]
        if not included:
            assert accepts_word(m, word) and not accepts_word(n, word)

    @settings(max_examples=60, deadline=None)
    @given(restricted_actions(max_leaves=5))
    def test_membership_matches_enumeration(self, m):
        aut = compile_automaton(m)
        assert aut.is_empty() == language_is_empty(m)
        enumerated = language_up_to(m, 3)
        for word in enumerated:
            assert aut.accepts(word)
        # Probe some non-words too: every length<=2 word over the alphabet.
        sigma = aut.sigma
        probes = [()] + [(x,) for x in sigma] + [(x, y) for x in sigma for y in sigma]
        for word in probes:
            assert aut.accepts(word) == (word in enumerated)

    @settings(max_examples=60, deadline=None)
    @given(restricted_actions(max_leaves=5))
    def test_minimization_is_canonical(self, m):
        """Minimized sizes are a language invariant: compare with the raw
        automaton and with a syntactic double (m + m is rewritten to m by the
        smart constructors, so perturb with ;1 instead)."""
        minimized = compile_automaton(m)
        variant = compile_automaton(T.tseq(m, T.tone()))
        assert minimized.state_count == variant.state_count
        assert compiled_compare(minimized, variant) == (True, None)
