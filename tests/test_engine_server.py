"""Tests for the concurrent query server (:mod:`repro.engine.server`).

Covers the serving concerns the batch tests cannot: concurrent multi-client
socket sessions, out-of-order completion with correct ids, deadline expiry
mid-search, backpressure on a full queue, graceful drain on ``quit`` — plus
regression tests for the engine-cache integrity fixes that shipped with the
server (equiv-result aliasing, derivative-cache slot hijack, serve counting
and the ``"cached"`` flag).
"""

import io
import json
import threading
import time

import pytest

from repro.core import automata
from repro.engine.batch import serve
from repro.engine.cache import DERIVATIVE_CACHE, EngineCaches, LRUCache
from repro.engine.client import SocketClient
from repro.engine.server import (
    QueryServer,
    ResponseSink,
    ShardedSessionPool,
    SocketServer,
    serve_stdio,
)
from repro.engine.session import EngineSession
from repro.theories import build_theory


def record(**fields):
    return json.dumps(fields)


class _OracleDelayTheory:
    """Delegating theory wrapper that sleeps per conjunction-oracle call.

    Models an out-of-process solver (the paper's implementations call Z3 over
    IPC); in tests it simply makes queries take long enough to observe
    overlap, deadlines and backpressure deterministically.
    """

    def __init__(self, inner, delay):
        self._inner = inner
        self._delay = delay

    def satisfiable_conjunction(self, literals):
        time.sleep(self._delay)
        return self._inner.satisfiable_conjunction(literals)

    def __getattr__(self, name):
        return getattr(self._inner, name)


def slow_factory(delay, only=("incnat",)):
    def factory(name):
        theory = build_theory(name)
        if name in only:
            return _OracleDelayTheory(theory, delay)
        return theory

    return factory


class _ListSink(ResponseSink):
    """A sink collecting parsed responses (optionally ordered)."""

    def __init__(self, ordered=False):
        self.responses = []
        super().__init__(lambda line: self.responses.append(json.loads(line)),
                         ordered=ordered)


def _equiv(i, **extra):
    return record(op="equiv", left=f"inc(x); x > {i + 1}", right=f"x > {i}; inc(x)", **extra)


def _fast_line_on_other_worker(server, slow_line, **extra):
    """A fast bitvec request guaranteed to land on a different worker shard.

    Shard routing is a deterministic content hash, so two specific requests
    may well share a worker — out-of-order assertions need one that provably
    does not queue behind the slow request.
    """
    from repro.engine.server import _affinity_stripe

    slow = json.loads(slow_line)
    slow_worker = server._worker_index(
        str(slow.get("theory", "incnat")), _affinity_stripe(slow, server.stripes))
    candidates = ["a = T", "~(a = T)", "a = F", "a = T + a = F", "a = F + a = T", "~(a = F)"]
    for pred in candidates:
        rec = {"op": "sat", "theory": "bitvec", "pred": pred}
        if server._worker_index("bitvec", _affinity_stripe(rec, server.stripes)) != slow_worker:
            return record(op="sat", theory="bitvec", pred=pred, **extra)
    raise AssertionError("no candidate fast query avoids the slow request's worker")


class TestScheduling:
    def test_out_of_order_completion_with_correct_ids(self):
        # One slow incnat query submitted first, one fast bitvec query second:
        # with two workers the fast one must finish (and be emitted) first,
        # and both responses must carry their own ids.
        sink = _ListSink()
        with QueryServer(workers=2, theory_factory=slow_factory(0.15)) as server:
            slow = _equiv(1, id="slow")
            server.submit_line(slow, sink)
            server.submit_line(_fast_line_on_other_worker(server, slow, id="fast"), sink)
            server.wait_idle()
        assert [r["id"] for r in sink.responses] == ["fast", "slow"]
        assert all(r["ok"] for r in sink.responses)
        assert sink.responses[0]["result"]["satisfiable"] is True
        assert sink.responses[1]["result"]["equivalent"] is True

    def test_ordered_mode_restores_submission_order(self):
        sink = _ListSink(ordered=True)
        with QueryServer(workers=2, theory_factory=slow_factory(0.15)) as server:
            slow = _equiv(1, id="slow")
            server.submit_line(slow, sink)
            server.submit_line(_fast_line_on_other_worker(server, slow, id="fast"), sink)
            server.wait_idle()
        assert [r["id"] for r in sink.responses] == ["slow", "fast"]

    def test_many_requests_all_ids_answered_correctly(self):
        # A mixed-theory burst across 4 workers: every request is answered
        # exactly once, under its own id, with the right verdict.
        sink = _ListSink()
        lines = []
        for i in range(10):
            lines.append(record(op="sat", pred=f"x > {i}", id=f"sat-{i}"))
            lines.append(record(op="equiv", theory="bitvec", left="a := T; a = T",
                                right="a := T", id=f"eq-{i}"))
        with QueryServer(workers=4) as server:
            for line in lines:
                server.submit_line(line, sink)
            server.wait_idle()
        by_id = {r["id"]: r for r in sink.responses}
        assert len(by_id) == 20
        for i in range(10):
            assert by_id[f"sat-{i}"]["result"]["satisfiable"] is True
            assert by_id[f"eq-{i}"]["result"]["equivalent"] is True

    def test_default_ids_are_input_line_numbers(self):
        stdin = io.StringIO("\n".join([
            "# comment",                    # line 0, no response
            record(op="sat", pred="x > 1"),  # line 1
            record(op="sat", pred="x > 2"),  # line 2
        ]))
        stdout = io.StringIO()
        served = serve_stdio(stdin, stdout, workers=2)
        replies = [json.loads(line) for line in stdout.getvalue().splitlines()]
        assert served == 2
        assert sorted(r["id"] for r in replies) == [1, 2]

    def test_striping_spreads_a_hot_theory(self):
        # 12 distinct incnat queries over 4 stripes: more than one stripe
        # session must end up doing work (content-hash affinity spreads them).
        pool = ShardedSessionPool(stripes=4)
        with QueryServer(workers=4, pool=pool) as server:
            sink = _ListSink()
            for i in range(12):
                server.submit_line(record(op="sat", pred=f"x > {i}"), sink)
            server.wait_idle()
        assert pool.stats()["incnat"]["stripes"] > 1

    def test_affinity_repeated_query_hits_cache(self):
        sink = _ListSink()
        with QueryServer(workers=4) as server:
            for _ in range(2):
                server.submit_line(_equiv(3, id="q"), sink)
                server.wait_idle()
        cached = [r["result"].get("cached", False) for r in sink.responses]
        assert cached.count(True) == 1  # the repeat landed on the same warm shard


class TestDeadlines:
    def test_deadline_expires_mid_search(self):
        sink = _ListSink()
        with QueryServer(workers=1, theory_factory=slow_factory(0.2)) as server:
            started = time.monotonic()
            server.submit_line(_equiv(1, id="doomed", deadline_ms=30), sink)
            server.wait_idle()
            elapsed = time.monotonic() - started
        (reply,) = sink.responses
        assert reply["ok"] is False
        assert reply["error_code"] == "deadline_exceeded"
        assert reply["id"] == "doomed"
        # It aborted at a cancellation checkpoint rather than running the
        # whole (multi-second) search to completion.
        assert elapsed < 2.0

    def test_deadline_expires_while_queued(self):
        # One worker, one stripe: the fast-deadline request sits behind a
        # slow one and must be rejected before execution even starts.
        sink = _ListSink()
        with QueryServer(workers=1, stripes=1,
                         theory_factory=slow_factory(0.25)) as server:
            server.submit_line(_equiv(1, id="slow"), sink)
            server.submit_line(record(op="sat", pred="x > 1", id="late", deadline_ms=1), sink)
            server.wait_idle()
        by_id = {r["id"]: r for r in sink.responses}
        assert by_id["late"]["ok"] is False
        assert by_id["late"]["error_code"] == "deadline_exceeded"
        assert "queued" in by_id["late"]["error"]

    def test_session_usable_after_deadline(self):
        # Cancellation must not corrupt the session caches: the same query
        # without a deadline afterwards succeeds with the correct verdict.
        sink = _ListSink()
        with QueryServer(workers=1, theory_factory=slow_factory(0.05)) as server:
            server.submit_line(_equiv(2, id="first", deadline_ms=20), sink)
            server.wait_idle()
            server.submit_line(_equiv(2, id="retry"), sink)
            server.wait_idle()
        by_id = {r["id"]: r for r in sink.responses}
        assert by_id["first"]["error_code"] == "deadline_exceeded"
        assert by_id["retry"]["ok"] is True
        assert by_id["retry"]["result"]["equivalent"] is True

    def test_unknown_op_error_echoes_client_id(self):
        # Out-of-order clients correlate by id, so even protocol-invalid
        # requests must echo the id they carried.
        sink = _ListSink()
        with QueryServer(workers=1) as server:
            outcome = server.submit_line(record(op="frobnicate", id="mine"), sink)
            server.wait_idle()
        assert outcome == "error"
        assert sink.responses[0]["id"] == "mine"
        assert sink.responses[0]["error_code"] == "unknown_op"

    def test_invalid_deadline_rejected(self):
        sink = _ListSink()
        with QueryServer(workers=1) as server:
            outcome = server.submit_line(record(op="sat", pred="x > 1", deadline_ms=-5), sink)
            server.wait_idle()
        assert outcome == "error"
        assert sink.responses[0]["error_code"] == "invalid_request"


class TestBackpressure:
    def test_queue_full_rejects_nonblocking_submit(self):
        sink = _ListSink()
        with QueryServer(workers=1, stripes=1, queue_limit=2,
                         theory_factory=slow_factory(0.2)) as server:
            assert server.submit_line(_equiv(1, id="a"), sink, block=False) == "queued"
            assert server.submit_line(_equiv(2, id="b"), sink, block=False) == "queued"
            outcome = server.submit_line(_equiv(3, id="c"), sink, block=False)
            assert outcome == "rejected"
            server.wait_idle()
        by_id = {r["id"]: r for r in sink.responses}
        assert by_id["c"]["error_code"] == "queue_full"
        assert by_id["a"]["ok"] and by_id["b"]["ok"]
        stats = server.server_stats()
        assert stats["requests"]["errors"]["queue_full"] == 1
        assert stats["queue"]["peak"] <= 2

    def test_blocking_submit_waits_for_capacity(self):
        sink = _ListSink()
        with QueryServer(workers=1, stripes=1, queue_limit=1,
                         theory_factory=slow_factory(0.15)) as server:
            server.submit_line(_equiv(1, id="a"), sink)
            started = time.monotonic()
            # Queue is full: this submission must block until the first
            # request finishes, then still be accepted and answered.
            outcome = server.submit_line(_equiv(2, id="b"), sink)
            blocked_for = time.monotonic() - started
            assert outcome == "queued"
            server.wait_idle()
        assert blocked_for > 0.05
        assert {r["id"] for r in sink.responses} == {"a", "b"}
        assert all(r["ok"] for r in sink.responses)

    def test_control_ops_bypass_the_queue(self):
        sink = _ListSink()
        with QueryServer(workers=1, stripes=1, queue_limit=1,
                         theory_factory=slow_factory(0.2)) as server:
            server.submit_line(_equiv(1, id="busy"), sink)
            # Even with the queue full, ping answers immediately.
            outcome = server.submit_line(record(op="ping", id="p"), sink, block=False)
            assert outcome == "control"
            server.wait_idle()
        assert sink.responses[0]["id"] == "p"

    def test_control_ops_bypass_ordered_buffering(self):
        # Under --ordered, a stats/ping reply must still jump ahead of
        # jammed queries instead of waiting in the reorder heap.
        sink = _ListSink(ordered=True)
        with QueryServer(workers=1, stripes=1,
                         theory_factory=slow_factory(0.2)) as server:
            server.submit_line(_equiv(1, id="busy"), sink)
            server.submit_line(record(op="stats", id="s"), sink, block=False)
            server.wait_idle()
        assert [r["id"] for r in sink.responses] == ["s", "busy"]
        assert sink.responses[0]["result"]["server"]["queue"]["limit"] == 128


class TestDrain:
    def test_drain_on_quit_answers_everything(self):
        lines = [_equiv(i) for i in range(6)] + [record(op="quit")]
        stdin = io.StringIO("\n".join(lines))
        stdout = io.StringIO()
        served = serve_stdio(stdin, stdout, workers=3)
        replies = [json.loads(line) for line in stdout.getvalue().splitlines()]
        assert served == 6
        assert len(replies) == 6
        assert sorted(r["id"] for r in replies) == list(range(6))
        assert all(r["ok"] for r in replies)

    def test_submissions_after_shutdown_are_rejected(self):
        sink = _ListSink()
        server = QueryServer(workers=1).start()
        server.shutdown(drain=True)
        outcome = server.submit_line(record(op="sat", pred="x > 1", id="x"), sink)
        assert outcome == "rejected"
        assert sink.responses[0]["error_code"] == "shutting_down"

    def test_stats_op_reports_server_block(self):
        stdin = io.StringIO("\n".join([
            record(op="sat", pred="x > 1"),
            record(op="quit"),
        ]))
        stdout = io.StringIO()
        serve_stdio(stdin, stdout, workers=2)
        # Ask a fresh stream for stats after the work drained.
        server = QueryServer(workers=2)
        with server:
            sink = _ListSink()
            server.submit_line(record(op="sat", pred="x > 1", id="q"), sink)
            server.wait_idle()
            server.submit_line(record(op="stats", id="s"), sink)
        stats = next(r for r in sink.responses if r["id"] == "s")["result"]
        assert "incnat" in stats
        assert stats["server"]["queue"]["limit"] == 128
        assert stats["server"]["requests"]["completed"] == 1
        assert stats["server"]["latency_ms"]["p50"] is not None
        assert "shared" in stats


class TestSocketMode:
    def test_concurrent_multi_client_sessions(self):
        with SocketServer(port=0, workers=4) as srv:
            results = {}

            def client(n):
                with SocketClient("127.0.0.1", srv.port) as conn:
                    results[n] = conn.ask(
                        [{"op": "sat", "pred": f"x > {i}", "id": f"c{n}-{i}"}
                         for i in range(5)])

            threads = [threading.Thread(target=client, args=(n,)) for n in range(3)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
        for n in range(3):
            replies = results[n]
            # Each client sees exactly its own five responses, ids intact.
            assert sorted(r["id"] for r in replies) == [f"c{n}-{i}" for i in range(5)]
            assert all(r["ok"] for r in replies)

    def test_quit_is_connection_scoped(self):
        with SocketServer(port=0, workers=2) as srv:
            with SocketClient("127.0.0.1", srv.port) as first:
                assert first.ask([]) == []  # quit: drained and closed...

            with SocketClient("127.0.0.1", srv.port) as second:
                replies = second.ask([{"op": "sat", "pred": "x > 1", "id": "later"}])
        assert [r["id"] for r in replies] == ["later"]  # ...but the server lives on

    def test_socket_out_of_order_and_ordered(self):
        for ordered, expected in ((False, ["fast", "slow"]), (True, ["slow", "fast"])):
            query_server = QueryServer(workers=2, theory_factory=slow_factory(0.15))
            with SocketServer(port=0, ordered=ordered, server=query_server) as srv:
                slow = _equiv(1, id="slow")
                fast = _fast_line_on_other_worker(query_server, slow, id="fast")
                with SocketClient("127.0.0.1", srv.port) as conn:
                    replies = conn.ask([json.loads(slow), json.loads(fast)])
            assert [r["id"] for r in replies] == expected, f"ordered={ordered}"


class TestCliServe:
    def test_serve_subcommand_concurrent(self, monkeypatch, capsys):
        from repro.cli import main

        stdin = io.StringIO("\n".join([
            record(op="sat", pred="x > 1"),
            "garbage",
            record(op="quit"),
        ]))
        monkeypatch.setattr("sys.stdin", stdin)
        code = main(["serve", "--workers", "2", "--ordered"])
        captured = capsys.readouterr()
        assert code == 0
        replies = [json.loads(line) for line in captured.out.splitlines()]
        assert len(replies) == 2
        assert "# served 1 requests" in captured.err

    def test_serve_subcommand_legacy(self, monkeypatch, capsys):
        from repro.cli import main

        stdin = io.StringIO(record(op="sat", pred="x > 1") + "\n")
        monkeypatch.setattr("sys.stdin", stdin)
        code = main(["serve", "--legacy"])
        captured = capsys.readouterr()
        assert code == 0
        assert "# served 1 requests" in captured.err


class TestEquivResultAliasingRegression:
    """A cached ``EquivalenceResult``/``Counterexample`` used to be mutable:
    one caller writing ``result.counterexample.word = ("TAMPERED",)``
    corrupted every later response for the same query, across threads."""

    def test_results_are_immutable(self):
        session = EngineSession(build_theory("incnat"))
        result = session.check_equivalent("x > 1", "x > 2")
        assert not result.equivalent
        with pytest.raises(AttributeError):
            result.counterexample.word = ("TAMPERED",)
        with pytest.raises(AttributeError):
            result.equivalent = True
        with pytest.raises(AttributeError):
            del result.counterexample.word
        # The replay is untampered.
        replay = session.check_equivalent("x > 1", "x > 2")
        assert replay.cached is True
        assert "TAMPERED" not in replay.counterexample.describe()

    def test_counterexample_fields_are_tuples(self):
        session = EngineSession(build_theory("incnat"))
        cex = session.check_equivalent("x > 1", "x > 2").counterexample
        assert isinstance(cex.cell, tuple)
        assert isinstance(cex.word, tuple)

    def test_cached_flag_only_on_replay(self):
        session = EngineSession(build_theory("incnat"))
        first = session.check_equivalent("inc(x); x > 1", "x > 0; inc(x)")
        second = session.check_equivalent("inc(x); x > 1", "x > 0; inc(x)")
        assert first.cached is False
        assert second.cached is True
        # The cached copy replays the original counters.
        assert second.signatures_explored == first.signatures_explored


class TestDerivativeCacheHijackRegression:
    """The first session built with a custom ``caches=`` bundle used to
    install its *private* derivative table as the process-wide automata memo,
    silently redirecting every other session's derivative caching."""

    def test_private_bundle_is_not_installed(self):
        saved = automata.get_derivative_cache()
        try:
            automata.set_derivative_cache(None)
            custom = EngineCaches(deriv=LRUCache(maxsize=16, name="private"))
            EngineSession(build_theory("incnat"), caches=custom)
            assert automata.get_derivative_cache() is None
            # The next default-bundle session installs the shared table.
            EngineSession(build_theory("incnat"))
            assert automata.get_derivative_cache() is DERIVATIVE_CACHE
        finally:
            automata.set_derivative_cache(saved)

    def test_pool_stats_report_what_is_installed(self):
        from repro.engine.batch import SessionPool

        saved = automata.get_derivative_cache()
        try:
            automata.set_derivative_cache(None)
            assert SessionPool().stats()["shared"]["tables"] == {}
            replacement = LRUCache(maxsize=16, name="deriv")
            automata.set_derivative_cache(replacement)
            shared = SessionPool().stats()["shared"]["tables"]
            assert shared["deriv"] == replacement.stats.as_dict()
        finally:
            automata.set_derivative_cache(saved)


class TestServeCountingRegression:
    """``serve()`` used to count malformed lines as served requests."""

    def test_malformed_lines_not_counted(self):
        stdin = io.StringIO("this is { not json\n" + record(op="ping") + "\n")
        stdout = io.StringIO()
        served = serve(stdin, stdout)
        replies = [json.loads(line) for line in stdout.getvalue().splitlines()]
        assert served == 1
        assert len(replies) == 2
        assert replies[0]["ok"] is False
        assert replies[0]["error_code"] == "malformed_request"
        assert replies[1]["result"]["pong"] is True

    def test_cached_flag_in_batch_responses(self):
        from repro.engine.batch import run_batch_lines

        line = _equiv(1)
        responses, _ = run_batch_lines([line, line])
        assert "cached" not in responses[0]["result"]
        assert responses[1]["result"]["cached"] is True


class TestStreamedBatchInput:
    """``kmt batch -`` must stream stdin line by line, not ``readlines()``."""

    def test_run_lines_accepts_a_pure_iterator(self):
        from repro.engine.batch import run_batch_lines

        lines = iter([record(op="sat", pred="x > 1"), record(op="sat", pred="x > 2")])
        responses, _ = run_batch_lines(lines)
        assert [r["ok"] for r in responses] == [True, True]

    def test_cmd_batch_streams_stdin(self, monkeypatch, capsys):
        from repro.cli import main

        class IterOnlyStdin:
            """Iterable but with no ``readlines`` / ``read`` — buffering the
            whole stream would raise instead of silently regressing."""

            def __init__(self, text):
                self._lines = iter(text.splitlines(keepends=True))

            def __iter__(self):
                return self._lines

        monkeypatch.setattr(
            "sys.stdin", IterOnlyStdin(record(op="sat", pred="x > 1") + "\n"))
        code = main(["batch", "-"])
        captured = capsys.readouterr()
        assert code == 0
        assert json.loads(captured.out.splitlines()[0])["ok"] is True
