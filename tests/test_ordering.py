"""Tests for the maximal-subterm ordering machinery (paper Fig. 6)."""

from hypothesis import given

from repro.core import terms as T
from repro.core.ordering import OrderingContext
from repro.theories.bitvec import BitVecTheory, BoolEq
from repro.theories.incnat import Gt, IncNatTheory
from tests.conftest import bitvec_preds, incnat_preds


class TestSeqs:
    def test_seqs_of_conjunction_splits_factors(self, incnat):
        ctx = OrderingContext(incnat)
        a = T.pprim(Gt("x", 1))
        b = T.pprim(Gt("y", 2))
        c = T.pprim(Gt("x", 3))
        pred = T.pand(T.pand(a, b), c)
        assert ctx.seqs(pred) == {a, b, c}

    def test_seqs_of_non_conjunction_is_singleton(self, incnat):
        ctx = OrderingContext(incnat)
        a = T.pprim(Gt("x", 1))
        b = T.pprim(Gt("y", 2))
        pred = T.por(a, b)
        assert ctx.seqs(pred) == {pred}

    def test_seqs_of_set_unions(self, incnat):
        ctx = OrderingContext(incnat)
        a = T.pprim(Gt("x", 1))
        b = T.pprim(Gt("y", 2))
        assert ctx.seqs_of_set({T.pand(a, b), a}) == {a, b}


class TestSub:
    def test_sub_of_constants(self, incnat):
        ctx = OrderingContext(incnat)
        assert ctx.sub(T.pzero()) == {T.pzero()}
        assert ctx.sub(T.pone()) == {T.pzero(), T.pone()}

    def test_sub_of_incnat_primitive_includes_smaller_bounds(self, incnat):
        ctx = OrderingContext(incnat)
        closure = ctx.sub(T.pprim(Gt("x", 3)))
        for bound in range(4):
            assert T.pprim(Gt("x", bound)) in closure
        assert T.pzero() in closure and T.pone() in closure

    def test_sub_of_negation_contains_negated_subterms(self, incnat):
        ctx = OrderingContext(incnat)
        pred = T.pnot(T.pprim(Gt("x", 1)))
        closure = ctx.sub(pred)
        assert T.pprim(Gt("x", 0)) in closure
        assert T.pnot(T.pprim(Gt("x", 0))) in closure

    def test_terms_are_subterms_of_themselves(self, incnat):
        ctx = OrderingContext(incnat)
        pred = T.por(T.pprim(Gt("x", 1)), T.pprim(Gt("y", 0)))
        assert pred in ctx.sub(pred)

    @given(incnat_preds(max_leaves=4))
    def test_zero_always_a_subterm(self, pred):
        ctx = OrderingContext(IncNatTheory())
        assert T.pzero() in ctx.sub(pred)

    @given(incnat_preds(max_leaves=4))
    def test_sub_closed_under_sub(self, pred):
        """Lemma B.9: if a in sub(b) then sub(a) subset of sub(b)."""
        ctx = OrderingContext(IncNatTheory())
        closure = ctx.sub(pred)
        for sub_pred in closure:
            assert ctx.sub(sub_pred) <= closure


class TestMaximalTests:
    def test_mt_of_singleton(self, incnat):
        ctx = OrderingContext(incnat)
        a = T.pprim(Gt("x", 1))
        assert ctx.mt({a}) == {a}

    def test_mt_drops_dominated_tests(self, incnat):
        """x > 0 is a subterm of x > 3, so only x > 3 is maximal."""
        ctx = OrderingContext(incnat)
        small = T.pprim(Gt("x", 0))
        large = T.pprim(Gt("x", 3))
        assert ctx.mt({small, large}) == {large}

    def test_mt_keeps_incomparable_tests(self, incnat):
        ctx = OrderingContext(incnat)
        a = T.pprim(Gt("x", 3))
        b = T.pprim(Gt("y", 2))
        assert ctx.mt({a, b}) == {a, b}

    def test_mt_nonempty_for_nonempty_sets(self, bitvec):
        """Lemma B.11: maximal tests always exist."""
        ctx = OrderingContext(bitvec)
        a = T.pprim(BoolEq("a"))
        b = T.pprim(BoolEq("b"))
        assert ctx.mt({T.pand(a, b), a, T.pone()})

    @given(incnat_preds(max_leaves=4))
    def test_mt_subset_of_seqs(self, pred):
        """Lemma B.3: maximal tests are tests."""
        ctx = OrderingContext(IncNatTheory())
        assert ctx.mt({pred}) <= ctx.seqs(pred)

    def test_pick_maximal_deterministic(self, incnat):
        ctx = OrderingContext(incnat)
        preds = {T.pprim(Gt("x", 3)), T.pprim(Gt("y", 2))}
        assert ctx.pick_maximal(preds) == ctx.pick_maximal(preds)
        assert ctx.pick_maximal(preds) in preds

    def test_pick_maximal_of_empty_is_none(self, incnat):
        ctx = OrderingContext(incnat)
        assert ctx.pick_maximal(set()) is None


class TestOrderingRelation:
    def test_extension(self, incnat):
        """Lemma B.19(1): a <= a;b."""
        ctx = OrderingContext(incnat)
        a = T.pprim(Gt("x", 1))
        b = T.pprim(Gt("y", 2))
        assert ctx.leq({a}, {T.pand(a, b)})

    def test_smaller_bound_strictly_below(self, incnat):
        ctx = OrderingContext(incnat)
        assert ctx.pred_lt(T.pprim(Gt("x", 1)), T.pprim(Gt("x", 3)))
        assert not ctx.pred_lt(T.pprim(Gt("x", 3)), T.pprim(Gt("x", 1)))

    def test_leq_reflexive(self, incnat):
        ctx = OrderingContext(incnat)
        a = T.pprim(Gt("x", 2))
        assert ctx.pred_leq(a, a)
        assert not ctx.pred_lt(a, a)

    @given(incnat_preds(max_leaves=3), incnat_preds(max_leaves=3))
    def test_leq_union_upper_bound(self, a, b):
        """Both operands are below their union's key (monotonicity, Lemma B.14)."""
        ctx = OrderingContext(IncNatTheory())
        assert ctx.leq({a}, {a, b})
        assert ctx.leq({b}, {a, b})

    def test_nnf_monotonic_on_primitives_and_disjunctions(self):
        """Lemma B.18 (checked on the shapes PrimNeg actually produces):
        negating a primitive or a disjunction of primitives stays below the
        negated original in the ordering."""
        from repro.core.nnf import nnf

        ctx = OrderingContext(BitVecTheory())
        a = T.pprim(BoolEq("a"))
        b = T.pprim(BoolEq("b"))
        assert ctx.leq({nnf(T.pnot(a))}, {T.pnot(a)})
        disj = T.por(a, b)
        assert ctx.leq({nnf(T.pnot(disj))}, {T.pnot(disj)})

    def test_key_uses_lemma_b12(self, incnat):
        """key(A) equals the union of sub over the factors of A."""
        ctx = OrderingContext(incnat)
        a = T.pprim(Gt("x", 2))
        b = T.pprim(Gt("y", 1))
        pred = T.pand(a, b)
        assert ctx.key({pred}) == ctx.sub(a) | ctx.sub(b)
