"""Tests for LTLf, past-time temporal logic on finite traces (Fig. 3d, §2.4)."""

import pytest

from repro.core import terms as T
from repro.core.kmt import KMT
from repro.core.semantics import Trace
from repro.theories.bitvec import BitVecTheory, BoolAssign, BoolEq
from repro.theories.incnat import Gt, IncNatTheory, Incr
from repro.theories.ltlf import LtlLast, LtlSince, LtlfTheory
from repro.utils.frozendict import FrozenDict


@pytest.fixture
def nat():
    return IncNatTheory(variables=("j",))


@pytest.fixture
def theory(nat):
    return LtlfTheory(nat)


@pytest.fixture
def kmt(theory):
    return KMT(theory)


@pytest.fixture
def bool_theory():
    return LtlfTheory(BitVecTheory(variables=("a", "b")))


@pytest.fixture
def kmt_bool(bool_theory):
    return KMT(bool_theory)


def nat_trace(*values):
    """A trace whose states bind j to the given successive values."""
    trace = Trace.initial(FrozenDict(j=values[0]))
    for value in values[1:]:
        trace = trace.append(FrozenDict(j=value), Incr("j"))
    return trace


class TestTemporalSemantics:
    def test_last_false_at_start_of_time(self, theory, kmt, nat):
        trace = nat_trace(5)
        assert not theory.pred(LtlLast(nat.gt("j", 0)), trace)

    def test_last_looks_one_step_back(self, theory, kmt, nat):
        trace = nat_trace(0, 5)
        assert not theory.pred(LtlLast(nat.gt("j", 0)), trace)
        trace = nat_trace(5, 6)
        assert theory.pred(LtlLast(nat.gt("j", 0)), trace)

    def test_since_degenerates_to_b_at_start(self, theory, kmt, nat):
        trace = nat_trace(3)
        assert theory.pred(LtlSince(T.pone(), nat.gt("j", 2)), trace)
        assert not theory.pred(LtlSince(T.pone(), nat.gt("j", 5)), trace)

    def test_since_requires_a_to_hold_since_b(self, theory, kmt, nat):
        # j: 5, 1, 2 — "j>0 since j>4" holds iff j>4 held at some point and
        # j>0 has held at every later point.
        good = nat_trace(5, 1, 2)
        assert theory.pred(LtlSince(nat.gt("j", 0), nat.gt("j", 4)), good)
        # j: 5, 0, 2 — broken in the middle (j = 0).
        bad = nat_trace(5, 0, 2)
        assert not theory.pred(LtlSince(nat.gt("j", 0), nat.gt("j", 4)), bad)

    def test_ever_and_always(self, theory, kmt, nat):
        ever = theory.ever(nat.gt("j", 4))
        always = theory.always(nat.gt("j", 0))
        trace = nat_trace(5, 1, 2)
        assert kmt.eval_pred(ever, trace)
        assert kmt.eval_pred(always, trace)
        assert not kmt.eval_pred(theory.always(nat.gt("j", 1)), trace)
        assert not kmt.eval_pred(theory.ever(nat.gt("j", 9)), trace)

    def test_start_and_wlast(self, theory, kmt, nat):
        assert kmt.eval_pred(theory.start(), nat_trace(3))
        assert not kmt.eval_pred(theory.start(), nat_trace(3, 4))
        # Weak last is true at the start of time, even for a false body.
        assert kmt.eval_pred(theory.wlast(T.pzero()), nat_trace(3))
        assert not kmt.eval_pred(theory.wlast(T.pzero()), nat_trace(3, 4))

    def test_inner_tests_still_work(self, theory, kmt, nat):
        assert kmt.eval_pred(nat.gt("j", 1), nat_trace(0, 2))


class TestPushback:
    def test_last_pushes_to_body(self, theory, kmt, nat):
        assert theory.push_back(Incr("j"), LtlLast(nat.gt("j", 3))) == [nat.gt("j", 3)]

    def test_since_unrolls(self, theory, kmt, nat):
        alpha = LtlSince(T.pone(), nat.gt("j", 3))
        pushed = theory.push_back(Incr("j"), alpha)
        # pi;(a S b) WP b' + a';(a S b): here b' = j>2 and a' = 1.
        assert nat.gt("j", 2) in pushed
        assert T.pprim(alpha) in pushed

    def test_paper_section_2_4_example(self, theory, kmt, nat):
        """inc j; always(j <= 2)  ==  (j <= 1); always(j <= 2); inc j."""
        lhs = T.tseq(nat.inc("j"), T.ttest(theory.always(nat.le("j", 2))))
        rhs = T.tseq(
            T.ttest(T.pand(nat.le("j", 1), theory.always(nat.le("j", 2)))), nat.inc("j")
        )
        assert kmt.equivalent(lhs, rhs)

    def test_weakest_precondition_of_always(self, theory, kmt, nat):
        """The §2.4 calculation: pushing always(j<=200)-style tests through inc."""
        wp = kmt.weakest_precondition(Incr("j"), theory.always(nat.le("j", 2)))
        # Satisfied exactly when j <= 1 now and j <= 2 held throughout the past.
        good = nat_trace(0, 1)
        bad_now = nat_trace(1, 2)       # j = 2 now: after inc it would be 3
        bad_past = nat_trace(3, 1)      # j exceeded 2 in the past
        assert kmt.eval_pred(wp, good)
        assert not kmt.eval_pred(wp, bad_now)
        assert not kmt.eval_pred(wp, bad_past)


class TestSubtermsAndOrdering:
    def test_subterms_include_bodies(self, theory, nat):
        last = LtlLast(nat.gt("j", 1))
        assert nat.gt("j", 1) in theory.subterms(last)
        since = LtlSince(nat.gt("j", 0), nat.gt("j", 2))
        subs = theory.subterms(since)
        assert nat.gt("j", 0) in subs and nat.gt("j", 2) in subs

    def test_inner_subterms_delegate(self, theory):
        assert T.pprim(Gt("j", 0)) in set(theory.subterms(Gt("j", 1)))


class TestSatisfiability:
    def test_non_temporal_delegates_to_inner(self, theory, nat):
        assert theory.satisfiable(T.pand(nat.gt("j", 1), nat.le("j", 5)))
        assert not theory.satisfiable(T.pand(nat.gt("j", 5), nat.le("j", 3)))

    def test_temporal_satisfiability(self, theory, kmt, nat):
        # "j > 2 held at some point in the past" is satisfiable...
        assert theory.satisfiable(T.pprim(LtlSince(T.pone(), nat.gt("j", 2))))
        # ... and so is "in the previous state j > 2".
        assert theory.satisfiable(T.pprim(LtlLast(nat.gt("j", 2))))
        # start;last(anything) is unsatisfiable: there is no previous state.
        assert not theory.satisfiable(
            T.pand(theory.start(), T.pprim(LtlLast(T.pone())))
        )

    def test_temporal_contradiction(self, theory, kmt, nat):
        # always(j <= 2) together with "j > 4 held at some point" is contradictory.
        pred = T.pand(theory.always(nat.le("j", 2)), theory.ever(nat.gt("j", 4)))
        assert not theory.satisfiable(pred)

    def test_conjunction_oracle(self, theory, kmt, nat):
        literals = [(LtlLast(nat.gt("j", 2)), True), (Gt("j", 0), True)]
        assert theory.satisfiable_conjunction(literals)


class TestModelChecking:
    """Model checking as equivalence (Section 2.4).

    For the question "does every run of r satisfy prop?" to be meaningful the
    program must be *anchored*: ``start`` pins the input trace to a single
    state (no unconstrained history) and an initial test (the paper's
    ``assume``) pins that state's relevant variables.
    """

    def _anchored_program(self, kmt, theory):
        # start; j < 1; inc j; inc j — runs j through 0, 1, 2 with no history.
        return T.tseq(
            T.ttest(T.pand(theory.start(), kmt.parse_pred("j < 1"))),
            kmt.parse("inc(j); inc(j)"),
        )

    def test_anchored_invariant_holds(self, kmt, theory, nat):
        anchored = self._anchored_program(kmt, theory)
        prop = T.ttest(theory.always(nat.le("j", 2)))
        assert kmt.equivalent(anchored, T.tseq(anchored, prop))

    def test_anchored_invariant_fails(self, kmt, theory, nat):
        anchored = self._anchored_program(kmt, theory)
        too_strong = T.ttest(theory.always(nat.le("j", 1)))
        assert not kmt.equivalent(anchored, T.tseq(anchored, too_strong))

    def test_unanchored_program_does_not_satisfy_invariant(self, kmt, theory, nat):
        """Without anchoring, the arbitrary initial state/history can violate the invariant."""
        r = kmt.parse("j := 0; inc(j)")
        prop = T.ttest(theory.always(nat.le("j", 1)))
        assert not kmt.equivalent(r, T.tseq(r, prop))

    def test_emptiness_style_model_checking(self, kmt, theory, nat):
        """r; ~prop is empty iff every trace of r satisfies prop."""
        anchored = self._anchored_program(kmt, theory)
        prop = theory.always(nat.le("j", 2))
        assert kmt.is_empty(T.tseq(anchored, T.ttest(T.pnot(prop))))
        weak = theory.always(nat.le("j", 1))
        assert not kmt.is_empty(T.tseq(anchored, T.ttest(T.pnot(weak))))


class TestOverBitVec:
    def test_history_of_flags(self, kmt_bool, bool_theory):
        bv = bool_theory.inner
        program = "a := T; a := F"
        r = kmt_bool.parse(program)
        was_set = bool_theory.ever(bv.eq("a", True))
        assert kmt_bool.equivalent(r, T.tseq(r, T.ttest(was_set)))

    @pytest.mark.slow
    def test_since_unroll_law(self, kmt_bool, bool_theory):
        """LTL-Since-Unroll: a S b == b + a; last(a S b)."""
        bv = bool_theory.inner
        a = bv.eq("a", True)
        b = bv.eq("b", True)
        since = bool_theory.since(a, b)
        unrolled = T.por(b, T.pand(a, bool_theory.last(since)))
        assert kmt_bool.equivalent(T.ttest(since), T.ttest(unrolled))

    @pytest.mark.slow
    def test_not_since_law(self, kmt_bool, bool_theory):
        """LTL-Not-Since: ~(a S b) == (~b) B (~a;~b)."""
        bv = bool_theory.inner
        a = bv.eq("a", True)
        b = bv.eq("b", True)
        lhs = T.pnot(bool_theory.since(a, b))
        rhs = bool_theory.back_to(T.pnot(b), T.pand(T.pnot(a), T.pnot(b)))
        assert kmt_bool.equivalent(T.ttest(lhs), T.ttest(rhs))
