"""Property-based checks that the Fig. 5 equational theory holds in the
derived decision procedure.

The KMT framework promises that the derived KAT satisfies all the Kleene
algebra and Boolean algebra axioms (soundness, Theorem 3.1) and that the
decision procedure validates them (completeness, Theorem 3.7).  These tests
instantiate every axiom schema with random BitVec terms/predicates and ask the
decision procedure to confirm the equation.
"""

import pytest
from hypothesis import given, settings

from repro.core import terms as T
from repro.core.kmt import KMT
from repro.theories.bitvec import BitVecTheory
from repro.utils.errors import NormalizationBudgetExceeded
from tests.conftest import bitvec_preds, bitvec_terms

MAX_EXAMPLES = 6

# Operands are star-free: the axiom schemas themselves add the stars
# (star-unroll, denesting, sliding), which keeps each equivalence query well
# inside interactive time while still exercising every rule.
SMALL_TERMS = bitvec_terms(max_leaves=3, allow_star=False)
SMALL_STARFREE = bitvec_terms(max_leaves=3, allow_star=False)
SMALL_PREDS = bitvec_preds(max_leaves=3)


@pytest.fixture(scope="module")
def kmt():
    return KMT(BitVecTheory(variables=("a", "b", "c")), budget=8_000)


def _check(kmt, left, right):
    try:
        assert kmt.equivalent(left, right)
    except (NormalizationBudgetExceeded, RecursionError):
        # Pathological random instances (sums nested under star) can exhaust
        # the normalization budget, or produce normal forms so wide that the
        # ACI-canonicalisation of their action sums overflows the recursion
        # limit; the blow-up itself is exercised in test_pushback.py, so such
        # an instance simply contributes no evidence here.
        return


class TestKleeneAlgebraAxioms:
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(SMALL_TERMS, SMALL_TERMS, SMALL_TERMS)
    def test_plus_assoc(self, kmt, p, q, r):
        _check(kmt, T.tplus(p, T.tplus(q, r)), T.tplus(T.tplus(p, q), r))

    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(SMALL_TERMS, SMALL_TERMS)
    def test_plus_comm(self, kmt, p, q):
        _check(kmt, T.tplus(p, q), T.tplus(q, p))

    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(SMALL_TERMS)
    def test_plus_zero_and_idem(self, kmt, p):
        _check(kmt, T.tplus(p, T.tzero()), p)
        _check(kmt, T.tplus(p, p), p)

    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(SMALL_STARFREE, SMALL_STARFREE, SMALL_STARFREE)
    def test_seq_assoc(self, kmt, p, q, r):
        _check(kmt, T.tseq(p, T.tseq(q, r)), T.tseq(T.tseq(p, q), r))

    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(SMALL_TERMS)
    def test_seq_units_and_zero(self, kmt, p):
        _check(kmt, T.tseq(T.tone(), p), p)
        _check(kmt, T.tseq(p, T.tone()), p)
        _check(kmt, T.tseq(T.tzero(), p), T.tzero())
        _check(kmt, T.tseq(p, T.tzero()), T.tzero())

    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(SMALL_STARFREE, SMALL_STARFREE, SMALL_STARFREE)
    def test_distributivity(self, kmt, p, q, r):
        _check(kmt, T.tseq(p, T.tplus(q, r)), T.tplus(T.tseq(p, q), T.tseq(p, r)))
        _check(kmt, T.tseq(T.tplus(p, q), r), T.tplus(T.tseq(p, r), T.tseq(q, r)))

    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(SMALL_STARFREE)
    def test_star_unroll(self, kmt, p):
        star = T.tstar(p)
        _check(kmt, star, T.tplus(T.tone(), T.tseq(p, star)))
        _check(kmt, star, T.tplus(T.tone(), T.tseq(star, p)))

    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(SMALL_STARFREE, SMALL_STARFREE)
    def test_denesting_consequence(self, kmt, p, q):
        lhs = T.tstar(T.tplus(p, q))
        rhs = T.tseq(T.tstar(p), T.tstar(T.tseq(q, T.tstar(p))))
        _check(kmt, lhs, rhs)

    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(SMALL_STARFREE, SMALL_STARFREE)
    def test_sliding_consequence(self, kmt, p, q):
        lhs = T.tseq(p, T.tstar(T.tseq(q, p)))
        rhs = T.tseq(T.tstar(T.tseq(p, q)), p)
        _check(kmt, lhs, rhs)


class TestBooleanAlgebraAxioms:
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(SMALL_PREDS, SMALL_PREDS, SMALL_PREDS)
    def test_plus_dist(self, kmt, a, b, c):
        _check(
            kmt,
            T.ttest(T.por(a, T.pand(b, c))),
            T.ttest(T.pand(T.por(a, b), T.por(a, c))),
        )

    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(SMALL_PREDS)
    def test_plus_one_excl_mid(self, kmt, a):
        _check(kmt, T.ttest(T.por(a, T.pone())), T.tone())
        _check(kmt, T.ttest(T.por(a, T.pnot(a))), T.tone())

    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(SMALL_PREDS, SMALL_PREDS)
    def test_seq_comm(self, kmt, a, b):
        _check(kmt, T.ttest(T.pand(a, b)), T.ttest(T.pand(b, a)))

    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(SMALL_PREDS)
    def test_contra_and_idem(self, kmt, a):
        _check(kmt, T.ttest(T.pand(a, T.pnot(a))), T.tzero())
        _check(kmt, T.ttest(T.pand(a, a)), T.ttest(a))

    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(SMALL_PREDS, SMALL_PREDS)
    def test_de_morgan_as_equivalence(self, kmt, a, b):
        _check(kmt, T.ttest(T.pnot(T.pand(a, b))), T.ttest(T.por(T.pnot(a), T.pnot(b))))
        _check(kmt, T.ttest(T.pnot(T.por(a, b))), T.ttest(T.pand(T.pnot(a), T.pnot(b))))


class TestCongruence:
    """Equivalence is a congruence: rebuilding contexts preserves it."""

    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(SMALL_STARFREE, SMALL_TERMS)
    def test_plus_congruence_with_equivalent_sides(self, kmt, p, context):
        left = T.tplus(T.tseq(T.tone(), p), context)
        right = T.tplus(p, context)
        _check(kmt, left, right)

    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(SMALL_STARFREE)
    def test_star_congruence(self, kmt, p):
        _check(kmt, T.tstar(T.tseq(p, T.tone())), T.tstar(p))
