"""Tests for the While-language frontend (paper Section 1.1, Fig. 1)."""

import pytest

from repro.core import terms as T
from repro.core.kmt import KMT
from repro.lang import (
    Abort,
    ActionStmt,
    Assert,
    Assume,
    If,
    Seq,
    Skip,
    While,
    WhileProgram,
    compile_program,
    parse_program,
)
from repro.theories.bitvec import BitVecTheory
from repro.theories.incnat import Gt, IncNatTheory, Incr
from repro.theories.product import ProductTheory
from repro.utils.errors import ParseError


@pytest.fixture
def nat():
    return IncNatTheory(variables=("i", "j"))


@pytest.fixture
def kmt(nat):
    return KMT(nat)


class TestStatementCompilation:
    def test_skip_and_abort(self):
        assert Skip().compile() is T.tone()
        assert Abort().compile() is T.tzero()

    def test_assume_and_assert_compile_to_tests(self, nat):
        pred = nat.gt("i", 3)
        assert Assume(pred).compile() == T.ttest(pred)
        assert Assert(pred).compile() == T.ttest(pred)

    def test_action_statement(self, nat):
        stmt = ActionStmt(nat.inc("i"))
        assert stmt.compile() == nat.inc("i")

    def test_seq_compiles_in_order(self, nat):
        block = Seq([ActionStmt(nat.inc("i")), ActionStmt(nat.inc("j"))])
        assert block.compile() == T.tseq(nat.inc("i"), nat.inc("j"))

    def test_if_desugars_to_guarded_choice(self, nat):
        cond = nat.gt("i", 0)
        stmt = If(cond, ActionStmt(nat.inc("i")), ActionStmt(nat.inc("j")))
        expected = T.tplus(
            T.tseq(T.ttest(cond), nat.inc("i")),
            T.tseq(T.ttest(T.pnot(cond)), nat.inc("j")),
        )
        assert stmt.compile() == expected

    def test_if_without_else_uses_skip(self, nat):
        cond = nat.gt("i", 0)
        stmt = If(cond, ActionStmt(nat.inc("i")))
        compiled = stmt.compile()
        assert isinstance(compiled, T.TPlus)

    def test_while_desugars_to_star(self, nat):
        cond = nat.lt("i", 2)
        stmt = While(cond, ActionStmt(nat.inc("i")))
        expected = T.tseq(
            T.tstar(T.tseq(T.ttest(cond), nat.inc("i"))), T.ttest(T.pnot(cond))
        )
        assert stmt.compile() == expected

    def test_compile_program_helpers(self, nat):
        stmt = ActionStmt(nat.inc("i"))
        program = WhileProgram([stmt], nat)
        assert compile_program(program) == nat.inc("i")
        assert compile_program(stmt) == nat.inc("i")
        with pytest.raises(TypeError):
            compile_program("not a program")

    def test_pretty_rendering(self, nat):
        program = WhileProgram(
            [Assume(nat.lt("i", 2)), While(nat.lt("i", 4), Seq([ActionStmt(nat.inc("i"))]))],
            nat,
        )
        rendered = program.pretty()
        assert "assume" in rendered and "while" in rendered
        assert "WhileProgram" in repr(program)


class TestParsing:
    def test_parse_simple_program(self, nat):
        program = parse_program("assume i < 2; inc(i); assert i > 0;", nat)
        term = program.compile()
        assert isinstance(term, T.TSeq)

    def test_parse_if_else_blocks(self, nat):
        source = """
        if (i > 0) {
            inc(j);
        } else {
            inc(i);
        }
        """
        program = parse_program(source, nat)
        assert isinstance(program.body.statements[0], If)

    def test_parse_while_block(self, nat):
        source = "while (i < 3) { inc(i); inc(j); }"
        program = parse_program(source, nat)
        loop = program.body.statements[0]
        assert isinstance(loop, While)
        assert isinstance(loop.body, Seq)
        assert len(loop.body.statements) == 2

    def test_parse_nested_control_flow(self, nat):
        source = """
        assume i < 1;
        while (i < 4) {
            if (j > 1) { inc(i); } else { inc(j); }
        }
        """
        program = parse_program(source, nat)
        loop = program.body.statements[1]
        assert isinstance(loop, While)
        assert isinstance(loop.body.statements[0], If)

    def test_skip_and_abort_statements(self, nat):
        program = parse_program("skip; abort;", nat)
        kinds = [type(s) for s in program.body.statements]
        assert kinds == [Skip, Abort]

    def test_unknown_statement_is_parse_error(self, nat):
        with pytest.raises(ParseError):
            parse_program("frobnicate the widget;", nat)

    def test_unbalanced_brace_is_parse_error(self, nat):
        with pytest.raises(ParseError):
            parse_program("while (i < 2) { inc(i);", nat)

    def test_missing_condition_is_parse_error(self, nat):
        with pytest.raises(ParseError):
            parse_program("while () { inc(i); }", nat)


class TestFig1Programs:
    def test_pnat_program_compiles_and_verifies(self, nat, kmt):
        """Fig. 1(a), scaled down: assume i<1; while (i<3) {inc i; inc j; inc j}; assert j>1."""
        source = """
        assume i < 1;
        while (i < 3) {
            inc(i); inc(j); inc(j);
        }
        assert j > 1;
        """
        program = parse_program(source, nat)
        term = program.compile()
        without_assert = parse_program(
            """
            assume i < 1;
            while (i < 3) {
                inc(i); inc(j); inc(j);
            }
            """,
            nat,
        ).compile()
        # The assert never fires: the loop adds at least 6 to j.
        assert kmt.equivalent(term, without_assert)
        # A too-strong assert does change the program.
        too_strong = T.tseq(without_assert, T.ttest(nat.gt("j", 9)))
        assert not kmt.equivalent(too_strong, without_assert)

    def test_loop_unfolding_equivalence(self, nat, kmt):
        """Section 1.1: the while loop equals its unfolding."""
        source = "while (i < 2) { inc(i); }"
        loop = parse_program(source, nat).compile()
        guard = nat.lt("i", 2)
        body = nat.inc("i")
        unfolded = T.tseq(
            T.tplus(
                T.tone(),
                T.tseq(T.tseq(T.ttest(guard), body), T.tstar(T.tseq(T.ttest(guard), body))),
            ),
            T.ttest(T.pnot(guard)),
        )
        assert kmt.equivalent(loop, unfolded)

    def test_product_theory_program(self):
        theory = ProductTheory(IncNatTheory(variables=("i",)), BitVecTheory(variables=("done",)))
        kmt = KMT(theory)
        source = """
        assume i < 1;
        done := F;
        while (i < 2) {
            inc(i);
        }
        done := T;
        assert done = T;
        """
        program = parse_program(source, theory)
        term = program.compile()
        stripped = parse_program(
            """
            assume i < 1;
            done := F;
            while (i < 2) {
                inc(i);
            }
            done := T;
            """,
            theory,
        ).compile()
        assert kmt.equivalent(term, stripped)


class TestSourceSpans:
    SOURCE = ("assume i < 2;\n"
              "if (i > 0) {\n"
              "    inc(i);\n"
              "} else {\n"
              "    inc(j);\n"
              "}\n"
              "while (j < 4) {\n"
              "    j += 2;\n"
              "}\n")

    def test_statement_spans_slice_the_source(self, nat):
        program = parse_program(self.SOURCE, nat)
        assume, branch, loop = program.body.statements
        text = self.SOURCE
        assert text[slice(*assume.span)] == "assume i < 2"
        assert text[slice(*branch.span)].startswith("if (i > 0) {")
        assert text[slice(*branch.span)].endswith("}")
        assert text[slice(*loop.span)].startswith("while (j < 4) {")
        then_stmt = branch.then_branch.statements[0]
        assert text[slice(*then_stmt.span)] == "inc(i)"
        body_stmt = loop.body.statements[0]
        assert text[slice(*body_stmt.span)] == "j += 2"

    def test_cond_spans_cover_the_guard_text(self, nat):
        program = parse_program(self.SOURCE, nat)
        _, branch, loop = program.body.statements
        assert self.SOURCE[slice(*branch.cond_span)] == "i > 0"
        assert self.SOURCE[slice(*loop.cond_span)] == "j < 4"

    def test_program_keeps_source_text(self, nat):
        program = parse_program(self.SOURCE, nat)
        assert program.source == self.SOURCE

    def test_hand_built_statements_have_no_span(self):
        stmt = Assume(T.pprim(Gt("i", 1)))
        assert stmt.span is None
        assert If(T.pprim(Gt("i", 1)), Skip(), Skip()).cond_span is None


class TestPrettyRoundTrip:
    def test_pretty_reparses_to_identical_term(self, nat):
        source = ("assume i < 2;\n"
                  "while (i < 5) {\n"
                  "    i += 1;\n"
                  "    if (j > 1) { inc(j); }\n"
                  "}\n"
                  "assert j > 0;\n")
        program = parse_program(source, nat)
        reparsed = parse_program(program.pretty(), nat)
        # Hash-consing makes term equality an identity check.
        assert reparsed.compile() is program.compile()

    def test_each_statement_pretty_reparses(self, nat):
        source = "assume i < 2; if (i > 0) { inc(i); } else { } abort;"
        program = parse_program(source, nat)
        for stmt in program.body.statements:
            again = parse_program(stmt.pretty(), nat)
            assert again.compile() is stmt.compile()
