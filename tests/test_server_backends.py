"""Execution backends of the query server: differential soak, crash
recovery, and the wire-serialization property tests.

The headline here is the **differential soak harness**: one randomized
200-request mixed-theory workload replayed through three execution paths —
``kmt batch`` (the grouped batch runner), the server's ``thread`` backend and
its ``process`` backend — asserting identical verdicts, structurally *valid*
counterexamples, and exact id accounting across all three.  Everything the
protocol promises to be deterministic is compared byte-for-byte; only the
session-history-dependent counters (``cells_explored``/``cells_pruned``,
which legitimately vary with how warm each stripe's memo happens to be, and
the ``cached`` replay flag) are excluded.

Alongside it: the crash-recovery test (SIGKILL a worker process mid-query;
the supervisor must respawn it, answer the in-flight id with a structured
``worker_crashed`` error, and lose or duplicate no other id), Hypothesis
round-trip properties for the compact wire form the process backend ships
across its pipes, and backend-parameterized behavior tests keeping the two
backends semantically interchangeable.
"""

from __future__ import annotations

import io
import json
import os
import random
import signal
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import automata
from repro.engine.batch import (
    CONTROL_OPS,
    ERROR_MALFORMED,
    ERROR_UNKNOWN_OP,
    QUERY_OPS,
    decode_wire_request,
    decode_wire_response,
    encode_wire_request,
    encode_wire_response,
    parse_request_line,
    run_batch_lines,
)
from repro.engine.server import (
    QueryServer,
    ResponseSink,
    SocketServer,
    _affinity_stripe,
    merge_pool_stats,
    serve_stdio,
)
from repro.engine.session import EngineSession
from repro.theories import build_theory
from repro.utils.errors import WireProtocolError

BACKENDS = ("thread", "process")

#: Spec every process-backend test injects latency through (resolved inside
#: the spawned worker; configured via KMT_TEST_ORACLE_* env vars, which the
#: children inherit).
ORACLE_SPEC = "repro.engine.testing:oracle_latency_factory"


def record(**fields):
    return json.dumps(fields)


class ListSink(ResponseSink):
    def __init__(self, ordered=False):
        self.responses = []
        super().__init__(lambda line: self.responses.append(json.loads(line)),
                         ordered=ordered)


def make_server(backend, workers=2, oracle_ms=0, oracle_theories="incnat",
                monkeypatch=None, **options):
    """A QueryServer for either backend, with optional oracle latency.

    The thread backend takes an in-process wrapped factory; the process
    backend gets the same latency via the env-configured spawnable factory
    (``monkeypatch`` required when ``oracle_ms`` is set so the env is
    restored).
    """
    if backend == "thread":
        if oracle_ms:
            from repro.engine.testing import OracleLatencyTheory

            only = {name.strip() for name in oracle_theories.split(",")}

            def factory(name):
                theory = build_theory(name)
                return OracleLatencyTheory(theory, oracle_ms / 1000.0) \
                    if name in only else theory

            options["theory_factory"] = factory
        return QueryServer(workers=workers, backend="thread", **options)
    if oracle_ms:
        monkeypatch.setenv("KMT_TEST_ORACLE_DELAY_MS", str(oracle_ms))
        monkeypatch.setenv("KMT_TEST_ORACLE_THEORIES", oracle_theories)
        options["theory_factory_spec"] = ORACLE_SPEC
    return QueryServer(workers=workers, backend="process", **options)


# ---------------------------------------------------------------------------
# the randomized mixed-theory workload
# ---------------------------------------------------------------------------

SOAK_SEED = 20260729
SOAK_REQUESTS = 200


def _rand_pred(rng, atoms, depth):
    if depth <= 0 or rng.random() < 0.5:
        return rng.choice(atoms)
    roll = rng.random()
    if roll < 0.35:
        return f"~({_rand_pred(rng, atoms, depth - 1)})"
    left = _rand_pred(rng, atoms, depth - 1)
    right = _rand_pred(rng, atoms, depth - 1)
    if roll < 0.7:
        return f"({left}; {right})"
    return f"({left} + {right})"


def _rand_term(rng, preds, actions, depth):
    # Stars only wrap primitive actions: starred compound bodies make normal
    # forms explode (the Denest blow-up), which tests performance rather than
    # cross-backend agreement.
    if depth <= 0:
        return rng.choice(actions if rng.random() < 0.6 else preds)
    roll = rng.random()
    if roll < 0.15:
        return f"({rng.choice(actions)})*"
    if roll < 0.35:
        return rng.choice(actions)
    left = _rand_term(rng, preds, actions, depth - 1)
    right = _rand_term(rng, preds, actions, depth - 1)
    if roll < 0.7:
        return f"({left}; {right})"
    return f"({left} + {right})"


_THEORY_ATOMS = {
    "incnat": (
        ["x > 0", "x > 1", "x > 2", "y > 1", "y > 3"],
        ["inc(x)", "inc(y)"],
    ),
    "bitvec": (
        ["a = T", "b = T", "c = T"],
        ["flip a", "a := T", "a := F", "b := T", "c := F"],
    ),
    "netkat": (
        ["sw = 0", "sw = 1", "sw = 2", "pt = 1"],
        ["sw <- 0", "sw <- 1", "sw <- 2", "pt <- 1"],
    ),
}

#: Guard/body loops that normalize quickly (starred random guards can Denest).
_THEORY_LOOPS = {
    "incnat": "while (x > 0) { inc(y); }",
    "bitvec": "while (a = T) { a := F; }",
    "netkat": "while (sw = 0) { sw <- 1; }",
}


def _rand_program(rng, preds, actions, loop, depth):
    """A small random While program over the theory's atoms."""
    stmts = []
    for _ in range(rng.randint(1, 3)):
        roll = rng.random()
        if roll < 0.25:
            stmts.append(f"assume {rng.choice(preds)};")
        elif roll < 0.65 or depth <= 0:
            stmts.append(f"{rng.choice(actions)};")
        elif roll < 0.8:
            inner = _rand_program(rng, preds, actions, loop, depth - 1)
            stmt = f"if ({rng.choice(preds)}) {{ {inner} }}"
            if rng.random() < 0.5:
                other = _rand_program(rng, preds, actions, loop, depth - 1)
                stmt += f" else {{ {other} }}"
            stmts.append(stmt)
        elif roll < 0.9:
            stmts.append(loop)
        else:
            stmts.append("abort;")
    return " ".join(stmts)


def make_soak_workload(seed=SOAK_SEED, total=SOAK_REQUESTS):
    """``total`` JSONL query lines (ids ``q0..``), plus a protocol-error tail.

    Mixed theories and every query op; equivalence pairs are a mix of random
    (almost always inequivalent, exercising counterexamples) and
    derived-by-KAT-law pairs (``p + p`` / commuted sums, exercising the
    exhaustive equivalent verdict).
    """
    rng = random.Random(seed)
    lines = []

    def add(**fields):
        fields["id"] = f"q{len(lines)}"
        lines.append(json.dumps(fields))

    theories = sorted(_THEORY_ATOMS)
    for _ in range(total):
        theory = rng.choice(theories)
        preds, actions = _THEORY_ATOMS[theory]
        loop = _THEORY_LOOPS[theory]
        op = rng.choices(("equiv", "leq", "norm", "sat", "empty",
                          "verify", "prog_equiv", "dead_code"),
                         weights=(5, 2, 2, 2, 1, 2, 2, 1))[0]
        if op == "verify":
            program = _rand_program(rng, preds, actions, loop, depth=1)
            add(op="verify", theory=theory, pre=rng.choice(preds + ["true"]),
                program=program, post=rng.choice(preds))
        elif op == "prog_equiv":
            left = _rand_program(rng, preds, actions, loop, depth=1)
            if rng.random() < 0.4:
                right = left  # must come back equivalent on every path
            else:
                right = _rand_program(rng, preds, actions, loop, depth=1)
            add(op="prog_equiv", theory=theory, left=left, right=right)
        elif op == "dead_code":
            add(op="dead_code", theory=theory,
                program=_rand_program(rng, preds, actions, loop, depth=2))
        elif op == "equiv":
            left = _rand_term(rng, preds, actions, depth=2)
            roll = rng.random()
            if roll < 0.25:
                right = f"({left} + {left})"
            elif roll < 0.4:
                other = _rand_term(rng, preds, actions, depth=1)
                left, right = f"({left} + {other})", f"({other} + {left})"
            else:
                right = _rand_term(rng, preds, actions, depth=2)
            add(op="equiv", theory=theory, left=left, right=right)
        elif op == "leq":
            left = _rand_term(rng, preds, actions, depth=1)
            if rng.random() < 0.5:
                other = _rand_term(rng, preds, actions, depth=1)
                add(op="leq", theory=theory, left=left, right=f"({left} + {other})")
            else:
                add(op="leq", theory=theory, left=left,
                    right=_rand_term(rng, preds, actions, depth=2))
        elif op == "norm":
            add(op="norm", theory=theory, term=_rand_term(rng, preds, actions, depth=2))
        elif op == "sat":
            add(op="sat", theory=theory, pred=_rand_pred(rng, preds, depth=2))
        else:
            term = _rand_term(rng, preds, actions, depth=1)
            if rng.random() < 0.5:
                pred = rng.choice(preds)
                term = f"({pred}; ~({pred}))"
            add(op="empty", theory=theory, term=term)
    # A protocol-error tail: these must produce identical structured errors
    # (and keep exact id accounting) on every execution path.
    add(op="equiv", theory="incnat")                      # missing fields
    add(op="frobnicate")                                  # unknown op
    add(op="sat", theory="no-such-theory", pred="x > 1")  # unknown theory
    add(op="norm", theory="incnat", term=["not", "text"])  # wrong field type
    add(op="dead_code", theory="incnat", program="while (x > 0 { }")  # parse error
    add(op="verify", theory="incnat", pre="x > 0", program="inc(x);")  # missing post
    return lines


def _isolated_derivative_cache():
    """Fresh process-wide derivative memo (restores the previous one)."""
    from repro.engine.cache import LRUCache

    saved = automata.get_derivative_cache()
    automata.set_derivative_cache(LRUCache(maxsize=65536, name="deriv"))
    return saved


def run_path_batch(lines):
    saved = _isolated_derivative_cache()
    try:
        responses, _ = run_batch_lines(list(lines))
    finally:
        automata.set_derivative_cache(saved)
    return responses


def run_path_server(lines, backend, workers=3):
    saved = _isolated_derivative_cache()
    try:
        stdin = io.StringIO("\n".join(lines) + "\n")
        stdout = io.StringIO()
        serve_stdio(stdin, stdout, workers=workers, backend=backend)
    finally:
        automata.set_derivative_cache(saved)
    return [json.loads(line) for line in stdout.getvalue().splitlines()]


#: Result fields that legitimately differ across execution paths: comparison
#: and prune *counters* depend on how warm each session's signature memo is
#: (one session per theory in batch vs one per stripe in the server), and the
#: ``cached`` flag marks replays, which likewise depend on stripe layout.
_HISTORY_DEPENDENT = ("cells_explored", "cells_pruned", "cached")


def comparable_response(response):
    """Project a response onto its path-independent core."""
    out = {key: value for key, value in response.items() if key != "result"}
    # Human-readable error strings may mention pids/worker indices; the
    # stable contract across paths is the error *code*.
    out.pop("error", None)
    result = response.get("result")
    if isinstance(result, dict):
        out["result"] = {key: value for key, value in result.items()
                         if key not in _HISTORY_DEPENDENT}
    return out


@pytest.fixture(scope="module")
def soak():
    lines = make_soak_workload()
    return {
        "lines": lines,
        "batch": run_path_batch(lines),
        "thread": run_path_server(lines, "thread"),
        "process": run_path_server(lines, "process"),
    }


class TestDifferentialSoak:
    def test_id_accounting_exact(self, soak):
        expected = sorted(json.loads(line)["id"] for line in soak["lines"])
        for path in ("batch", "thread", "process"):
            got = sorted(response["id"] for response in soak[path])
            assert got == expected, f"{path}: id set mismatch"

    def test_identical_verdicts_across_all_three_paths(self, soak):
        reference = {response["id"]: comparable_response(response)
                     for response in soak["batch"]}
        for path in ("thread", "process"):
            for response in soak[path]:
                assert comparable_response(response) == reference[response["id"]], (
                    f"{path}: response for {response['id']} diverges from batch")

    def test_workload_exercises_both_verdicts_and_errors(self, soak):
        equiv_verdicts = [response["result"]["equivalent"]
                          for response in soak["batch"]
                          if response.get("ok") and response["op"] == "equiv"]
        assert equiv_verdicts.count(True) >= 20
        assert equiv_verdicts.count(False) >= 20
        errors = [response for response in soak["batch"] if not response["ok"]]
        assert {response["error_code"] for response in errors} >= {
            "missing_field", "unknown_op", "unknown_theory"}

    def test_counterexamples_are_valid(self, soak):
        """Every counterexample a path reports must be structurally valid:
        theory-satisfiable cell, word accepted by exactly one side."""
        sessions = {}
        checked = 0
        for response in soak["batch"]:
            if not response.get("ok") or response["op"] != "equiv":
                continue
            payload = response["result"]
            if payload["equivalent"]:
                continue
            request = json.loads(soak["lines"][int(response["id"][1:])])
            theory_name = request["theory"]
            if theory_name not in sessions:
                theory = build_theory(theory_name)
                sessions[theory_name] = (theory, EngineSession(theory))
            theory, session = sessions[theory_name]
            result = session.check_equivalent(request["left"], request["right"])
            assert not result.equivalent
            cex = result.counterexample
            assert cex is not None
            if cex.cell:
                assert theory.satisfiable_conjunction(list(cex.cell))
            state = automata.canonical(cex.left_actions)
            other = automata.canonical(cex.right_actions)
            for pi in cex.word:
                state = automata.derivative(state, pi)
                other = automata.derivative(other, pi)
            assert automata.nullable(state) != automata.nullable(other)
            # The served string is exactly this witness's rendering.
            assert payload["counterexample"] == cex.describe()
            checked += 1
        assert checked >= 20  # the workload must really exercise witnesses


# ---------------------------------------------------------------------------
# crash recovery (process backend)
# ---------------------------------------------------------------------------


class TestCrashRecovery:
    def test_worker_killed_mid_query_is_respawned(self, monkeypatch):
        # incnat oracle calls hang for 60s, giving a deterministic window in
        # which the in-flight query is executing inside the worker process.
        with make_server("process", workers=2, oracle_ms=60_000,
                         oracle_theories="incnat", monkeypatch=monkeypatch) as server:
            assert server.wait_ready(timeout=60)
            sink = ListSink()
            doomed = {"op": "equiv", "left": "inc(x); x > 1",
                      "right": "x > 0; inc(x)", "id": "doomed"}
            doomed_worker = server._worker_index(
                "incnat", _affinity_stripe(doomed, server.stripes))
            # Requests on the *other* worker must be unaffected throughout.
            bystanders = []
            # Varying the variable-name *length* varies the content-hash
            # stripe (crc32 is linear, so same-length single-char tweaks can
            # all share a parity and land on one worker).
            for i in range(8):
                rec = {"op": "sat", "theory": "bitvec", "pred": f"{'v' * (i + 1)} = T",
                       "id": f"bystander-{i}"}
                if server._worker_index(
                        "bitvec", _affinity_stripe(rec, server.stripes)) != doomed_worker:
                    bystanders.append(rec)
            assert bystanders, "no bitvec query landed on the other worker"
            server.submit_line(json.dumps(doomed), sink)
            for rec in bystanders:
                server.submit_line(json.dumps(rec), sink)
            # Wait until the doomed request has left the scheduler queue and
            # is in flight inside the worker's oracle call.
            deadline = time.monotonic() + 30
            while server.server_stats()["queue"]["depth"] > 0:
                assert time.monotonic() < deadline
                time.sleep(0.01)
            time.sleep(0.5)
            pid = server.backend.worker_info()[doomed_worker]["pid"]
            os.kill(pid, signal.SIGKILL)
            assert server.wait_idle(timeout=60)
            # The respawned worker serves the same shard again (bitvec is
            # fast — the latency wrapper only covers incnat).
            follow_up = {"op": "sat", "theory": "bitvec", "pred": "z = T", "id": "after"}
            server.submit_line(json.dumps(follow_up), sink)
            assert server.wait_idle(timeout=60)
            info = server.backend.worker_info()

        by_id = {response["id"]: response for response in sink.responses}
        # No id lost, none duplicated.
        expected = {"doomed", "after"} | {rec["id"] for rec in bystanders}
        assert len(sink.responses) == len(expected)
        assert set(by_id) == expected
        assert by_id["doomed"]["ok"] is False
        assert by_id["doomed"]["error_code"] == "worker_crashed"
        assert str(pid) in by_id["doomed"]["error"]
        for rec in bystanders:
            assert by_id[rec["id"]]["ok"] is True
        assert by_id["after"]["ok"] is True
        assert info[doomed_worker]["restarts"] == 1
        assert info[doomed_worker]["pid"] != pid
        assert all(worker["restarts"] == 0
                   for worker in info if worker["index"] != doomed_worker)

    def test_request_queued_behind_crash_executes_on_respawned_worker(self, monkeypatch):
        # One worker, so the follow-up request is queued *behind* the doomed
        # one on the same dispatcher; after the respawn it must execute
        # normally (not be dropped with the crash).
        with make_server("process", workers=1, oracle_ms=60_000,
                         oracle_theories="incnat", monkeypatch=monkeypatch) as server:
            assert server.wait_ready(timeout=60)
            sink = ListSink()
            server.submit_line(record(op="equiv", left="inc(x); x > 1",
                                      right="x > 0; inc(x)", id="doomed"), sink)
            server.submit_line(record(op="sat", theory="bitvec", pred="a = T",
                                      id="behind"), sink)
            deadline = time.monotonic() + 30
            while server.server_stats()["queue"]["depth"] > 1:
                assert time.monotonic() < deadline
                time.sleep(0.01)
            time.sleep(0.5)
            os.kill(server.backend.worker_info()[0]["pid"], signal.SIGKILL)
            assert server.wait_idle(timeout=60)
        by_id = {response["id"]: response for response in sink.responses}
        assert set(by_id) == {"doomed", "behind"}
        assert by_id["doomed"]["error_code"] == "worker_crashed"
        assert by_id["behind"]["ok"] is True
        assert by_id["behind"]["result"]["satisfiable"] is True


# ---------------------------------------------------------------------------
# wire serialization properties
# ---------------------------------------------------------------------------

_ALL_OPS = QUERY_OPS + CONTROL_OPS + ("quit",)

_REQUIRED_FIELDS = {
    "equiv": ("left", "right"), "leq": ("left", "right"),
    "inclusion": ("left", "right"), "member": ("term", "word"), "norm": ("term",),
    "sat": ("pred",), "empty": ("term",),
    "verify": ("pre", "program", "post"), "prog_equiv": ("left", "right"),
    "dead_code": ("program",),
    "stats": (), "ping": (), "metrics": (),
    "quit": (),
}

_json_values = st.recursive(
    st.none() | st.booleans() | st.integers(-10**6, 10**6)
    | st.floats(allow_nan=False, allow_infinity=False, width=32) | st.text(max_size=12),
    lambda children: st.lists(children, max_size=3)
    | st.dictionaries(st.text(max_size=6), children, max_size=3),
    max_leaves=6,
)

_RESERVED_REQUEST = {"op", "left", "right", "term", "pred", "word", "pre", "program",
                     "post", "id", "theory", "deadline_ms"}
_RESERVED_RESPONSE = {"id", "ok", "op", "theory", "result", "error", "error_code"}


@st.composite
def request_records(draw):
    op = draw(st.sampled_from(_ALL_OPS))
    rec = {"op": op}
    for field in _REQUIRED_FIELDS[op]:
        if draw(st.booleans()) or draw(st.booleans()):  # usually present
            rec[field] = draw(st.text(max_size=30))
    if draw(st.booleans()):
        rec["id"] = draw(st.none() | st.integers(-10**6, 10**6) | st.text(max_size=12))
    if draw(st.booleans()):
        rec["theory"] = draw(st.text(max_size=12))
    if draw(st.booleans()):
        rec["deadline_ms"] = draw(st.integers(1, 10**6))
    extras = draw(st.dictionaries(
        st.text(max_size=8).filter(lambda k: k not in _RESERVED_REQUEST),
        _json_values, max_size=3))
    rec.update(extras)
    return rec


@st.composite
def response_records(draw):
    rec = {
        "id": draw(st.none() | st.integers(-10**6, 10**6) | st.text(max_size=12)),
        "ok": draw(st.booleans()),
    }
    if draw(st.booleans()):
        rec["op"] = draw(st.sampled_from(_ALL_OPS))
    if draw(st.booleans()):
        rec["theory"] = draw(st.text(max_size=12))
    if rec["ok"]:
        rec["result"] = draw(_json_values)
    else:
        rec["error"] = draw(st.text(max_size=30))
        rec["error_code"] = draw(st.text(max_size=20))
    return rec


class TestWireRoundTrip:
    @given(rec=request_records())
    def test_request_round_trips_exactly(self, rec):
        assert decode_wire_request(encode_wire_request(rec)) == rec

    @given(rec=request_records())
    def test_parse_then_wire_round_trip(self, rec):
        """The full pipeline: a protocol line is parsed, wire-encoded for the
        worker, and decoded there into the *same* record the parser saw."""
        kind, payload = parse_request_line(json.dumps(rec))
        assert kind in ("query", "control", "quit")
        assert payload == rec
        assert decode_wire_request(encode_wire_request(payload)) == payload

    @given(rec=response_records())
    def test_response_round_trips_exactly(self, rec):
        assert decode_wire_response(encode_wire_response(rec)) == rec

    @given(wire=st.text(max_size=200))
    @settings(max_examples=200)
    def test_garbage_never_escapes_the_wire_error_type(self, wire):
        for decode in (decode_wire_request, decode_wire_response):
            try:
                decode(wire)
            except WireProtocolError as error:
                assert error.code in (ERROR_MALFORMED, ERROR_UNKNOWN_OP)

    def test_malformed_inputs_rejected_with_stable_codes(self):
        cases = [
            ("not json {", ERROR_MALFORMED),
            ("null", ERROR_MALFORMED),
            ('"just a string"', ERROR_MALFORMED),
            ("[]", ERROR_MALFORMED),
            ('[2,"sat",[0],[0,0,0],{}]', ERROR_MALFORMED),        # wrong version
            ('[1,"bogus",[],[0,0,0],{}]', ERROR_UNKNOWN_OP),
            ('[1,"sat",[0,0],[0,0,0],{}]', ERROR_MALFORMED),      # wrong arity
            ('[1,"sat",[0],[0,0],{}]', ERROR_MALFORMED),          # optional arity
            ('[1,"sat",[[1,2]],[0,0,0],{}]', ERROR_MALFORMED),    # bad slot
            ('[1,"sat",[7],[0,0,0],{}]', ERROR_MALFORMED),        # bad slot value
            ('[1,"sat",[0],[0,0,0],[]]', ERROR_MALFORMED),        # extras not a dict
            ('[1,"sat",[0],[0,0,0],{"op":"x"}]', ERROR_MALFORMED),  # slot collision
        ]
        for wire, code in cases:
            with pytest.raises(WireProtocolError) as excinfo:
                decode_wire_request(wire)
            assert excinfo.value.code == code, wire
        for wire, code in [
            ("nope", ERROR_MALFORMED),
            ('[1,0,true,[0,0,0,0,0],{}]', ERROR_MALFORMED),   # absent id
            ('[1,[3],"yes",[0,0,0,0,0],{}]', ERROR_MALFORMED),  # non-bool ok
            ('[1,[3],true,[0,0,0,0,0],{"ok":false}]', ERROR_MALFORMED),
        ]:
            with pytest.raises(WireProtocolError) as excinfo:
                decode_wire_response(wire)
            assert excinfo.value.code == code, wire

    def test_encode_rejects_unknown_op_and_bad_records(self):
        with pytest.raises(WireProtocolError) as excinfo:
            encode_wire_request({"op": "frobnicate"})
        assert excinfo.value.code == ERROR_UNKNOWN_OP
        with pytest.raises(WireProtocolError):
            encode_wire_request("not a record")
        with pytest.raises(WireProtocolError):
            encode_wire_request({"op": "sat", "pred": object()})  # unserializable
        with pytest.raises(WireProtocolError):
            encode_wire_response({"ok": True})  # id missing
        with pytest.raises(WireProtocolError):
            encode_wire_response({"id": 1, "ok": "yes"})  # non-bool ok


# ---------------------------------------------------------------------------
# backend-parameterized behavior
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
class TestBackendParity:
    def test_mixed_burst_ids_and_verdicts(self, backend):
        sink = ListSink()
        with QueryServer(workers=2, backend=backend) as server:
            for i in range(6):
                server.submit_line(record(op="sat", pred=f"x > {i}", id=f"sat-{i}"), sink)
                server.submit_line(record(op="equiv", theory="bitvec",
                                          left="a := T; a = T", right="a := T",
                                          id=f"eq-{i}"), sink)
            server.wait_idle(timeout=120)
        by_id = {response["id"]: response for response in sink.responses}
        assert len(by_id) == len(sink.responses) == 12
        for i in range(6):
            assert by_id[f"sat-{i}"]["result"]["satisfiable"] is True
            assert by_id[f"eq-{i}"]["result"]["equivalent"] is True

    def test_repeat_hits_the_same_warm_shard(self, backend):
        sink = ListSink()
        with QueryServer(workers=2, backend=backend) as server:
            line = record(op="equiv", left="inc(x); x > 3", right="x > 2; inc(x)", id="q")
            for _ in range(2):
                server.submit_line(line, sink)
                server.wait_idle(timeout=120)
        cached = [response["result"].get("cached", False) for response in sink.responses]
        assert cached.count(True) == 1

    def test_deadline_expires_mid_search(self, backend, monkeypatch):
        with make_server(backend, workers=1, oracle_ms=150, oracle_theories="incnat",
                         monkeypatch=monkeypatch) as server:
            server.wait_ready(timeout=60)
            sink = ListSink()
            server.submit_line(record(op="equiv", left="inc(x); x > 1",
                                      right="x > 0; inc(x)", id="doomed",
                                      deadline_ms=40), sink)
            server.wait_idle(timeout=120)
            server.submit_line(record(op="equiv", left="inc(x); x > 1",
                                      right="x > 0; inc(x)", id="retry"), sink)
            server.wait_idle(timeout=120)
        by_id = {response["id"]: response for response in sink.responses}
        assert by_id["doomed"]["ok"] is False
        assert by_id["doomed"]["error_code"] == "deadline_exceeded"
        # Cancellation corrupted nothing: the retry answers correctly.
        assert by_id["retry"]["ok"] is True
        assert by_id["retry"]["result"]["equivalent"] is True

    def test_unknown_theory_is_a_structured_error(self, backend):
        sink = ListSink()
        with QueryServer(workers=1, backend=backend) as server:
            server.submit_line(record(op="sat", theory="no-such", pred="x > 1", id="u"), sink)
            server.wait_idle(timeout=120)
        assert sink.responses[0]["error_code"] == "unknown_theory"

    def test_stats_report_theories_server_block_and_shared(self, backend):
        sink = ListSink()
        with QueryServer(workers=2, backend=backend) as server:
            server.submit_line(record(op="sat", pred="x > 1", id="q1"), sink)
            server.submit_line(record(op="sat", theory="bitvec", pred="a = T", id="q2"), sink)
            server.wait_idle(timeout=120)
            server.submit_line(record(op="stats", id="s"), sink)
            server.submit_line(record(op="ping", id="p"), sink)
        stats = next(r for r in sink.responses if r["id"] == "s")["result"]
        assert {"incnat", "bitvec"} <= set(stats)
        assert stats["incnat"]["queries"] >= 1
        assert stats["incnat"]["totals"]["misses"] >= 1
        assert "deriv" in stats["shared"]["tables"]
        assert stats["server"]["backend"] == backend
        if backend == "process":
            workers = stats["server"]["process_workers"]
            assert len(workers) == 2
            assert all(worker["alive"] for worker in workers)
            assert sum(worker["requests"] for worker in workers) == 2
        ping = next(r for r in sink.responses if r["id"] == "p")["result"]
        assert ping["pong"] is True
        assert set(ping["theories"]) == {"incnat", "bitvec"}

    def test_server_is_restartable_after_shutdown(self, backend):
        server = QueryServer(workers=1, backend=backend)
        server.start()
        server.shutdown(drain=True)
        sink = ListSink()
        try:
            server.start()
            # Intake must reopen: a restarted server used to answer every
            # request with `shutting_down` because _accepting stayed False.
            outcome = server.submit_line(record(op="sat", pred="x > 1", id="q"), sink)
            assert outcome == "queued"
            assert server.wait_idle(timeout=120)
        finally:
            server.shutdown(drain=True)
        assert sink.responses[0]["ok"] is True

    def test_serve_stdio_default_ids_and_quit_drain(self, backend):
        stdin = io.StringIO("\n".join([
            "# comment",
            record(op="sat", pred="x > 1"),
            record(op="sat", pred="x > 2"),
            record(op="quit"),
        ]))
        stdout = io.StringIO()
        served = serve_stdio(stdin, stdout, workers=2, backend=backend)
        replies = [json.loads(line) for line in stdout.getvalue().splitlines()]
        assert served == 2
        assert sorted(reply["id"] for reply in replies) == [1, 2]
        assert all(reply["ok"] for reply in replies)


class TestProcessBackendSpecifics:
    def test_timed_out_ping_does_not_desync_the_worker_pipe(self):
        """A ``wait_ready`` that gives up while a worker is still importing
        leaves that ping's pong in the pipe; replies are sequence-matched, so
        the stale pong must be discarded — not read as the next request's
        reply, which used to respawn a healthy warm worker and answer the
        request with a spurious ``worker_crashed``."""
        with QueryServer(workers=1, backend="process") as server:
            server.wait_ready(timeout=0.0001)  # near-certainly expires mid-import
            sink = ListSink()
            server.submit_line(record(op="sat", pred="x > 1", id="q"), sink)
            assert server.wait_idle(timeout=120)
            assert server.wait_ready(timeout=60) is True
            info = server.backend.worker_info()
        assert sink.responses[0]["ok"] is True
        assert info[0]["restarts"] == 0

    def test_socket_mode_runs_on_the_process_backend(self):
        from repro.engine.client import SocketClient

        query_server = QueryServer(workers=2, backend="process")
        with SocketServer(port=0, server=query_server) as srv:
            with SocketClient("127.0.0.1", srv.port) as conn:
                replies = conn.ask([{"op": "sat", "pred": f"x > {i}", "id": f"s{i}"}
                                    for i in range(3)])
        assert sorted(reply["id"] for reply in replies) == ["s0", "s1", "s2"]
        assert all(reply["ok"] for reply in replies)

    def test_in_process_injection_is_rejected(self):
        with pytest.raises(ValueError):
            QueryServer(backend="process", theory_factory=build_theory)
        from repro.engine.server import ShardedSessionPool

        with pytest.raises(ValueError):
            QueryServer(backend="process", pool=ShardedSessionPool())
        with pytest.raises(ValueError):
            QueryServer(backend="bogus")

    def test_wait_ready_during_live_traffic_is_safe(self, monkeypatch):
        """Readiness probes share each worker's pipe with its dispatcher;
        per-handle locking must keep concurrent ``wait_ready`` calls from
        recv-racing an in-flight query's reply (which used to tear down
        healthy workers as spurious crashes)."""
        with make_server("process", workers=2, oracle_ms=150, oracle_theories="incnat",
                         monkeypatch=monkeypatch) as server:
            assert server.wait_ready(timeout=60)
            sink = ListSink()
            for i in range(4):
                server.submit_line(record(op="equiv", left=f"inc(x); x > {i + 1}",
                                          right=f"x > {i}; inc(x)", id=f"q{i}"), sink)
            for _ in range(20):  # hammer readiness while queries are in flight
                server.wait_ready(timeout=0.02)
                time.sleep(0.01)
            assert server.wait_idle(timeout=120)
            info = server.backend.worker_info()
        by_id = {response["id"]: response for response in sink.responses}
        assert len(by_id) == len(sink.responses) == 4
        assert all(response["ok"] for response in by_id.values())
        assert all(worker["restarts"] == 0 for worker in info)

    def test_invalid_stripes_fail_fast_for_both_backends(self):
        # The process backend builds its pools inside the workers, so stripe
        # validation must happen at server construction, not first query.
        for backend in BACKENDS:
            with pytest.raises(ValueError):
                QueryServer(backend=backend, stripes=0)
            with pytest.raises(ValueError):
                QueryServer(backend=backend, stripes=-2)

    def test_bad_factory_spec_fails_fast_in_the_parent(self):
        with pytest.raises(ValueError):
            QueryServer(backend="process", theory_factory_spec="no colon")
        with pytest.raises(ModuleNotFoundError):
            QueryServer(backend="process", theory_factory_spec="no.such.module:attr")

    def test_thread_backend_accepts_a_factory_spec_too(self):
        sink = ListSink()
        with QueryServer(workers=1, backend="thread",
                         theory_factory_spec=ORACLE_SPEC) as server:
            server.submit_line(record(op="sat", pred="x > 1", id="q"), sink)
            server.wait_idle(timeout=60)
        assert sink.responses[0]["ok"] is True

    def test_merge_pool_stats_sums_counters_and_recomputes_rates(self):
        def table(hits, misses):
            return {"name": "norm", "hits": hits, "misses": misses,
                    "puts": misses, "evictions": 0, "hit_rate": 0.0}

        block_a = {
            "incnat": {"stripes": 1, "queries": 3, "tables": {"norm": table(3, 1)},
                       "totals": {"hits": 3, "misses": 1}},
            "shared": {"tables": {"deriv": table(10, 5)}},
        }
        block_b = {
            "incnat": {"stripes": 2, "queries": 5, "tables": {"norm": table(1, 3)},
                       "totals": {"hits": 1, "misses": 3}},
            "bitvec": {"stripes": 1, "queries": 1, "tables": {"norm": table(0, 1)},
                       "totals": {"hits": 0, "misses": 1}},
            "shared": {"tables": {"deriv": table(2, 3)}},
        }
        merged = merge_pool_stats([block_a, block_b])
        assert merged["incnat"]["stripes"] == 3
        assert merged["incnat"]["queries"] == 8
        assert merged["incnat"]["tables"]["norm"]["hits"] == 4
        assert merged["incnat"]["tables"]["norm"]["hit_rate"] == 0.5
        assert merged["incnat"]["totals"] == {"hits": 4, "misses": 4}
        assert merged["bitvec"]["queries"] == 1
        assert merged["shared"]["tables"]["deriv"]["hits"] == 12
        assert merged["shared"]["tables"]["deriv"]["hit_rate"] == round(12 / 20, 4)

    def test_cli_serve_process_backend(self, monkeypatch, capsys):
        from repro.cli import main

        stdin = io.StringIO("\n".join([
            record(op="sat", pred="x > 1"),
            record(op="quit"),
        ]))
        monkeypatch.setattr("sys.stdin", stdin)
        code = main(["serve", "--backend", "process", "--workers", "2"])
        captured = capsys.readouterr()
        assert code == 0
        replies = [json.loads(line) for line in captured.out.splitlines()]
        assert len(replies) == 1 and replies[0]["ok"]
        assert "# served 1 requests" in captured.err
