"""Tests for the JSONL batch protocol, serve loop and CLI front end."""

import io
import json

import pytest

from repro.engine.batch import BatchRunner, SessionPool, run_batch_lines, serve


def record(**fields):
    return json.dumps(fields)


class TestBatchRoundTrip:
    def test_mixed_ops_round_trip(self):
        lines = [
            record(op="equiv", left="inc(x); x > 1", right="x > 0; inc(x)"),
            record(op="norm", theory="bitvec", term="(flip a)*; a = T"),
            record(op="sat", pred="x > 3; ~(x > 5)"),
            record(op="empty", term="x > 3; ~(x > 3)"),
            record(op="leq", left="inc(x)", right="inc(x) + x > 1"),
        ]
        responses, _ = run_batch_lines(lines)
        assert len(responses) == 5
        assert all(r["ok"] for r in responses)
        assert responses[0]["result"]["equivalent"] is True
        assert responses[1]["result"]["summands"] >= 1
        assert responses[2]["result"]["satisfiable"] is True
        assert responses[3]["result"]["empty"] is True
        assert responses[4]["result"]["leq"] is True

    def test_order_preserved_and_ids_echoed(self):
        lines = [
            record(op="sat", pred="x > 1", id="first"),
            record(op="sat", pred="x > 2"),
            record(op="sat", theory="bitvec", pred="a = T", id=99),
        ]
        responses, _ = run_batch_lines(lines)
        assert [r["id"] for r in responses] == ["first", 1, 99]

    def test_blank_and_comment_lines_skipped(self):
        lines = ["", "   ", "# comment", record(op="sat", pred="x > 1")]
        responses, _ = run_batch_lines(lines)
        assert len(responses) == 1

    def test_inequivalence_carries_counterexample(self):
        responses, _ = run_batch_lines([record(op="equiv", left="x > 1", right="x > 2")])
        assert responses[0]["ok"]
        assert responses[0]["result"]["equivalent"] is False
        assert "distinguishing word" in responses[0]["result"]["counterexample"]


class TestErrorRecords:
    def test_malformed_json_is_an_error_record(self):
        lines = [
            record(op="sat", pred="x > 1"),
            "this is { not json",
            record(op="sat", pred="x > 2"),
        ]
        responses, _ = run_batch_lines(lines)
        assert len(responses) == 3
        assert responses[0]["ok"] and responses[2]["ok"]
        assert responses[1]["ok"] is False
        assert "malformed" in responses[1]["error"]

    def test_unknown_op(self):
        responses, _ = run_batch_lines([record(op="frobnicate", term="inc(x)")])
        assert responses[0]["ok"] is False
        assert "unknown op" in responses[0]["error"]

    def test_missing_field(self):
        responses, _ = run_batch_lines([record(op="equiv", left="inc(x)")])
        assert responses[0]["ok"] is False
        assert "missing field" in responses[0]["error"]

    def test_unknown_theory(self):
        responses, _ = run_batch_lines([record(op="sat", theory="quantum", pred="x > 1")])
        assert responses[0]["ok"] is False
        assert "unknown theory" in responses[0]["error"]

    def test_parse_error_is_per_record(self):
        lines = [
            record(op="sat", pred="x > !!!"),
            record(op="sat", pred="x > 1"),
        ]
        responses, _ = run_batch_lines(lines)
        assert responses[0]["ok"] is False
        assert responses[1]["ok"] is True


class TestSessionAffinityAndCaching:
    def test_duplicate_queries_are_not_renormalized(self):
        base = [
            record(op="equiv", left="inc(x); x > 1", right="x > 0; inc(x)"),
            record(op="norm", term="inc(x)*; x > 2"),
            record(op="sat", pred="x > 3; ~(x > 5)"),
            record(op="empty", term="x > 3; ~(x > 3)"),
        ]
        lines = base * 30  # 120 queries, heavy duplication
        responses, pool = run_batch_lines(lines)
        assert len(responses) == 120
        assert all(r["ok"] for r in responses)
        stats = pool.session("incnat").stats()
        norm = stats["tables"]["norm"]
        # Every duplicate term hit the normal-form cache instead of pushback.
        assert norm["hits"] > norm["misses"]
        assert stats["tables"]["equiv"]["hits"] > 0

    def test_multi_theory_batch_uses_one_session_each(self):
        lines = [
            record(op="sat", theory="incnat", pred="x > 1"),
            record(op="sat", theory="bitvec", pred="a = T"),
            record(op="sat", theory="incnat", pred="x > 2"),
            record(op="sat", theory="bitvec", pred="a = T; ~(a = T)"),
        ]
        runner = BatchRunner()
        responses = runner.run_lines(lines)
        assert [r["theory"] for r in responses] == ["incnat", "bitvec", "incnat", "bitvec"]
        assert runner.pool.theories() == ["bitvec", "incnat"]

    def test_pool_reuse_across_batches(self):
        pool = SessionPool()
        run_batch_lines([record(op="norm", term="inc(x)*; x > 1")], pool=pool)
        _, pool = run_batch_lines([record(op="norm", term="inc(x)*; x > 1")], pool=pool)
        assert pool.session("incnat").caches.norm.stats.hits >= 1

    @pytest.mark.parametrize("jobs", [1, 2, 4])
    def test_jobs_setting_does_not_change_results(self, jobs):
        lines = [
            record(op="equiv", theory="incnat", left="inc(x); x > 1", right="x > 0; inc(x)"),
            record(op="equiv", theory="bitvec", left="a := T; a = T", right="a := T"),
            record(op="sat", theory="incnat", pred="x > 5; ~(x > 3)"),
        ]
        responses, _ = run_batch_lines(lines, jobs=jobs)
        assert responses[0]["result"]["equivalent"] is True
        assert responses[1]["result"]["equivalent"] is True
        assert responses[2]["result"]["satisfiable"] is False


class TestControlOps:
    def test_stats_op(self):
        runner = BatchRunner()
        runner.run_lines([record(op="sat", pred="x > 1")])
        responses = runner.run_lines([record(op="stats")])
        assert responses[0]["ok"]
        assert "incnat" in responses[0]["result"]

    def test_ping_op(self):
        responses, _ = run_batch_lines([record(op="ping")])
        assert responses[0]["result"]["pong"] is True


class TestServeLoop:
    def test_serve_round_trip(self):
        stdin = io.StringIO(
            "\n".join(
                [
                    record(op="sat", pred="x > 1"),
                    record(op="sat", pred="x > 1"),
                    record(op="stats"),
                    record(op="quit"),
                    record(op="sat", pred="x > 2"),  # after quit: never served
                ]
            )
        )
        stdout = io.StringIO()
        served = serve(stdin, stdout)
        replies = [json.loads(line) for line in stdout.getvalue().splitlines()]
        assert served == 3
        assert len(replies) == 3
        assert replies[0]["result"]["satisfiable"] is True
        assert replies[1]["result"]["satisfiable"] is True
        assert "incnat" in replies[2]["result"]

    def test_serve_reports_malformed_lines(self):
        stdin = io.StringIO("{bad json\n")
        stdout = io.StringIO()
        serve(stdin, stdout)
        reply = json.loads(stdout.getvalue().splitlines()[0])
        assert reply["ok"] is False


class TestCliIntegration:
    def test_batch_subcommand(self, tmp_path, capsys):
        from repro.cli import main

        batch_file = tmp_path / "queries.jsonl"
        batch_file.write_text(
            "\n".join(
                [
                    record(op="equiv", left="inc(x); x > 1", right="x > 0; inc(x)"),
                    record(op="sat", theory="bitvec", pred="a = T"),
                ]
            )
        )
        code = main(["batch", str(batch_file), "--stats"])
        captured = capsys.readouterr()
        assert code == 0
        replies = [json.loads(line) for line in captured.out.splitlines()]
        assert len(replies) == 2 and all(r["ok"] for r in replies)
        assert "2 responses (0 errors)" in captured.err
        assert "sat_conj" in captured.err  # --stats dump

    def test_batch_subcommand_error_exit_code(self, tmp_path, capsys):
        from repro.cli import main

        batch_file = tmp_path / "queries.jsonl"
        batch_file.write_text("not json\n")
        assert main(["batch", str(batch_file)]) == 1


class TestServeLineNumberIds:
    """Default ids in serve mode are 0-based stdin line numbers (bugfix: the
    per-line ``run_lines([line])`` calls used to restart the enumeration at 0
    for every request)."""

    def test_default_ids_advance_per_line(self):
        stdin = io.StringIO(
            "\n".join(
                [
                    record(op="sat", pred="x > 1"),      # line 0
                    record(op="sat", pred="x > 2"),      # line 1
                    record(op="sat", pred="x > 3"),      # line 2
                ]
            )
        )
        stdout = io.StringIO()
        serve(stdin, stdout)
        replies = [json.loads(line) for line in stdout.getvalue().splitlines()]
        assert [r["id"] for r in replies] == [0, 1, 2]

    def test_blank_and_comment_lines_occupy_numbers(self):
        stdin = io.StringIO(
            "\n".join(
                [
                    "# a comment",                        # line 0 (no response)
                    record(op="sat", pred="x > 1"),      # line 1
                    "",                                   # line 2 (no response)
                    record(op="sat", pred="x > 2"),      # line 3
                ]
            )
        )
        stdout = io.StringIO()
        serve(stdin, stdout)
        replies = [json.loads(line) for line in stdout.getvalue().splitlines()]
        assert [r["id"] for r in replies] == [1, 3]

    def test_explicit_ids_still_win(self):
        stdin = io.StringIO(
            "\n".join(
                [
                    record(op="sat", pred="x > 1", id="mine"),
                    record(op="sat", pred="x > 2"),
                ]
            )
        )
        stdout = io.StringIO()
        serve(stdin, stdout)
        replies = [json.loads(line) for line in stdout.getvalue().splitlines()]
        assert [r["id"] for r in replies] == ["mine", 1]

    def test_batch_ids_unchanged(self):
        responses, _ = run_batch_lines(
            ["# c", record(op="sat", pred="x > 1"), record(op="sat", pred="x > 2")]
        )
        assert [r["id"] for r in responses] == [1, 2]


class TestPoolStatsSharedTables:
    """The process-wide derivative cache is reported once, not per session
    (bugfix: per-session totals used to re-count the shared table)."""

    def test_shared_deriv_reported_once(self):
        pool = SessionPool()
        run_batch_lines(
            [
                record(op="equiv", theory="incnat", left="inc(x); x > 1", right="x > 0; inc(x)"),
                record(op="equiv", theory="bitvec", left="a := T; a = T", right="a := T"),
            ],
            pool=pool,
        )
        stats = pool.stats()
        assert "shared" in stats
        assert "deriv" in stats["shared"]["tables"]
        for name in ("incnat", "bitvec"):
            assert "deriv" not in stats[name]["tables"]

    def test_per_session_totals_exclude_shared_table(self):
        from repro.engine.cache import DERIVATIVE_CACHE

        pool = SessionPool()
        run_batch_lines(
            [record(op="equiv", theory="incnat", left="inc(x); x > 1", right="x > 0; inc(x)")],
            pool=pool,
        )
        stats = pool.stats()
        session_stats = pool.session("incnat").stats()  # direct, shared included
        shared_hits = DERIVATIVE_CACHE.stats.hits
        assert session_stats["totals"]["hits"] == (
            stats["incnat"]["totals"]["hits"] + shared_hits
        )


class TestSignatureFieldsInProtocol:
    def test_equiv_response_reports_signatures(self):
        responses, _ = run_batch_lines(
            [record(op="equiv", left="inc(x); x > 1", right="x > 0; inc(x)")]
        )
        result = responses[0]["result"]
        assert result["equivalent"] is True
        assert result["signatures_explored"] >= 1

    def test_enumerate_mode_pool(self):
        responses, _ = run_batch_lines(
            [record(op="equiv", left="inc(x); x > 1", right="x > 0; inc(x)")],
            cell_search="enumerate",
        )
        result = responses[0]["result"]
        assert result["equivalent"] is True
        assert result["signatures_explored"] == 0
        assert result["cells_explored"] >= 1

    def test_explicit_pool_conflicting_cell_search_rejected(self):
        pool = SessionPool(cell_search="signature")
        with pytest.raises(ValueError):
            BatchRunner(pool=pool, cell_search="enumerate")
        # Matching or unspecified values inherit the pool's strategy.
        assert BatchRunner(pool=pool, cell_search="signature").pool is pool
        assert BatchRunner(pool=pool).pool is pool


class TestSetAndMapPresets:
    """``sets`` / ``maps`` are reachable from the batch protocol (bugfix:
    the theories existed but ``build_theory`` could not construct them)."""

    def test_sets_preset_round_trip(self):
        lines = [
            record(op="equiv", theory="sets",
                   left="add(X, 3); in(X, 3)", right="add(X, 3)"),
            record(op="sat", theory="sets", pred="in(X, 1); ~(in(X, 1))"),
            record(op="norm", theory="sets", term="add(X, i); in(X, 2)"),
        ]
        responses, _ = run_batch_lines(lines)
        assert all(r["ok"] for r in responses), responses
        assert responses[0]["result"]["equivalent"] is True
        assert responses[0]["result"]["signatures_explored"] >= 1
        assert responses[1]["result"]["satisfiable"] is False
        assert responses[2]["result"]["summands"] >= 1

    def test_maps_preset_round_trip(self):
        lines = [
            record(op="equiv", theory="maps",
                   left="m[1] := T; m[1] = T", right="m[1] := T"),
            record(op="sat", theory="maps", pred="m[1] = T; ~(m[1] = T)"),
        ]
        responses, _ = run_batch_lines(lines)
        assert all(r["ok"] for r in responses), responses
        assert responses[0]["result"]["equivalent"] is True
        assert responses[1]["result"]["satisfiable"] is False

    def test_presets_listed(self):
        from repro.theories import THEORY_PRESET_NAMES, build_theory

        assert "sets" in THEORY_PRESET_NAMES
        assert "maps" in THEORY_PRESET_NAMES
        assert build_theory("sets").describe() == "set(incnat)"
        assert build_theory("maps").describe() == "map(product(incnat, bitvec))"
