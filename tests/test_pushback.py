"""Tests for pushback-based normalization (paper Fig. 8, Theorems 3.4/3.5)."""

import pytest
from hypothesis import given, settings

from repro.core import terms as T
from repro.core.normalform import NormalForm
from repro.core.pushback import DEFAULT_BUDGET, Normalizer, normalize, normalize_with_stats
from repro.core.semantics import equivalent_up_to_length
from repro.theories.bitvec import BitVecTheory, BoolAssign, BoolEq
from repro.theories.incnat import AssignNat, Gt, IncNatTheory, Incr
from repro.utils.errors import NormalizationBudgetExceeded
from repro.utils.frozendict import FrozenDict
from tests.conftest import all_bitvec_states, bitvec_terms, incnat_terms


def gt(var, bound):
    return T.pprim(Gt(var, bound))


def inc(var):
    return T.tprim(Incr(var))


class TestNormalizeStructure:
    def test_test_normalizes_to_itself(self, incnat):
        nf = normalize(T.ttest(gt("x", 2)), incnat)
        assert nf.pairs == frozenset({(gt("x", 2), T.tone())})

    def test_primitive_action(self, incnat):
        nf = normalize(inc("x"), incnat)
        assert nf.pairs == frozenset({(T.pone(), inc("x"))})

    def test_plus_joins_sums(self, incnat):
        nf = normalize(T.tplus(T.ttest(gt("x", 2)), inc("x")), incnat)
        assert len(nf) == 2

    def test_all_actions_restricted(self, incnat):
        term = T.tseq(T.tstar(inc("x")), T.ttest(gt("x", 2)))
        nf = normalize(term, incnat)
        for _, action in nf:
            assert T.is_restricted(action)

    def test_seq_pushes_test_to_front(self, incnat):
        """inc(x); x > 1  ==  (x > 0); inc(x)  (the Inc-GT axiom)."""
        nf = normalize(T.tseq(inc("x"), T.ttest(gt("x", 1))), incnat)
        assert nf.pairs == frozenset({(gt("x", 0), inc("x"))})

    def test_seq_pushes_to_one_when_trivial(self, incnat):
        """inc(x); x > 0  ==  inc(x)  (the Inc-GT-Z axiom)."""
        nf = normalize(T.tseq(inc("x"), T.ttest(gt("x", 0))), incnat)
        assert nf.pairs == frozenset({(T.pone(), inc("x"))})

    def test_assignment_resolves_statically(self, incnat):
        """x := 5; x > 3  ==  x := 5   and   x := 2; x > 3  ==  0."""
        assign5 = T.tprim(AssignNat("x", 5))
        assign2 = T.tprim(AssignNat("x", 2))
        nf_true = normalize(T.tseq(assign5, T.ttest(gt("x", 3))), incnat)
        assert nf_true.pairs == frozenset({(T.pone(), assign5)})
        nf_false = normalize(T.tseq(assign2, T.ttest(gt("x", 3))), incnat)
        assert nf_false.is_vacuous()

    def test_star_of_pure_actions_is_kept_whole(self, incnat):
        nf = normalize(T.tstar(inc("x")), incnat)
        assert nf.pairs == frozenset({(T.pone(), T.tstar(inc("x")))})

    def test_star_with_guard_generates_case_split(self, incnat):
        """inc(x)*; x > 2 splits into the cases x>2, x>1, x>0 and 'always'."""
        term = T.tseq(T.tstar(inc("x")), T.ttest(gt("x", 2)))
        nf = normalize(term, incnat)
        tests = {test for test, _ in nf}
        assert gt("x", 2) in tests
        assert gt("x", 1) in tests
        assert gt("x", 0) in tests
        assert T.pone() in tests
        assert len(nf) == 4

    def test_negated_test_through_action(self, incnat):
        """inc(x); ~(x > 1)  ==  ~(x > 0); inc(x)  (PrimNeg + Pushback-Neg)."""
        nf = normalize(T.tseq(inc("x"), T.ttest(T.pnot(gt("x", 1)))), incnat)
        assert nf.pairs == frozenset({(T.pnot(gt("x", 0)), inc("x"))})

    def test_mixed_variables_commute(self, incnat):
        """inc(y); x > 3  ==  (x > 3); inc(y)  (GT-Comm)."""
        nf = normalize(T.tseq(inc("y"), T.ttest(gt("x", 3))), incnat)
        assert nf.pairs == frozenset({(gt("x", 3), inc("y"))})


class TestPaperExamples:
    def test_section_2_3_set_like_loop_shape(self, incnat):
        """(inc x)*; x > 1 has one summand per unrolling depth plus the tail."""
        term = T.tseq(T.tstar(inc("x")), T.ttest(gt("x", 1)))
        nf, stats = normalize_with_stats(term, incnat)
        assert len(nf) == 3
        assert stats.prim_pushbacks >= 2

    def test_population_count_structure(self, kmt_product):
        """Fig. 9 row 6's two sides normalize to normal forms over the same tests."""
        kmt = kmt_product
        lhs = kmt.parse("y < 1; a = T; inc(y); y > 0")
        nf = kmt.normalize(lhs)
        for _, action in nf:
            assert T.is_restricted(action)
        assert len(nf) >= 1


class TestStats:
    def test_stats_accumulate(self, incnat):
        term = T.tseq(T.tstar(inc("x")), T.ttest(gt("x", 3)))
        nf, stats = normalize_with_stats(term, incnat)
        assert stats.steps > 0
        assert stats.max_normal_form_size >= len(nf)
        assert stats.as_dict()["steps"] == stats.steps
        assert "steps" in repr(stats)

    def test_denest_counted(self):
        """A sum of two guarded assignments under star exercises the Denest rule."""
        theory = BitVecTheory()
        set_a = T.tseq(
            T.ttest(T.pnot(T.pprim(BoolEq("a")))), T.tprim(BoolAssign("a", True))
        )
        set_b = T.tseq(
            T.ttest(T.pnot(T.pprim(BoolEq("b")))), T.tprim(BoolAssign("b", True))
        )
        term = T.tstar(T.tplus(set_a, set_b))
        _, stats = normalize_with_stats(term, theory)
        assert stats.denests > 0


class TestBudget:
    def test_budget_exceeded_raises(self):
        theory = BitVecTheory()
        flips = []
        for var in ("a", "b", "c"):
            flips.append(
                T.tplus(
                    T.tseq(T.ttest(T.pprim(BoolEq(var))), T.tprim(BoolAssign(var, False))),
                    T.tseq(T.ttest(T.pnot(T.pprim(BoolEq(var)))), T.tprim(BoolAssign(var, True))),
                )
            )
        blow_up = T.tstar(T.tplus_all(flips))
        with pytest.raises(NormalizationBudgetExceeded) as excinfo:
            normalize(blow_up, theory, budget=5_000)
        assert excinfo.value.budget == 5_000

    def test_unbudgeted_small_terms_fine(self, incnat):
        nf = normalize(T.tstar(inc("x")), incnat, budget=None)
        assert len(nf) == 1

    def test_default_budget_is_generous(self):
        assert DEFAULT_BUDGET >= 100_000


class TestNormalizerReuse:
    def test_prim_pushback_cache(self, incnat):
        normalizer = Normalizer(incnat)
        term = T.tseq(inc("x"), T.ttest(gt("x", 3)))
        first = normalizer.normalize(term)
        count_after_first = normalizer.stats.prim_pushbacks
        second = normalizer.normalize(term)
        assert first == second
        assert normalizer.stats.prim_pushbacks == count_after_first  # cache hit

    def test_pb_star_cache(self, incnat):
        normalizer = Normalizer(incnat)
        nf = NormalForm({(gt("x", 1), inc("x"))})
        first = normalizer.pb_star(nf)
        second = normalizer.pb_star(nf)
        assert first == second


class TestSoundnessAgainstSemantics:
    """Theorem 3.4: the normal form denotes the same traces as the original."""

    @settings(max_examples=30, deadline=None)
    @given(bitvec_terms(max_leaves=4))
    def test_bitvec_normal_forms_preserve_semantics(self, term):
        theory = BitVecTheory(variables=("a", "b", "c"))
        try:
            nf = normalize(term, theory, budget=30_000)
        except NormalizationBudgetExceeded:
            return
        assert equivalent_up_to_length(
            term, nf.to_term(), all_bitvec_states(), theory, max_actions=4
        )

    @settings(max_examples=30, deadline=None)
    @given(incnat_terms(max_leaves=4, allow_star=False))
    def test_incnat_star_free_normal_forms_preserve_semantics(self, term):
        theory = IncNatTheory(variables=("x", "y"))
        nf = normalize(term, theory, budget=100_000)
        states = [
            FrozenDict(x=0, y=0),
            FrozenDict(x=1, y=3),
            FrozenDict(x=4, y=2),
            FrozenDict(x=5, y=5),
        ]
        assert equivalent_up_to_length(term, nf.to_term(), states, theory, max_actions=4)

    @settings(max_examples=15, deadline=None)
    @given(incnat_terms(max_leaves=3, allow_star=True))
    def test_incnat_with_star_normal_forms_preserve_semantics(self, term):
        theory = IncNatTheory(variables=("x", "y"))
        try:
            nf = normalize(term, theory, budget=50_000)
        except NormalizationBudgetExceeded:
            return
        states = [FrozenDict(x=0, y=0), FrozenDict(x=2, y=1), FrozenDict(x=5, y=4)]
        assert equivalent_up_to_length(term, nf.to_term(), states, theory, max_actions=5)
