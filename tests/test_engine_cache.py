"""Tests for the engine's LRU memo tables and hit/miss accounting."""

import threading

from repro.engine.cache import EngineCaches, LRUCache


class TestLRUBasics:
    def test_get_put_roundtrip(self):
        cache = LRUCache(maxsize=4, name="t")
        assert cache.get("k") is None
        cache.put("k", 42)
        assert cache.get("k") == 42

    def test_eviction_order_is_lru(self):
        cache = LRUCache(maxsize=2, name="t")
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")          # refresh a; b becomes LRU
        cache.put("c", 3)       # evicts b
        assert cache.get("a") == 1
        assert cache.get("b") is None
        assert cache.get("c") == 3
        assert cache.stats.evictions == 1

    def test_unbounded_cache(self):
        cache = LRUCache(maxsize=None, name="t")
        for i in range(5000):
            cache.put(i, i)
        assert len(cache) == 5000
        assert cache.stats.evictions == 0

    def test_get_or_compute(self):
        cache = LRUCache(maxsize=4, name="t")
        calls = []

        def compute():
            calls.append(1)
            return "v"

        assert cache.get_or_compute("k", compute) == "v"
        assert cache.get_or_compute("k", compute) == "v"
        assert len(calls) == 1


class TestHitAccounting:
    def test_hits_misses_counted(self):
        cache = LRUCache(maxsize=4, name="t")
        cache.get("x")                      # miss
        cache.put("x", 1)
        cache.get("x")                      # hit
        cache.get("y")                      # miss
        assert cache.stats.hits == 1
        assert cache.stats.misses == 2
        assert cache.stats.puts == 1
        assert 0 < cache.stats.hit_rate < 1

    def test_stats_as_dict_shape(self):
        cache = LRUCache(maxsize=4, name="norm")
        stats = cache.stats.as_dict()
        assert stats["name"] == "norm"
        for field in ("hits", "misses", "puts", "evictions", "hit_rate"):
            assert field in stats

    def test_engine_caches_bundle_stats(self):
        caches = EngineCaches(norm_size=8)
        caches.norm.put("k", "v")
        caches.norm.get("k")
        stats = caches.stats()
        assert stats["tables"]["norm"]["hits"] == 1
        assert set(stats["tables"]) == {
            "norm", "sat_conj", "sat_pred", "equiv", "sig", "aut", "prog", "deriv"
        }
        assert stats["totals"]["hits"] >= 1
        # include_shared=False leaves the process-wide derivative table out.
        private = caches.stats(include_shared=False)
        assert set(private["tables"]) == {"norm", "sat_conj", "sat_pred", "equiv", "sig",
                                          "aut", "prog"}


class TestThreadSafety:
    def test_concurrent_put_get(self):
        cache = LRUCache(maxsize=128, name="t")
        errors = []

        def worker(base):
            try:
                for i in range(500):
                    cache.put((base, i % 64), i)
                    cache.get((base, (i + 1) % 64))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(n,)) for n in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(cache) <= 128
