"""Tests for the satisfiability substrate (DPLL(T) engine and the nat solver)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core import terms as T
from repro.smt.dpll import dpll_model, dpll_satisfiable, enumerate_models, naive_satisfiable
from repro.smt.literals import atoms_of, conjunction_of, evaluate, substitute
from repro.smt.natsolver import Bounds, model_bounds, satisfiable_bounds
from repro.theories.bitvec import BitVecTheory, BoolEq
from repro.theories.incnat import Gt, IncNatTheory
from tests.conftest import bitvec_preds, incnat_preds


class TestLiterals:
    def test_atoms_sorted_and_unique(self):
        pred = T.pand(T.pprim(BoolEq("b")), T.por(T.pprim(BoolEq("a")), T.pprim(BoolEq("b"))))
        assert atoms_of(pred) == [BoolEq("a"), BoolEq("b")]

    def test_substitute_simplifies(self):
        a = T.pprim(BoolEq("a"))
        pred = T.pand(a, T.pnot(a))
        # The smart constructors already collapse a;~a, so build indirectly.
        pred = T.pand(a, T.por(T.pnot(a), T.pprim(BoolEq("b"))))
        result = substitute(pred, BoolEq("a"), True)
        assert result == T.pprim(BoolEq("b"))
        assert substitute(pred, BoolEq("a"), False) is T.pzero()

    def test_evaluate(self):
        a = T.pprim(BoolEq("a"))
        b = T.pprim(BoolEq("b"))
        pred = T.por(T.pnot(a), b)
        assert evaluate(pred, {BoolEq("a"): False, BoolEq("b"): False})
        assert not evaluate(pred, {BoolEq("a"): True, BoolEq("b"): False})

    def test_conjunction_of(self):
        literals = [(BoolEq("a"), True), (BoolEq("b"), False)]
        pred = conjunction_of(literals)
        assert evaluate(pred, {BoolEq("a"): True, BoolEq("b"): False})
        assert not evaluate(pred, {BoolEq("a"): True, BoolEq("b"): True})


class TestNatSolver:
    def test_bounds_object(self):
        bounds = Bounds()
        bounds.add_greater_than(3)
        assert bounds.consistent() and bounds.witness() == 4
        bounds.add_not_greater_than(10)
        assert bounds.consistent()
        bounds.add_not_greater_than(3)
        assert not bounds.consistent()

    def test_satisfiable_simple_chain(self):
        assert satisfiable_bounds([("x", 3, True), ("x", 10, False)])
        assert not satisfiable_bounds([("x", 5, True), ("x", 3, False)])
        assert not satisfiable_bounds([("x", 5, True), ("x", 5, False)])

    def test_variables_independent(self):
        assert satisfiable_bounds([("x", 5, True), ("y", 5, False)])

    def test_naturals_lower_bound_is_zero(self):
        # ~(x > 0) alone is satisfiable (x = 0).
        assert satisfiable_bounds([("x", 0, False)])

    def test_model_bounds(self):
        model = model_bounds([("x", 3, True), ("y", 2, False)])
        assert model["x"] == 4
        assert model["y"] == 0
        assert model_bounds([("x", 3, True), ("x", 1, False)]) is None


class TestDpll:
    def test_constants(self):
        theory = BitVecTheory()
        assert dpll_satisfiable(T.pone(), theory)
        assert not dpll_satisfiable(T.pzero(), theory)

    def test_contradiction_detected_via_theory(self):
        """x>5 and ~(x>3) is Boolean-consistent but theory-inconsistent."""
        theory = IncNatTheory()
        pred = T.pand(T.pprim(Gt("x", 5)), T.pnot(T.pprim(Gt("x", 3))))
        assert not dpll_satisfiable(pred, theory)
        assert naive_satisfiable(pred, theory) is False

    def test_satisfiable_bounds_chain(self):
        theory = IncNatTheory()
        pred = T.pand(T.pprim(Gt("x", 3)), T.pnot(T.pprim(Gt("x", 10))))
        assert dpll_satisfiable(pred, theory)

    def test_dpll_model_is_a_model(self):
        theory = IncNatTheory()
        pred = T.por(
            T.pand(T.pprim(Gt("x", 3)), T.pnot(T.pprim(Gt("x", 2)))),  # theory-unsat
            T.pand(T.pprim(Gt("y", 1)), T.pnot(T.pprim(Gt("y", 4)))),  # satisfiable
        )
        model = dpll_model(pred, theory)
        assert model is not None
        assignment = dict(model)
        # The decided literals force the predicate to be true: completing the
        # assignment arbitrarily (here: all False) must still satisfy it, and
        # the decided literals themselves are theory-consistent.
        assert theory.satisfiable_conjunction(model)
        for alpha in atoms_of(pred):
            assignment.setdefault(alpha, False)
        assert evaluate(pred, assignment)

    def test_dpll_model_none_when_unsat(self):
        theory = IncNatTheory()
        pred = T.pand(T.pprim(Gt("x", 5)), T.pnot(T.pprim(Gt("x", 5))))
        assert dpll_model(pred, theory) is None

    def test_enumerate_models_bitvec(self):
        theory = BitVecTheory()
        a = T.pprim(BoolEq("a"))
        b = T.pprim(BoolEq("b"))
        models = list(enumerate_models(T.por(a, b), theory))
        assert len(models) == 3  # TT, TF, FT

    @given(bitvec_preds(max_leaves=5))
    def test_dpll_agrees_with_naive_bitvec(self, pred):
        theory = BitVecTheory()
        assert dpll_satisfiable(pred, theory) == naive_satisfiable(pred, theory)

    @given(incnat_preds(max_leaves=4))
    def test_dpll_agrees_with_naive_incnat(self, pred):
        theory = IncNatTheory()
        assert dpll_satisfiable(pred, theory) == naive_satisfiable(pred, theory)

    @given(incnat_preds(max_leaves=4), st.integers(0, 5), st.integers(0, 5))
    def test_concrete_witness_implies_sat(self, pred, x_value, y_value):
        """If some concrete state satisfies the predicate, the solver says SAT."""
        theory = IncNatTheory()
        assignment = {}
        for alpha in atoms_of(pred):
            value = {"x": x_value, "y": y_value}.get(alpha.var, 0)
            assignment[alpha] = value > alpha.bound
        if evaluate(pred, assignment):
            assert dpll_satisfiable(pred, theory)


class TestEnumerateSignatures:
    """AllSAT-style guard-signature enumeration (blocking clauses + units)."""

    @staticmethod
    def _signatures(guards, theory):
        from repro.smt.dpll import enumerate_signatures

        return list(enumerate_signatures(guards, theory))

    def test_no_guards_yields_single_empty_signature(self):
        found = self._signatures([], BitVecTheory())
        assert found == [((), [])]

    def test_independent_atoms_enumerate_all_combinations(self):
        a, b = T.pprim(BoolEq("a")), T.pprim(BoolEq("b"))
        found = self._signatures([a, b], BitVecTheory())
        assert {signature for signature, _ in found} == {
            (True, True), (True, False), (False, True), (False, False)
        }

    def test_theory_inconsistent_signatures_are_skipped(self):
        # x > 5 without x > 3 is impossible for IncNat.
        g5, g3 = T.pprim(Gt("x", 5)), T.pprim(Gt("x", 3))
        found = self._signatures([g5, g3], IncNatTheory())
        assert {signature for signature, _ in found} == {
            (True, True), (False, True), (False, False)
        }

    def test_logically_linked_guards_share_atoms(self):
        # One guard and its negation can never agree.
        a = T.pprim(BoolEq("a"))
        found = self._signatures([a, T.pnot(a)], BitVecTheory())
        assert {signature for signature, _ in found} == {(True, False), (False, True)}

    def test_shared_conjunction_collapses_cells(self):
        # n+1 atoms but only 2 realizable signatures: the big conjunction
        # either holds or it does not.
        atoms = [T.pprim(BoolEq(name)) for name in ("a", "b", "c", "d")]
        guard = T.pand_all(atoms)
        found = self._signatures([guard], BitVecTheory())
        assert {signature for signature, _ in found} == {(True,), (False,)}

    def test_witnesses_are_consistent_and_determine_guards(self):
        theory = IncNatTheory()
        g1 = T.pand(T.pprim(Gt("x", 1)), T.pprim(Gt("y", 2)))
        g2 = T.por(T.pprim(Gt("x", 4)), T.pprim(Gt("y", 0)))
        for signature, witness in self._signatures([g1, g2], theory):
            assert theory.satisfiable_conjunction(witness) or not witness
            for guard, expected in zip((g1, g2), signature):
                reduced = guard
                for alpha, polarity in witness:
                    reduced = substitute(reduced, alpha, polarity)
                assert isinstance(reduced, (T.POne, T.PZero))
                assert isinstance(reduced, T.POne) == expected

    def test_signatures_are_unique(self):
        guards = [T.pprim(Gt("x", n)) for n in range(4)]
        found = self._signatures(guards, IncNatTheory())
        signatures = [signature for signature, _ in found]
        assert len(signatures) == len(set(signatures))
        # IncNat bounds are linearly ordered: only the 5 monotone valuations.
        assert len(signatures) == 5

    def test_constant_guards_are_respected(self):
        a = T.pprim(BoolEq("a"))
        found = self._signatures([T.pone(), a, T.pzero()], BitVecTheory())
        assert {signature for signature, _ in found} == {
            (True, True, False), (True, False, False)
        }

    def test_terminates_without_smart_constructors(self):
        # Substitution can no longer constant-fold, so the search must fold
        # logically itself (it used to spin yielding duplicate signatures).
        with T.smart_constructors_disabled():
            a, b = T.pprim(BoolEq("a")), T.pprim(BoolEq("b"))
            found = self._signatures([T.pand(a, b), a], BitVecTheory())
        assert sorted(signature for signature, _ in found) == [
            (False, False), (False, True), (True, True)
        ]

    def test_stats_counters_populated(self):
        from repro.smt.dpll import SignatureSearchStats, enumerate_signatures

        stats = SignatureSearchStats()
        guards = [T.pprim(Gt("x", 1)), T.pprim(Gt("x", 3))]
        list(enumerate_signatures(guards, IncNatTheory(), stats=stats))
        assert stats.decisions >= 1
        assert stats.theory_pruned >= 1  # x>3 without x>1 is pruned
        assert "decisions" in stats.as_dict()
