"""Tests for normal forms Σ aᵢ·mᵢ and splitting (paper Section 3.3.1)."""

import pytest

from repro.core import terms as T
from repro.core.normalform import NormalForm
from repro.core.ordering import OrderingContext
from repro.theories.incnat import Gt, IncNatTheory, Incr
from repro.utils.errors import KmtError


@pytest.fixture
def ctx():
    return OrderingContext(IncNatTheory())


def gt(var, bound):
    return T.pprim(Gt(var, bound))


def inc(var):
    return T.tprim(Incr(var))


class TestConstruction:
    def test_zero_is_vacuous(self):
        assert NormalForm.zero().is_vacuous()
        assert len(NormalForm.zero()) == 0

    def test_one(self):
        nf = NormalForm.one()
        assert not nf.is_vacuous()
        assert nf.pairs == frozenset({(T.pone(), T.tone())})

    def test_of_test_and_of_action(self):
        nf = NormalForm.of_test(gt("x", 1))
        assert nf.pairs == frozenset({(gt("x", 1), T.tone())})
        nf2 = NormalForm.of_action(inc("x"))
        assert nf2.pairs == frozenset({(T.pone(), inc("x"))})

    def test_zero_tests_are_dropped(self):
        nf = NormalForm({(T.pzero(), inc("x")), (gt("x", 0), inc("x"))})
        assert len(nf) == 1

    def test_non_restricted_action_rejected(self):
        bad_action = T.tseq(T.ttest(gt("x", 1)), inc("x"))
        with pytest.raises(KmtError):
            NormalForm({(T.pone(), bad_action)})

    def test_type_errors(self):
        with pytest.raises(TypeError):
            NormalForm({("not a pred", inc("x"))})
        with pytest.raises(TypeError):
            NormalForm({(T.pone(), "not a term")})

    def test_duplicate_pairs_collapse(self):
        nf = NormalForm([(gt("x", 0), inc("x")), (gt("x", 0), inc("x"))])
        assert len(nf) == 1


class TestAlgebra:
    def test_union_joins_sums(self):
        left = NormalForm.of_test(gt("x", 0))
        right = NormalForm.of_action(inc("x"))
        joined = left.union(right)
        assert len(joined) == 2
        assert left.pairs <= joined.pairs

    def test_prefix_test_conjoins(self):
        nf = NormalForm({(gt("x", 0), inc("x"))})
        prefixed = nf.prefix_test(gt("y", 1))
        ((test, action),) = prefixed.pairs
        # Guards are kept in a canonical (sorted) conjunction order.
        assert test == T.pand(gt("x", 0), gt("y", 1))
        assert action == inc("x")

    def test_prefix_with_zero_empties(self):
        nf = NormalForm({(gt("x", 0), inc("x"))})
        assert nf.prefix_test(T.pzero()).is_vacuous()

    def test_seq_action_appends(self):
        nf = NormalForm({(gt("x", 0), inc("x"))})
        extended = nf.seq_action(inc("y"))
        ((_, action),) = extended.pairs
        assert action == T.tseq(inc("x"), inc("y"))

    def test_seq_action_requires_restricted(self):
        nf = NormalForm.one()
        with pytest.raises(KmtError):
            nf.seq_action(T.ttest(gt("x", 1)))

    def test_to_term_roundtrip_structure(self):
        nf = NormalForm({(gt("x", 0), inc("x")), (T.pone(), T.tone())})
        term = nf.to_term()
        assert isinstance(term, T.Term)
        # Converting the vacuous normal form gives the term 0.
        assert NormalForm.zero().to_term() is T.tzero()

    def test_tests_include_one(self):
        nf = NormalForm({(gt("x", 0), inc("x"))})
        assert T.pone() in nf.tests()
        assert gt("x", 0) in nf.tests()

    def test_equality_and_hash(self):
        a = NormalForm({(gt("x", 0), inc("x"))})
        b = NormalForm([(gt("x", 0), inc("x"))])
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1


class TestSplitting:
    def test_split_extracts_maximal_test(self, ctx):
        """Lemma 3.2 on x = (x>3);inc + (y>1);inc': splitting around x>3."""
        a = gt("x", 3)
        nf = NormalForm({(a, inc("x")), (gt("y", 1), inc("y"))})
        assert a in ctx.mt(nf.tests())
        with_a, without_a = nf.split(a, ctx)
        assert with_a.pairs == frozenset({(T.pone(), inc("x"))})
        assert without_a.pairs == frozenset({(gt("y", 1), inc("y"))})

    def test_split_removes_factor_from_conjunction(self, ctx):
        a = gt("x", 3)
        b = gt("y", 1)
        nf = NormalForm({(T.pand(a, b), inc("x"))})
        with_a, without_a = nf.split(a, ctx)
        assert with_a.pairs == frozenset({(b, inc("x"))})
        assert without_a.is_vacuous()

    def test_split_pieces_are_strictly_smaller(self, ctx):
        """Both split halves are strictly below the original (Lemma 3.2)."""
        a = gt("x", 3)
        nf = NormalForm({(a, inc("x")), (gt("y", 1), inc("y")), (T.pand(a, gt("y", 0)), T.tone())})
        with_a, without_a = nf.split(a, ctx)
        key = ctx.key(nf.tests())
        assert ctx.key(with_a.tests()) < key
        assert ctx.key(without_a.tests()) < key

    def test_split_reconstruction_is_equivalent_semantically(self, ctx, kmt_incnat):
        """x == a·y + z after splitting (checked with the decision procedure)."""
        a = gt("x", 2)
        nf = NormalForm({(T.pand(a, gt("y", 0)), inc("x")), (gt("y", 1), inc("y"))})
        with_a, without_a = nf.split(a, ctx)
        reconstructed = T.tplus(
            T.tseq(T.ttest(a), with_a.to_term()), without_a.to_term()
        )
        assert kmt_incnat.equivalent(nf.to_term(), reconstructed)

    def test_ordering_key_matches_context(self, ctx):
        nf = NormalForm({(gt("x", 2), inc("x"))})
        assert nf.ordering_key(ctx) == ctx.key(nf.tests())
        assert nf.maximal_tests(ctx) == ctx.mt(nf.tests())
