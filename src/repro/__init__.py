"""Kleene Algebra Modulo Theories (KMT) — a Python reproduction of PLDI 2022.

Quick start::

    from repro import KMT, IncNatTheory

    kmt = KMT(IncNatTheory())
    assert kmt.equivalent("inc(x)*; x > 10", "inc(x)*; inc(x)*; x > 10")

The public API re-exports:

* :class:`~repro.core.kmt.KMT` — a client theory plus everything the framework
  derives (parser, tracing semantics, normalization, decision procedures);
* the term constructors of :mod:`repro.core.terms`;
* the shipped client theories of :mod:`repro.theories`;
* the While-program frontend of :mod:`repro.lang.while_lang`.
"""

from repro.core.kmt import KMT
from repro.core import terms
from repro.engine.session import EngineSession
from repro.core.terms import (
    pand,
    pnot,
    pone,
    por,
    pprim,
    pzero,
    tone,
    tplus,
    tprim,
    tseq,
    tstar,
    ttest,
    tzero,
)
from repro.theories.bitvec import BitVecTheory
from repro.theories.incnat import IncNatTheory
from repro.theories.ltlf import LtlfTheory
from repro.theories.maps import MapTheory, NatBoolMapAdapter
from repro.theories.netkat import NetKatTheory
from repro.theories.product import ProductTheory
from repro.theories.sets import NatExpressionAdapter, SetTheory
from repro.theories.temporal_netkat import temporal_netkat

__version__ = "1.0.0"

__all__ = [
    "KMT",
    "EngineSession",
    "terms",
    "BitVecTheory",
    "IncNatTheory",
    "LtlfTheory",
    "MapTheory",
    "NatBoolMapAdapter",
    "NetKatTheory",
    "ProductTheory",
    "SetTheory",
    "NatExpressionAdapter",
    "temporal_netkat",
    "pand",
    "pnot",
    "pone",
    "por",
    "pprim",
    "pzero",
    "tone",
    "tplus",
    "tprim",
    "tseq",
    "tstar",
    "ttest",
    "tzero",
    "__version__",
]
