"""Arena-level sharing for compiled automata.

The flat-IR refactor (:mod:`repro.core.compile`) stores each automaton's
tables in contiguous ``array('i')`` buffers.  Two sharing concerns live here,
deliberately outside the automaton class:

* **alphabet interning** — every automaton compiled over the same theory
  alphabet used to carry its own ``{symbol: index}`` dict; with thousands of
  cached automata per session that dict dominated the per-instance overhead.
  :func:`intern_sigma` / :func:`sigma_index` keep one canonical tuple and one
  index dict per distinct alphabet, shared process-wide.  The table is capped,
  but overflow only evicts alphabets no *live automaton* still references
  (:func:`note_sigma_use` tracks users weakly): an alphabet held by a live
  automaton stays canonical, so the kernels' identity/canonical-table
  equality fast path keeps working across a reset — interning is an
  optimization for storage, but *canonicality of live alphabets* is a
  performance contract the hot compare paths rely on.

* **per-session arena pools** — :class:`ArenaPool` tracks the automata a
  session's compilations produced (weakly, so the ``aut`` LRU's eviction
  policy stays the sole owner of their lifetime) and reports their live
  flat-table footprint as the ``aut_bytes`` stat surfaced by
  ``EngineSession.stats`` and every pool/server aggregation above it.
"""

from __future__ import annotations

import threading
import weakref

#: Eviction threshold for the process-wide alphabet interning table.
#: Alphabets are per-theory and tiny in number; the cap only guards
#: pathological callers compiling over unboundedly many distinct alphabets.
#: Overflow evicts only entries with no live automaton user — if every entry
#: is referenced the table grows past the cap rather than break canonicality
#: (live alphabets are bounded by live automata, so growth is bounded too).
_INTERN_LIMIT = 4096

_intern_lock = threading.Lock()
_interned = {}  # sigma tuple -> (canonical tuple, {symbol: index})
_sigma_users = {}  # canonical tuple -> WeakSet of automata referencing it


def _evict_unreferenced_locked():
    """Drop interned alphabets no live automaton references (lock held).

    Never touches an alphabet with a registered live user: evicting one would
    hand a *new* canonical tuple to the next equal alphabet, silently breaking
    sigma identity (and byte-identical canonical tables) between pre- and
    post-reset automata — the kernels' equality fast path.
    """
    stale = [sigma for sigma in _interned if not _sigma_users.get(sigma)]
    for sigma in stale:
        del _interned[sigma]
        _sigma_users.pop(sigma, None)
    return len(stale)


def intern_sigma(sigma):
    """The canonical shared tuple for an alphabet.

    Automata over the same alphabet end up referencing the *same* tuple
    object, so their index maps (:func:`sigma_index`) and equality fast paths
    share storage and can short-circuit on identity.
    """
    sigma = tuple(sigma)
    with _intern_lock:
        entry = _interned.get(sigma)
        if entry is None:
            if len(_interned) >= _INTERN_LIMIT:
                _evict_unreferenced_locked()
            entry = (sigma, {pi: k for k, pi in enumerate(sigma)})
            _interned[sigma] = entry
        return entry[0]


def sigma_index(sigma):
    """The shared ``{symbol: index}`` map for an (interned) alphabet."""
    with _intern_lock:
        entry = _interned.get(sigma)
        if entry is None:
            if len(_interned) >= _INTERN_LIMIT:
                _evict_unreferenced_locked()
            entry = (tuple(sigma), {pi: k for k, pi in enumerate(sigma)})
            _interned[entry[0]] = entry
        return entry[1]


def note_sigma_use(sigma, automaton):
    """Register a live automaton as a user of its (interned) alphabet.

    Called by ``CompiledAutomaton.__init__`` right after interning.  The
    registration is weak — an automaton's death frees its alphabet for
    eviction — and it heals the narrow race where the entry was evicted
    between interning and registration: the automaton's exact tuple is
    re-installed as canonical, so future equal alphabets intern onto the
    tuple the live automaton actually holds.
    """
    with _intern_lock:
        entry = _interned.get(sigma)
        if entry is None or entry[0] is not sigma:
            entry = (sigma, {pi: k for k, pi in enumerate(sigma)})
            _interned[sigma] = entry
        users = _sigma_users.get(sigma)
        if users is None:
            users = _sigma_users[sigma] = weakref.WeakSet()
        users.add(automaton)


def interned_alphabets():
    """Number of distinct alphabets currently interned (for stats/tests)."""
    with _intern_lock:
        return len(_interned)


class ArenaPool:
    """Weak registry of the compiled automata a session has allocated.

    ``adopt`` is called by :func:`repro.core.compile.compile_automaton` when
    the engine threads a pool through (``EngineCaches.arenas``); the pool
    never keeps an automaton alive — the ``aut`` LRU holds the strong
    references, so ``aut_bytes`` tracks exactly the automata the cache still
    retains (plus any a caller is actively using).
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._automata = weakref.WeakSet()
        self.adopted = 0  # total automata ever adopted (monotonic)

    def adopt(self, automaton):
        with self._lock:
            if automaton not in self._automata:
                self._automata.add(automaton)
                self.adopted += 1
        return automaton

    @property
    def live_count(self):
        with self._lock:
            return len(self._automata)

    @property
    def aut_bytes(self):
        """Flat-table bytes of all live adopted automata."""
        with self._lock:
            return sum(aut.nbytes for aut in self._automata)

    def stats(self):
        with self._lock:
            live = list(self._automata)
        return {
            "automata": len(live),
            "adopted": self.adopted,
            "aut_bytes": sum(aut.nbytes for aut in live),
        }

    def __repr__(self):
        s = self.stats()
        return (
            f"ArenaPool(automata={s['automata']}, adopted={s['adopted']}, "
            f"aut_bytes={s['aut_bytes']})"
        )
