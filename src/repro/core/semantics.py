"""The tracing semantics of KMT terms (paper Fig. 5, Section 3.1).

A *trace* is a non-empty sequence of log entries ``<state, action>``; the
first entry carries no action (written ``<sigma, bot>`` in the paper).  The
denotation of a term is a function from a trace to a set of traces: tests
filter the input trace, primitive actions extend it with a new state computed
by the client theory's ``act``, and the regular operators are interpreted with
Kleisli composition and (bounded, for execution) iteration.

The genuine denotation of ``p*`` is an infinite union; for an executable
semantics we unroll the star a configurable number of times
(``star_bound``).  That is sufficient for differential testing against the
decision procedure because two inequivalent terms are distinguished by some
finite trace, and the tests pick bounds larger than the witnesses they need.
"""

from __future__ import annotations

from repro.core import terms as T
from repro.utils.errors import KmtError


class LogEntry:
    """One entry ``<state, action>`` of a trace (``action`` is None initially)."""

    __slots__ = ("state", "action")

    def __init__(self, state, action=None):
        self.state = state
        self.action = action

    def __eq__(self, other):
        if not isinstance(other, LogEntry):
            return NotImplemented
        return self.state == other.state and self.action == other.action

    def __hash__(self):
        return hash((self.state, self.action))

    def __repr__(self):
        if self.action is None:
            return f"<{self.state!r}, _>"
        return f"<{self.state!r}, {self.action!r}>"


class Trace:
    """A non-empty sequence of log entries."""

    __slots__ = ("entries", "_hash")

    def __init__(self, entries):
        entries = tuple(entries)
        if not entries:
            raise KmtError("a trace must be non-empty")
        self.entries = entries
        self._hash = None

    @classmethod
    def initial(cls, state):
        """The one-entry trace ``<state, bot>``."""
        return cls((LogEntry(state, None),))

    # -- structure -----------------------------------------------------------
    def __len__(self):
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def __getitem__(self, idx):
        return self.entries[idx]

    def __eq__(self, other):
        if not isinstance(other, Trace):
            return NotImplemented
        return self.entries == other.entries

    def __hash__(self):
        if self._hash is None:
            self._hash = hash(self.entries)
        return self._hash

    def __repr__(self):
        return "Trace(" + " ".join(repr(e) for e in self.entries) + ")"

    # -- accessors -------------------------------------------------------------
    @property
    def last_state(self):
        """The state of the final log entry (``last(t)`` in the paper)."""
        return self.entries[-1].state

    @property
    def first_state(self):
        return self.entries[0].state

    def append(self, state, action):
        """Extend the trace with a new ``<state, action>`` entry."""
        return Trace(self.entries + (LogEntry(state, action),))

    def prefix(self):
        """Drop the final entry (used by temporal predicates); None if length 1."""
        if len(self.entries) == 1:
            return None
        return Trace(self.entries[:-1])

    def label(self):
        """The word of primitive actions along the trace (Fig. 10 ``label``)."""
        return tuple(e.action for e in self.entries if e.action is not None)

    def map_states(self, fn):
        """Apply ``fn`` to every state, keeping the actions (theory projection)."""
        return Trace(tuple(LogEntry(fn(e.state), e.action) for e in self.entries))

    def states(self):
        return tuple(e.state for e in self.entries)


# ---------------------------------------------------------------------------
# evaluation
# ---------------------------------------------------------------------------

DEFAULT_STAR_BOUND = 12


def eval_pred(pred, trace, theory):
    """Evaluate a predicate on a trace: does the trace satisfy it?"""
    if isinstance(pred, T.PZero):
        return False
    if isinstance(pred, T.POne):
        return True
    if isinstance(pred, T.PPrim):
        return bool(theory.pred(pred.alpha, trace))
    if isinstance(pred, T.PNot):
        return not eval_pred(pred.arg, trace, theory)
    if isinstance(pred, T.PAnd):
        return eval_pred(pred.left, trace, theory) and eval_pred(pred.right, trace, theory)
    if isinstance(pred, T.POr):
        return eval_pred(pred.left, trace, theory) or eval_pred(pred.right, trace, theory)
    raise TypeError(f"not a Pred: {pred!r}")


def eval_term(term, trace, theory, star_bound=DEFAULT_STAR_BOUND):
    """The denotation ``[[term]](trace)`` as a set of traces.

    Kleene star is unrolled at most ``star_bound`` times, so the result is an
    under-approximation of the true (possibly infinite) denotation; it is
    exact for star-free terms and for traces shorter than the bound.
    """
    if isinstance(term, T.TTest):
        if eval_pred(term.pred, trace, theory):
            return {trace}
        return set()
    if isinstance(term, T.TPrim):
        new_state = theory.act(term.pi, trace.last_state)
        return {trace.append(new_state, term.pi)}
    if isinstance(term, T.TPlus):
        left = eval_term(term.left, trace, theory, star_bound)
        right = eval_term(term.right, trace, theory, star_bound)
        return left | right
    if isinstance(term, T.TSeq):
        out = set()
        for mid in eval_term(term.left, trace, theory, star_bound):
            out |= eval_term(term.right, mid, theory, star_bound)
        return out
    if isinstance(term, T.TStar):
        result = {trace}
        frontier = {trace}
        for _ in range(star_bound):
            new_frontier = set()
            for t in frontier:
                for t2 in eval_term(term.arg, t, theory, star_bound):
                    if t2 not in result:
                        new_frontier.add(t2)
            if not new_frontier:
                break
            result |= new_frontier
            frontier = new_frontier
        return result
    raise TypeError(f"not a Term: {term!r}")


def run(term, state, theory, star_bound=DEFAULT_STAR_BOUND):
    """Run a term from an initial state; returns the set of output traces."""
    return eval_term(term, Trace.initial(state), theory, star_bound)


def output_states(term, state, theory, star_bound=DEFAULT_STAR_BOUND):
    """The set of final states reachable by running ``term`` from ``state``."""
    return {t.last_state for t in run(term, state, theory, star_bound)}


def trace_labels(term, state, theory, star_bound=DEFAULT_STAR_BOUND):
    """The set of action words produced by running ``term`` from ``state``."""
    return {t.label() for t in run(term, state, theory, star_bound)}


def accepts(term, state, theory, star_bound=DEFAULT_STAR_BOUND):
    """True iff running ``term`` from ``state`` produces at least one trace."""
    return bool(run(term, state, theory, star_bound))


def traces_up_to_length(term, state, theory, max_actions, star_bound=None):
    """Traces of ``term`` from ``state`` with at most ``max_actions`` actions.

    With ``star_bound >= max_actions`` (the default) this set is *exact*: any
    trace with at most ``max_actions`` actions is produced within that many
    star unrollings, because unproductive unrollings (test-only iterations)
    never change the trace.  This makes it suitable for comparing terms whose
    stars have been restructured by normalization.
    """
    if star_bound is None:
        star_bound = max_actions
    full = eval_term(term, Trace.initial(state), theory, star_bound)
    return {t for t in full if len(t.label()) <= max_actions}


def equivalent_up_to_length(term1, term2, states, theory, max_actions, star_bound=None):
    """Compare length-truncated denotations of two terms on the given states.

    Unlike :func:`semantically_equivalent_on`, the truncation is by *trace
    length* rather than by star-unrolling depth, so terms that denote the same
    language but unroll their loops differently (e.g. a term and its normal
    form) compare equal.  Differences within the length bound are definite
    evidence of inequivalence.
    """
    for state in states:
        left = traces_up_to_length(term1, state, theory, max_actions, star_bound)
        right = traces_up_to_length(term2, state, theory, max_actions, star_bound)
        if left != right:
            return False
    return True


def semantically_equivalent_on(term1, term2, states, theory, star_bound=DEFAULT_STAR_BOUND):
    """Compare two terms' (bounded) denotations on a collection of start states.

    Used for differential testing of the decision procedure: if the bounded
    denotations differ on any supplied state the terms are certainly
    inequivalent; agreement is evidence (not proof) of equivalence.
    """
    for state in states:
        t = Trace.initial(state)
        if eval_term(term1, t, theory, star_bound) != eval_term(term2, t, theory, star_bound):
            return False
    return True
