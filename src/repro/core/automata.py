"""Word automata over restricted actions (paper Section 4.1).

The decision procedure compares the restricted actions of two normal forms as
regular languages.  Following the paper's implementation we use *implicit*
automata whose states are restricted-action terms, with the transition
relation generated on the fly by the Brzozowski derivative, and decide
equivalence with the Hopcroft–Karp union-find algorithm.  Hash-consed smart
constructors keep the set of distinct derivative states small (derivatives of
a regular expression are finite up to the ACI axioms the smart constructors
apply).
"""

from __future__ import annotations

from collections import deque

from repro.core import terms as T
from repro.utils.errors import CounterexampleBoundExceeded, KmtError


# ---------------------------------------------------------------------------
# Brzozowski derivatives
# ---------------------------------------------------------------------------


def nullable(m):
    """True iff the language of ``m`` contains the empty word."""
    if isinstance(m, T.TTest):
        if isinstance(m.pred, T.POne):
            return True
        if isinstance(m.pred, T.PZero):
            return False
        raise KmtError(f"not a restricted action: {m!r}")
    if isinstance(m, T.TPrim):
        return False
    if isinstance(m, T.TPlus):
        return nullable(m.left) or nullable(m.right)
    if isinstance(m, T.TSeq):
        return nullable(m.left) and nullable(m.right)
    if isinstance(m, T.TStar):
        return True
    raise TypeError(f"not a Term: {m!r}")


def canonical(m):
    """Rewrite a restricted action into an ACI-canonical form.

    Brzozowski's theorem guarantees finitely many derivatives only *modulo*
    associativity, commutativity and idempotence of ``+`` (and the unit/zero
    laws).  The binary smart constructors in :mod:`repro.core.terms` only
    catch syntactically adjacent duplicates, so without this pass the
    derivative states of a large sum keep growing forever.  We flatten sums
    into sorted, deduplicated lists and right-associate sequences; together
    with hash consing this keeps the implicit automaton finite.
    """
    if isinstance(m, T.TTest):
        return m
    if isinstance(m, T.TPrim):
        return m
    if isinstance(m, T.TStar):
        return T.tstar(canonical(m.arg))
    if isinstance(m, T.TSeq):
        factors = []
        _flatten_seq(m, factors)
        canon_factors = []
        for factor in factors:
            cf = canonical(factor)
            if isinstance(cf, T.TTest) and isinstance(cf.pred, T.PZero):
                return T.tzero()
            if isinstance(cf, T.TTest) and isinstance(cf.pred, T.POne):
                continue
            canon_factors.append(cf)
        result = T.tone()
        for factor in reversed(canon_factors):
            result = T.tseq(factor, result)
        return result
    if isinstance(m, T.TPlus):
        summands = set()
        _flatten_plus(m, summands)
        canon_summands = set()
        for summand in summands:
            cs = canonical(summand)
            if isinstance(cs, T.TTest) and isinstance(cs.pred, T.PZero):
                continue
            canon_summands.add(cs)
        if not canon_summands:
            return T.tzero()
        ordered = sorted(canon_summands, key=lambda t: t.sort_key())
        result = ordered[0]
        for summand in ordered[1:]:
            result = T.tplus(result, summand)
        return result
    raise TypeError(f"not a Term: {m!r}")


def _flatten_plus(m, out):
    if isinstance(m, T.TPlus):
        _flatten_plus(m.left, out)
        _flatten_plus(m.right, out)
    else:
        out.add(m)


def _flatten_seq(m, out):
    if isinstance(m, T.TSeq):
        _flatten_seq(m.left, out)
        _flatten_seq(m.right, out)
    else:
        out.append(m)


#: Optional dict-like memo for :func:`derivative` with ``get(key, default)``
#: and ``put(key, value)`` methods (the engine layer installs a bounded,
#: thread-safe LRU here).  ``None`` means no caching — the seed behaviour.
_DERIVATIVE_CACHE = None

_CACHE_MISS = object()


def set_derivative_cache(cache):
    """Install (or with ``None`` remove) the shared derivative memo table.

    Derivatives are pure functions of hash-consed terms, so a process-wide
    cache is semantically transparent; it exists because the same derivative
    states are recomputed constantly across cells, queries and sessions.
    """
    global _DERIVATIVE_CACHE
    _DERIVATIVE_CACHE = cache


def get_derivative_cache():
    return _DERIVATIVE_CACHE


def derivative(m, pi):
    """The ACI-canonical Brzozowski derivative of ``m`` w.r.t. primitive action ``pi``."""
    cache = _DERIVATIVE_CACHE
    if cache is None:
        return canonical(_derivative_raw(m, pi))
    key = (m, pi)
    cached = cache.get(key, _CACHE_MISS)
    if cached is not _CACHE_MISS:
        return cached
    result = canonical(_derivative_raw(m, pi))
    cache.put(key, result)
    return result


def _derivative_raw(m, pi):
    if isinstance(m, T.TTest):
        if isinstance(m.pred, (T.POne, T.PZero)):
            return T.tzero()
        raise KmtError(f"not a restricted action: {m!r}")
    if isinstance(m, T.TPrim):
        return T.tone() if m.pi == pi else T.tzero()
    if isinstance(m, T.TPlus):
        return T.tplus(_derivative_raw(m.left, pi), _derivative_raw(m.right, pi))
    if isinstance(m, T.TSeq):
        first = T.tseq(_derivative_raw(m.left, pi), m.right)
        if nullable(m.left):
            return T.tplus(first, _derivative_raw(m.right, pi))
        return first
    if isinstance(m, T.TStar):
        return T.tseq(_derivative_raw(m.arg, pi), m)
    raise TypeError(f"not a Term: {m!r}")


# Memo tables for the primitive-action alphabets.  Keys are the hash-consed
# terms themselves (structurally equal nodes are one object, and even after a
# ``clear_intern_table`` a re-built node still compares equal to the old key,
# so entries never go stale).  Before this memo every ``language_compare`` /
# ``language_is_empty`` call re-walked both terms and re-sorted the alphabet
# by ``repr`` — pure waste on the decision procedure's hot loop, which keeps
# comparing the same restricted-action sums.  Each table is capped: a
# long-lived server streaming ever-new terms must not grow them without
# bound (the pair table is quadratic in distinct actions at worst), so on
# overflow a table is simply reset — hot entries re-memoize on next use,
# which is cheaper machinery than a full LRU for what is a pure-function
# memo.
_ALPHABET_CACHE_LIMIT = 1 << 16

_ALPHA_CACHE = {}       # restricted action -> frozenset of primitive actions
_SIGMA_CACHE = {}       # restricted action -> tuple sorted in canonical order
_SIGMA_PAIR_CACHE = {}  # (m, n) -> merged sorted tuple


def clear_alphabet_caches():
    """Drop the alphabet memo tables (never required for correctness)."""
    _ALPHA_CACHE.clear()
    _SIGMA_CACHE.clear()
    _SIGMA_PAIR_CACHE.clear()


def _memo_capped(cache, key, value):
    if len(cache) >= _ALPHABET_CACHE_LIMIT:
        cache.clear()
    cache[key] = value
    return value


def _alphabet_of(m):
    cached = _ALPHA_CACHE.get(m)
    if cached is None:
        cached = _memo_capped(_ALPHA_CACHE, m, frozenset(T.primitive_actions(m)))
    return cached


def sorted_alphabet(m):
    """The alphabet of one restricted action in canonical (repr-sorted) order.

    This order is *the* canonical symbol order of the compiled-automaton IR
    (:mod:`repro.core.compile`): transition arrays are indexed by position in
    this tuple, so every consumer must agree on it.
    """
    cached = _SIGMA_CACHE.get(m)
    if cached is None:
        cached = _memo_capped(
            _SIGMA_CACHE, m, tuple(sorted(_alphabet_of(m), key=repr))
        )
    return cached


def sorted_alphabet_pair(m, n):
    """The merged canonical alphabet of two restricted actions (memoized)."""
    if m == n:
        return sorted_alphabet(m)
    key = (m, n)
    cached = _SIGMA_PAIR_CACHE.get(key)
    if cached is None:
        a, b = sorted_alphabet(m), sorted_alphabet(n)
        merged = a if a == b else tuple(sorted(set(a) | set(b), key=repr))
        cached = _memo_capped(_SIGMA_PAIR_CACHE, key, merged)
    return cached


def alphabet(*terms):
    """The combined primitive-action alphabet of the given restricted actions."""
    out = set()
    for m in terms:
        out |= _alphabet_of(m)
    return out


# ---------------------------------------------------------------------------
# language emptiness
# ---------------------------------------------------------------------------


def language_is_empty(m):
    """True iff ``R(m)`` is empty (no reachable nullable derivative)."""
    m = canonical(m)
    sigma = sorted_alphabet(m)
    seen = {m}
    queue = deque([m])
    while queue:
        state = queue.popleft()
        if nullable(state):
            return False
        for pi in sigma:
            nxt = derivative(state, pi)
            if nxt not in seen:
                seen.add(nxt)
                queue.append(nxt)
    return True


# ---------------------------------------------------------------------------
# Hopcroft–Karp equivalence
# ---------------------------------------------------------------------------


class _UnionFind:
    """Union-find over hashable items (path compression, union by size)."""

    def __init__(self):
        self.parent = {}
        self.size = {}

    def find(self, item):
        if item not in self.parent:
            self.parent[item] = item
            self.size[item] = 1
            return item
        root = item
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[item] != root:
            self.parent[item], item = root, self.parent[item]
        return root

    def union(self, a, b):
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]
        return True


def language_compare(m, n, max_states=None, cancel=None):
    """Decide ``R(m) == R(n)`` and produce a witness in a single pass.

    Runs Hopcroft–Karp over Brzozowski derivatives once, threading the access
    word of every state pair through the worklist.  Returns
    ``(equivalent, word)``: ``(True, None)`` when the languages agree, and
    otherwise ``(False, w)`` where ``w`` is a word of primitive actions
    accepted by exactly one side (a genuine distinguishing word, though not
    necessarily a shortest one — use :func:`counterexample_word` for that).

    ``max_states`` optionally bounds the number of explored state pairs as a
    safety valve (derivatives modulo the smart-constructor rewrites are finite,
    so the default of no bound terminates).  ``cancel`` is an optional
    cooperative-cancellation callable invoked once per explored state pair; it
    aborts the comparison by raising (see
    :class:`~repro.utils.errors.QueryCancelled`).
    """
    if not T.is_restricted(m) or not T.is_restricted(n):
        raise KmtError("language_compare expects restricted actions")
    m, n = canonical(m), canonical(n)
    sigma = sorted_alphabet_pair(m, n)
    uf = _UnionFind()
    uf.union(("L", m), ("R", n))
    queue = deque([((), m, n)])
    explored = 0
    while queue:
        word, p, q = queue.popleft()
        explored += 1
        if max_states is not None and explored > max_states:
            raise KmtError(f"language_compare exceeded {max_states} state pairs")
        if cancel is not None:
            cancel()
        if nullable(p) != nullable(q):
            return False, word
        for pi in sigma:
            dp = derivative(p, pi)
            dq = derivative(q, pi)
            if uf.union(("L", dp), ("R", dq)):
                queue.append((word + (pi,), dp, dq))
    return True, None


def language_equivalent(m, n, max_states=None):
    """Decide ``R(m) == R(n)`` (see :func:`language_compare`).

    Returns ``True``/``False``.
    """
    return language_compare(m, n, max_states=max_states)[0]


def counterexample_word(m, n, max_length=16):
    """A shortest word accepted by exactly one of ``m``/``n``, or None.

    Breadth-first product search; mainly a debugging aid for failed
    equivalences and for tests of :func:`language_equivalent` itself.
    ``None`` always means *proved equivalent*: if the search has to truncate
    at ``max_length`` before exhausting the product space, it raises
    :class:`~repro.utils.errors.CounterexampleBoundExceeded` instead of
    silently returning the equivalence answer (the old behaviour conflated
    "equivalent" with "bound hit").  For an exact, bound-free shortest
    witness use :func:`repro.core.compile.compiled_compare`.
    """
    m, n = canonical(m), canonical(n)
    sigma = sorted_alphabet_pair(m, n)
    seen = {(m, n)}
    queue = deque([((), m, n)])
    truncated = False
    while queue:
        word, p, q = queue.popleft()
        if nullable(p) != nullable(q):
            return word
        if len(word) >= max_length:
            truncated = True
            continue
        for pi in sigma:
            dp = derivative(p, pi)
            dq = derivative(q, pi)
            if (dp, dq) not in seen:
                seen.add((dp, dq))
                queue.append((word + (pi,), dp, dq))
    if truncated:
        raise CounterexampleBoundExceeded(max_length)
    return None


def derivative_states(m, max_states=10_000):
    """All derivative states reachable from ``m`` (for diagnostics/benchmarks)."""
    m = canonical(m)
    sigma = sorted_alphabet(m)
    seen = {m}
    queue = deque([m])
    while queue:
        state = queue.popleft()
        for pi in sigma:
            nxt = derivative(state, pi)
            if nxt not in seen:
                if len(seen) >= max_states:
                    raise KmtError(f"derivative_states exceeded {max_states} states")
                seen.add(nxt)
                queue.append(nxt)
    return seen
