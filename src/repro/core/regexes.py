"""Regular interpretation of restricted actions (paper Fig. 10).

Restricted actions (no tests other than 0/1) denote regular languages over the
alphabet of primitive actions; the completeness proof relates the tracing
semantics to this interpretation via ``label``.  This module provides a
bounded enumeration of those languages (used in property tests comparing the
regular interpretation against both the tracing semantics and the automaton
construction) plus a few convenience predicates.
"""

from __future__ import annotations

from repro.core import terms as T
from repro.utils.errors import KmtError


def language_up_to(m, max_length):
    """All words of ``R(m)`` of length at most ``max_length``.

    Words are tuples of primitive actions.  The enumeration is exact up to the
    length bound (it is not an approximation of which words are included, only
    a truncation of the infinite language).
    """
    if not T.is_restricted(m):
        raise KmtError(f"language_up_to expects a restricted action, got {m!r}")
    return frozenset(_lang(m, max_length))


def _lang(m, max_length):
    if isinstance(m, T.TTest):
        if isinstance(m.pred, T.POne):
            return {()}
        if isinstance(m.pred, T.PZero):
            return set()
        raise KmtError(f"not restricted: {m!r}")
    if isinstance(m, T.TPrim):
        if max_length < 1:
            return set()
        return {(m.pi,)}
    if isinstance(m, T.TPlus):
        return _lang(m.left, max_length) | _lang(m.right, max_length)
    if isinstance(m, T.TSeq):
        out = set()
        left_words = _lang(m.left, max_length)
        for u in left_words:
            remaining = max_length - len(u)
            if remaining < 0:
                continue
            for v in _lang(m.right, remaining):
                if len(u) + len(v) <= max_length:
                    out.add(u + v)
        return out
    if isinstance(m, T.TStar):
        out = {()}
        frontier = {()}
        while True:
            new_frontier = set()
            for u in frontier:
                remaining = max_length - len(u)
                if remaining <= 0:
                    continue
                for v in _lang(m.arg, remaining):
                    if not v:
                        continue
                    w = u + v
                    if len(w) <= max_length and w not in out:
                        new_frontier.add(w)
            if not new_frontier:
                break
            out |= new_frontier
            frontier = new_frontier
        return out
    raise TypeError(f"not a Term: {m!r}")


def accepts_word(m, word):
    """True iff the word (tuple of primitive actions) is in ``R(m)``."""
    from repro.core.automata import derivative, nullable

    current = m
    for pi in word:
        current = derivative(current, pi)
    return nullable(current)


def is_empty_language(m):
    """True iff ``R(m)`` is the empty language."""
    from repro.core.automata import language_is_empty

    return language_is_empty(m)
