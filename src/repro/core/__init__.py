"""Core KMT framework: terms, semantics, normalization, and decision procedure.

The modules in this package implement Section 3 and Section 4 of the paper:

* :mod:`repro.core.terms` — the KAT term language (Fig. 5 syntax) with
  hash-consed smart constructors.
* :mod:`repro.core.theory` — the client-theory interface (the ``THEORY``
  signature of Section 4).
* :mod:`repro.core.semantics` — the tracing semantics (Fig. 5).
* :mod:`repro.core.nnf` — negation normal form (Fig. 7).
* :mod:`repro.core.ordering` — the maximal-subterm ordering (Fig. 6).
* :mod:`repro.core.normalform` — normal forms Σ aᵢ·mᵢ and splitting.
* :mod:`repro.core.pushback` — the pushback relations and normalization
  (Fig. 8).
* :mod:`repro.core.regexes`, :mod:`repro.core.automata` — regular
  interpretation of restricted actions and word-automata equivalence.
* :mod:`repro.core.compile` — compiled symbolic automata: an explicit,
  Hopcroft-minimized DFA IR for restricted actions with product-walk
  equivalence/containment and word membership.
* :mod:`repro.core.decision` — the normalization-based equivalence decision
  procedure (Theorem 3.7).
* :mod:`repro.core.kmt` — the ``KMT`` facade combining everything for a given
  client theory.
"""

from repro.core.kmt import KMT

__all__ = ["KMT"]
