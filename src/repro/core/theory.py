"""The client-theory interface (the ``THEORY`` module signature of Section 4).

A *client theory* supplies the domain-specific half of a KMT:

* the primitive tests (``alpha``) and primitive actions (``pi``);
* a notion of state plus ``pred``/``act`` semantics over that state;
* a weakest-precondition relation ``push_back`` relating every primitive
  action/test pair (Definition 3.3);
* a ``subterms`` function giving the tests that pushing a primitive test back
  may produce (this induces the maximal-subterm ordering, Fig. 6);
* a satisfiability decision procedure for the Boolean algebra over the
  primitive tests (used in the completeness-derived decision procedure,
  Theorem 3.7);
* optional parser extensions and simplification hooks.

Primitive tests and actions are ordinary immutable, hashable Python objects
(frozen dataclasses in the shipped theories).  They are wrapped in
:class:`~repro.core.terms.PPrim` / :class:`~repro.core.terms.TPrim` nodes by
the core.

Higher-order theories (products, sets, maps, LTLf) need to call back into the
*derived* KMT — for example LTLf pushes arbitrary embedded predicates back
through actions using the derived pushback relation, exactly as the OCaml
implementation uses recursive modules.  The :meth:`Theory.attach` hook hands
the theory its enclosing :class:`~repro.core.kmt.KMT` instance to tie that
recursive knot.
"""

from __future__ import annotations

from repro.utils.errors import TheoryError


class Theory:
    """Abstract base class for KMT client theories.

    Subclasses must implement the abstract methods below.  The docstrings
    state the proof obligations from the paper that the implementation is
    trusted to discharge (the framework cannot check them, see Section 3).
    """

    #: Human-readable theory name (used by the CLI and error messages).
    name = "abstract"

    def __init__(self):
        self.kmt = None

    # ------------------------------------------------------------------
    # recursive knot
    # ------------------------------------------------------------------
    def attach(self, kmt):
        """Record the derived :class:`KMT` instance wrapping this theory.

        Called exactly once by ``KMT.__init__``.  Higher-order theories use
        ``self.kmt`` to evaluate or push back embedded predicates.
        """
        self.kmt = kmt

    def require_kmt(self):
        if self.kmt is None:
            raise TheoryError(
                f"theory {self.name!r} is not attached to a KMT instance; "
                "construct it via repro.KMT(theory)"
            )
        return self.kmt

    # ------------------------------------------------------------------
    # ownership (used by composite theories to dispatch primitives)
    # ------------------------------------------------------------------
    def owns_test(self, alpha):
        """True iff primitive test ``alpha`` belongs to this theory."""
        raise NotImplementedError

    def owns_action(self, pi):
        """True iff primitive action ``pi`` belongs to this theory."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # semantics (Fig. 5: pred and act)
    # ------------------------------------------------------------------
    def initial_state(self):
        """A canonical initial state (used by examples and random testing)."""
        raise NotImplementedError

    def pred(self, alpha, trace):
        """Evaluate primitive test ``alpha`` on a trace; return a bool.

        ``trace`` is a :class:`repro.core.semantics.Trace`; most theories only
        look at ``trace.last_state`` but temporal theories may inspect the
        whole history.
        """
        raise NotImplementedError

    def act(self, pi, state):
        """Apply primitive action ``pi`` to ``state`` and return the new state."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # pushback obligations (Definition 3.3 and Fig. 6)
    # ------------------------------------------------------------------
    def push_back(self, pi, alpha):
        """The weakest-precondition relation ``pi . alpha  WP  sum a_i . pi``.

        Returns an iterable of :class:`~repro.core.terms.Pred` whose sum ``A``
        satisfies ``pi ; alpha == A ; pi`` in the theory's equational theory.

        Proof obligations (trusted): the equivalence must be sound for the
        tracing semantics, and every returned predicate must be no larger than
        ``alpha`` in the maximal-subterm ordering (i.e. built from
        ``subterms(alpha)`` and Boolean structure over them).
        """
        raise NotImplementedError

    def subterms(self, alpha):
        """The theory-specific subterms of primitive test ``alpha``.

        Returns an iterable of :class:`~repro.core.terms.Pred`.  The core adds
        ``0``, ``1`` and ``alpha`` itself (Fig. 6); this method only needs to
        return the *extra* predicates that ``push_back`` may produce — e.g.
        ``x > m`` for every ``m <= n`` in the IncNat theory.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # satisfiability
    # ------------------------------------------------------------------
    def satisfiable(self, pred):
        """Decide satisfiability of a Boolean combination of primitive tests.

        The default implementation runs the generic DPLL(T) solver of
        :mod:`repro.smt.dpll` using :meth:`satisfiable_conjunction` as the
        theory oracle.  Theories with a cheaper dedicated procedure may
        override this method (the paper notes custom solvers beat the Z3
        embedding).
        """
        from repro.smt.dpll import dpll_satisfiable

        return dpll_satisfiable(pred, self)

    def satisfiable_conjunction(self, literals):
        """Decide satisfiability of a conjunction of primitive-test literals.

        ``literals`` is a sequence of ``(alpha, polarity)`` pairs where
        ``polarity`` is ``True`` for a positive occurrence and ``False`` for a
        negated one.  Used as the theory oracle by the generic DPLL(T) solver.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # optional hooks
    # ------------------------------------------------------------------
    def simplify_not(self, alpha):
        """Optionally rewrite ``~alpha`` to an equivalent predicate (or None)."""
        return None

    def simplify_and(self, alpha, beta):
        """Optionally rewrite ``alpha ; beta`` to an equivalent predicate (or None)."""
        return None

    def simplify_or(self, alpha, beta):
        """Optionally rewrite ``alpha + beta`` to an equivalent predicate (or None)."""
        return None

    def parse_phrase(self, tokens):
        """Parse a primitive phrase (a list of non-structural tokens).

        Returns ``("test", alpha)`` or ``("action", pi)``, or raises
        :class:`~repro.utils.errors.ParseError`.  See
        :mod:`repro.core.parser` for the token format.
        """
        from repro.utils.errors import ParseError

        raise ParseError(f"theory {self.name!r} does not support parsing: {tokens!r}")

    def parser_keywords(self):
        """Keywords that introduce function-style predicate syntax.

        Returns a mapping ``keyword -> callable(parser) -> Pred`` used by the
        core parser for forms such as ``last(a)`` or ``since(a, b)`` whose
        arguments are themselves full predicates.
        """
        return {}

    def test_variables(self, alpha):
        """Variables mentioned by a primitive test (used by diagnostics)."""
        return ()

    def action_variables(self, pi):
        """Variables mentioned by a primitive action (used by diagnostics)."""
        return ()

    def describe(self):
        """A short human-readable description of the theory."""
        return self.name
