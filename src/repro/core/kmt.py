"""The ``KMT`` facade: a client theory plus everything the framework derives.

This is the Python analogue of the paper's ``module K = KAT(IncNat)`` /
``module D = Decide(P)`` instantiation: construct a :class:`KMT` from a
:class:`~repro.core.theory.Theory` and you get

* a parser for the theory's concrete syntax,
* the tracing semantics (evaluation of terms on states),
* pushback-based normalization,
* the equivalence / ordering / emptiness decision procedures, and
* the weakest-precondition operation on arbitrary embedded predicates that
  higher-order theories (LTLf, Temporal NetKAT) need — this is the recursive
  knot the OCaml implementation ties with recursive modules.
"""

from __future__ import annotations

from repro.core import parser as parser_mod
from repro.core import semantics, terms
from repro.core.decision import EquivalenceChecker
from repro.core.pushback import DEFAULT_BUDGET, Normalizer
from repro.utils.errors import KmtError


class KMT:
    """A Kleene algebra modulo the given client theory."""

    def __init__(self, theory, budget=DEFAULT_BUDGET, prune_unsat_cells=True, caches=None,
                 cell_search="signature", use_compiled=True, walk_kernel="flat"):
        self.theory = theory
        self.budget = budget
        self.caches = caches
        self.checker = EquivalenceChecker(
            theory, budget=budget, prune_unsat_cells=prune_unsat_cells, caches=caches,
            cell_search=cell_search, use_compiled=use_compiled, walk_kernel=walk_kernel,
        )
        theory.attach(self)

    def __repr__(self):
        return f"KMT({self.theory.describe()})"

    # ------------------------------------------------------------------
    # parsing / printing
    # ------------------------------------------------------------------
    def parse(self, text):
        """Parse a term in the theory's concrete syntax."""
        return parser_mod.parse_term(text, self.theory)

    def parse_pred(self, text):
        """Parse a predicate in the theory's concrete syntax."""
        return parser_mod.parse_pred(text, self.theory)

    def pretty(self, term_or_pred):
        from repro.core.pretty import pretty_pred, pretty_term

        if isinstance(term_or_pred, terms.Pred):
            return pretty_pred(term_or_pred)
        return pretty_term(term_or_pred)

    # ------------------------------------------------------------------
    # normalization
    # ------------------------------------------------------------------
    def normalize(self, term):
        """Normalize a term into Σ aᵢ·mᵢ form."""
        return Normalizer(self.theory, budget=self.budget).normalize(term)

    def normalize_with_stats(self, term):
        normalizer = Normalizer(self.theory, budget=self.budget)
        nf = normalizer.normalize(term)
        return nf, normalizer.stats

    # ------------------------------------------------------------------
    # decision procedures
    # ------------------------------------------------------------------
    def equivalent(self, p, q):
        """Decide ``p == q``.  Accepts terms or source strings."""
        p, q = self._coerce_term(p), self._coerce_term(q)
        return self.checker.equivalent(p, q)

    def check_equivalent(self, p, q):
        """Decide ``p == q`` and return the detailed result (counterexample etc.)."""
        p, q = self._coerce_term(p), self._coerce_term(q)
        return self.checker.check_equivalent(p, q)

    def less_or_equal(self, p, q):
        """Decide ``p <= q`` (i.e. ``p + q == q``)."""
        p, q = self._coerce_term(p), self._coerce_term(q)
        return self.checker.less_or_equal(p, q)

    def includes(self, p, q):
        """Decide ``p <= q`` by per-cell compiled-automaton containment."""
        return self.check_inclusion(p, q).includes

    def check_inclusion(self, p, q):
        """Like :meth:`includes` but returns the detailed
        :class:`~repro.core.decision.InclusionResult` (witness word etc.)."""
        p, q = self._coerce_term(p), self._coerce_term(q)
        return self.checker.check_inclusion(p, q)

    def member(self, term, word):
        """Is ``word`` a possible action sequence of ``term``?

        ``word`` is a sequence of primitive actions — raw theory actions,
        ``TPrim`` terms, or source strings (a string element may spell several
        actions separated by ``;``, e.g. ``"inc(x); inc(y)"``); a single
        string is accepted as a one-element word.  Decided on the compiled
        automata of the term's normal form (:meth:`EquivalenceChecker.member_nf`).
        """
        term = self._coerce_term(term)
        return self.checker.member_nf(self.checker.normalize(term), self._coerce_word(word))

    def member_many(self, term, words):
        """Batched membership: judge many words against one term in one call.

        Each element of ``words`` follows :meth:`member`'s word forms.
        Returns a list of bools aligned with ``words``; the term is
        normalized once and every summand automaton judges all
        still-undecided words together
        (:meth:`EquivalenceChecker.member_nf_many`).
        """
        term = self._coerce_term(term)
        nf = self.checker.normalize(term)
        return self.checker.member_nf_many(
            nf, [self._coerce_word(word) for word in words]
        )

    def is_empty(self, p):
        """Decide whether ``p`` denotes no traces (``p == 0``)."""
        return self.checker.is_empty(self._coerce_term(p))

    def partition(self, ps):
        """Partition terms into equivalence classes (list of index lists)."""
        return self.checker.partition([self._coerce_term(p) for p in ps])

    def satisfiable(self, pred):
        """Decide satisfiability of a predicate over the theory's tests."""
        if isinstance(pred, str):
            pred = self.parse_pred(pred)
        return self.theory.satisfiable(pred)

    # ------------------------------------------------------------------
    # semantics
    # ------------------------------------------------------------------
    def run(self, term, state=None, star_bound=semantics.DEFAULT_STAR_BOUND):
        """Run a term from a state (default: the theory's initial state)."""
        term = self._coerce_term(term)
        if state is None:
            state = self.theory.initial_state()
        return semantics.run(term, state, self.theory, star_bound)

    def output_states(self, term, state=None, star_bound=semantics.DEFAULT_STAR_BOUND):
        term = self._coerce_term(term)
        if state is None:
            state = self.theory.initial_state()
        return semantics.output_states(term, state, self.theory, star_bound)

    def accepts(self, term, state=None, star_bound=semantics.DEFAULT_STAR_BOUND):
        """True iff running the term from the state produces at least one trace."""
        return bool(self.run(term, state, star_bound))

    def eval_pred(self, pred, trace):
        """Evaluate an arbitrary embedded predicate on a trace.

        Used by higher-order theories whose primitive tests wrap predicates of
        the full language (e.g. LTLf's ``last a`` / ``a since b``).
        """
        return semantics.eval_pred(pred, trace, self.theory)

    # ------------------------------------------------------------------
    # weakest preconditions on arbitrary predicates (recursive knot)
    # ------------------------------------------------------------------
    def weakest_precondition(self, pi, pred):
        """Return a predicate ``a'`` with ``pi ; pred == a' ; pi``.

        ``pi`` is a theory primitive action and ``pred`` an arbitrary
        predicate of the derived language.  Implemented with the PB• relation;
        by Lemma B.27 pushing a test back through a *primitive* action leaves
        the action unchanged, so the result can be read off as the sum of the
        pushed-back tests.
        """
        normalizer = Normalizer(self.theory, budget=self.budget)
        nf = normalizer.pb_test_action(terms.tprim(pi), pred)
        action = terms.tprim(pi)
        tests = []
        for test, m in nf.sorted_pairs():
            if m != action:
                raise KmtError(
                    "weakest_precondition: pushback through a primitive action "
                    f"produced a non-primitive action {m!r}"
                )
            tests.append(test)
        return terms.por_all(tests)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _coerce_term(self, p):
        if isinstance(p, str):
            return self.parse(p)
        if isinstance(p, terms.Pred):
            return terms.ttest(p)
        if isinstance(p, terms.Term):
            return p
        raise TypeError(f"expected a Term, Pred or source string, got {p!r}")

    def _coerce_word(self, word):
        """Normalize a word argument into a tuple of theory primitive actions.

        See :meth:`member` for the accepted element forms.  Raises
        ``KmtError`` when an element is not (a sequence of) primitive
        actions — tests, sums and stars have no place in a word.
        """
        if isinstance(word, str):
            word = [word]
        pis = []
        for element in word:
            if isinstance(element, str):
                element = self.parse(element)
            if isinstance(element, terms.Term):
                self._flatten_word_term(element, pis)
            else:
                pis.append(element)  # a raw theory primitive action
        return tuple(pis)

    def _flatten_word_term(self, term, out):
        if isinstance(term, terms.TPrim):
            out.append(term.pi)
        elif isinstance(term, terms.TSeq):
            self._flatten_word_term(term.left, out)
            self._flatten_word_term(term.right, out)
        elif isinstance(term, terms.TTest) and isinstance(term.pred, terms.POne):
            pass  # "1" spells the empty word
        else:
            raise KmtError(
                f"word elements must be primitive actions (got {term!r}); "
                "tests, sums and stars cannot appear in a word"
            )
