"""Negation normal form for predicates (paper Fig. 7).

``nnf`` pushes negations inwards with De Morgan's laws until they only occur
on primitive tests.  The pushback rule ``PrimNeg`` relies on this, and the
monotonicity of ``nnf`` with respect to the maximal-subterm ordering
(Lemma B.18) is what keeps normalization terminating in the presence of
negation.
"""

from __future__ import annotations

from repro.core import terms as T


def nnf(pred):
    """Return an equivalent predicate in negation normal form."""
    if isinstance(pred, (T.PZero, T.POne, T.PPrim)):
        return pred
    if isinstance(pred, T.POr):
        return T.por(nnf(pred.left), nnf(pred.right))
    if isinstance(pred, T.PAnd):
        return T.pand(nnf(pred.left), nnf(pred.right))
    if isinstance(pred, T.PNot):
        return nnf_neg(pred.arg)
    raise TypeError(f"not a Pred: {pred!r}")


def nnf_neg(pred):
    """Return an NNF predicate equivalent to ``~pred``."""
    if isinstance(pred, T.PZero):
        return T.pone()
    if isinstance(pred, T.POne):
        return T.pzero()
    if isinstance(pred, T.PPrim):
        return T.pnot(pred)
    if isinstance(pred, T.PNot):
        return nnf(pred.arg)
    if isinstance(pred, T.POr):
        return T.pand(nnf_neg(pred.left), nnf_neg(pred.right))
    if isinstance(pred, T.PAnd):
        return T.por(nnf_neg(pred.left), nnf_neg(pred.right))
    raise TypeError(f"not a Pred: {pred!r}")


def is_nnf(pred):
    """True iff negation only occurs applied to primitive tests."""
    if isinstance(pred, (T.PZero, T.POne, T.PPrim)):
        return True
    if isinstance(pred, T.PNot):
        return isinstance(pred.arg, T.PPrim)
    if isinstance(pred, (T.PAnd, T.POr)):
        return is_nnf(pred.left) and is_nnf(pred.right)
    raise TypeError(f"not a Pred: {pred!r}")
