"""Compiled symbolic automata over restricted actions — flat-arena IR.

The decision procedure's hot loop compares restricted-action sums as regular
languages.  The implicit-automaton route (:mod:`repro.core.automata`) walks
Brzozowski derivatives of *terms* pairwise — every comparison re-derives the
same states, and nothing of the finished state graph survives the call.  This
module instead *compiles* a restricted action once into an explicit
:class:`CompiledAutomaton`:

* **dense int states** — derivative states are numbered 0..n-1 in BFS
  discovery order (state 0 is the start state);
* **flat transition arena** — ``delta`` is a single contiguous ``array('i')``
  of ``n_states × |sigma|`` entries in row-major order:
  ``delta[s * |sigma| + k]`` is the successor of state ``s`` under the
  ``k``-th symbol of the **canonical alphabet order**
  (:func:`repro.core.automata.sorted_alphabet`), so a product walk is two int
  indexings into contiguous buffers — and the batched kernels in
  :mod:`repro.core.kernels` can wrap the same buffer in a numpy view with no
  copying;
* **accepting bitset** — an int bitmask, ``accepting >> s & 1``;
* **packed back-pointers** — ``back`` is a flat ``array('i')`` of
  ``(predecessor, symbol_index)`` pairs (``back[2s]``, ``back[2s+1]``; the
  start state holds ``(-1, -1)``) recorded at BFS discovery, so a shortest
  access word for any state (hence shortest witness words) is read off by
  walking pointers back to the start state;
* **interned alphabets** — ``sigma`` is interned through
  :mod:`repro.core.arena`, so the per-alphabet ``{symbol: index}`` map is
  shared by every automaton over the same theory alphabet instead of being
  duplicated per instance.

Compilation finishes with **Hopcroft's partition-refinement minimization**
followed by a **canonical trim**: symbols that occur in no accepted word are
dropped from the alphabet (their columns removed from ``delta``), and the
dead sink state is dropped when the trim leaves it unreachable.  The trimmed,
BFS-renumbered minimal DFA is a *canonical value* of the action's language —
two restricted actions denote the same language **iff** their compiled
automata have identical ``(sigma, n_states, accepting, delta)`` tables.  The
flat kernels exploit that for an O(tables) equivalence fast path.

On top of the IR, the query operations:

* :func:`compiled_compare` — language equivalence with a *shortest*
  distinguishing word (BFS product walk, no state bound needed: the automata
  are finite by construction);
* :func:`compiled_includes` — language containment ``L(a) ⊆ L(b)`` via
  product emptiness, with a shortest word in ``L(a) \\ L(b)`` as witness;
* :meth:`CompiledAutomaton.accepts` — word membership in O(|word|) table
  lookups (batched variant: :func:`repro.core.kernels.accepts_batch`).

These are the **legacy walk** implementations — one product pair popped at a
time off a FIFO queue.  The default decision path routes comparisons through
the batched flat kernels (:mod:`repro.core.kernels`,
``walk_kernel="flat"``); the walk here is retained intact as the
differential/ablation oracle (``walk_kernel="legacy"``), exactly as
``use_compiled=False`` preserves the derivative path.

Automata compiled from different actions may have different alphabets; the
product walks reconcile them with an implicit non-accepting *dead* sink: a
symbol outside an automaton's alphabet derives every state of that automaton
to the empty language (the Brzozowski derivative of a term not mentioning the
symbol is ``0``), which is exactly the sink's behaviour.  The canonical trim
leans on the same fact: pruning a dead symbol's column only removes
transitions into the sink.

The engine layer caches compiled automata in a per-session ``aut`` LRU
(:class:`repro.engine.cache.EngineCaches`), keyed by the action's stable
fingerprint — a warm session that has seen a restricted-action sum in any
earlier query or signature reuses the minimized automaton instead of
re-deriving it.  The session's :class:`repro.core.arena.ArenaPool` tracks the
cached automata's flat-table footprint (the ``aut_bytes`` stat).
"""

from __future__ import annotations

from array import array
from collections import deque

from repro.core import terms as T
from repro.core.arena import intern_sigma, note_sigma_use, sigma_index
from repro.core.automata import (
    canonical,
    derivative,
    nullable,
    sorted_alphabet,
)
from repro.utils.errors import KmtError
from repro.utils.trace import current_trace

#: Sink pseudo-state used by the product walks for symbols missing from one
#: automaton's alphabet: non-accepting, and every transition loops on it.
_DEAD = -1


class CompiledAutomaton:
    """An explicit, minimized DFA for one restricted action's language.

    Instances are immutable value objects: they are shared through the
    engine's ``aut`` cache across queries (and threads), so nothing may
    mutate them after construction.

    ``delta`` and ``back`` are flat ``array('i')`` buffers (see the module
    docstring for the layout); ``delta`` may also be passed as an iterable of
    per-state rows and is flattened.  ``n_states`` is explicit because the
    canonical trim can leave ``sigma`` empty (the empty and epsilon
    languages), where the row count is not recoverable from ``len(delta)``.
    """

    __slots__ = ("sigma", "delta", "accepting", "back", "n_states",
                 "raw_states", "__weakref__")

    #: The start state (states are renumbered so it is always 0).
    initial = 0

    def __init__(self, sigma, delta, accepting, back, raw_states, n_states=None):
        sigma = intern_sigma(sigma)
        nsym = len(sigma)
        if isinstance(delta, array):
            flat_delta = delta
            if n_states is None:
                if nsym == 0:
                    raise KmtError(
                        "n_states is required for a flat delta over an empty alphabet"
                    )
                n_states = len(flat_delta) // nsym
        else:
            rows = [tuple(row) for row in delta]
            n_states = len(rows)
            flat_delta = array("i", (t for row in rows for t in row))
        if len(flat_delta) != n_states * nsym:
            raise KmtError(
                f"delta length {len(flat_delta)} does not match "
                f"{n_states} states x {nsym} symbols"
            )
        if isinstance(back, array):
            flat_back = back
        else:
            flat_back = array("i")
            for entry in back:
                if entry is None:
                    flat_back.extend((-1, -1))
                else:
                    flat_back.extend(entry)
        if len(flat_back) != 2 * n_states:
            raise KmtError(
                f"back length {len(flat_back)} does not match {n_states} states"
            )
        object.__setattr__(self, "sigma", sigma)
        object.__setattr__(self, "delta", flat_delta)
        object.__setattr__(self, "accepting", accepting)
        object.__setattr__(self, "back", flat_back)
        object.__setattr__(self, "n_states", n_states)
        object.__setattr__(self, "raw_states", raw_states)
        # Pin the alphabet as canonically interned for this automaton's
        # lifetime: the intern table's overflow eviction skips alphabets with
        # live users, preserving the sigma-identity equality fast path.
        note_sigma_use(sigma, self)

    def __setattr__(self, name, value):
        raise AttributeError(
            f"CompiledAutomaton is immutable (attempted to set {name!r}); "
            "instances are shared through the engine's aut cache"
        )

    def __delattr__(self, name):
        raise AttributeError(
            f"CompiledAutomaton is immutable (attempted to delete {name!r}); "
            "instances are shared through the engine's aut cache"
        )

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @property
    def state_count(self):
        return self.n_states

    @property
    def n_symbols(self):
        return len(self.sigma)

    @property
    def nbytes(self):
        """Heap bytes of the flat tables (delta + back + accepting bitset)."""
        return (
            self.delta.itemsize * len(self.delta)
            + self.back.itemsize * len(self.back)
            + (self.accepting.bit_length() + 7) // 8
        )

    def __len__(self):
        return self.n_states

    def is_accepting(self, state):
        return state != _DEAD and bool((self.accepting >> state) & 1)

    def symbol_index(self, pi):
        """Position of a primitive action in the canonical order (None if absent)."""
        return sigma_index(self.sigma).get(pi)

    def row(self, state):
        """The successor row of one state (a memoryview slice, no copy)."""
        nsym = len(self.sigma)
        return memoryview(self.delta)[state * nsym:(state + 1) * nsym]

    def step(self, state, pi):
        """One transition; symbols outside the alphabet go to the dead sink."""
        if state == _DEAD:
            return _DEAD
        k = sigma_index(self.sigma).get(pi)
        if k is None:
            return _DEAD
        return self.delta[state * len(self.sigma) + k]

    def __repr__(self):
        return (
            f"CompiledAutomaton(states={self.state_count}, "
            f"symbols={len(self.sigma)}, raw_states={self.raw_states}, "
            f"empty={self.is_empty()})"
        )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def is_empty(self):
        """True iff the language is empty.

        Every state is reachable by construction (BFS from the start state),
        so emptiness is just "no accepting bit set".
        """
        return self.accepting == 0

    def accepts(self, word):
        """Word membership: does the automaton accept this sequence of
        primitive actions?  Unknown symbols fall into the dead sink."""
        index = sigma_index(self.sigma)
        nsym = len(self.sigma)
        delta = self.delta
        state = self.initial
        for pi in word:
            k = index.get(pi)
            if k is None:
                return False
            state = delta[state * nsym + k]
        return bool((self.accepting >> state) & 1)

    def accepts_batch(self, words, cancel=None):
        """Batched membership over many words (see
        :func:`repro.core.kernels.accepts_batch`)."""
        from repro.core.kernels import accepts_batch

        return accepts_batch(self, words, cancel=cancel)

    def access_word(self, state):
        """A shortest word reaching ``state`` from the start state.

        Read off the BFS back-pointers; states are discovered in
        nondecreasing distance, so the recorded path is shortest.
        """
        word = []
        back = self.back
        while state != self.initial:
            k = back[2 * state + 1]
            state = back[2 * state]
            word.append(self.sigma[k])
        word.reverse()
        return tuple(word)

    def shortest_accepted_word(self):
        """A shortest accepted word, or ``None`` when the language is empty.

        States are numbered in BFS discovery order, so the lowest-numbered
        accepting state has minimal distance from the start.
        """
        accepting = self.accepting
        if accepting == 0:
            return None
        state = 0
        while not (accepting >> state) & 1:
            state += 1
        return self.access_word(state)


# ---------------------------------------------------------------------------
# compilation
# ---------------------------------------------------------------------------


def compile_automaton(action, cancel=None, minimize=True, pool=None):
    """Compile a restricted action into a :class:`CompiledAutomaton`.

    Runs one BFS over the action's Brzozowski derivatives (through the
    process-wide derivative memo, when installed), recording dense state ids,
    transition rows in canonical alphabet order, the accepting bitset and the
    discovery back-pointers — then minimizes with Hopcroft's algorithm and
    canonically trims dead symbols/sink (``minimize=False`` keeps the raw
    derivative automaton, for tests and the minimization benchmark).
    ``cancel`` is the usual cooperative-cancellation callable, invoked once
    per explored state.  ``pool`` is an optional
    :class:`repro.core.arena.ArenaPool` that adopts the finished automaton
    for memory accounting (the engine threads its per-session pool here).
    """
    if not T.is_restricted(action):
        raise KmtError("compile_automaton expects a restricted action")
    start = canonical(action)
    sigma = sorted_alphabet(start)
    state_ids = {start: 0}
    order = [start]
    delta = []
    back = [None]
    accepting = 0
    frontier = deque([start])
    while frontier:
        state = frontier.popleft()
        if cancel is not None:
            cancel()
        sid = state_ids[state]
        if nullable(state):
            accepting |= 1 << sid
        row = []
        for k, pi in enumerate(sigma):
            nxt = derivative(state, pi)
            nid = state_ids.get(nxt)
            if nid is None:
                nid = len(order)
                state_ids[nxt] = nid
                order.append(nxt)
                back.append((sid, k))
                frontier.append(nxt)
            row.append(nid)
        delta.append(row)
    raw_states = len(order)
    if not minimize:
        automaton = CompiledAutomaton(sigma, delta, accepting, back, raw_states)
    else:
        trace = current_trace()
        if trace is None:
            automaton = _minimized(sigma, delta, accepting, raw_states, cancel=cancel)
        else:
            with trace.span("minimize"):
                automaton = _minimized(
                    sigma, delta, accepting, raw_states, cancel=cancel
                )
    if pool is not None:
        pool.adopt(automaton)
    return automaton


def _minimized(sigma, delta, accepting, raw_states, cancel=None):
    """Quotient a (complete, fully reachable) DFA by Hopcroft's partition,
    then canonically trim dead symbols and (when unreachable) the dead sink.

    The trim makes the result a canonical value of the language: a symbol is
    *live* iff some quotient transition on it leaves the sink's equivalence
    class, which (in a minimal DFA, where every non-sink state is reachable
    and can reach an accepting state) holds exactly when the symbol occurs in
    some accepted word — a property of the language, not of the syntactic
    alphabet the normalizer happened to mention.  Dropping dead columns only
    removes transitions into the sink, so membership semantics are unchanged
    (unknown symbols already fall to the implicit dead sink).  After the
    trim, the final BFS renumbering restores the IR invariants (state 0
    initial, BFS discovery order over the trimmed canonical alphabet,
    shortest-access back-pointers) and skips the sink when no live transition
    reaches it — so equal languages yield byte-identical flat tables.
    """
    n = len(delta)
    nsym = len(sigma)
    block_of = _hopcroft(n, nsym, delta, accepting, cancel=cancel)
    rep_of_block = {}
    for state in range(n):
        rep_of_block.setdefault(block_of[state], state)
    # The (unique, if present) dead sink block: non-accepting, all self-loops.
    sink_block = None
    for block, rep in rep_of_block.items():
        if (accepting >> rep) & 1:
            continue
        if all(block_of[delta[rep][k]] == block for k in range(nsym)):
            sink_block = block
            break
    # Live symbols: some non-sink quotient state moves on them to a non-sink
    # quotient state.  (With no sink block every symbol is live.)
    if sink_block is None:
        live = list(range(nsym))
    else:
        live = [
            k
            for k in range(nsym)
            if any(
                block_of[delta[rep][k]] != sink_block
                for block, rep in rep_of_block.items()
                if block != sink_block
            )
        ]
    trimmed_sigma = tuple(sigma[k] for k in live)
    # Renumber the quotient automaton by a fresh BFS from the initial block
    # over the trimmed alphabet.  Representatives suffice: states in one
    # block agree on acceptance and on the blocks their successors fall in.
    start_block = block_of[0]
    new_id = {start_block: 0}
    order = [start_block]
    new_delta = array("i")
    new_back = array("i", (-1, -1))
    new_accepting = 0
    queue = deque([start_block])
    while queue:
        block = queue.popleft()
        rep = rep_of_block[block]
        sid = new_id[block]
        if (accepting >> rep) & 1:
            new_accepting |= 1 << sid
        for j, k in enumerate(live):
            succ_block = block_of[delta[rep][k]]
            nid = new_id.get(succ_block)
            if nid is None:
                nid = len(order)
                new_id[succ_block] = nid
                order.append(succ_block)
                new_back.extend((sid, j))
                queue.append(succ_block)
            new_delta.append(nid)
    return CompiledAutomaton(
        trimmed_sigma, new_delta, new_accepting, new_back, raw_states,
        n_states=len(order),
    )


def _hopcroft(n, nsym, delta, accepting, cancel=None):
    """Hopcroft's DFA minimization; returns a block id per state.

    Worklist refinement over the accepting/non-accepting seed partition: pop
    a splitter block, collect the predecessors of its members per symbol, and
    split exactly the blocks those predecessors touch (never scanning the
    rest of the partition).  When a split block was not pending, only the
    smaller half is enqueued — the classic O(n·s·log n) recipe.  Splitting by
    a popped block's *current* members stays sound because any refinement of
    a pending block enqueues the carved-off half too, so the original set's
    full splitting power is always still pending.  ``cancel`` is checked once
    per popped splitter (minimization can dominate compile time on large
    automata, and a deadline must be able to interrupt it).
    """
    if n <= 1:
        return [0] * n
    acc = {s for s in range(n) if (accepting >> s) & 1}
    rest = set(range(n)) - acc
    if not acc or not rest:
        return [0] * n
    preds = [{} for _ in range(nsym)]  # symbol -> {target -> [sources]}
    for source, row in enumerate(delta):
        for k, target in enumerate(row):
            preds[k].setdefault(target, []).append(source)
    blocks = {0: acc, 1: rest}  # block id -> set of states
    block_of = [0 if (accepting >> s) & 1 else 1 for s in range(n)]
    next_id = 2
    worklist = {0 if len(acc) <= len(rest) else 1}
    while worklist:
        if cancel is not None:
            cancel()
        splitter_id = worklist.pop()
        splitter = list(blocks[splitter_id])
        for k in range(nsym):
            into = preds[k]
            x = []
            for target in splitter:
                x.extend(into.get(target, ()))
            # Group the predecessors by the block they currently sit in; only
            # those blocks can split.
            touched = {}
            for state in x:
                touched.setdefault(block_of[state], set()).add(state)
            for old_id, movers in touched.items():
                old_block = blocks[old_id]
                if len(movers) == len(old_block):
                    continue  # the whole block steps into the splitter
                new_id = next_id
                next_id += 1
                # In place, not a copy: carving a few states out of a big
                # block must cost O(|movers|), or chain-shaped automata (one
                # state carved per round) degrade to quadratic.
                old_block.difference_update(movers)
                blocks[new_id] = movers
                for state in movers:
                    block_of[state] = new_id
                if old_id in worklist:
                    worklist.add(new_id)
                else:
                    worklist.add(new_id if len(movers) <= len(blocks[old_id]) else old_id)
    # Relabel block ids contiguously in first-seen state order (the caller
    # renumbers by BFS anyway; this just keeps the mapping dense).
    remap = {}
    return [remap.setdefault(block_of[state], len(remap)) for state in range(n)]


# ---------------------------------------------------------------------------
# product walks (the legacy kernel — pair-at-a-time FIFO BFS)
# ---------------------------------------------------------------------------


def _merged_sigma(a, b):
    """The two automata's alphabets merged in canonical order, plus the
    per-automaton symbol-index maps (``_DEAD`` marks an absent symbol)."""
    index_a = sigma_index(a.sigma)
    index_b = sigma_index(b.sigma)
    if a.sigma == b.sigma:
        merged = a.sigma
    else:
        merged = tuple(sorted(set(a.sigma) | set(b.sigma), key=repr))
    map_a = tuple(index_a.get(pi, _DEAD) for pi in merged)
    map_b = tuple(index_b.get(pi, _DEAD) for pi in merged)
    return merged, map_a, map_b


def _product_search(a, b, mismatch, cancel=None):
    """BFS over the product automaton for the first ``mismatch`` pair.

    ``mismatch(acc_a, acc_b)`` decides whether a product state is a witness;
    the returned word is shortest because the walk is breadth-first.  Returns
    ``(True, None)`` when no reachable pair mismatches, else ``(False,
    word)``.
    """
    trace = current_trace()
    if trace is not None:
        with trace.span("product_walk"):
            return _product_search_untraced(a, b, mismatch, cancel)
    return _product_search_untraced(a, b, mismatch, cancel)


def _product_search_untraced(a, b, mismatch, cancel):
    merged, map_a, map_b = _merged_sigma(a, b)
    nsa = len(a.sigma)
    nsb = len(b.sigma)
    da = a.delta
    db = b.delta
    start = (a.initial, b.initial)
    seen = {start}
    queue = deque([((), a.initial, b.initial)])
    while queue:
        word, p, q = queue.popleft()
        if cancel is not None:
            cancel()
        if mismatch(a.is_accepting(p), b.is_accepting(q)):
            return False, word
        for k, pi in enumerate(merged):
            ka, kb = map_a[k], map_b[k]
            dp = _DEAD if (p == _DEAD or ka == _DEAD) else da[p * nsa + ka]
            dq = _DEAD if (q == _DEAD or kb == _DEAD) else db[q * nsb + kb]
            if dp == _DEAD and dq == _DEAD:
                continue  # joint dead sink: nothing past here can mismatch
            if (dp, dq) not in seen:
                seen.add((dp, dq))
                queue.append((word + (pi,), dp, dq))
    return True, None


def compiled_compare(a, b, cancel=None):
    """Decide ``L(a) == L(b)``; returns ``(equivalent, word)``.

    The word, when present, is a *shortest* distinguishing word (accepted by
    exactly one side) — the compiled analogue of
    :func:`repro.core.automata.language_compare`, which only promises *a*
    distinguishing word.  No state bound is needed: both automata are finite
    and the product has at most ``|a| * |b|`` live pairs.

    This is the legacy walk; the default decision path uses the batched flat
    kernel (:func:`repro.core.kernels.flat_compare`), which must produce
    byte-identical verdicts and witnesses.
    """
    if a is b:
        return True, None  # cached automata are shared objects; reflexivity
    return _product_search(a, b, lambda pa, qb: pa != qb, cancel=cancel)


def compiled_includes(a, b, cancel=None):
    """Decide ``L(a) <= L(b)``; returns ``(included, word)``.

    Containment via product emptiness: ``L(a) ⊆ L(b)`` iff no reachable
    product pair accepts on the left while rejecting on the right.  The
    witness, when present, is a shortest word in ``L(a) \\ L(b)``.

    Legacy walk; flat analogue: :func:`repro.core.kernels.flat_includes`.
    """
    return _product_search(a, b, lambda pa, qb: pa and not qb, cancel=cancel)
