"""Compiled symbolic automata over restricted actions.

The decision procedure's hot loop compares restricted-action sums as regular
languages.  The implicit-automaton route (:mod:`repro.core.automata`) walks
Brzozowski derivatives of *terms* pairwise — every comparison re-derives the
same states, and nothing of the finished state graph survives the call.  This
module instead *compiles* a restricted action once into an explicit
:class:`CompiledAutomaton`:

* **dense int states** — derivative states are numbered 0..n-1 in BFS
  discovery order (state 0 is the start state);
* **transition arrays** — ``delta[s][k]`` is the successor of state ``s``
  under the ``k``-th symbol of the **canonical alphabet order**
  (:func:`repro.core.automata.sorted_alphabet`), so a product walk is two
  tuple indexings instead of two derivative computations;
* **accepting bitset** — an int bitmask, ``accepting >> s & 1``;
* **back-pointers** — each non-initial state records ``(predecessor,
  symbol_index)`` from its BFS discovery, so a shortest access word for any
  state (hence shortest witness words) is read off by walking pointers back
  to the start state.

Compilation finishes with **Hopcroft's partition-refinement minimization**,
so the cached artifact is the canonical minimal DFA of the action's language:
as small as the language allows, independent of the syntactic shape the
normalizer happened to produce.

On top of the IR, three query operations:

* :func:`compiled_compare` — language equivalence with a *shortest*
  distinguishing word (BFS product walk, no state bound needed: the automata
  are finite by construction);
* :func:`compiled_includes` — language containment ``L(a) ⊆ L(b)`` via
  product emptiness, with a shortest word in ``L(a) \\ L(b)`` as witness;
* :meth:`CompiledAutomaton.accepts` — word membership in O(|word|) table
  lookups.

Automata compiled from different actions may have different alphabets; the
product walks reconcile them with an implicit non-accepting *dead* sink: a
symbol outside an automaton's alphabet derives every state of that automaton
to the empty language (the Brzozowski derivative of a term not mentioning the
symbol is ``0``), which is exactly the sink's behaviour.

The engine layer caches compiled automata in a per-session ``aut`` LRU
(:class:`repro.engine.cache.EngineCaches`), keyed by the action's stable
fingerprint — a warm session that has seen a restricted-action sum in any
earlier query or signature reuses the minimized automaton instead of
re-deriving it.
"""

from __future__ import annotations

from collections import deque

from repro.core import terms as T
from repro.core.automata import (
    canonical,
    derivative,
    nullable,
    sorted_alphabet,
)
from repro.utils.errors import KmtError
from repro.utils.trace import current_trace

#: Sink pseudo-state used by the product walks for symbols missing from one
#: automaton's alphabet: non-accepting, and every transition loops on it.
_DEAD = -1


class CompiledAutomaton:
    """An explicit, minimized DFA for one restricted action's language.

    Instances are immutable value objects: they are shared through the
    engine's ``aut`` cache across queries (and threads), so nothing may
    mutate them after construction.
    """

    __slots__ = ("sigma", "delta", "accepting", "back", "raw_states", "_index")

    #: The start state (states are renumbered so it is always 0).
    initial = 0

    def __init__(self, sigma, delta, accepting, back, raw_states):
        object.__setattr__(self, "sigma", tuple(sigma))
        object.__setattr__(self, "delta", tuple(tuple(row) for row in delta))
        object.__setattr__(self, "accepting", accepting)
        object.__setattr__(self, "back", tuple(back))
        object.__setattr__(self, "raw_states", raw_states)
        object.__setattr__(
            self, "_index", {pi: k for k, pi in enumerate(self.sigma)}
        )

    def __setattr__(self, name, value):
        raise AttributeError(
            f"CompiledAutomaton is immutable (attempted to set {name!r}); "
            "instances are shared through the engine's aut cache"
        )

    def __delattr__(self, name):
        self.__setattr__(name, None)

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @property
    def state_count(self):
        return len(self.delta)

    def __len__(self):
        return len(self.delta)

    def is_accepting(self, state):
        return state != _DEAD and bool((self.accepting >> state) & 1)

    def symbol_index(self, pi):
        """Position of a primitive action in the canonical order (None if absent)."""
        return self._index.get(pi)

    def step(self, state, pi):
        """One transition; symbols outside the alphabet go to the dead sink."""
        if state == _DEAD:
            return _DEAD
        k = self._index.get(pi)
        if k is None:
            return _DEAD
        return self.delta[state][k]

    def __repr__(self):
        return (
            f"CompiledAutomaton(states={self.state_count}, "
            f"symbols={len(self.sigma)}, raw_states={self.raw_states}, "
            f"empty={self.is_empty()})"
        )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def is_empty(self):
        """True iff the language is empty.

        Every state is reachable by construction (BFS from the start state),
        so emptiness is just "no accepting bit set".
        """
        return self.accepting == 0

    def accepts(self, word):
        """Word membership: does the automaton accept this sequence of
        primitive actions?  Unknown symbols fall into the dead sink."""
        state = self.initial
        for pi in word:
            state = self.step(state, pi)
            if state == _DEAD:
                return False
        return self.is_accepting(state)

    def access_word(self, state):
        """A shortest word reaching ``state`` from the start state.

        Read off the BFS back-pointers; states are discovered in
        nondecreasing distance, so the recorded path is shortest.
        """
        word = []
        while state != self.initial:
            state, k = self.back[state]
            word.append(self.sigma[k])
        word.reverse()
        return tuple(word)

    def shortest_accepted_word(self):
        """A shortest accepted word, or ``None`` when the language is empty.

        States are numbered in BFS discovery order, so the lowest-numbered
        accepting state has minimal distance from the start.
        """
        accepting = self.accepting
        if accepting == 0:
            return None
        state = 0
        while not (accepting >> state) & 1:
            state += 1
        return self.access_word(state)


# ---------------------------------------------------------------------------
# compilation
# ---------------------------------------------------------------------------


def compile_automaton(action, cancel=None, minimize=True):
    """Compile a restricted action into a :class:`CompiledAutomaton`.

    Runs one BFS over the action's Brzozowski derivatives (through the
    process-wide derivative memo, when installed), recording dense state ids,
    transition rows in canonical alphabet order, the accepting bitset and the
    discovery back-pointers — then minimizes with Hopcroft's algorithm
    (``minimize=False`` keeps the raw derivative automaton, for tests and the
    minimization benchmark).  ``cancel`` is the usual cooperative-cancellation
    callable, invoked once per explored state.
    """
    if not T.is_restricted(action):
        raise KmtError("compile_automaton expects a restricted action")
    start = canonical(action)
    sigma = sorted_alphabet(start)
    state_ids = {start: 0}
    order = [start]
    delta = []
    back = [None]
    accepting = 0
    frontier = deque([start])
    while frontier:
        state = frontier.popleft()
        if cancel is not None:
            cancel()
        sid = state_ids[state]
        if nullable(state):
            accepting |= 1 << sid
        row = []
        for k, pi in enumerate(sigma):
            nxt = derivative(state, pi)
            nid = state_ids.get(nxt)
            if nid is None:
                nid = len(order)
                state_ids[nxt] = nid
                order.append(nxt)
                back.append((sid, k))
                frontier.append(nxt)
            row.append(nid)
        delta.append(row)
    raw_states = len(order)
    if not minimize:
        return CompiledAutomaton(sigma, delta, accepting, back, raw_states)
    trace = current_trace()
    if trace is None:
        return _minimized(sigma, delta, accepting, raw_states, cancel=cancel)
    with trace.span("minimize"):
        return _minimized(sigma, delta, accepting, raw_states, cancel=cancel)


def _minimized(sigma, delta, accepting, raw_states, cancel=None):
    """Quotient a (complete, fully reachable) DFA by Hopcroft's partition."""
    n = len(delta)
    block_of = _hopcroft(n, len(sigma), delta, accepting, cancel=cancel)
    # Renumber the quotient automaton by a fresh BFS from the initial block,
    # restoring the IR invariants (state 0 initial, BFS discovery order,
    # shortest-access back-pointers).  Representatives suffice: states in one
    # block agree on acceptance and on the blocks their successors fall in.
    rep_of_block = {}
    for state in range(n):
        rep_of_block.setdefault(block_of[state], state)
    new_id = {block_of[0]: 0}
    new_delta = []
    new_back = [None]
    new_accepting = 0
    queue = deque([block_of[0]])
    order = [block_of[0]]
    while queue:
        block = queue.popleft()
        rep = rep_of_block[block]
        sid = new_id[block]
        if (accepting >> rep) & 1:
            new_accepting |= 1 << sid
        row = []
        for k in range(len(sigma)):
            succ_block = block_of[delta[rep][k]]
            nid = new_id.get(succ_block)
            if nid is None:
                nid = len(order)
                new_id[succ_block] = nid
                order.append(succ_block)
                new_back.append((sid, k))
                queue.append(succ_block)
            row.append(nid)
        new_delta.append(row)
    return CompiledAutomaton(sigma, new_delta, new_accepting, new_back, raw_states)


def _hopcroft(n, nsym, delta, accepting, cancel=None):
    """Hopcroft's DFA minimization; returns a block id per state.

    Worklist refinement over the accepting/non-accepting seed partition: pop
    a splitter block, collect the predecessors of its members per symbol, and
    split exactly the blocks those predecessors touch (never scanning the
    rest of the partition).  When a split block was not pending, only the
    smaller half is enqueued — the classic O(n·s·log n) recipe.  Splitting by
    a popped block's *current* members stays sound because any refinement of
    a pending block enqueues the carved-off half too, so the original set's
    full splitting power is always still pending.  ``cancel`` is checked once
    per popped splitter (minimization can dominate compile time on large
    automata, and a deadline must be able to interrupt it).
    """
    if n <= 1:
        return [0] * n
    acc = {s for s in range(n) if (accepting >> s) & 1}
    rest = set(range(n)) - acc
    if not acc or not rest:
        return [0] * n
    preds = [{} for _ in range(nsym)]  # symbol -> {target -> [sources]}
    for source, row in enumerate(delta):
        for k, target in enumerate(row):
            preds[k].setdefault(target, []).append(source)
    blocks = {0: acc, 1: rest}  # block id -> set of states
    block_of = [0 if (accepting >> s) & 1 else 1 for s in range(n)]
    next_id = 2
    worklist = {0 if len(acc) <= len(rest) else 1}
    while worklist:
        if cancel is not None:
            cancel()
        splitter_id = worklist.pop()
        splitter = list(blocks[splitter_id])
        for k in range(nsym):
            into = preds[k]
            x = []
            for target in splitter:
                x.extend(into.get(target, ()))
            # Group the predecessors by the block they currently sit in; only
            # those blocks can split.
            touched = {}
            for state in x:
                touched.setdefault(block_of[state], set()).add(state)
            for old_id, movers in touched.items():
                old_block = blocks[old_id]
                if len(movers) == len(old_block):
                    continue  # the whole block steps into the splitter
                new_id = next_id
                next_id += 1
                # In place, not a copy: carving a few states out of a big
                # block must cost O(|movers|), or chain-shaped automata (one
                # state carved per round) degrade to quadratic.
                old_block.difference_update(movers)
                blocks[new_id] = movers
                for state in movers:
                    block_of[state] = new_id
                if old_id in worklist:
                    worklist.add(new_id)
                else:
                    worklist.add(new_id if len(movers) <= len(blocks[old_id]) else old_id)
    # Relabel block ids contiguously in first-seen state order (the caller
    # renumbers by BFS anyway; this just keeps the mapping dense).
    remap = {}
    return [remap.setdefault(block_of[state], len(remap)) for state in range(n)]


# ---------------------------------------------------------------------------
# product walks
# ---------------------------------------------------------------------------


def _merged_sigma(a, b):
    """The two automata's alphabets merged in canonical order, plus the
    per-automaton symbol-index maps (``_DEAD`` marks an absent symbol)."""
    if a.sigma == b.sigma:
        merged = a.sigma
    else:
        merged = tuple(sorted(set(a.sigma) | set(b.sigma), key=repr))
    map_a = tuple(
        a._index[pi] if pi in a._index else _DEAD for pi in merged
    )
    map_b = tuple(
        b._index[pi] if pi in b._index else _DEAD for pi in merged
    )
    return merged, map_a, map_b


def _product_search(a, b, mismatch, cancel=None):
    """BFS over the product automaton for the first ``mismatch`` pair.

    ``mismatch(acc_a, acc_b)`` decides whether a product state is a witness;
    the returned word is shortest because the walk is breadth-first.  Returns
    ``(True, None)`` when no reachable pair mismatches, else ``(False,
    word)``.
    """
    trace = current_trace()
    if trace is not None:
        with trace.span("product_walk"):
            return _product_search_untraced(a, b, mismatch, cancel)
    return _product_search_untraced(a, b, mismatch, cancel)


def _product_search_untraced(a, b, mismatch, cancel):
    merged, map_a, map_b = _merged_sigma(a, b)
    start = (a.initial, b.initial)
    seen = {start}
    queue = deque([((), a.initial, b.initial)])
    while queue:
        word, p, q = queue.popleft()
        if cancel is not None:
            cancel()
        if mismatch(a.is_accepting(p), b.is_accepting(q)):
            return False, word
        for k, pi in enumerate(merged):
            ka, kb = map_a[k], map_b[k]
            dp = _DEAD if (p == _DEAD or ka == _DEAD) else a.delta[p][ka]
            dq = _DEAD if (q == _DEAD or kb == _DEAD) else b.delta[q][kb]
            if dp == _DEAD and dq == _DEAD:
                continue  # joint dead sink: nothing past here can mismatch
            if (dp, dq) not in seen:
                seen.add((dp, dq))
                queue.append((word + (pi,), dp, dq))
    return True, None


def compiled_compare(a, b, cancel=None):
    """Decide ``L(a) == L(b)``; returns ``(equivalent, word)``.

    The word, when present, is a *shortest* distinguishing word (accepted by
    exactly one side) — the compiled analogue of
    :func:`repro.core.automata.language_compare`, which only promises *a*
    distinguishing word.  No state bound is needed: both automata are finite
    and the product has at most ``|a| * |b|`` live pairs.
    """
    if a is b:
        return True, None  # cached automata are shared objects; reflexivity
    return _product_search(a, b, lambda pa, qb: pa != qb, cancel=cancel)


def compiled_includes(a, b, cancel=None):
    """Decide ``L(a) <= L(b)``; returns ``(included, word)``.

    Containment via product emptiness: ``L(a) ⊆ L(b)`` iff no reachable
    product pair accepts on the left while rejecting on the right.  The
    witness, when present, is a shortest word in ``L(a) \\ L(b)``.
    """
    return _product_search(a, b, lambda pa, qb: pa and not qb, cancel=cancel)
