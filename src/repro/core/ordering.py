"""The maximal-subterm ordering on tests and normal forms (paper Fig. 6).

Normalization pushes tests to the front of a term; its termination measure is
the *maximal subterm ordering*: ``x <= y`` iff ``sub(mt(x))`` is a subset of
``sub(mt(y))`` where ``mt`` collects the maximal tests of a term and ``sub``
closes under (theory-provided) subterms.

We use Lemma B.12 (``sub(mt(A)) = union of sub(a) for a in seqs(A)``) to
compute ordering keys directly from ``seqs`` without first computing ``mt``;
``mt`` itself is still needed to pick which test to push back next (splitting,
Lemma 3.2).

Because ``sub`` can be moderately expensive for theories with large subterm
sets (IncNat's ``x > n`` has ``n+1`` subterms) the computations are memoized
per :class:`OrderingContext`; the pushback engine allocates one context per
normalization run.
"""

from __future__ import annotations

from repro.core import terms as T


class OrderingContext:
    """Memoized subterm/ordering computations for a fixed client theory."""

    def __init__(self, theory):
        self.theory = theory
        self._sub_cache = {}
        self._seqs_cache = {}

    # ------------------------------------------------------------------
    # seqs: split a test into its top-level conjuncts
    # ------------------------------------------------------------------
    def seqs(self, pred):
        """The set of sequenced factors of a test (Fig. 6 ``seqs``)."""
        cached = self._seqs_cache.get(pred)
        if cached is not None:
            return cached
        if isinstance(pred, T.PAnd):
            result = frozenset(self.seqs(pred.left) | self.seqs(pred.right))
        else:
            result = frozenset({pred})
        self._seqs_cache[pred] = result
        return result

    def seqs_of_set(self, preds):
        out = set()
        for p in preds:
            out |= self.seqs(p)
        return frozenset(out)

    # ------------------------------------------------------------------
    # sub: subterm closure
    # ------------------------------------------------------------------
    def sub(self, pred):
        """The subterm closure of a test (Fig. 6 ``sub``)."""
        cached = self._sub_cache.get(pred)
        if cached is not None:
            return cached
        zero = T.pzero()
        one = T.pone()
        if isinstance(pred, T.PZero):
            result = frozenset({zero})
        elif isinstance(pred, T.POne):
            result = frozenset({zero, one})
        elif isinstance(pred, T.PPrim):
            # The theory lists the predicates its pushback may produce from
            # this primitive; close over *their* subterms too (they may be
            # compound, e.g. the Set theory returns encoded equality tests).
            closure = set()
            for extra in self.theory.subterms(pred.alpha):
                closure |= self.sub(extra)
            result = frozenset({zero, one, pred}) | frozenset(closure)
        elif isinstance(pred, T.PNot):
            inner = self.sub(pred.arg)
            result = frozenset({zero, one}) | inner | frozenset(T.pnot(b) for b in inner)
        elif isinstance(pred, T.POr):
            result = frozenset({pred}) | self.sub(pred.left) | self.sub(pred.right)
        elif isinstance(pred, T.PAnd):
            result = frozenset({pred}) | self.sub(pred.left) | self.sub(pred.right)
        else:
            raise TypeError(f"not a Pred: {pred!r}")
        self._sub_cache[pred] = result
        return result

    def sub_of_set(self, preds):
        out = set()
        for p in preds:
            out |= self.sub(p)
        return frozenset(out)

    # ------------------------------------------------------------------
    # mt: maximal tests
    # ------------------------------------------------------------------
    def mt(self, preds):
        """The maximal tests of a set of tests (Fig. 6 ``mt``).

        ``b`` is maximal iff it is not a subterm of any *other* factor.
        """
        factors = self.seqs_of_set(preds)
        maximal = set()
        for b in factors:
            dominated = False
            for c in factors:
                if c is b or c == b:
                    continue
                if b in self.sub(c):
                    dominated = True
                    break
            if not dominated:
                maximal.add(b)
        return frozenset(maximal)

    def mt_of_pred(self, pred):
        return self.mt({pred})

    # ------------------------------------------------------------------
    # the ordering itself
    # ------------------------------------------------------------------
    def key(self, preds):
        """The ordering key ``sub(mt(preds))`` computed via Lemma B.12."""
        out = set()
        for factor in self.seqs_of_set(preds):
            out |= self.sub(factor)
        return frozenset(out)

    def key_of_pred(self, pred):
        return self.key({pred})

    def leq(self, xs, ys):
        """``xs`` is no larger than ``ys`` in the maximal-subterm ordering."""
        return self.key(xs) <= self.key(ys)

    def lt(self, xs, ys):
        """``xs`` is strictly smaller than ``ys``."""
        kx = self.key(xs)
        ky = self.key(ys)
        return kx < ky

    def pred_leq(self, a, b):
        return self.leq({a}, {b})

    def pred_lt(self, a, b):
        return self.lt({a}, {b})

    # ------------------------------------------------------------------
    # deterministic choice among maximal tests
    # ------------------------------------------------------------------
    def pick_maximal(self, preds):
        """Pick one maximal test deterministically (largest sort key first).

        Any maximal test keeps normalization terminating (Theorem 3.5); the
        paper notes different choices may produce smaller or larger terms.  We
        pick the syntactically largest so theory-specific "big" tests (e.g.
        temporal operators) are eliminated early, which matches the OCaml
        implementation's behaviour on the worked examples.
        """
        candidates = self.mt(preds)
        if not candidates:
            return None
        return max(candidates, key=lambda p: p.sort_key())
