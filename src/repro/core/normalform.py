"""Normal forms Σ aᵢ·mᵢ (paper Section 3.3.1).

A normal form is a *set* of pairs ``(test, restricted action)``; the term it
denotes is the sum of ``test ; action`` over the pairs.  Restricted actions
contain no tests other than ``0``/``1`` (checked on construction), so their
denotations are regular languages over the primitive-action alphabet — this is
what lets the completeness proof (and our decision procedure) defer to Kleene
algebra once the tests at the front have been handled.

The module also implements *splitting* (Lemma 3.2): given a maximal test ``a``
of a normal form ``x``, rewrite ``x ≡ a·y + z`` with both ``y`` and ``z``
strictly smaller in the maximal-subterm ordering.
"""

from __future__ import annotations

from repro.core import terms as T
from repro.utils.errors import KmtError


def canonicalize_test(pred):
    """Put a guard into a canonical conjunction shape.

    Guards accumulate as nested conjunctions while pushback prefixes tests
    onto normal forms (``prefix_test``); without canonicalization the same
    conjunction shows up in many association orders and with repeated
    factors, which multiplies the number of syntactically distinct summands.
    Flattening, deduplicating and sorting the top-level factors (and dropping
    summands with complementary factors) keeps normal forms small — this is
    part of the "smart constructor" optimization of Section 4.1.  Only the
    top-level conjunction is touched; the factors themselves are left alone so
    the maximal-subterm machinery sees the same factor set.
    """
    if not isinstance(pred, T.PAnd):
        return pred
    factors = []
    stack = [pred]
    while stack:
        node = stack.pop()
        if isinstance(node, T.PAnd):
            stack.append(node.left)
            stack.append(node.right)
        else:
            factors.append(node)
    unique = set()
    for factor in factors:
        if isinstance(factor, T.POne):
            continue
        if isinstance(factor, T.PZero):
            return T.pzero()
        unique.add(factor)
    for factor in unique:
        if isinstance(factor, T.PNot) and factor.arg in unique:
            return T.pzero()
    ordered = sorted(unique, key=lambda p: p.sort_key())
    return T.pand_all(ordered)


class NormalForm:
    """An immutable normal form: a set of ``(test, restricted-action)`` pairs."""

    # ``_fp`` caches the engine layer's fingerprint key (see
    # :func:`repro.engine.intern.fingerprint_normal_form`); unused by the core.
    __slots__ = ("pairs", "_hash", "_fp")

    def __init__(self, pairs, validate=True):
        cleaned = set()
        for test, action in pairs:
            if not isinstance(test, T.Pred):
                raise TypeError(f"normal-form test must be a Pred, got {test!r}")
            if not isinstance(action, T.Term):
                raise TypeError(f"normal-form action must be a Term, got {action!r}")
            if validate and not T.is_restricted(action):
                raise KmtError(f"normal-form action is not restricted: {action!r}")
            test = canonicalize_test(test)
            if isinstance(test, T.PZero):
                # 0;m == 0 contributes nothing to the sum.
                continue
            cleaned.add((test, action))
        self.pairs = frozenset(cleaned)
        self._hash = None

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def zero(cls):
        """The vacuous normal form (the empty sum, i.e. ``0``)."""
        return cls(frozenset())

    @classmethod
    def one(cls):
        """The normal form of ``1``."""
        return cls({(T.pone(), T.tone())})

    @classmethod
    def of_test(cls, pred):
        """The normal form ``pred ; 1``."""
        return cls({(pred, T.tone())})

    @classmethod
    def of_action(cls, action):
        """The normal form ``1 ; action`` for a restricted action."""
        return cls({(T.pone(), action)})

    @classmethod
    def of_pairs(cls, pairs):
        return cls(pairs)

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def __iter__(self):
        return iter(self.pairs)

    def __len__(self):
        return len(self.pairs)

    def __eq__(self, other):
        if not isinstance(other, NormalForm):
            return NotImplemented
        return self.pairs == other.pairs

    def __hash__(self):
        if self._hash is None:
            self._hash = hash(self.pairs)
        return self._hash

    def __repr__(self):
        if not self.pairs:
            return "NormalForm(0)"
        parts = sorted(f"{t.pretty()};{m.pretty()}" for t, m in self.pairs)
        return "NormalForm(" + " + ".join(parts) + ")"

    def is_vacuous(self):
        """True iff this normal form denotes ``0`` (empty sum / all tests 0)."""
        return not self.pairs

    def tests(self):
        """The set of tests occurring in this normal form, plus ``1`` (Fig. 6)."""
        out = {T.pone()}
        for test, _ in self.pairs:
            out.add(test)
        return frozenset(out)

    def actions(self):
        return frozenset(action for _, action in self.pairs)

    def sorted_pairs(self):
        """Pairs in a deterministic order (for display and iteration)."""
        return sorted(self.pairs, key=lambda tm: (tm[0].sort_key(), tm[1].sort_key()))

    # ------------------------------------------------------------------
    # algebra
    # ------------------------------------------------------------------
    def union(self, other):
        """Parallel composition of normal forms (just joining the sums)."""
        return NormalForm(self.pairs | other.pairs, validate=False)

    def prefix_test(self, pred):
        """The normal form ``pred · self`` (conjoin ``pred`` onto every test)."""
        return NormalForm(
            {(T.pand(pred, test), action) for test, action in self.pairs},
            validate=False,
        )

    def seq_action(self, action):
        """The normal form ``self · action`` for a restricted action ``action``."""
        if not T.is_restricted(action):
            raise KmtError(f"seq_action expects a restricted action, got {action!r}")
        return NormalForm(
            {(test, T.tseq(m, action)) for test, m in self.pairs},
            validate=False,
        )

    def to_term(self):
        """Convert back to an ordinary KAT term (the sum of its pairs)."""
        return T.tplus_all(
            T.tseq(T.ttest(test), action) for test, action in self.sorted_pairs()
        )

    # ------------------------------------------------------------------
    # ordering / splitting
    # ------------------------------------------------------------------
    def ordering_key(self, ctx):
        """``sub(mt(self))`` — the maximal-subterm ordering key (Fig. 6)."""
        return ctx.key(self.tests())

    def maximal_tests(self, ctx):
        return ctx.mt(self.tests())

    def split(self, pred, ctx):
        """Split this normal form around a maximal test (Lemma 3.2).

        Returns ``(y, z)`` such that ``self ≡ pred·y + z``, where the summands
        of ``y`` come from the pairs whose test contains ``pred`` as a factor
        (with that factor removed) and ``z`` collects the remaining pairs.
        """
        with_pred = set()
        without_pred = set()
        for test, action in self.pairs:
            factors = ctx.seqs(test)
            if pred in factors:
                remaining = [f for f in factors if f != pred]
                remaining.sort(key=lambda p: p.sort_key())
                reduced = T.pand_all(remaining)
                with_pred.add((reduced, action))
            else:
                without_pred.add((test, action))
        return (
            NormalForm(with_pred, validate=False),
            NormalForm(without_pred, validate=False),
        )
