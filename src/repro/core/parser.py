"""Extensible concrete-syntax parser for KMT terms (paper Section 4).

The core grammar knows only the regular/Boolean structure::

    expr   ::= seq ('+' seq)*
    seq    ::= star (';' star)*
    star   ::= atom '*'*
    atom   ::= '(' expr ')'
             | 'true' | 'false' | 'skip' | 'drop' | '1' | '0'
             | ('~' | '!' | 'not') atom
             | 'if' '(' expr ')' 'then' seq 'else' seq
             | 'while' '(' expr ')' 'do' seq ('end')?
             | <theory keyword form>        e.g. last(...), since(a, b)
             | <theory phrase>              e.g. x > 3, inc(x), a := T, f <- v

Everything domain specific is delegated to the client theory:

* ``theory.parser_keywords()`` maps keywords to callbacks that receive the
  parser and build a predicate (used by LTLf's ``last``/``since``/...);
* ``theory.parse_phrase(tokens)`` receives the raw tokens of a primitive
  phrase (a maximal run of non-structural tokens, with balanced parentheses
  and brackets kept inside) and returns one of ``("test", alpha)``,
  ``("action", pi)``, ``("pred", Pred)`` or ``("term", Term)``.
"""

from __future__ import annotations

import re

from repro.core import terms as T
from repro.utils.errors import ParseError

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<num>\d+)
  | (?P<word>[A-Za-z_][A-Za-z_0-9']*)
  | (?P<sym>:=|<-|<=|>=|!=|==|\+=|\*=|=|<|>|\(|\)|\[|\]|\{|\}|,|;|\+|\*|~|!|\.)
    """,
    re.VERBOSE,
)

#: Words with structural meaning; theory phrases must not contain them.
RESERVED_WORDS = frozenset(
    {"if", "then", "else", "while", "do", "end", "not", "true", "false", "skip", "drop", "abort"}
)

#: Symbols that terminate a theory phrase (at bracket depth zero).
_PHRASE_BOUNDARY_SYMS = frozenset({";", "+", "*", ")", ","})

#: What the grammar allows at the start of an ``atom`` (see the module
#: docstring and docs/GRAMMAR.md); rendered into "expected one of …"
#: diagnostics when no production matches.
ATOM_EXPECTED = (
    "'('", "'~'", "'not'", "'true'", "'false'", "'skip'", "'drop'",
    "'if'", "'while'", "a theory phrase",
)


def _found(token):
    """Render a token for a diagnostic (``end`` reads as end of input)."""
    return "end of input" if token.kind == "end" else repr(token.value)


class Token:
    __slots__ = ("kind", "value", "pos")

    def __init__(self, kind, value, pos):
        self.kind = kind
        self.value = value
        self.pos = pos

    def __repr__(self):
        return f"Token({self.kind}, {self.value!r})"

    def __eq__(self, other):
        if isinstance(other, Token):
            return self.kind == other.kind and self.value == other.value
        return NotImplemented

    def __hash__(self):
        return hash((self.kind, self.value))


def tokenize(text):
    """Tokenize the concrete syntax; raises :class:`ParseError` on junk."""
    tokens = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ParseError(f"unexpected character {text[pos]!r}", pos, text)
        pos = match.end()
        if match.lastgroup == "ws":
            continue
        kind = match.lastgroup
        value = match.group()
        tokens.append(Token(kind, value, match.start()))
    tokens.append(Token("end", "", len(text)))
    return tokens


class Parser:
    """Recursive-descent parser parameterized by a client theory."""

    def __init__(self, theory, text):
        self.theory = theory
        self.text = text
        self.tokens = tokenize(text)
        self.index = 0
        self.keywords = dict(theory.parser_keywords())

    # ------------------------------------------------------------------
    # token plumbing
    # ------------------------------------------------------------------
    def peek(self):
        return self.tokens[self.index]

    def advance(self):
        token = self.tokens[self.index]
        self.index += 1
        return token

    def expect_sym(self, sym):
        token = self.peek()
        if token.kind == "sym" and token.value == sym:
            return self.advance()
        raise ParseError(f"found {_found(token)}", token.pos, self.text,
                         expected=(repr(sym),))

    def expect_word(self, word):
        token = self.peek()
        if token.kind == "word" and token.value == word:
            return self.advance()
        raise ParseError(f"found {_found(token)}", token.pos, self.text,
                         expected=(repr(word),))

    def at_sym(self, sym):
        token = self.peek()
        return token.kind == "sym" and token.value == sym

    def at_word(self, word):
        token = self.peek()
        return token.kind == "word" and token.value == word

    def at_end(self):
        return self.peek().kind == "end"

    # ------------------------------------------------------------------
    # entry points
    # ------------------------------------------------------------------
    def parse_term(self):
        term = self.parse_expr()
        if not self.at_end():
            token = self.peek()
            raise ParseError(
                f"trailing input starting at {_found(token)}", token.pos, self.text,
                expected=("';'", "'+'", "'*'", "end of input"))
        return term

    def parse_pred(self):
        term = self.parse_term()
        pred = T.pred_of_term(term)
        if pred is None:
            raise ParseError(f"expected a predicate but parsed an action: {term.pretty()}")
        return pred

    # ------------------------------------------------------------------
    # grammar
    # ------------------------------------------------------------------
    def parse_expr(self):
        term = self.parse_seq()
        while self.at_sym("+"):
            self.advance()
            term = T.tplus(term, self.parse_seq())
        return term

    def parse_seq(self):
        term = self.parse_star()
        while self.at_sym(";"):
            self.advance()
            term = T.tseq(term, self.parse_star())
        return term

    def parse_star(self):
        term = self.parse_atom()
        while self.at_sym("*"):
            self.advance()
            term = T.tstar(term)
        return term

    def parse_atom(self):
        token = self.peek()
        if token.kind == "sym" and token.value == "(":
            self.advance()
            inner = self.parse_expr()
            self.expect_sym(")")
            return inner
        if token.kind == "sym" and token.value in ("~", "!"):
            self.advance()
            return self._negate(self.parse_atom())
        if token.kind == "word" and token.value == "not":
            self.advance()
            return self._negate(self.parse_atom())
        if token.kind == "num" and token.value in ("0", "1") and self._standalone_number():
            self.advance()
            return T.tone() if token.value == "1" else T.tzero()
        if token.kind == "word":
            word = token.value
            if word in ("true", "skip"):
                self.advance()
                return T.tone()
            if word in ("false", "drop", "abort"):
                self.advance()
                return T.tzero()
            if word == "if":
                return self._parse_if()
            if word == "while":
                return self._parse_while()
            if word in self.keywords:
                self.advance()
                pred = self.keywords[word](self)
                return T.ttest(pred)
        return self._parse_phrase()

    def _standalone_number(self):
        """True iff the upcoming number is not the start of a theory phrase."""
        nxt = self.tokens[self.index + 1]
        if nxt.kind in ("end",):
            return True
        if nxt.kind == "sym" and nxt.value in _PHRASE_BOUNDARY_SYMS:
            return True
        if nxt.kind == "sym" and nxt.value == "+":
            return True
        return False

    def _negate(self, term):
        pred = T.pred_of_term(term)
        if pred is None:
            raise ParseError(f"negation applies to tests only, got action {term.pretty()}")
        return T.ttest(T.pnot(pred))

    def _parse_if(self):
        self.expect_word("if")
        self.expect_sym("(")
        cond_term = self.parse_expr()
        self.expect_sym(")")
        cond = T.pred_of_term(cond_term)
        if cond is None:
            raise ParseError("the condition of an 'if' must be a test")
        self.expect_word("then")
        then_branch = self.parse_seq()
        self.expect_word("else")
        else_branch = self.parse_seq()
        return T.tplus(
            T.tseq(T.ttest(cond), then_branch),
            T.tseq(T.ttest(T.pnot(cond)), else_branch),
        )

    def _parse_while(self):
        self.expect_word("while")
        self.expect_sym("(")
        cond_term = self.parse_expr()
        self.expect_sym(")")
        cond = T.pred_of_term(cond_term)
        if cond is None:
            raise ParseError("the condition of a 'while' must be a test")
        self.expect_word("do")
        body = self.parse_seq()
        if self.at_word("end"):
            self.advance()
        return T.tseq(T.tstar(T.tseq(T.ttest(cond), body)), T.ttest(T.pnot(cond)))

    # ------------------------------------------------------------------
    # theory phrases
    # ------------------------------------------------------------------
    def _parse_phrase(self):
        start = self.peek()
        if start.kind == "end":
            raise ParseError("unexpected end of input", start.pos, self.text,
                             expected=ATOM_EXPECTED)
        depth = 0
        phrase = []
        while True:
            token = self.peek()
            if token.kind == "end":
                break
            if token.kind == "word" and token.value in RESERVED_WORDS and depth == 0:
                break
            if token.kind == "sym":
                if token.value in ("(", "["):
                    depth += 1
                elif token.value in (")", "]"):
                    if depth == 0:
                        break
                    depth -= 1
                elif depth == 0 and token.value in _PHRASE_BOUNDARY_SYMS:
                    break
                elif depth == 0 and token.value == "~":
                    break
            phrase.append(self.advance())
        if not phrase:
            raise ParseError(
                f"found {_found(start)}", start.pos, self.text, expected=ATOM_EXPECTED
            )
        try:
            kind, value = self.theory.parse_phrase(phrase)
        except ParseError as error:
            if error.position is not None:
                raise
            # Theories report *what* they could not parse but not where; the
            # phrase's first token anchors the diagnostic in the source.
            raise ParseError(error.bare_message, start.pos, self.text,
                             expected=error.expected) from None
        if kind == "test":
            return T.ttest(T.pprim(value))
        if kind == "action":
            return T.tprim(value)
        if kind == "pred":
            return T.ttest(value)
        if kind == "term":
            return value
        raise ParseError(
            f"theory {self.theory.name!r} returned unknown phrase kind {kind!r}"
        )


# ---------------------------------------------------------------------------
# helpers for theories implementing parse_phrase
# ---------------------------------------------------------------------------


def phrase_text(tokens):
    """Reassemble a phrase's tokens into a display string (for errors)."""
    return " ".join(t.value for t in tokens)


def match_phrase(tokens, *pattern):
    """Match a phrase against a pattern of expected token descriptions.

    Each pattern element is either a literal string (matched against the token
    text) or one of the placeholders ``"WORD"`` / ``"NUM"`` (matched against
    the token kind).  On success returns the list of values captured by the
    placeholders; on failure returns ``None``.
    """
    if len(tokens) != len(pattern):
        return None
    captured = []
    for token, expected in zip(tokens, pattern):
        if expected == "WORD":
            if token.kind != "word":
                return None
            captured.append(token.value)
        elif expected == "NUM":
            if token.kind != "num":
                return None
            captured.append(int(token.value))
        else:
            if token.value != expected:
                return None
    return captured


def parse_term(text, theory):
    """Parse a complete term in the given theory's syntax."""
    return Parser(theory, text).parse_term()


def parse_pred(text, theory):
    """Parse a complete predicate in the given theory's syntax."""
    return Parser(theory, text).parse_pred()
