"""Normalization via pushback (paper Fig. 8, Section 3.3).

Normalization rewrites an arbitrary KMT term into a normal form
``Σ aᵢ·mᵢ`` (tests at the front, restricted actions behind) by repeatedly
*pushing tests back* through actions.  The engine below implements the five
mutually recursive relations of Fig. 8:

``PB•``  (:meth:`Normalizer.pb_test_action`)
    push a single test back through a restricted action;
``PBR``  (:meth:`Normalizer.pb_restricted`)
    push a whole normal form back through a restricted action;
``PBT``  (:meth:`Normalizer.pb_test`)
    push a single test back through a normal form;
``PBJ``  (:meth:`Normalizer.pb_join`)
    sequentially compose two normal forms;
``PB*``  (:meth:`Normalizer.pb_star`)
    compute the Kleene star of a normal form;

plus the top-level syntax-directed ``norm`` relation
(:meth:`Normalizer.normalize`).

The only theory-specific ingredient is the client's weakest-precondition
relation ``push_back(pi, alpha)`` (rule ``Prim``); everything else is generic.

Termination is Theorem 3.5 of the paper, but the ``Denest`` rule can blow up
doubly-exponentially (the Fig. 9 timeout row).  A configurable *step budget*
turns that blow-up into a :class:`NormalizationBudgetExceeded` exception.
"""

from __future__ import annotations

from repro.core import terms as T
from repro.core.nnf import nnf
from repro.core.normalform import NormalForm
from repro.core.ordering import OrderingContext
from repro.utils.errors import KmtError, NormalizationBudgetExceeded

#: Default number of pushback steps before giving up.  Generous enough for all
#: the paper's benchmarks except the deliberately-diverging Fig. 9 row 7.
DEFAULT_BUDGET = 500_000


class NormalizationStats:
    """Counters describing one normalization run (used by benchmarks)."""

    def __init__(self):
        self.steps = 0
        self.prim_pushbacks = 0
        self.star_expansions = 0
        self.denests = 0
        self.max_normal_form_size = 0

    def as_dict(self):
        return {
            "steps": self.steps,
            "prim_pushbacks": self.prim_pushbacks,
            "star_expansions": self.star_expansions,
            "denests": self.denests,
            "max_normal_form_size": self.max_normal_form_size,
        }

    def __repr__(self):
        return f"NormalizationStats({self.as_dict()})"


class Normalizer:
    """Pushback-based normalization for one client theory."""

    #: How many pushback steps pass between two ``cancel`` checks.  Checking
    #: on every step would put an extra call in the hottest loop of the
    #: system; a power-of-two stride keeps the common case to one bit-and.
    CANCEL_STRIDE = 256

    def __init__(self, theory, budget=DEFAULT_BUDGET, cancel=None):
        self.theory = theory
        self.ctx = OrderingContext(theory)
        self.budget = budget
        #: Optional cooperative-cancellation hook: a callable invoked every
        #: :data:`CANCEL_STRIDE` steps that raises (typically
        #: :class:`~repro.utils.errors.DeadlineExceeded`) to abandon the run.
        #: Mutable — a long-lived session normalizer sets it per query.
        self.cancel = cancel
        self.stats = NormalizationStats()
        self._pb_star_cache = {}
        self._pb_prim_cache = {}
        self._star_in_progress = set()

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def reset_stats(self):
        """Start a fresh stats window (and budget) while keeping memo tables.

        A long-lived normalizer — the engine's per-session instance — calls
        this between queries so the step budget applies per query rather than
        to the session's lifetime, while ``_pb_star_cache`` / ``_pb_prim_cache``
        keep amortizing work across queries.  Returns the previous stats.
        """
        previous = self.stats
        self.stats = NormalizationStats()
        return previous

    def _tick(self):
        self.stats.steps += 1
        if self.budget is not None and self.stats.steps > self.budget:
            raise NormalizationBudgetExceeded(self.budget)
        if self.cancel is not None and self.stats.steps % self.CANCEL_STRIDE == 0:
            self.cancel()

    def _record(self, nf):
        if len(nf) > self.stats.max_normal_form_size:
            self.stats.max_normal_form_size = len(nf)
        return nf

    # ------------------------------------------------------------------
    # top-level norm relation
    # ------------------------------------------------------------------
    def normalize(self, term):
        """Normalize an arbitrary term (the ``norm`` relation of Fig. 8)."""
        self._tick()
        if isinstance(term, T.TTest):
            return self._record(NormalForm.of_test(term.pred))          # Pred
        if isinstance(term, T.TPrim):
            return self._record(NormalForm.of_action(term))             # Act
        if isinstance(term, T.TPlus):
            left = self.normalize(term.left)
            right = self.normalize(term.right)
            return self._record(left.union(right))                      # Par
        if isinstance(term, T.TSeq):
            left = self.normalize(term.left)
            right = self.normalize(term.right)
            return self._record(self.pb_join(left, right))              # Seq
        if isinstance(term, T.TStar):
            inner = self.normalize(term.arg)
            return self._record(self.pb_star(inner))                    # Star
        raise TypeError(f"not a Term: {term!r}")

    def normalize_pred(self, pred):
        """Normalize a predicate (trivially already a normal form)."""
        return NormalForm.of_test(pred)

    # ------------------------------------------------------------------
    # PBJ: sequential composition of normal forms
    # ------------------------------------------------------------------
    def pb_join(self, x, y):
        """``x · y  PBJ  z`` — compose two normal forms sequentially."""
        self._tick()
        out = NormalForm.zero()
        for a_i, m_i in x.sorted_pairs():
            for b_j, n_j in y.sorted_pairs():
                pushed = self.pb_test_action(m_i, b_j)        # m_i · b_j PB• x_ij
                contribution = pushed.seq_action(n_j).prefix_test(a_i)
                out = out.union(contribution)
        return self._record(out)

    # ------------------------------------------------------------------
    # PBR: push a normal form back through a restricted action
    # ------------------------------------------------------------------
    def pb_restricted(self, m, x):
        """``m · x  PBR  y`` for a restricted action ``m`` and normal form ``x``."""
        self._tick()
        out = NormalForm.zero()
        for a_i, n_i in x.sorted_pairs():
            pushed = self.pb_test_action(m, a_i)
            out = out.union(pushed.seq_action(n_i))
        return self._record(out)

    # ------------------------------------------------------------------
    # PBT: push a test back through a normal form
    # ------------------------------------------------------------------
    def pb_test(self, x, a):
        """``x · a  PBT  y`` for a normal form ``x`` and a test ``a``."""
        self._tick()
        out = NormalForm.zero()
        for a_i, m_i in x.sorted_pairs():
            pushed = self.pb_test_action(m_i, a)
            out = out.union(pushed.prefix_test(a_i))
        return self._record(out)

    # ------------------------------------------------------------------
    # PB•: push a test back through a restricted action
    # ------------------------------------------------------------------
    def pb_test_action(self, m, a):
        """``m · a  PB•  y`` for a restricted action ``m`` and a test ``a``."""
        self._tick()

        # --- rules driven by the structure of the test -------------------
        if isinstance(a, T.PZero):
            return NormalForm.zero()                                    # SeqZero
        if isinstance(a, T.POne):
            return self._nf_of_restricted(m)                            # SeqOne
        if isinstance(a, T.PAnd):
            partial = self.pb_test_action(m, a.left)                    # SeqSeqTest
            return self._record(self.pb_test(partial, a.right))
        if isinstance(a, T.POr):
            left = self.pb_test_action(m, a.left)                       # SeqParTest
            right = self.pb_test_action(m, a.right)
            return self._record(left.union(right))

        # a is now a primitive test or a negation.
        # --- rules driven by the structure of the action -----------------
        if isinstance(m, T.TTest):
            if isinstance(m.pred, T.PZero):
                return NormalForm.zero()
            if isinstance(m.pred, T.POne):
                # 1 · a == a · 1
                return self._record(NormalForm.of_test(a))
            raise KmtError(f"non-restricted action in pushback: {m!r}")
        if isinstance(m, T.TSeq):
            inner = self.pb_test_action(m.right, a)                      # SeqSeqAction
            return self._record(self.pb_restricted(m.left, inner))
        if isinstance(m, T.TPlus):
            left = self.pb_test_action(m.left, a)                        # SeqParAction
            right = self.pb_test_action(m.right, a)
            return self._record(left.union(right))
        if isinstance(m, T.TStar):
            return self._record(self._pb_test_through_star(m, a))
        if isinstance(m, T.TPrim):
            return self._record(self._pb_test_through_prim(m, a))
        raise TypeError(f"not a Term: {m!r}")

    def _nf_of_restricted(self, m):
        """The normal form ``1 · m`` of a restricted action (handles 0/1 tests)."""
        if isinstance(m, T.TTest):
            if isinstance(m.pred, T.PZero):
                return NormalForm.zero()
            if isinstance(m.pred, T.POne):
                return NormalForm.one()
            raise KmtError(f"non-restricted action: {m!r}")
        return NormalForm.of_action(m)

    def _pb_test_through_prim(self, m, a):
        """Rules ``Prim`` and ``PrimNeg``: the only theory-specific step."""
        pi = m.pi
        if isinstance(a, T.PPrim):
            cache_key = (pi, a)
            cached = self._pb_prim_cache.get(cache_key)
            if cached is not None:
                return cached
            self.stats.prim_pushbacks += 1
            preds = list(self.theory.push_back(pi, a.alpha))
            for p in preds:
                if not isinstance(p, T.Pred):
                    raise KmtError(
                        f"theory {self.theory.name!r}.push_back must return Preds, got {p!r}"
                    )
            result = NormalForm({(p, m) for p in preds})
            self._pb_prim_cache[cache_key] = result
            return result
        if isinstance(a, T.PNot):
            inner = self.pb_test_action(m, a.arg)
            # By Lemma B.27 every action in `inner` is the primitive `m` itself,
            # so the pushed-back test is the sum of the inner tests.
            summed = T.por_all(sorted((t for t, _ in inner), key=lambda p: p.sort_key()))
            negated = nnf(T.pnot(summed))
            return NormalForm({(negated, m)})
        raise KmtError(f"unexpected test shape in primitive pushback: {a!r}")

    def _pb_test_through_star(self, m, a):
        """Rules ``SeqStarSmaller`` and ``SeqStarInv``: push ``a`` through ``n*``."""
        n = m.arg
        x = self.pb_test_action(n, a)
        if self.ctx.lt(x.tests(), {a}):
            # SeqStarSmaller: n*·a == a + n*·x
            y = self.pb_restricted(m, x)
            return NormalForm.of_test(a).union(y)
        # SeqStarInv: split x around a, i.e. n·a == a·t + u.
        self.stats.star_expansions += 1
        if a in self.ctx.mt(x.tests()):
            t, u = x.split(a, self.ctx)
        else:
            # Degenerate case (x == a·0 + x); sound, and the ordering still
            # decreases because a does not occur in x at all.
            t, u = NormalForm.zero(), x
        xr = self.pb_restricted(m, u)        # n*·u  PBR  xr
        y = self.pb_star(t)                  # t*    PB*  y
        z = self.pb_join(xr, y)              # xr·y  PBJ  z
        return y.prefix_test(a).union(z)     # result: a·y + z

    # ------------------------------------------------------------------
    # PB*: Kleene star of a normal form
    # ------------------------------------------------------------------
    def pb_star(self, x):
        """``x*  PB*  y`` — hoist the tests of ``x`` out of a Kleene star."""
        self._tick()
        cached = self._pb_star_cache.get(x)
        if cached is not None:
            return cached
        if x in self._star_in_progress:
            # The theory violated its ordering obligations; fail loudly rather
            # than recurse forever.
            raise KmtError(
                "pb_star re-entered on the same normal form; the client theory's "
                "push_back is not non-increasing in the maximal-subterm ordering"
            )
        self._star_in_progress.add(x)
        try:
            result = self._pb_star_uncached(x)
        finally:
            self._star_in_progress.discard(x)
        self._pb_star_cache[x] = result
        return self._record(result)

    def _pb_star_uncached(self, x):
        if x.is_vacuous():
            return NormalForm.one()                                       # StarZero

        # Shortcut: if every test is 1 the star is already a restricted action.
        if all(isinstance(test, T.POne) for test, _ in x.pairs):
            body = T.tplus_all(action for _, action in x.sorted_pairs())
            return NormalForm.of_action(T.tstar(body))

        pair_tests = frozenset(test for test, _ in x.pairs)
        a = self.ctx.pick_maximal(pair_tests)
        if a is None or isinstance(a, T.POne):
            body = x.to_term()
            if T.is_restricted(body):
                return NormalForm.of_action(T.tstar(body))
            raise KmtError(f"cannot find a maximal test to split {x!r}")

        x1, x2 = x.split(a, self.ctx)

        if x2.is_vacuous():
            # x == a·x1.  Push a through x1 first (w ≡ x1·a as a normal form)
            # and pick the branch by looking at the *pushed* tests: sliding
            # recurses on w, so its guard must be that w's tests sit strictly
            # below a — guarding on x1's tests (as an earlier revision did) is
            # unsound when pushback returns a unchanged (e.g. a test that
            # commutes with every action of x1), which made pb_star re-enter
            # on the same normal form and fail for terms like (b := T + a = T)*.
            w = self.pb_test(x1, a)
            if self.ctx.lt(w.tests(), {a}):
                # Slide: (a·x1)* == 1 + a·((x1·a pushed)* · x1)
                y_star = self.pb_star(w)
                z = self.pb_join(y_star, x1)
                return NormalForm.one().union(z.prefix_test(a))
            # Expand: split w around a, i.e. x1·a == a·t + u, and use
            # (a·x1)* == 1 + a·(t + u)*·x1.
            self.stats.star_expansions += 1
            if a in self.ctx.mt(w.tests()):
                t, u = w.split(a, self.ctx)
            else:
                t, u = NormalForm.zero(), w
            y = self.pb_star(t.union(u))
            z = self.pb_join(y, x1)
            return NormalForm.one().union(z.prefix_test(a))

        # Denest: (a·x1 + x2)* == x2'·((a·(x1·x2'))* ...) — Fig. 8 Denest rule.
        self.stats.denests += 1
        y2 = self.pb_star(x2)                      # x2*       PB*  y2
        x1p = self.pb_join(x1, y2)                 # x1·y2     PBJ  x1p
        z = self.pb_star(x1p.prefix_test(a))       # (a·x1p)*  PB*  z
        return self.pb_join(y2, z)                 # y2·z      PBJ  result


# ---------------------------------------------------------------------------
# module-level convenience wrappers
# ---------------------------------------------------------------------------


def normalize(term, theory, budget=DEFAULT_BUDGET):
    """Normalize ``term`` with a fresh :class:`Normalizer`; return the normal form."""
    return Normalizer(theory, budget=budget).normalize(term)


def normalize_with_stats(term, theory, budget=DEFAULT_BUDGET):
    """Normalize and also return the :class:`NormalizationStats` of the run."""
    normalizer = Normalizer(theory, budget=budget)
    nf = normalizer.normalize(term)
    return nf, normalizer.stats
