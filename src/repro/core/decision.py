"""The normalization-based equivalence decision procedure (Theorem 3.7).

To decide ``p == q``:

1. normalize both sides into ``x = Σ aᵢ·mᵢ`` and ``y = Σ bⱼ·nⱼ`` (Fig. 8);
2. make the tests *locally unambiguous* and *pairwise comparable*: partition
   the state space into "cells", one per Boolean combination of the primitive
   tests appearing in either normal form — this refines the ``x̂`` / ``ẍ``
   construction from the completeness proof (the proof combines whole guards
   ``aᵢ``; assigning the primitive tests underneath them induces a finer
   partition on which every guard still has a definite truth value, so
   comparing per refined cell is equivalent);
3. discard cells whose combination of primitive tests is unsatisfiable, using
   the client theory's conjunction oracle (``satisfiable_conjunction``);
4. in every remaining cell, the actions that can run on the left are the
   ``mᵢ`` whose guard evaluates to true in the cell (similarly on the right);
   compare the two sums of restricted actions as regular languages — by
   default on their *compiled* minimized automata (see "the compiled
   comparison path" below), or with Hopcroft–Karp over Brzozowski
   derivatives under ``use_compiled=False``.

Step 2 admits two strategies, selected by the ``cell_search`` option:

* ``"signature"`` (the default) — a *solver-guided guard-signature search*.
  The verdict for a cell depends only on which summand guards the cell
  enables, so instead of enumerating the ``2^n`` primitive-test assignments
  we ask the DPLL(T) engine (:func:`repro.smt.dpll.enumerate_signatures`,
  AllSAT with blocking clauses and unit propagation) for the
  theory-realizable *guard activation signatures* — the distinct truth
  valuations of the guards appearing in either normal form — and run one
  language comparison per signature.  Comparisons are further memoized on the
  pair of restricted action sums (the engine layer threads a shared LRU here,
  so warm sessions skip repeated signatures across queries).  Cells that
  agree on every guard are never distinguished, which collapses the
  ``O(2^{2^n})`` blow-up the paper reports for nested sums under star down to
  the (usually tiny) number of distinct enabled-summand sets.

* ``"enumerate"`` — the paper-faithful explicit cell enumeration, worst-case
  exponential in the number of distinct primitive tests.  It is pruned by
  checking theory consistency of *partial* assignments when
  ``prune_unsat_cells`` is set (the unpruned variant is kept for the ablation
  benchmark), and is retained as the baseline for
  ``benchmarks/bench_cell_search.py``.

**The compiled comparison path.**  Step 4 no longer walks Brzozowski
derivatives pairwise: under either strategy, each restricted-action sum is
*compiled once* into an explicit minimized symbolic automaton
(:mod:`repro.core.compile` — dense int states, transition arrays in canonical
alphabet order, accepting bitset, BFS back-pointers) and the per-cell /
per-signature comparison is a cheap product walk over the two int-indexed
tables (:func:`~repro.core.compile.compiled_compare`), which also yields a
*shortest* distinguishing word.  Compiled automata are memoized per action —
through the engine's ``aut`` LRU when a caches bundle is threaded in (so warm
sessions reuse minimized automata across queries and signatures), or a
checker-private memo otherwise.  ``use_compiled=False`` restores the legacy
derivative-pairwise ``language_compare`` path; the randomized differential
test in ``tests/test_compile_queries.py`` holds all three
(signature+compiled, enumerate+compiled, legacy derivative) to identical
verdicts.

The same compiled IR powers two further queries: :meth:`check_inclusion`
(``p <= q`` decided per signature by product emptiness,
:func:`~repro.core.compile.compiled_includes`, with a shortest word in
``L(left) \\ L(right)`` as witness) and :meth:`member_nf` (is a word of
primitive actions a possible action sequence of the term — some summand with
a satisfiable guard whose automaton accepts the word).

Both cell strategies return identical verdicts (the randomized differential
tests in ``tests/test_decision_signatures.py`` and
``tests/test_compile_queries.py`` check this).  The signature search never
performs more comparisons (``cells_explored``), but its solver has its own
search overhead: on adversarial inputs whose signatures are in bijection
with the cells (every guard an independent atom) it is a small constant
factor slower than the enumerator, in exchange for the exponential collapse
whenever guards share structure.
"""

from __future__ import annotations

from repro.core import terms as T
from repro.core.automata import (
    canonical,
    derivative,
    language_compare,
    language_is_empty,
    nullable,
)
from repro.core.compile import compile_automaton, compiled_compare, compiled_includes
from repro.core.kernels import accepts_batch, flat_compare, flat_includes
from repro.core.pushback import DEFAULT_BUDGET, Normalizer
from repro.smt.dpll import SignatureSearchStats, enumerate_signatures
from repro.smt.literals import evaluate
from repro.utils.trace import current_trace

#: Valid values for the ``cell_search`` option of :class:`EquivalenceChecker`.
CELL_SEARCH_MODES = ("signature", "enumerate")

#: Valid values for the ``walk_kernel`` option of :class:`EquivalenceChecker`:
#: ``"flat"`` (default) runs comparisons through the batched flat-table
#: kernels of :mod:`repro.core.kernels`; ``"legacy"`` keeps the
#: pair-at-a-time product walk of :mod:`repro.core.compile` as the
#: differential/ablation oracle.  Irrelevant under ``use_compiled=False``.
WALK_KERNELS = ("flat", "legacy")

_CACHE_MISS = object()


class Counterexample:
    """Evidence that two terms are inequivalent.

    ``cell`` is a tuple of ``(alpha, bool)`` literals — primitive tests and the
    Boolean values they take in the distinguishing cell; ``word`` is a word of
    primitive actions accepted by exactly one side within that cell.  Under
    the default signature search the assignment may be *partial*: primitive
    tests no guard depends on are omitted, and any theory state satisfying the
    listed literals (regardless of the omitted tests) witnesses the
    difference.  The ``cell_search="enumerate"`` baseline always produces a
    total assignment over the primitive tests of both normal forms.

    Instances are immutable: results are memoized in shared caches and handed
    to many callers (potentially on different threads), so a mutable witness
    would let one caller silently corrupt every later response.
    """

    __slots__ = ("cell", "left_actions", "right_actions", "word")

    def __init__(self, cell, left_actions, right_actions, word):
        object.__setattr__(self, "cell", tuple(cell))
        object.__setattr__(self, "left_actions", left_actions)
        object.__setattr__(self, "right_actions", right_actions)
        object.__setattr__(self, "word", None if word is None else tuple(word))

    def __setattr__(self, name, value):
        raise AttributeError(
            f"Counterexample is immutable (attempted to set {name!r}); results "
            "are shared through caches across callers and threads"
        )

    def __delattr__(self, name):
        self.__setattr__(name, None)

    def describe(self):
        word = " ".join(str(pi) for pi in self.word) if self.word else "<empty word>"
        if not self.cell:
            where = "in every cell"
        else:
            guards = ", ".join(
                f"{alpha}={'T' if value else 'F'}" for alpha, value in self.cell
            )
            where = f"in the cell [{guards}]"
        return (
            f"{where} the two terms allow different action words; "
            f"distinguishing word: {word}"
        )

    def __repr__(self):
        return f"Counterexample({self.describe()})"


class _FrozenResult:
    """Shared machinery for immutable, cache-replayable query results.

    Results are memoized in shared caches and handed to many callers
    (potentially on different threads), so subclasses freeze every field at
    construction (via ``object.__setattr__``) and any later mutation raises.
    ``_FIELDS`` lists the constructor keywords; :meth:`as_cached` clones a
    result with the ``cached`` replay flag set (the exploration counters of a
    replay describe the run that first computed it, not fresh work — the
    batch/server protocols surface the flag as ``"cached"``).
    """

    __slots__ = ()

    #: Constructor keyword per frozen field, in declaration order.
    _FIELDS = ()

    def __setattr__(self, name, value):
        raise AttributeError(
            f"{type(self).__name__} is immutable (attempted to set {name!r}); "
            "results are shared through caches across callers and threads"
        )

    def __delattr__(self, name):
        self.__setattr__(name, None)

    def as_cached(self):
        """A copy flagged as replayed from a cache (shares the counterexample)."""
        if self.cached:
            return self
        kwargs = {field: getattr(self, field) for field in self._FIELDS}
        kwargs["cached"] = True
        return type(self)(**kwargs)

    def _describe_counters(self):
        cached = ", cached" if self.cached else ""
        return (
            f"cells_explored={self.cells_explored}, "
            f"cells_pruned={self.cells_pruned}, "
            f"signatures_explored={self.signatures_explored}{cached}"
        )


class EquivalenceResult(_FrozenResult):
    """Outcome of an equivalence query.

    Immutable for the same reason as :class:`Counterexample`: the engine's
    equivalence cache returns the same object to every caller asking the same
    question, so in-place edits would corrupt all later answers.
    """

    __slots__ = ("equivalent", "counterexample", "cells_explored", "cells_pruned",
                 "signatures_explored", "cached")
    _FIELDS = __slots__

    def __init__(self, equivalent, counterexample=None, cells_explored=0, cells_pruned=0,
                 signatures_explored=0, cached=False):
        object.__setattr__(self, "equivalent", equivalent)
        object.__setattr__(self, "counterexample", counterexample)
        # Language comparisons performed (one per explored cell for the
        # enumerator; one per un-memoized signature for the signature search).
        object.__setattr__(self, "cells_explored", cells_explored)
        # Branches abandoned because their literals were theory-inconsistent.
        object.__setattr__(self, "cells_pruned", cells_pruned)
        # Distinct satisfiable guard signatures enumerated (signature search
        # only; 0 under ``cell_search="enumerate"``).
        object.__setattr__(self, "signatures_explored", signatures_explored)
        object.__setattr__(self, "cached", cached)

    def __bool__(self):
        return self.equivalent

    def __repr__(self):
        status = "equivalent" if self.equivalent else "inequivalent"
        return f"EquivalenceResult({status}, {self._describe_counters()})"


class InclusionResult(_FrozenResult):
    """Outcome of an inclusion query ``p <= q``.

    ``counterexample``, when present, is a :class:`Counterexample` whose
    ``word`` lies in ``L(left) \\ L(right)`` within the listed cell: a
    behaviour of the left term the right term does not admit.
    """

    __slots__ = ("includes", "counterexample", "cells_explored", "cells_pruned",
                 "signatures_explored", "cached")
    _FIELDS = __slots__

    def __init__(self, includes, counterexample=None, cells_explored=0, cells_pruned=0,
                 signatures_explored=0, cached=False):
        object.__setattr__(self, "includes", includes)
        object.__setattr__(self, "counterexample", counterexample)
        object.__setattr__(self, "cells_explored", cells_explored)
        object.__setattr__(self, "cells_pruned", cells_pruned)
        object.__setattr__(self, "signatures_explored", signatures_explored)
        object.__setattr__(self, "cached", cached)

    def __bool__(self):
        return self.includes

    def __repr__(self):
        status = "included" if self.includes else "not included"
        return f"InclusionResult({status}, {self._describe_counters()})"


class EquivalenceChecker:
    """Decides equivalence, ordering and emptiness of KMT terms for one theory.

    ``caches`` is an optional engine-layer bundle
    (:class:`repro.engine.cache.EngineCaches`, duck-typed so the core stays
    independent of the engine package) providing bounded LRU memo tables for
    satisfiable-conjunction oracle calls, predicate satisfiability, pairwise
    normal-form equivalence verdicts, and signature (restricted-action pair)
    comparison verdicts.  Without it the checker keeps private unbounded memos
    for the conjunction oracle and the signature comparisons, which already
    pay off across the many overlapping searches of a single ``partition``
    call.

    ``cell_search`` selects the strategy for comparing normal forms per
    Boolean cell: ``"signature"`` (default, solver-guided guard-signature
    search) or ``"enumerate"`` (explicit cell enumeration, the paper's
    ablation baseline; ``prune_unsat_cells`` applies to this mode).

    ``use_compiled`` selects how restricted-action sums are compared inside a
    cell/signature: ``True`` (default) compiles each sum once into a
    minimized explicit automaton and runs product walks over the int tables
    (shortest witnesses, cross-query reuse through the ``aut`` cache);
    ``False`` restores the legacy pairwise Brzozowski-derivative
    ``language_compare`` path, kept as the differential/ablation baseline.
    ``states_compiled`` counts the raw derivative states explored by this
    checker's compilations (cache hits compile nothing).

    ``walk_kernel`` selects how the compiled product walks run: ``"flat"``
    (default) uses the batched flat-table kernels
    (:mod:`repro.core.kernels` — canonical-equality fast path plus the
    level-synchronous vectorized BFS, numpy-accelerated when importable);
    ``"legacy"`` keeps the pair-at-a-time FIFO walk of
    :mod:`repro.core.compile` as the differential/ablation oracle.  Both
    produce byte-identical verdicts and witness words.
    """

    def __init__(self, theory, budget=DEFAULT_BUDGET, prune_unsat_cells=True, caches=None,
                 cell_search="signature", use_compiled=True, walk_kernel="flat"):
        if cell_search not in CELL_SEARCH_MODES:
            raise ValueError(
                f"cell_search must be one of {CELL_SEARCH_MODES}, got {cell_search!r}"
            )
        if walk_kernel not in WALK_KERNELS:
            raise ValueError(
                f"walk_kernel must be one of {WALK_KERNELS}, got {walk_kernel!r}"
            )
        self.theory = theory
        self.budget = budget
        self.prune_unsat_cells = prune_unsat_cells
        self.caches = caches
        self.cell_search = cell_search
        self.use_compiled = use_compiled
        self.walk_kernel = walk_kernel
        self.states_compiled = 0
        self._sat_memo = {}
        self._compare_memo = {}
        self._aut_memo = {}

    # ------------------------------------------------------------------
    # normalization helpers
    # ------------------------------------------------------------------
    def normalize(self, term):
        return Normalizer(self.theory, budget=self.budget).normalize(term)

    # ------------------------------------------------------------------
    # equivalence
    # ------------------------------------------------------------------
    def equivalent(self, p, q):
        """True iff ``p == q`` in the derived equational theory."""
        return self.check_equivalent(p, q).equivalent

    def check_equivalent(self, p, q):
        """Like :meth:`equivalent` but returns a full :class:`EquivalenceResult`."""
        x = self.normalize(p)
        y = self.normalize(q)
        return self.check_equivalent_nf(x, y)

    def check_equivalent_nf(self, x, y, cancel=None):
        """Compare two already-normalized terms.

        ``cancel`` is an optional cooperative-cancellation callable threaded
        into the signature/cell search and every language comparison; it
        aborts the query by raising (see
        :class:`~repro.utils.errors.QueryCancelled`).  Replayed verdicts are
        returned as copies flagged ``cached=True`` so callers can tell stored
        exploration counters from fresh work.
        """
        equiv_cache = self.caches.equiv if self.caches is not None else None
        key = None
        if equiv_cache is not None:
            key = self.caches.nf_pair_key(x, y)
            cached = equiv_cache.get(key, _CACHE_MISS)
            if cached is not _CACHE_MISS:
                return cached.as_cached()
            # Equivalence is symmetric; a positive verdict for (y, x) carries
            # over directly (a counterexample would need its sides swapped, so
            # negative verdicts are only reused in the queried orientation).
            mirrored = equiv_cache.get(self.caches.nf_pair_key(y, x), _CACHE_MISS)
            if mirrored is not _CACHE_MISS and mirrored.equivalent:
                return mirrored.as_cached()
        comparer = self._comparer("equiv", cancel)
        if self.cell_search == "enumerate":
            atoms = _collect_atoms(x, y)
            search = _CellSearch(
                self.theory, atoms, x, y, self.prune_unsat_cells,
                sat_memo=self._conjunction_memo(),
                compare=comparer,
                cancel=cancel,
            )
            counterexample = search.run()
            result = EquivalenceResult(
                equivalent=counterexample is None,
                counterexample=counterexample,
                cells_explored=search.cells_explored,
                cells_pruned=search.cells_pruned,
            )
        else:
            search = _SignatureSearch(
                self.theory, x, y,
                sat_memo=self._conjunction_memo(),
                compare=comparer,
                cancel=cancel,
            )
            counterexample = search.run()
            result = EquivalenceResult(
                equivalent=counterexample is None,
                counterexample=counterexample,
                cells_explored=comparer.comparisons,
                cells_pruned=search.stats.theory_pruned,
                signatures_explored=search.signatures_explored,
            )
        if equiv_cache is not None:
            equiv_cache.put(key, result)
        return result

    # ------------------------------------------------------------------
    # inclusion
    # ------------------------------------------------------------------
    def includes(self, p, q):
        """True iff ``p <= q`` (every behaviour of ``p`` is one of ``q``)."""
        return self.check_inclusion(p, q).includes

    def check_inclusion(self, p, q):
        """Like :meth:`includes` but returns a full :class:`InclusionResult`."""
        return self.check_inclusion_nf(self.normalize(p), self.normalize(q))

    def check_inclusion_nf(self, x, y, cancel=None):
        """Decide per-cell language containment of two normal forms.

        ``p <= q`` in the natural order iff in every satisfiable cell the
        restricted actions enabled on the left denote a sublanguage of those
        enabled on the right (``p + q == q`` holds exactly then), so the same
        cell/signature search as equivalence applies, with
        :func:`~repro.core.compile.compiled_includes` (product emptiness) as
        the per-cell comparison.  Unlike :meth:`less_or_equal` this needs no
        re-normalization of ``p + q``, and a failure carries a shortest
        witness word in ``L(left) \\ L(right)``.
        """
        equiv_cache = self.caches.equiv if self.caches is not None else None
        key = None
        if equiv_cache is not None:
            # Inclusion verdicts share the equivalence LRU under a tagged key
            # (it memoizes the same kind of object: a per-NF-pair verdict).
            key = ("incl", self.caches.nf_pair_key(x, y))
            cached = equiv_cache.get(key, _CACHE_MISS)
            if cached is not _CACHE_MISS:
                return cached.as_cached()
        comparer = self._comparer("incl", cancel)
        if self.cell_search == "enumerate":
            atoms = _collect_atoms(x, y)
            search = _CellSearch(
                self.theory, atoms, x, y, self.prune_unsat_cells,
                sat_memo=self._conjunction_memo(),
                compare=comparer,
                cancel=cancel,
            )
            counterexample = search.run()
            result = InclusionResult(
                includes=counterexample is None,
                counterexample=counterexample,
                cells_explored=search.cells_explored,
                cells_pruned=search.cells_pruned,
            )
        else:
            search = _SignatureSearch(
                self.theory, x, y,
                sat_memo=self._conjunction_memo(),
                compare=comparer,
                cancel=cancel,
            )
            counterexample = search.run()
            result = InclusionResult(
                includes=counterexample is None,
                counterexample=counterexample,
                cells_explored=comparer.comparisons,
                cells_pruned=search.stats.theory_pruned,
                signatures_explored=search.signatures_explored,
            )
        if equiv_cache is not None:
            equiv_cache.put(key, result)
        return result

    # ------------------------------------------------------------------
    # word membership
    # ------------------------------------------------------------------
    def member_nf(self, x, word, cancel=None):
        """Is ``word`` (a sequence of primitive actions) a possible action
        sequence of the normalized term ``x``?

        True iff some summand ``(test, action)`` has a satisfiable guard and
        a compiled automaton accepting the word — i.e. some state enables a
        trace whose action labels spell exactly ``word``.  Runs in
        O(|word|) table lookups per summand once the automata are cached.
        """
        word = tuple(word)
        for test, action in x.sorted_pairs():
            if not self._satisfiable_pred(test):
                continue
            if self.use_compiled:
                if self._compile_cached(action, cancel).accepts(word):
                    return True
            elif _derivative_accepts(action, word):
                return True
        return False

    def member_nf_many(self, x, words, cancel=None):
        """Batched membership: judge many words against one normal form.

        Returns a list of bools aligned with ``words`` — elementwise
        identical to ``[self.member_nf(x, w) for w in words]``, but each
        summand's compiled automaton judges every still-undecided word in a
        single :func:`repro.core.kernels.accepts_batch` call (words already
        accepted by an earlier summand are not re-tested).  Under
        ``walk_kernel="legacy"`` or ``use_compiled=False`` the per-word
        oracles run in a loop, keeping the batched entry point available as
        an ablation.
        """
        words = [tuple(word) for word in words]
        verdicts = [False] * len(words)
        pending = list(range(len(words)))
        for test, action in x.sorted_pairs():
            if not pending:
                break
            if not self._satisfiable_pred(test):
                continue
            subset = [words[i] for i in pending]
            if self.use_compiled:
                automaton = self._compile_cached(action, cancel)
                if self.walk_kernel == "flat":
                    accepted = accepts_batch(automaton, subset, cancel=cancel)
                else:
                    accepted = [automaton.accepts(word) for word in subset]
            else:
                accepted = [_derivative_accepts(action, word) for word in subset]
            still = []
            for i, ok in zip(pending, accepted):
                if ok:
                    verdicts[i] = True
                else:
                    still.append(i)
            pending = still
        return verdicts

    # ------------------------------------------------------------------
    # compiled-automaton plumbing
    # ------------------------------------------------------------------
    def _compile_cached(self, action, cancel=None):
        """The compiled (minimized) automaton of a restricted action.

        Memoized through the engine's ``aut`` LRU when a caches bundle is
        present (keyed by the action's stable fingerprint, so warm sessions
        reuse automata across queries), else a checker-private memo keyed by
        the hash-consed action itself.
        """
        caches = self.caches
        memo = self._aut_memo
        key = action
        pool = None
        if caches is not None:
            aut = getattr(caches, "aut", None)
            if aut is not None:
                memo = aut
                key = caches.term_key(action)
            pool = getattr(caches, "arenas", None)
        cached = _memo_get(memo, key)
        if cached is not _CACHE_MISS:
            return cached
        trace = current_trace()
        if trace is None:
            automaton = compile_automaton(action, cancel=cancel, pool=pool)
        else:
            with trace.span("compile"):
                automaton = compile_automaton(action, cancel=cancel, pool=pool)
        self.states_compiled += automaton.raw_states
        _memo_put(memo, key, automaton)
        return automaton

    def _comparer(self, kind, cancel):
        """A memoized per-action-pair comparison for one query kind.

        ``"equiv"`` compares languages for equality (symmetric: a positive
        verdict for the mirrored pair is reused); ``"incl"`` for containment
        (asymmetric).  Verdicts are memoized in the shared ``sig`` LRU when a
        caches bundle is threaded in — inclusion verdicts under a tagged key
        so the two kinds never collide.
        """
        memo = self._signature_memo()
        base_key = self._signature_key()
        compare_kernel, includes_kernel = (
            (flat_compare, flat_includes)
            if self.walk_kernel == "flat"
            else (compiled_compare, compiled_includes)
        )
        if kind == "incl":
            if self.use_compiled:
                def run(left, right):
                    return includes_kernel(
                        self._compile_cached(left, cancel),
                        self._compile_cached(right, cancel),
                        cancel=cancel,
                    )
            else:
                def run(left, right):
                    # L(l) <= L(r) iff L(l + r) == L(r); a distinguishing
                    # word lies in the union but not in L(r), i.e. exactly
                    # in L(l) \ L(r) — the same witness shape the compiled
                    # containment produces.
                    return language_compare(T.tplus(left, right), right, cancel=cancel)
            return _MemoizedComparison(
                run, memo, lambda l, r: ("incl", base_key(l, r)), symmetric=False
            )
        if self.use_compiled:
            def run(left, right):
                return compare_kernel(
                    self._compile_cached(left, cancel),
                    self._compile_cached(right, cancel),
                    cancel=cancel,
                )
        else:
            def run(left, right):
                return language_compare(left, right, cancel=cancel)
        return _MemoizedComparison(run, memo, base_key, symmetric=True)

    def _conjunction_memo(self):
        if self.caches is not None:
            return self.caches.sat_conj
        return self._sat_memo

    def _signature_memo(self):
        caches = self.caches
        if caches is not None:
            sig = getattr(caches, "sig", None)
            if sig is not None:
                return sig
        return self._compare_memo

    def _signature_key(self):
        caches = self.caches
        if caches is not None:
            key = getattr(caches, "action_pair_key", None)
            if key is not None:
                return key
        # Restricted actions are hash-consed, so the pair itself is a fine key.
        return lambda left, right: (left, right)

    # ------------------------------------------------------------------
    # derived queries
    # ------------------------------------------------------------------
    def less_or_equal(self, p, q):
        """``p <= q`` in the natural order, i.e. ``p + q == q``."""
        return self.equivalent(T.tplus(p, q), q)

    def is_empty(self, p):
        """True iff ``p`` denotes no traces at all (``p == 0``).

        A normal form is empty iff every summand is ruled out: either its test
        is unsatisfiable or its restricted action denotes the empty language.
        """
        return self.is_empty_nf(self.normalize(p))

    def is_empty_nf(self, x, cancel=None):
        """Emptiness of an already-normalized term (see :meth:`is_empty`).

        Under the compiled path an action's emptiness is a field read on its
        cached automaton (no accepting bit set); ``use_compiled=False`` keeps
        the legacy derivative reachability search.  ``cancel`` cooperatively
        aborts compilation (a deadline must be able to interrupt the
        derivative BFS on a large action, same as on the equivalence path).
        """
        for test, action in x.pairs:
            if not self._satisfiable_pred(test):
                continue
            if self.use_compiled:
                if self._compile_cached(action, cancel).is_empty():
                    continue
            elif language_is_empty(action):
                continue
            return False
        return True

    def _satisfiable_pred(self, test):
        if self.caches is None:
            return self.theory.satisfiable(test)
        return self.caches.sat_pred.get_or_compute(
            self.caches.pred_key(test), lambda: self.theory.satisfiable(test)
        )

    def partition(self, terms):
        """Partition a list of terms into equivalence classes.

        Mirrors the paper's command-line tool.  Returns a list of lists of
        indices into ``terms``.
        """
        return self.partition_nfs([self.normalize(term) for term in terms])

    def partition_nfs(self, nfs):
        """Greedy classing of already-normalized terms (see :meth:`partition`)."""
        classes = []  # list of (representative normal form, [indices])
        for idx, nf in enumerate(nfs):
            placed = False
            for rep_nf, members in classes:
                if self.check_equivalent_nf(nf, rep_nf).equivalent:
                    members.append(idx)
                    placed = True
                    break
            if not placed:
                classes.append((nf, [idx]))
        return [members for _, members in classes]


# ---------------------------------------------------------------------------
# cell enumeration
# ---------------------------------------------------------------------------


def _collect_atoms(x, y):
    """All primitive tests underneath the guards of two normal forms, sorted."""
    atoms = set()
    for nf in (x, y):
        for test, _ in nf.pairs:
            atoms |= T.primitive_tests_of_pred(test)
    wrapped = sorted((T.pprim(a) for a in atoms), key=lambda p: p.sort_key())
    return [p.alpha for p in wrapped]


def _derivative_accepts(action, word):
    """Legacy word membership: walk the derivatives (``use_compiled=False``)."""
    state = canonical(action)
    for pi in word:
        state = derivative(state, pi)
    return nullable(state)


def _memo_get(memo, key):
    """Lookup in a plain dict or any ``get``/``put`` mapping (``_CACHE_MISS`` on miss)."""
    return memo.get(key, _CACHE_MISS)


def _memo_put(memo, key, value):
    put = getattr(memo, "put", None)
    if put is not None:
        put(key, value)
    else:
        memo[key] = value


def _memoized_conjunction_oracle(theory, memo):
    """Wrap ``theory.satisfiable_conjunction`` with a shared memo.

    ``memo`` is keyed by the *set* of literals (satisfiability is
    order-independent) and may be a plain dict or any ``get``/``put`` mapping
    (e.g. a bounded LRU).  The same conjunctions recur constantly across the
    cell/signature searches of sibling queries — most visibly in
    ``partition`` and in warm engine sessions — so the memo is shared at the
    checker/engine level.
    """

    def satisfiable(literals):
        if not literals:
            return True
        key = frozenset(literals)
        cached = _memo_get(memo, key)
        if cached is not _CACHE_MISS:
            return cached
        value = theory.satisfiable_conjunction(literals)
        _memo_put(memo, key, value)
        return value

    return satisfiable


class _MemoizedComparison:
    """A per-restricted-action-pair language comparison with a verdict memo.

    ``run(left, right)`` produces the raw ``(ok, word)`` verdict (compiled
    product walk, legacy ``language_compare``, or compiled containment);
    verdicts are memoized under ``key_fn(left, right)`` — the engine layer
    passes a bounded LRU shared across queries here, so warm sessions skip
    repeated comparisons entirely.  ``symmetric=True`` additionally reuses a
    *positive* verdict for the mirrored pair (sound for equivalence: a
    witness word would need its sides swapped, so negative verdicts are only
    reused in the queried orientation; containment is not symmetric at all).
    ``comparisons`` counts actual ``run`` invocations (memo misses).
    """

    __slots__ = ("run", "memo", "key_fn", "symmetric", "comparisons")

    def __init__(self, run, memo, key_fn, symmetric):
        self.run = run
        self.memo = memo
        self.key_fn = key_fn
        self.symmetric = symmetric
        self.comparisons = 0

    def __call__(self, left, right):
        if left == right:
            # Identical (hash-consed) sums — the most common case for
            # equivalent terms, where a signature enables the same summands
            # on both sides.  Reflexivity answers both query kinds without
            # compiling anything.
            trace = current_trace()
            if trace is not None:
                trace.count("compare_reflexive")
            return (True, None)
        key = self.key_fn(left, right)
        cached = _memo_get(self.memo, key)
        if cached is not _CACHE_MISS:
            trace = current_trace()
            if trace is not None:
                trace.count("compare_memo_hits")
            return cached
        if self.symmetric:
            mirrored = _memo_get(self.memo, self.key_fn(right, left))
            if mirrored is not _CACHE_MISS and mirrored[0]:
                trace = current_trace()
                if trace is not None:
                    trace.count("compare_memo_hits")
                return mirrored
        self.comparisons += 1
        trace = current_trace()
        if trace is None:
            verdict = self.run(left, right)
        else:
            with trace.span("compare"):
                verdict = self.run(left, right)
        _memo_put(self.memo, key, verdict)
        return verdict


class _CellSearch:
    """Recursive enumeration of primitive-test cells with consistency pruning.

    The ablation baseline behind ``cell_search="enumerate"``: one language
    comparison per satisfiable total assignment of the primitive tests
    (``compare`` is a :class:`_MemoizedComparison`, so repeated action pairs
    are still served from the verdict memo).  See
    :func:`_memoized_conjunction_oracle` for the ``sat_memo`` protocol.
    """

    def __init__(self, theory, atoms, x, y, prune, sat_memo=None, compare=None, cancel=None):
        self.theory = theory
        self.atoms = atoms
        self.x = x
        self.y = y
        self.prune = prune
        self._satisfiable = _memoized_conjunction_oracle(
            theory, {} if sat_memo is None else sat_memo
        )
        self.compare = compare if compare is not None else (
            lambda left, right: language_compare(left, right, cancel=cancel)
        )
        self.cancel = cancel
        self.cells_explored = 0
        self.cells_pruned = 0

    def run(self):
        trace = current_trace()
        if trace is None:
            return self._go(0, [])
        # "signatures" covers both search strategies: it is the enumeration
        # phase of the decision procedure (cells are the ablation analogue of
        # signatures), and downstream phase names stay strategy-independent.
        with trace.span("signatures"):
            return self._go(0, [])

    def _go(self, index, literals):
        if self.prune and literals:
            if not self._satisfiable(literals):
                self.cells_pruned += 1
                return None
        if index == len(self.atoms):
            if not self.prune and literals:
                if not self._satisfiable(literals):
                    self.cells_pruned += 1
                    return None
            return self._compare_cell(literals)
        alpha = self.atoms[index]
        for value in (True, False):
            found = self._go(index + 1, literals + [(alpha, value)])
            if found is not None:
                return found
        return None

    def _compare_cell(self, literals):
        if self.cancel is not None:
            self.cancel()
        self.cells_explored += 1
        assignment = {alpha: value for alpha, value in literals}
        left = T.tplus_all(
            action
            for test, action in self.x.sorted_pairs()
            if evaluate(test, assignment)
        )
        right = T.tplus_all(
            action
            for test, action in self.y.sorted_pairs()
            if evaluate(test, assignment)
        )
        ok, word = self.compare(left, right)
        if ok:
            return None
        return Counterexample(literals, left, right, word)


# ---------------------------------------------------------------------------
# solver-guided signature search
# ---------------------------------------------------------------------------


class _SignatureSearch:
    """Solver-guided enumeration of guard activation signatures.

    Collects the distinct guards of both normal forms and asks the DPLL(T)
    engine for their theory-realizable truth valuations
    (:func:`repro.smt.dpll.enumerate_signatures`).  Every cell with the same
    signature enables the same summands on each side, so one language
    comparison per signature decides all of its cells at once; ``compare`` is
    a :class:`_MemoizedComparison` (the engine layer threads a bounded LRU
    through it, so warm sessions skip repeated signatures entirely).

    A counterexample's cell is the (possibly partial, theory-satisfiable)
    witness assignment returned by the enumerator; primitive tests no guard
    depends on are genuinely irrelevant to the verdict and stay undecided.
    """

    def __init__(self, theory, x, y, sat_memo=None, compare=None, cancel=None):
        self.theory = theory
        self.left_pairs = x.sorted_pairs()
        self.right_pairs = y.sorted_pairs()
        self._satisfiable = _memoized_conjunction_oracle(
            theory, {} if sat_memo is None else sat_memo
        )
        self.cancel = cancel
        self.compare = compare if compare is not None else (
            lambda left, right: language_compare(left, right, cancel=cancel)
        )
        guards = []
        guard_slot = {}
        def slot(test):
            if isinstance(test, T.POne):
                return None  # always enabled, not part of the signature
            index = guard_slot.get(test)
            if index is None:
                index = len(guards)
                guard_slot[test] = index
                guards.append(test)
            return index
        self.left_slots = [slot(test) for test, _ in self.left_pairs]
        self.right_slots = [slot(test) for test, _ in self.right_pairs]
        self.guards = guards
        self.stats = SignatureSearchStats()
        self.signatures_explored = 0

    def run(self):
        trace = current_trace()
        if trace is None:
            return self._run()
        with trace.span("signatures"):
            return self._run()

    def _run(self):
        for signature, witness in enumerate_signatures(
            self.guards, self.theory, satisfiable=self._satisfiable, stats=self.stats,
            cancel=self.cancel,
        ):
            if self.cancel is not None:
                # One checkpoint per signature, after the enumerator's (oracle
                # -heavy) work for it: the comparison below may be answered
                # from a memo or by reflexivity without ever checking cancel.
                self.cancel()
            self.signatures_explored += 1
            left = self._enabled_sum(self.left_pairs, self.left_slots, signature)
            right = self._enabled_sum(self.right_pairs, self.right_slots, signature)
            ok, word = self.compare(left, right)
            if not ok:
                return Counterexample(witness, left, right, word)
        return None

    @staticmethod
    def _enabled_sum(pairs, slots, signature):
        return T.tplus_all(
            action
            for slot, (_, action) in zip(slots, pairs)
            if slot is None or signature[slot]
        )
