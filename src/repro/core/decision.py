"""The normalization-based equivalence decision procedure (Theorem 3.7).

To decide ``p == q``:

1. normalize both sides into ``x = Σ aᵢ·mᵢ`` and ``y = Σ bⱼ·nⱼ`` (Fig. 8);
2. make the tests *locally unambiguous* and *pairwise comparable*: partition
   the state space into "cells", one per Boolean combination of the primitive
   tests appearing in either normal form — this refines the ``x̂`` / ``ẍ``
   construction from the completeness proof (the proof combines whole guards
   ``aᵢ``; assigning the primitive tests underneath them induces a finer
   partition on which every guard still has a definite truth value, so
   comparing per refined cell is equivalent);
3. discard cells whose combination of primitive tests is unsatisfiable, using
   the client theory's conjunction oracle (``satisfiable_conjunction``);
4. in every remaining cell, the actions that can run on the left are the
   ``mᵢ`` whose guard evaluates to true in the cell (similarly on the right);
   compare the two sums of restricted actions as regular languages with
   Hopcroft–Karp over Brzozowski derivatives.

The enumeration of cells is worst-case exponential in the number of distinct
primitive tests (exactly the ``O(2^{2^n})`` growth the paper reports for
nested sums under star); it is pruned by checking theory consistency of
*partial* assignments, which collapses the search dramatically for theories
such as IncNat where most combinations of bounds are contradictory.  The
unpruned variant is kept for the ablation benchmark.
"""

from __future__ import annotations

from repro.core import terms as T
from repro.core.automata import language_compare, language_is_empty
from repro.core.pushback import DEFAULT_BUDGET, Normalizer
from repro.smt.literals import evaluate

_CACHE_MISS = object()


class Counterexample:
    """Evidence that two terms are inequivalent.

    ``cell`` maps each primitive test (a theory ``alpha``) to the Boolean
    value it takes in the distinguishing cell; ``word`` is a word of primitive
    actions accepted by exactly one side within that cell.
    """

    def __init__(self, cell, left_actions, right_actions, word):
        self.cell = list(cell)
        self.left_actions = left_actions
        self.right_actions = right_actions
        self.word = word

    def describe(self):
        guards = ", ".join(
            f"{alpha}={'T' if value else 'F'}" for alpha, value in self.cell
        )
        word = " ".join(str(pi) for pi in self.word) if self.word else "<empty word>"
        return (
            f"in the cell [{guards}] the two terms allow different action words; "
            f"distinguishing word: {word}"
        )

    def __repr__(self):
        return f"Counterexample({self.describe()})"


class EquivalenceResult:
    """Outcome of an equivalence query."""

    def __init__(self, equivalent, counterexample=None, cells_explored=0, cells_pruned=0):
        self.equivalent = equivalent
        self.counterexample = counterexample
        self.cells_explored = cells_explored
        self.cells_pruned = cells_pruned

    def __bool__(self):
        return self.equivalent

    def __repr__(self):
        status = "equivalent" if self.equivalent else "inequivalent"
        return (
            f"EquivalenceResult({status}, cells_explored={self.cells_explored}, "
            f"cells_pruned={self.cells_pruned})"
        )


class EquivalenceChecker:
    """Decides equivalence, ordering and emptiness of KMT terms for one theory.

    ``caches`` is an optional engine-layer bundle
    (:class:`repro.engine.cache.EngineCaches`, duck-typed so the core stays
    independent of the engine package) providing bounded LRU memo tables for
    satisfiable-conjunction oracle calls, predicate satisfiability, and
    pairwise normal-form equivalence verdicts.  Without it the checker keeps a
    private unbounded memo for the conjunction oracle, which already pays off
    across the many overlapping cell searches of a single ``partition`` call.
    """

    def __init__(self, theory, budget=DEFAULT_BUDGET, prune_unsat_cells=True, caches=None):
        self.theory = theory
        self.budget = budget
        self.prune_unsat_cells = prune_unsat_cells
        self.caches = caches
        self._sat_memo = {}

    # ------------------------------------------------------------------
    # normalization helpers
    # ------------------------------------------------------------------
    def normalize(self, term):
        return Normalizer(self.theory, budget=self.budget).normalize(term)

    # ------------------------------------------------------------------
    # equivalence
    # ------------------------------------------------------------------
    def equivalent(self, p, q):
        """True iff ``p == q`` in the derived equational theory."""
        return self.check_equivalent(p, q).equivalent

    def check_equivalent(self, p, q):
        """Like :meth:`equivalent` but returns a full :class:`EquivalenceResult`."""
        x = self.normalize(p)
        y = self.normalize(q)
        return self.check_equivalent_nf(x, y)

    def check_equivalent_nf(self, x, y):
        """Compare two already-normalized terms."""
        equiv_cache = self.caches.equiv if self.caches is not None else None
        key = None
        if equiv_cache is not None:
            key = self.caches.nf_pair_key(x, y)
            cached = equiv_cache.get(key, _CACHE_MISS)
            if cached is not _CACHE_MISS:
                return cached
            # Equivalence is symmetric; a positive verdict for (y, x) carries
            # over directly (a counterexample would need its sides swapped, so
            # negative verdicts are only reused in the queried orientation).
            mirrored = equiv_cache.get(self.caches.nf_pair_key(y, x), _CACHE_MISS)
            if mirrored is not _CACHE_MISS and mirrored.equivalent:
                return mirrored
        atoms = _collect_atoms(x, y)
        search = _CellSearch(
            self.theory, atoms, x, y, self.prune_unsat_cells,
            sat_memo=self._conjunction_memo(),
        )
        counterexample = search.run()
        result = EquivalenceResult(
            equivalent=counterexample is None,
            counterexample=counterexample,
            cells_explored=search.cells_explored,
            cells_pruned=search.cells_pruned,
        )
        if equiv_cache is not None:
            equiv_cache.put(key, result)
        return result

    def _conjunction_memo(self):
        if self.caches is not None:
            return self.caches.sat_conj
        return self._sat_memo

    # ------------------------------------------------------------------
    # derived queries
    # ------------------------------------------------------------------
    def less_or_equal(self, p, q):
        """``p <= q`` in the natural order, i.e. ``p + q == q``."""
        return self.equivalent(T.tplus(p, q), q)

    def is_empty(self, p):
        """True iff ``p`` denotes no traces at all (``p == 0``).

        A normal form is empty iff every summand is ruled out: either its test
        is unsatisfiable or its restricted action denotes the empty language.
        """
        return self.is_empty_nf(self.normalize(p))

    def is_empty_nf(self, x):
        """Emptiness of an already-normalized term (see :meth:`is_empty`)."""
        for test, action in x.pairs:
            if not self._satisfiable_pred(test):
                continue
            if language_is_empty(action):
                continue
            return False
        return True

    def _satisfiable_pred(self, test):
        if self.caches is None:
            return self.theory.satisfiable(test)
        return self.caches.sat_pred.get_or_compute(
            self.caches.pred_key(test), lambda: self.theory.satisfiable(test)
        )

    def partition(self, terms):
        """Partition a list of terms into equivalence classes.

        Mirrors the paper's command-line tool.  Returns a list of lists of
        indices into ``terms``.
        """
        return self.partition_nfs([self.normalize(term) for term in terms])

    def partition_nfs(self, nfs):
        """Greedy classing of already-normalized terms (see :meth:`partition`)."""
        classes = []  # list of (representative normal form, [indices])
        for idx, nf in enumerate(nfs):
            placed = False
            for rep_nf, members in classes:
                if self.check_equivalent_nf(nf, rep_nf).equivalent:
                    members.append(idx)
                    placed = True
                    break
            if not placed:
                classes.append((nf, [idx]))
        return [members for _, members in classes]


# ---------------------------------------------------------------------------
# cell enumeration
# ---------------------------------------------------------------------------


def _collect_atoms(x, y):
    """All primitive tests underneath the guards of two normal forms, sorted."""
    atoms = set()
    for nf in (x, y):
        for test, _ in nf.pairs:
            atoms |= T.primitive_tests_of_pred(test)
    wrapped = sorted((T.pprim(a) for a in atoms), key=lambda p: p.sort_key())
    return [p.alpha for p in wrapped]


class _CellSearch:
    """Recursive enumeration of primitive-test cells with consistency pruning.

    ``sat_memo`` memoizes the theory's ``satisfiable_conjunction`` oracle,
    keyed by the *set* of literals (satisfiability is order-independent).  The
    same conjunctions recur constantly across the cell searches of sibling
    queries — most visibly in ``partition`` and in warm engine sessions — so
    the memo is shared at the checker/engine level; a plain dict or any
    ``get``/``put`` mapping (e.g. a bounded LRU) works.
    """

    def __init__(self, theory, atoms, x, y, prune, sat_memo=None):
        self.theory = theory
        self.atoms = atoms
        self.x = x
        self.y = y
        self.prune = prune
        self.sat_memo = {} if sat_memo is None else sat_memo
        self.cells_explored = 0
        self.cells_pruned = 0

    def run(self):
        return self._go(0, [])

    def _satisfiable(self, literals):
        key = frozenset(literals)
        memo = self.sat_memo
        cached = memo.get(key, _CACHE_MISS)
        if cached is not _CACHE_MISS:
            return cached
        value = self.theory.satisfiable_conjunction(literals)
        put = getattr(memo, "put", None)
        if put is not None:
            put(key, value)
        else:
            memo[key] = value
        return value

    def _go(self, index, literals):
        if self.prune and literals:
            if not self._satisfiable(literals):
                self.cells_pruned += 1
                return None
        if index == len(self.atoms):
            if not self.prune and literals:
                if not self._satisfiable(literals):
                    self.cells_pruned += 1
                    return None
            return self._compare_cell(literals)
        alpha = self.atoms[index]
        for value in (True, False):
            found = self._go(index + 1, literals + [(alpha, value)])
            if found is not None:
                return found
        return None

    def _compare_cell(self, literals):
        self.cells_explored += 1
        assignment = {alpha: value for alpha, value in literals}
        left = T.tplus_all(
            action
            for test, action in self.x.sorted_pairs()
            if evaluate(test, assignment)
        )
        right = T.tplus_all(
            action
            for test, action in self.y.sorted_pairs()
            if evaluate(test, assignment)
        )
        equivalent, word = language_compare(left, right)
        if equivalent:
            return None
        return Counterexample(literals, left, right, word)
