"""Pretty printing of predicates and terms with minimal parentheses.

The ``pretty()`` methods on term nodes are fully parenthesized (useful for
debugging); this module produces the concrete syntax accepted by
:mod:`repro.core.parser`, with the usual precedences ``*  >  ;  >  +`` and
``~`` binding tightest among the predicate connectives.
"""

from __future__ import annotations

from repro.core import terms as T

_PREC_PLUS = 0
_PREC_SEQ = 1
_PREC_STAR = 2
_PREC_ATOM = 3


def pretty_pred(pred, parent_prec=_PREC_PLUS):
    """Render a predicate in concrete syntax."""
    if isinstance(pred, T.PZero):
        return "false"
    if isinstance(pred, T.POne):
        return "true"
    if isinstance(pred, T.PPrim):
        return str(pred.alpha)
    if isinstance(pred, T.PNot):
        inner = pretty_pred(pred.arg, _PREC_ATOM)
        if isinstance(pred.arg, (T.PZero, T.POne, T.PPrim)):
            return f"not {inner}"
        return f"not ({pretty_pred(pred.arg, _PREC_PLUS)})"
    if isinstance(pred, T.PAnd):
        # The right operand is printed one level tighter so that right-nested
        # conjunctions re-parse with their original association.
        text = f"{pretty_pred(pred.left, _PREC_SEQ)}; {pretty_pred(pred.right, _PREC_SEQ + 1)}"
        return f"({text})" if parent_prec > _PREC_SEQ else text
    if isinstance(pred, T.POr):
        text = f"{pretty_pred(pred.left, _PREC_PLUS)} + {pretty_pred(pred.right, _PREC_PLUS + 1)}"
        return f"({text})" if parent_prec > _PREC_PLUS else text
    raise TypeError(f"not a Pred: {pred!r}")


def pretty_term(term, parent_prec=_PREC_PLUS):
    """Render a term in concrete syntax."""
    if isinstance(term, T.TTest):
        return pretty_pred(term.pred, parent_prec)
    if isinstance(term, T.TPrim):
        return str(term.pi)
    if isinstance(term, T.TPlus):
        text = f"{pretty_term(term.left, _PREC_PLUS)} + {pretty_term(term.right, _PREC_PLUS + 1)}"
        return f"({text})" if parent_prec > _PREC_PLUS else text
    if isinstance(term, T.TSeq):
        text = f"{pretty_term(term.left, _PREC_SEQ)}; {pretty_term(term.right, _PREC_SEQ + 1)}"
        return f"({text})" if parent_prec > _PREC_SEQ else text
    if isinstance(term, T.TStar):
        inner = pretty_term(term.arg, _PREC_ATOM)
        if isinstance(term.arg, (T.TPrim,)) or (
            isinstance(term.arg, T.TTest) and isinstance(term.arg.pred, (T.PZero, T.POne, T.PPrim))
        ):
            return f"{inner}*"
        return f"({pretty_term(term.arg, _PREC_PLUS)})*"
    raise TypeError(f"not a Term: {term!r}")


def pretty_normal_form(nf):
    """Render a normal form as a sum of ``test ; action`` summands."""
    pairs = nf.sorted_pairs()
    if not pairs:
        return "false"
    parts = []
    for test, action in pairs:
        parts.append(f"{pretty_pred(test, _PREC_SEQ)}; {pretty_term(action, _PREC_SEQ)}")
    return " + ".join(parts)
