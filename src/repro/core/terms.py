"""The KAT term language: predicates and actions (paper Fig. 5).

Predicates (tests) form a Boolean algebra::

    a, b ::= 0 | 1 | ~a | a + b | a ; b | alpha        (alpha: theory test)

Actions form a Kleene algebra with the Boolean algebra embedded::

    p, q ::= a | p + q | p ; q | p* | pi               (pi: theory action)

Nodes are immutable and *hash consed*: structurally equal terms are the same
Python object, which makes the set-heavy normalization procedure fast and lets
smart constructors rewrite common identities at construction time (the first
optimization described in Section 4.1 of the paper).

Theory primitives (``alpha`` / ``pi``) are arbitrary hashable objects supplied
by client theories; the core never inspects them beyond equality, hashing and
the callbacks on the owning :class:`~repro.core.theory.Theory`.
"""

from __future__ import annotations


# ---------------------------------------------------------------------------
# configuration (ablation hooks)
# ---------------------------------------------------------------------------


class TermConfig:
    """Global switches for the term layer.

    ``smart_constructors`` controls whether the algebraic rewrites (``p;1 = p``,
    ``a+a = a``, ``(p*)* = p*`` ...) are applied at construction time.  The
    ablation benchmark disables them to measure their effect.

    ``hash_consing`` controls whether nodes are interned.  Disabling it keeps
    the library correct (equality stays structural) but slows down the
    normalization procedure's set operations.
    """

    def __init__(self):
        self.smart_constructors = True
        self.hash_consing = True


CONFIG = TermConfig()


class smart_constructors_disabled:
    """Context manager that temporarily disables smart-constructor rewrites."""

    def __enter__(self):
        self._saved = CONFIG.smart_constructors
        CONFIG.smart_constructors = False
        return self

    def __exit__(self, exc_type, exc, tb):
        CONFIG.smart_constructors = self._saved
        return False


class hash_consing_disabled:
    """Context manager that temporarily disables hash consing."""

    def __enter__(self):
        self._saved = CONFIG.hash_consing
        CONFIG.hash_consing = False
        return self

    def __exit__(self, exc_type, exc, tb):
        CONFIG.hash_consing = self._saved
        return False


_INTERN_TABLE = {}

#: Optional callback invoked on every node the moment it is interned.  The
#: engine layer (:mod:`repro.engine.intern`) installs a hook here so freshly
#: constructed nodes get a stable fingerprint id eagerly instead of on first
#: cache lookup; the core never depends on the hook being present.
_INTERN_HOOK = None


def set_intern_hook(hook):
    """Install (or with ``None`` remove) the post-intern callback."""
    global _INTERN_HOOK
    _INTERN_HOOK = hook


def clear_intern_table():
    """Drop all interned nodes (used by tests to bound memory)."""
    _INTERN_TABLE.clear()


def _intern(node):
    if not CONFIG.hash_consing:
        return node
    key = (node.__class__, node._key())
    existing = _INTERN_TABLE.get(key)
    if existing is not None:
        return existing
    _INTERN_TABLE[key] = node
    if _INTERN_HOOK is not None:
        _INTERN_HOOK(node)
    return node


# ---------------------------------------------------------------------------
# predicates
# ---------------------------------------------------------------------------


class Pred:
    """Base class for KAT predicates (tests)."""

    # ``_fp`` is the engine layer's stable fingerprint id; it is assigned
    # lazily (or eagerly via the intern hook) and never read by the core.
    __slots__ = ("_hash", "size", "_fp")

    def _key(self):
        raise NotImplementedError

    def __hash__(self):
        if self._hash is None:
            self._hash = hash((self.__class__.__name__, self._key()))
        return self._hash

    def __eq__(self, other):
        if self is other:
            return True
        if other.__class__ is not self.__class__:
            return False
        return self._key() == other._key()

    def __ne__(self, other):
        return not self.__eq__(other)

    def __repr__(self):
        return self.pretty()

    def pretty(self):
        raise NotImplementedError

    def sort_key(self):
        """A deterministic total-order key (size first, then syntax)."""
        return (self.size, self.pretty())

    # Convenience operator overloads so examples/tests read naturally.
    def __add__(self, other):
        if isinstance(other, Pred):
            return por(self, other)
        if isinstance(other, Term):
            return tplus(ttest(self), other)
        return NotImplemented

    def __mul__(self, other):
        if isinstance(other, Pred):
            return pand(self, other)
        if isinstance(other, Term):
            return tseq(ttest(self), other)
        return NotImplemented

    def __invert__(self):
        return pnot(self)

    def as_term(self):
        """Embed this predicate into the action language."""
        return ttest(self)


class PZero(Pred):
    """The impossible test ``0`` (``drop`` / ``false``)."""

    __slots__ = ()

    def __init__(self):
        self._hash = None
        self.size = 1

    def _key(self):
        return ()

    def pretty(self):
        return "false"


class POne(Pred):
    """The trivially-true test ``1`` (``skip`` / ``true``)."""

    __slots__ = ()

    def __init__(self):
        self._hash = None
        self.size = 1

    def _key(self):
        return ()

    def pretty(self):
        return "true"


class PPrim(Pred):
    """A theory-supplied primitive test ``alpha``."""

    __slots__ = ("alpha",)

    def __init__(self, alpha):
        self._hash = None
        self.alpha = alpha
        self.size = 1

    def _key(self):
        return (self.alpha,)

    def pretty(self):
        return str(self.alpha)


class PNot(Pred):
    """Negation ``~a``."""

    __slots__ = ("arg",)

    def __init__(self, arg):
        self._hash = None
        self.arg = arg
        self.size = arg.size + 1

    def _key(self):
        return (self.arg,)

    def pretty(self):
        return f"~({self.arg.pretty()})"


class PAnd(Pred):
    """Conjunction ``a ; b`` (sequencing of tests)."""

    __slots__ = ("left", "right")

    def __init__(self, left, right):
        self._hash = None
        self.left = left
        self.right = right
        self.size = left.size + right.size + 1

    def _key(self):
        return (self.left, self.right)

    def pretty(self):
        return f"({self.left.pretty()};{self.right.pretty()})"


class POr(Pred):
    """Disjunction ``a + b``."""

    __slots__ = ("left", "right")

    def __init__(self, left, right):
        self._hash = None
        self.left = left
        self.right = right
        self.size = left.size + right.size + 1

    def _key(self):
        return (self.left, self.right)

    def pretty(self):
        return f"({self.left.pretty()} + {self.right.pretty()})"


PRED_ZERO = _intern(PZero())
PRED_ONE = _intern(POne())


def pzero():
    """The predicate ``0``."""
    return PRED_ZERO


def pone():
    """The predicate ``1``."""
    return PRED_ONE


def pprim(alpha):
    """Wrap a theory primitive test."""
    return _intern(PPrim(alpha))


def pnot(a):
    """Smart constructor for negation.

    Rewrites ``~0 = 1``, ``~1 = 0`` and ``~~a = a``.
    """
    if not isinstance(a, Pred):
        raise TypeError(f"pnot expects a Pred, got {a!r}")
    if CONFIG.smart_constructors:
        if a is PRED_ZERO or isinstance(a, PZero):
            return PRED_ONE
        if a is PRED_ONE or isinstance(a, POne):
            return PRED_ZERO
        if isinstance(a, PNot):
            return a.arg
    return _intern(PNot(a))


def pand(a, b):
    """Smart constructor for conjunction.

    Rewrites the unit/annihilator/idempotence laws
    ``1;a = a``, ``a;1 = a``, ``0;a = 0``, ``a;0 = 0``, ``a;a = a`` and the
    contradiction ``a;~a = 0``.
    """
    if not isinstance(a, Pred) or not isinstance(b, Pred):
        raise TypeError(f"pand expects Preds, got {a!r}, {b!r}")
    if CONFIG.smart_constructors:
        if isinstance(a, PZero) or isinstance(b, PZero):
            return PRED_ZERO
        if isinstance(a, POne):
            return b
        if isinstance(b, POne):
            return a
        if a == b:
            return a
        if isinstance(a, PNot) and a.arg == b:
            return PRED_ZERO
        if isinstance(b, PNot) and b.arg == a:
            return PRED_ZERO
    return _intern(PAnd(a, b))


def por(a, b):
    """Smart constructor for disjunction.

    Rewrites ``0+a = a``, ``a+0 = a``, ``1+a = 1``, ``a+1 = 1``, ``a+a = a``
    and the excluded middle ``a+~a = 1``.
    """
    if not isinstance(a, Pred) or not isinstance(b, Pred):
        raise TypeError(f"por expects Preds, got {a!r}, {b!r}")
    if CONFIG.smart_constructors:
        if isinstance(a, POne) or isinstance(b, POne):
            return PRED_ONE
        if isinstance(a, PZero):
            return b
        if isinstance(b, PZero):
            return a
        if a == b:
            return a
        if isinstance(a, PNot) and a.arg == b:
            return PRED_ONE
        if isinstance(b, PNot) and b.arg == a:
            return PRED_ONE
    return _intern(POr(a, b))


def pand_all(preds):
    """Conjunction of an iterable of predicates (``1`` when empty)."""
    result = PRED_ONE
    for p in preds:
        result = pand(result, p)
    return result


def por_all(preds):
    """Disjunction of an iterable of predicates (``0`` when empty)."""
    result = PRED_ZERO
    for p in preds:
        result = por(result, p)
    return result


# ---------------------------------------------------------------------------
# actions (terms)
# ---------------------------------------------------------------------------


class Term:
    """Base class for KAT actions."""

    __slots__ = ("_hash", "size", "_fp")

    def _key(self):
        raise NotImplementedError

    def __hash__(self):
        if self._hash is None:
            self._hash = hash((self.__class__.__name__, self._key()))
        return self._hash

    def __eq__(self, other):
        if self is other:
            return True
        if other.__class__ is not self.__class__:
            return False
        return self._key() == other._key()

    def __ne__(self, other):
        return not self.__eq__(other)

    def __repr__(self):
        return self.pretty()

    def pretty(self):
        raise NotImplementedError

    def sort_key(self):
        return (self.size, self.pretty())

    # Operator overloads mirroring the paper's syntax.
    def __add__(self, other):
        if isinstance(other, Term):
            return tplus(self, other)
        if isinstance(other, Pred):
            return tplus(self, ttest(other))
        return NotImplemented

    def __mul__(self, other):
        if isinstance(other, Term):
            return tseq(self, other)
        if isinstance(other, Pred):
            return tseq(self, ttest(other))
        return NotImplemented

    def star(self):
        return tstar(self)


class TTest(Term):
    """An embedded predicate."""

    __slots__ = ("pred",)

    def __init__(self, pred):
        self._hash = None
        self.pred = pred
        self.size = pred.size

    def _key(self):
        return (self.pred,)

    def pretty(self):
        return self.pred.pretty()


class TPrim(Term):
    """A theory-supplied primitive action ``pi``."""

    __slots__ = ("pi",)

    def __init__(self, pi):
        self._hash = None
        self.pi = pi
        self.size = 1

    def _key(self):
        return (self.pi,)

    def pretty(self):
        return str(self.pi)


class TPlus(Term):
    """Parallel composition (choice) ``p + q``."""

    __slots__ = ("left", "right")

    def __init__(self, left, right):
        self._hash = None
        self.left = left
        self.right = right
        self.size = left.size + right.size + 1

    def _key(self):
        return (self.left, self.right)

    def pretty(self):
        return f"({self.left.pretty()} + {self.right.pretty()})"


class TSeq(Term):
    """Sequential composition ``p ; q``."""

    __slots__ = ("left", "right")

    def __init__(self, left, right):
        self._hash = None
        self.left = left
        self.right = right
        self.size = left.size + right.size + 1

    def _key(self):
        return (self.left, self.right)

    def pretty(self):
        return f"({self.left.pretty()};{self.right.pretty()})"


class TStar(Term):
    """Kleene star ``p*``."""

    __slots__ = ("arg",)

    def __init__(self, arg):
        self._hash = None
        self.arg = arg
        self.size = arg.size + 1

    def _key(self):
        return (self.arg,)

    def pretty(self):
        return f"({self.arg.pretty()})*"


TERM_ZERO = _intern(TTest(PRED_ZERO))
TERM_ONE = _intern(TTest(PRED_ONE))


def tzero():
    """The action ``0`` (drop)."""
    return TERM_ZERO


def tone():
    """The action ``1`` (skip)."""
    return TERM_ONE


def ttest(pred):
    """Embed a predicate into the action language."""
    if not isinstance(pred, Pred):
        raise TypeError(f"ttest expects a Pred, got {pred!r}")
    if pred is PRED_ZERO:
        return TERM_ZERO
    if pred is PRED_ONE:
        return TERM_ONE
    return _intern(TTest(pred))


def tprim(pi):
    """Wrap a theory primitive action."""
    return _intern(TPrim(pi))


def tplus(p, q):
    """Smart constructor for choice.

    Rewrites ``0+p = p``, ``p+0 = p`` and ``p+p = p``; merges adjacent
    embedded tests with the predicate-level ``+``.
    """
    if not isinstance(p, Term) or not isinstance(q, Term):
        raise TypeError(f"tplus expects Terms, got {p!r}, {q!r}")
    if CONFIG.smart_constructors:
        if p is TERM_ZERO or (isinstance(p, TTest) and isinstance(p.pred, PZero)):
            return q
        if q is TERM_ZERO or (isinstance(q, TTest) and isinstance(q.pred, PZero)):
            return p
        if p == q:
            return p
        if isinstance(p, TTest) and isinstance(q, TTest):
            return ttest(por(p.pred, q.pred))
    return _intern(TPlus(p, q))


def tseq(p, q):
    """Smart constructor for sequencing.

    Rewrites ``1;p = p``, ``p;1 = p``, ``0;p = 0``, ``p;0 = 0``; merges
    adjacent embedded tests with the predicate-level ``;``.
    """
    if not isinstance(p, Term) or not isinstance(q, Term):
        raise TypeError(f"tseq expects Terms, got {p!r}, {q!r}")
    if CONFIG.smart_constructors:
        if isinstance(p, TTest) and isinstance(p.pred, PZero):
            return TERM_ZERO
        if isinstance(q, TTest) and isinstance(q.pred, PZero):
            return TERM_ZERO
        if isinstance(p, TTest) and isinstance(p.pred, POne):
            return q
        if isinstance(q, TTest) and isinstance(q.pred, POne):
            return p
        if isinstance(p, TTest) and isinstance(q, TTest):
            return ttest(pand(p.pred, q.pred))
    return _intern(TSeq(p, q))


def tstar(p):
    """Smart constructor for Kleene star.

    Rewrites ``0* = 1``, ``1* = 1``, ``a* = 1`` for embedded tests ``a`` and
    ``(p*)* = p*``.
    """
    if not isinstance(p, Term):
        raise TypeError(f"tstar expects a Term, got {p!r}")
    if CONFIG.smart_constructors:
        if isinstance(p, TTest):
            # Tests are idempotent and below 1, so a* = 1 for any test a.
            return TERM_ONE
        if isinstance(p, TStar):
            return p
    return _intern(TStar(p))


def tplus_all(terms):
    """Choice over an iterable of terms (``0`` when empty)."""
    result = TERM_ZERO
    for t in terms:
        result = tplus(result, t)
    return result


def tseq_all(terms):
    """Sequence over an iterable of terms (``1`` when empty)."""
    result = TERM_ONE
    for t in terms:
        result = tseq(result, t)
    return result


# ---------------------------------------------------------------------------
# queries over terms
# ---------------------------------------------------------------------------


def is_restricted(term):
    """True iff ``term`` contains no tests other than ``0`` and ``1``.

    Restricted actions (the set ``T_RA`` of the paper, Section 3.3.1) are the
    action parts of normal forms; their denotations are regular languages over
    the primitive-action alphabet.
    """
    if isinstance(term, TTest):
        return isinstance(term.pred, (PZero, POne))
    if isinstance(term, TPrim):
        return True
    if isinstance(term, (TPlus, TSeq)):
        return is_restricted(term.left) and is_restricted(term.right)
    if isinstance(term, TStar):
        return is_restricted(term.arg)
    raise TypeError(f"not a Term: {term!r}")


def primitive_actions(term):
    """The set of theory primitive actions occurring in ``term``."""
    out = set()
    _collect_actions(term, out)
    return out


def _collect_actions(term, out):
    if isinstance(term, TPrim):
        out.add(term.pi)
    elif isinstance(term, (TPlus, TSeq)):
        _collect_actions(term.left, out)
        _collect_actions(term.right, out)
    elif isinstance(term, TStar):
        _collect_actions(term.arg, out)
    elif isinstance(term, TTest):
        pass
    else:
        raise TypeError(f"not a Term: {term!r}")


def primitive_tests_of_pred(pred):
    """The set of theory primitive tests occurring in a predicate."""
    out = set()
    _collect_pred_prims(pred, out)
    return out


def _collect_pred_prims(pred, out):
    if isinstance(pred, PPrim):
        out.add(pred.alpha)
    elif isinstance(pred, PNot):
        _collect_pred_prims(pred.arg, out)
    elif isinstance(pred, (PAnd, POr)):
        _collect_pred_prims(pred.left, out)
        _collect_pred_prims(pred.right, out)
    elif isinstance(pred, (PZero, POne)):
        pass
    else:
        raise TypeError(f"not a Pred: {pred!r}")


def primitive_tests_of_term(term):
    """The set of theory primitive tests occurring anywhere in a term."""
    out = set()
    _collect_term_prims(term, out)
    return out


def _collect_term_prims(term, out):
    if isinstance(term, TTest):
        _collect_pred_prims(term.pred, out)
    elif isinstance(term, TPrim):
        pass
    elif isinstance(term, (TPlus, TSeq)):
        _collect_term_prims(term.left, out)
        _collect_term_prims(term.right, out)
    elif isinstance(term, TStar):
        _collect_term_prims(term.arg, out)
    else:
        raise TypeError(f"not a Term: {term!r}")


def term_of_pred(pred):
    """Alias for :func:`ttest` (embed a predicate as a term)."""
    return ttest(pred)


def pred_of_term(term):
    """Return the predicate of an embedded test, or ``None`` otherwise."""
    if isinstance(term, TTest):
        return term.pred
    return None
