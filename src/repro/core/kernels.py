"""Batched product-walk and membership kernels over the flat automaton IR.

The legacy product walk (:mod:`repro.core.compile`) pops one product pair at
a time off a FIFO queue — per-pair Python overhead on what is, after PR 5,
pure int arithmetic over flat tables.  This module reformulates the walks as
**batched kernels** over the contiguous ``array('i')`` arenas:

* :func:`flat_compare` / :func:`flat_includes` — language equivalence /
  containment.  Two layers:

  1. a **canonical-equality fast path**: minimization + canonical trimming
     (see :func:`repro.core.compile._minimized`) make the compiled artifact a
     canonical value of its language, so *equal tables ⇔ equal languages* —
     the hot case (warm caches, equivalent sums) is decided by comparing two
     flat buffers, no walk at all;
  2. a **level-synchronous batched BFS** for the rest: the whole frontier
     steps under every merged symbol in one shot (numpy fancy-indexing into
     padded successor tables when numpy is importable; the pure-Python
     pair-at-a-time walk otherwise).  Discovery order, verdicts and shortest
     witness words are byte-identical to the legacy walk — the level BFS
     flattens each frontier's children row-major (exactly the legacy enqueue
     order) and dedupes by first occurrence.

* :func:`accepts_batch` — judge many words against one automaton in a single
  call: the transition table is padded with a dead row (unknown symbols) and
  an identity column (past-end padding), then all words advance one position
  per step through one fancy-indexing gather.

Every kernel runs under a ``kernel`` trace phase and emits counters
(``kernel_fastpath_hits``, ``kernel_levels``, ``kernel_pairs``,
``kernel_batch_words``, ``kernel_walk_fallbacks``) so traces attribute walk
time precisely.  Cooperative cancellation is checked once per BFS level /
batch step — the same deadline granularity the legacy walk offers per pair.

numpy is optional: :data:`HAVE_NUMPY` records whether the accelerated paths
are active; without it the kernels keep identical semantics through the
pure-``array`` fallbacks (the equality fast path needs no numpy at all).
"""

from __future__ import annotations

from repro.core.arena import sigma_index
from repro.core.compile import _merged_sigma, _product_search_untraced
from repro.utils.trace import current_trace

try:  # pragma: no cover - exercised via the forced-fallback tests
    import numpy as _np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover
    _np = None
    HAVE_NUMPY = False

_DEAD = -1

#: Below this many product-pair codes the vectorized BFS's per-level overhead
#: (``unique`` + ``argsort`` on tiny frontiers) costs more than walking the
#: whole product pair-at-a-time; route small walks to the legacy loop.  Tests
#: monkeypatch this to 0 to force vectorized coverage on small automata.
_BFS_NUMPY_MIN_PAIRS = 4096

#: Above this many product-pair codes the dense ``seen`` bitmap of the
#: vectorized BFS would dominate memory; fall back to the set-based walk.
_SEEN_DENSE_LIMIT = 1 << 24

#: Below this many words the padded-table membership gather costs more to set
#: up than the plain per-word loop.
_BATCH_NUMPY_MIN = 8


def _count(name, n=1):
    trace = current_trace()
    if trace is not None:
        trace.count(name, n)


def _tables_equal(a, b):
    """Canonical-value equality: identical flat tables ⇒ identical language.

    Sound for any pair (same alphabet + same table = same DFA); *complete*
    only for canonically trimmed minimal automata, which is what
    ``compile_automaton`` produces — the BFS below settles inequality either
    way, so completeness is a speed matter, not a correctness one.
    """
    return (
        a.n_states == b.n_states
        and a.accepting == b.accepting
        and a.sigma == b.sigma
        and a.delta == b.delta
    )


# ---------------------------------------------------------------------------
# compare / includes
# ---------------------------------------------------------------------------


def flat_compare(a, b, cancel=None):
    """Decide ``L(a) == L(b)`` on the flat kernel; returns ``(equivalent, word)``.

    Byte-identical verdicts and (shortest) witness words to
    :func:`repro.core.compile.compiled_compare` — the differential suite in
    ``tests/test_kernels.py`` holds the two to equality.
    """
    trace = current_trace()
    if trace is None:
        return _flat_compare(a, b, cancel)
    with trace.span("kernel"):
        return _flat_compare(a, b, cancel)


def _flat_compare(a, b, cancel):
    if a is b or _tables_equal(a, b):
        _count("kernel_fastpath_hits")
        return True, None
    return _batched_search(a, b, "compare", cancel)


def flat_includes(a, b, cancel=None):
    """Decide ``L(a) <= L(b)`` on the flat kernel; returns ``(included, word)``.

    Flat analogue of :func:`repro.core.compile.compiled_includes`, with the
    same witness guarantees.
    """
    trace = current_trace()
    if trace is None:
        return _flat_includes(a, b, cancel)
    with trace.span("kernel"):
        return _flat_includes(a, b, cancel)


def _flat_includes(a, b, cancel):
    if a is b or a.accepting == 0 or _tables_equal(a, b):
        # Reflexivity, an empty left language, or equal languages: trivially
        # included, no walk needed.
        _count("kernel_fastpath_hits")
        return True, None
    return _batched_search(a, b, "includes", cancel)


def _batched_search(a, b, kind, cancel):
    """Dispatch the product BFS: vectorized when numpy fits, else legacy walk."""
    codes = (a.n_states + 1) * (b.n_states + 1)
    if _np is not None and _BFS_NUMPY_MIN_PAIRS <= codes <= _SEEN_DENSE_LIMIT:
        return _level_bfs_numpy(a, b, kind, cancel)
    _count("kernel_walk_fallbacks")
    if kind == "compare":
        return _product_search_untraced(a, b, lambda pa, qb: pa != qb, cancel)
    return _product_search_untraced(a, b, lambda pa, qb: pa and not qb, cancel)


def _accepting_vector(aut, np):
    """Bool vector over padded state codes: index 0 is the dead sink."""
    bits = np.zeros(aut.n_states + 1, dtype=bool)
    accepting = aut.accepting
    for s in range(aut.n_states):
        if (accepting >> s) & 1:
            bits[s + 1] = True
    return bits


def _padded_table(aut, merged_map, np):
    """Successor table over padded codes: ``T[p1, k]`` is the padded successor
    of padded state ``p1`` (0 = dead) under the ``k``-th *merged* symbol,
    scaled for pair-code arithmetic by the caller.  Absent symbols and the
    dead row map to 0."""
    n = aut.n_states
    nsym = len(aut.sigma)
    table = np.zeros((n + 1, len(merged_map)), dtype=np.int64)
    if n and nsym:
        rows = np.frombuffer(aut.delta, dtype=np.intc).reshape(n, nsym)
        for k, local in enumerate(merged_map):
            if local != _DEAD:
                table[1:, k] = rows[:, local].astype(np.int64) + 1
    return table


def _level_bfs_numpy(a, b, kind, cancel):
    """Level-synchronous vectorized product BFS.

    Reproduces the legacy FIFO walk's discovery order exactly: the frontier's
    children matrix (frontier-major, merged-symbol-minor) flattens row-major
    to the legacy enqueue order; ``np.unique(..., return_index=True)`` plus a
    sort on first occurrence keeps the earliest discovery of each pair; the
    joint-dead pair is pre-marked seen (the legacy walk never enqueues it).
    Mismatches are scanned per level in frontier order, so the first hit is
    the same pair — and hence the same shortest witness word — the legacy
    walk would report.
    """
    np = _np
    merged, map_a, map_b = _merged_sigma(a, b)
    nsym = len(merged)
    width = b.n_states + 1  # pair code = p1 * width + q1 (0 = dead component)
    table_a = _padded_table(a, map_a, np) * width
    table_b = _padded_table(b, map_b, np)
    acc_a = _accepting_vector(a, np)
    acc_b = _accepting_vector(b, np)
    seen = np.zeros((a.n_states + 1) * width, dtype=bool)
    seen[0] = True  # joint dead sink: nothing past it can mismatch
    start = (a.initial + 1) * width + (b.initial + 1)
    seen[start] = True
    frontier = np.array([start], dtype=np.int64)
    frontiers = [frontier]
    parents = [None]  # per level: flat child index into the previous frontier
    while frontier.size:
        if cancel is not None:
            cancel()
        _count("kernel_levels")
        p1 = frontier // width
        q1 = frontier % width
        left_acc = acc_a[p1]
        right_acc = acc_b[q1]
        if kind == "compare":
            mismatch = left_acc != right_acc
        else:
            mismatch = left_acc & ~right_acc
        hits = np.nonzero(mismatch)[0]
        if hits.size:
            return False, _witness(frontiers, parents, int(hits[0]), merged, nsym)
        if nsym == 0:
            break
        children = table_a[p1] + table_b[q1]  # (frontier, nsym) pair codes
        flat = children.ravel()  # row-major == legacy enqueue order
        uniq, first = np.unique(flat, return_index=True)
        fresh = ~seen[uniq]
        uniq = uniq[fresh]
        first = first[fresh]
        order = np.argsort(first)
        frontier = uniq[order]
        seen[frontier] = True
        _count("kernel_pairs", int(frontier.size))
        frontiers.append(frontier)
        parents.append(first[order])
    return True, None


def _witness(frontiers, parents, position, merged, nsym):
    """Read a shortest witness word off the per-level discovery records."""
    word = []
    for level in range(len(frontiers) - 1, 0, -1):
        flat_index = int(parents[level][position])
        word.append(merged[flat_index % nsym])
        position = flat_index // nsym
    word.reverse()
    return tuple(word)


# ---------------------------------------------------------------------------
# batched membership
# ---------------------------------------------------------------------------


def accepts_batch(aut, words, cancel=None):
    """Judge many words against one automaton in a single call.

    Returns a list of bools aligned with ``words``.  Semantics are exactly
    ``[aut.accepts(w) for w in words]``; the numpy path pads the transition
    table with a dead row (unknown symbols) and an identity column (past-end
    padding) and advances every word one position per gather.  ``cancel`` is
    checked once per word (fallback) or per position step (vectorized).
    """
    words = [tuple(word) for word in words]
    trace = current_trace()
    if trace is None:
        return _accepts_batch(aut, words, cancel)
    with trace.span("kernel"):
        return _accepts_batch(aut, words, cancel)


def _accepts_batch(aut, words, cancel):
    _count("kernel_batch_words", len(words))
    if _np is None or len(words) < _BATCH_NUMPY_MIN:
        if _np is None:
            _count("kernel_walk_fallbacks")
        out = []
        for word in words:
            if cancel is not None:
                cancel()
            out.append(aut.accepts(word))
        return out
    return _accepts_batch_numpy(aut, words, cancel)


def _accepts_batch_numpy(aut, words, cancel):
    np = _np
    n = aut.n_states
    nsym = len(aut.sigma)
    index = sigma_index(aut.sigma)
    # Padded table: row n = dead sink; column nsym = unknown symbol -> dead;
    # column nsym + 1 = past-end padding -> hold the current state.
    table = np.empty((n + 1, nsym + 2), dtype=np.int64)
    if n and nsym:
        table[:n, :nsym] = np.frombuffer(aut.delta, dtype=np.intc).reshape(n, nsym)
    table[n, :] = n
    table[:, nsym] = n
    table[:, nsym + 1] = np.arange(n + 1)
    longest = max((len(word) for word in words), default=0)
    steps = np.full((len(words), longest), nsym + 1, dtype=np.int64)
    for i, word in enumerate(words):
        for t, pi in enumerate(word):
            k = index.get(pi)
            steps[i, t] = nsym if k is None else k
    states = np.zeros(len(words), dtype=np.int64)
    for t in range(longest):
        if cancel is not None:
            cancel()
        states = table[states, steps[:, t]]
    accepting = np.zeros(n + 1, dtype=bool)
    bits = aut.accepting
    for s in range(n):
        if (bits >> s) & 1:
            accepting[s] = True
    return [bool(flag) for flag in accepting[states]]
