"""A small While-language frontend compiled into KMT terms (paper Section 1.1)."""

from repro.lang.while_lang import (
    Abort,
    ActionStmt,
    Assert,
    Assume,
    If,
    Seq,
    Skip,
    While,
    WhileProgram,
    compile_program,
    parse_program,
)

__all__ = [
    "Abort",
    "ActionStmt",
    "Assert",
    "Assume",
    "If",
    "Seq",
    "Skip",
    "While",
    "WhileProgram",
    "compile_program",
    "parse_program",
]
