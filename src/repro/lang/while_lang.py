"""A While-language frontend over KMT theories (paper Section 1.1 and Fig. 1).

The paper motivates KMT with small imperative programs — ``Pnat``, ``Pset``
and ``Pmap`` in Fig. 1 — and shows the standard translation of While programs
into KAT terms::

    skip                      ->  1
    abort                     ->  0
    assume b / assert b       ->  b
    primitive action pi       ->  pi
    s1 ; s2                   ->  s1 ; s2
    if b { s1 } else { s2 }   ->  b;s1 + ~b;s2
    while b { s }             ->  (b;s)* ; ~b

This module provides a statement AST, the compiler into KMT terms, and a
concrete syntax parser so the Fig. 1 programs can be written literally, e.g.::

    assume i < 50;
    while (i < 100) {
        inc(i);
        inc(j); inc(j);
    }
    assert j > 100;

Tests and actions inside a program are parsed by the active client theory, so
the same frontend works for all the shipped theories (and products thereof).
"""

from __future__ import annotations

from repro.core import parser as core_parser
from repro.core import terms as T
from repro.utils.errors import ParseError


# ---------------------------------------------------------------------------
# statement AST
# ---------------------------------------------------------------------------


class Statement:
    """Base class for While-language statements.

    ``span`` is the half-open ``(start, end)`` character range of the
    statement in the source text it was parsed from (``None`` on
    programmatically-built statements; the trailing ``;`` terminator is not
    part of the span).  The concrete classes guarantee a *pretty round-trip*:
    re-parsing ``pretty()`` under the same theory compiles to the identical
    (hash-consed) KMT term — the grammar fuzzer in the test suite holds them
    to it.
    """

    span = None

    def compile(self):
        """Compile this statement into a KMT term."""
        raise NotImplementedError

    def __repr__(self):
        return self.pretty()

    def pretty(self, indent=0):
        raise NotImplementedError


class Skip(Statement):
    """The no-op statement."""

    def compile(self):
        return T.tone()

    def pretty(self, indent=0):
        return " " * indent + "skip;"


class Abort(Statement):
    """The failing statement (no behaviours)."""

    def compile(self):
        return T.tzero()

    def pretty(self, indent=0):
        return " " * indent + "abort;"


class Assume(Statement):
    """``assume b`` — continue only on states satisfying ``b``."""

    def __init__(self, pred):
        self.pred = pred

    def compile(self):
        return T.ttest(self.pred)

    def pretty(self, indent=0):
        return " " * indent + f"assume {self.pred.pretty()};"


class Assert(Statement):
    """``assert b`` — identical to ``assume`` as a KAT term.

    The distinction matters to the *user* (an assert states an intended
    property); verification questions phrase themselves as equivalences, e.g.
    "does dropping the assert change the program?".
    """

    def __init__(self, pred):
        self.pred = pred

    def compile(self):
        return T.ttest(self.pred)

    def pretty(self, indent=0):
        return " " * indent + f"assert {self.pred.pretty()};"


class ActionStmt(Statement):
    """A primitive theory action (or any already-built KMT term)."""

    def __init__(self, term):
        self.term = term

    def compile(self):
        return self.term

    def pretty(self, indent=0):
        return " " * indent + f"{self.term.pretty()};"


class Seq(Statement):
    """A block of statements executed in order."""

    def __init__(self, statements):
        self.statements = list(statements)

    def compile(self):
        return T.tseq_all(stmt.compile() for stmt in self.statements)

    def pretty(self, indent=0):
        return "\n".join(stmt.pretty(indent) for stmt in self.statements)


class If(Statement):
    """``if (b) { s1 } else { s2 }``."""

    cond_span = None

    def __init__(self, cond, then_branch, else_branch=None):
        self.cond = cond
        self.then_branch = then_branch
        self.else_branch = else_branch if else_branch is not None else Skip()

    def compile(self):
        return T.tplus(
            T.tseq(T.ttest(self.cond), self.then_branch.compile()),
            T.tseq(T.ttest(T.pnot(self.cond)), self.else_branch.compile()),
        )

    def pretty(self, indent=0):
        pad = " " * indent
        return (
            f"{pad}if ({self.cond.pretty()}) {{\n"
            f"{self.then_branch.pretty(indent + 2)}\n{pad}}} else {{\n"
            f"{self.else_branch.pretty(indent + 2)}\n{pad}}}"
        )


class While(Statement):
    """``while (b) { s }``."""

    cond_span = None

    def __init__(self, cond, body):
        self.cond = cond
        self.body = body

    def compile(self):
        return T.tseq(
            T.tstar(T.tseq(T.ttest(self.cond), self.body.compile())),
            T.ttest(T.pnot(self.cond)),
        )

    def pretty(self, indent=0):
        pad = " " * indent
        return f"{pad}while ({self.cond.pretty()}) {{\n{self.body.pretty(indent + 2)}\n{pad}}}"


class WhileProgram:
    """A parsed/constructed While program together with its theory.

    ``source`` is the original program text when the program came from
    :func:`parse_program` (``None`` otherwise); statement ``span`` offsets
    index into it.
    """

    def __init__(self, body, theory, source=None):
        self.body = body if isinstance(body, Statement) else Seq(body)
        self.theory = theory
        self.source = source

    def compile(self):
        """The KMT term denoting this program."""
        return self.body.compile()

    def pretty(self):
        return self.body.pretty()

    def __repr__(self):
        return f"WhileProgram(\n{self.pretty()}\n)"


def compile_program(program):
    """Compile a :class:`WhileProgram` or a :class:`Statement` into a term."""
    if isinstance(program, WhileProgram):
        return program.compile()
    if isinstance(program, Statement):
        return program.compile()
    raise TypeError(f"expected a WhileProgram or Statement, got {program!r}")


# ---------------------------------------------------------------------------
# concrete syntax
# ---------------------------------------------------------------------------


class _ProgramParser:
    """Statement-level recursive descent; tests/actions defer to the theory.

    Tests and actions are *not* re-joined from token values: the parser
    slices the original source between the phrase's first and last token and
    hands that substring to the core parser, so a :class:`ParseError` from a
    sub-parse can be re-anchored at its true offset in the whole (possibly
    multi-line) program — line, column and caret frame all point into the
    program the user actually wrote.
    """

    def __init__(self, theory, text):
        self.theory = theory
        self.text = text
        self.tokens = core_parser.tokenize(text)
        self.index = 0
        self._last_end = 0  # one past the last consumed token

    # -- token plumbing -----------------------------------------------------
    def peek(self):
        return self.tokens[self.index]

    def advance(self):
        token = self.tokens[self.index]
        self.index += 1
        if token.kind != "end":
            self._last_end = token.pos + len(token.value)
        return token

    def at_end(self):
        return self.peek().kind == "end"

    def at_sym(self, sym):
        token = self.peek()
        return token.kind == "sym" and token.value == sym

    def at_word(self, word):
        token = self.peek()
        return token.kind == "word" and token.value == word

    def expect_sym(self, sym):
        if not self.at_sym(sym):
            token = self.peek()
            found = "end of input" if token.kind == "end" else repr(token.value)
            raise ParseError(f"found {found}", token.pos, self.text,
                             expected=(repr(sym),))
        return self.advance()

    # -- helpers: re-parse token runs with the KMT term/test parser ------------
    def _collect_until(self, stop_symbols):
        """Collect tokens (balancing brackets) until a stop symbol at depth 0."""
        depth = 0
        collected = []
        while True:
            token = self.peek()
            if token.kind == "end":
                break
            if token.kind == "sym":
                if token.value in ("(", "["):
                    depth += 1
                elif token.value in (")", "]"):
                    if depth == 0:
                        break
                    depth -= 1
                elif depth == 0 and token.value in stop_symbols:
                    break
            collected.append(self.advance())
        return collected

    def _collect_balanced_parens(self):
        """Consume a parenthesized region and return the inner tokens."""
        self.expect_sym("(")
        depth = 0
        collected = []
        while True:
            token = self.peek()
            if token.kind == "end":
                raise ParseError("unterminated '('", token.pos, self.text)
            if token.kind == "sym":
                if token.value == "(":
                    depth += 1
                elif token.value == ")":
                    if depth == 0:
                        self.advance()
                        break
                    depth -= 1
            collected.append(self.advance())
        return collected

    def _slice_source(self, tokens):
        """The original source substring spanned by a token run + its offset."""
        start = tokens[0].pos
        end = tokens[-1].pos + len(tokens[-1].value)
        return self.text[start:end], start

    def _reanchor(self, error, offset):
        """Re-render a sub-parse error against the whole program text."""
        if error.position is None:
            return error
        return ParseError(error.bare_message, error.position + offset, self.text,
                          expected=error.expected)

    def _parse_pred_tokens(self, tokens):
        if not tokens:
            raise ParseError("expected a test", self.peek().pos, self.text)
        snippet, offset = self._slice_source(tokens)
        try:
            return core_parser.parse_pred(snippet, self.theory)
        except ParseError as error:
            raise self._reanchor(error, offset) from None

    def _parse_term_tokens(self, tokens):
        if not tokens:
            raise ParseError("expected an action", self.peek().pos, self.text)
        snippet, offset = self._slice_source(tokens)
        try:
            return core_parser.parse_term(snippet, self.theory)
        except ParseError as error:
            raise self._reanchor(error, offset) from None

    # -- grammar -------------------------------------------------------------
    def parse_program(self, stop_at_brace=False):
        statements = []
        while not self.at_end():
            if stop_at_brace and self.at_sym("}"):
                break
            statements.append(self.parse_statement())
            while self.at_sym(";"):
                self.advance()
        return Seq(statements)

    def parse_statement(self):
        start = self.peek().pos
        stmt = self._parse_statement_inner()
        stmt.span = (start, self._last_end)
        return stmt

    def _parse_statement_inner(self):
        if self.at_word("skip"):
            self.advance()
            return Skip()
        if self.at_word("abort"):
            self.advance()
            return Abort()
        if self.at_word("assume"):
            self.advance()
            tokens = self._collect_until({";", "{", "}"})
            return Assume(self._parse_pred_tokens(tokens))
        if self.at_word("assert"):
            self.advance()
            tokens = self._collect_until({";", "{", "}"})
            return Assert(self._parse_pred_tokens(tokens))
        if self.at_word("if"):
            return self._parse_if()
        if self.at_word("while"):
            return self._parse_while()
        tokens = self._collect_until({";", "{", "}"})
        return ActionStmt(self._parse_term_tokens(tokens))

    def _parse_block(self):
        self.expect_sym("{")
        block = self.parse_program(stop_at_brace=True)
        self.expect_sym("}")
        return block

    def _parse_cond(self):
        tokens = self._collect_balanced_parens()
        if tokens:
            span = (tokens[0].pos, tokens[-1].pos + len(tokens[-1].value))
        else:
            span = (self._last_end, self._last_end)
        return self._parse_pred_tokens(tokens), span

    def _parse_if(self):
        self.advance()  # 'if'
        cond, cond_span = self._parse_cond()
        then_branch = self._parse_block()
        else_branch = None
        if self.at_word("else"):
            self.advance()
            else_branch = self._parse_block()
        stmt = If(cond, then_branch, else_branch)
        stmt.cond_span = cond_span
        return stmt

    def _parse_while(self):
        self.advance()  # 'while'
        cond, cond_span = self._parse_cond()
        body = self._parse_block()
        stmt = While(cond, body)
        stmt.cond_span = cond_span
        return stmt


def parse_program(text, theory):
    """Parse a While program over the given theory; returns a :class:`WhileProgram`.

    The returned program keeps the source text, and every parsed statement
    carries its ``(start, end)`` source span (``If``/``While`` additionally
    record ``cond_span``, the guard's range inside the parentheses).
    """
    parser = _ProgramParser(theory, text)
    body = parser.parse_program()
    if not parser.at_end():
        token = parser.peek()
        raise ParseError(f"trailing input starting at {token.value!r}", token.pos, text,
                         expected=("a statement", "';'", "end of input"))
    return WhileProgram(body, theory, source=text)
