"""Temporal NetKAT = LTLf instantiated over tracing NetKAT (paper Section 2.6).

The paper's point is that Temporal NetKAT — an entire PLDI 2016 system — falls
out of the framework by mere composition: take the tracing NetKAT theory of
Fig. 4 and apply the higher-order LTLf theory of Fig. 3d to it.  This module
is correspondingly tiny: it exposes a constructor for the composed theory and
a couple of conveniences for writing network-history queries.
"""

from __future__ import annotations

from repro.theories.ltlf import LtlfTheory
from repro.theories.netkat import NetKatTheory


def temporal_netkat(fields=None, trace_bound=8):
    """Build the Temporal NetKAT theory: ``LTLf(NetKAT(fields))``.

    Returns the :class:`~repro.theories.ltlf.LtlfTheory` wrapping a
    :class:`~repro.theories.netkat.NetKatTheory`; the underlying NetKAT theory
    is available as ``theory.inner`` for building field tests and assignments.
    """
    return LtlfTheory(NetKatTheory(fields), trace_bound=trace_bound)


def waypoint_query(theory, field, value):
    """The predicate "the packet has (at some point) traversed ``field = value``".

    A typical Temporal NetKAT verification asks whether every delivered packet
    passed through a waypoint (say a firewall switch): for a network program
    ``r`` that is the equivalence ``r == r ; ev(sw = FW)``.
    """
    return theory.ever(theory.inner.eq(field, value))
