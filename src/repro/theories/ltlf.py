"""Past-time linear temporal logic on finite traces, LTLf (paper Fig. 3d, §2.4).

LTLf is a *higher-order* theory: it wraps an inner client theory ``T`` and
extends its predicate language with two temporal primitives whose arguments
are arbitrary predicates of the combined language::

    last(a)        — "a held in the previous state"  (false at the start of time)
    since(a, b)    — "b held at some point in the past and a has held since"
                     (degenerates to b at the start of time)

and the usual derived operators::

    start          ==  not last(true)
    wlast(a)       ==  not last(not a)          (weak last)
    ev(a)          ==  since(true, a)           (eventually in the past, ♦)
    always(a)      ==  not ev(not a)            (globally in the past, □)
    back_to(a, b)  ==  since(a, b) + always(a)  (the B operator)

Actions are exactly the inner theory's actions; states are inner states — all
the temporal information lives in the trace, which the tracing semantics
already records.

Pushback (Fig. 3d) needs the *derived* weakest precondition on the embedded
predicates ``a``/``b`` — this is where the recursive-module knot of the OCaml
implementation appears.  Here the theory calls
``self.kmt.weakest_precondition`` (the PB• relation restricted to primitive
actions)::

    pi ; last(a)      WP   a
    pi ; since(a, b)  WP   b'  +  a' ; since(a, b)
                           where pi;a == a';pi and pi;b == b';pi

Satisfiability of temporal predicates is decided by bounded trace search: a
formula is satisfiable iff it holds at the end of some finite trace, and we
look for traces up to a configurable length (default 8) by expanding the
temporal operators into per-position constraints on *independent* copies of
the inner theory's state and handing the result to the generic DPLL(T) engine
with a position-aware oracle.  This replaces the OCaml implementation's Z3
encoding; the bound is an explicit, documented approximation (sound for SAT
answers, and exact for the formulas appearing in the paper's examples, whose
temporal depth is small).  The inner theory must be a *state* theory (its
tests may only inspect the last state), which holds for every shipped theory
except LTLf itself.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import terms as T
from repro.core.theory import Theory
from repro.utils.errors import ParseError, TheoryError

#: How long a trace the bounded satisfiability search will consider.
DEFAULT_TRACE_BOUND = 8


@dataclass(frozen=True)
class LtlLast:
    """The primitive test ``last(pred)``."""

    pred: object  # a repro.core.terms.Pred

    def __str__(self):
        return f"last({self.pred.pretty()})"


@dataclass(frozen=True)
class LtlSince:
    """The primitive test ``since(pred_a, pred_b)``."""

    pred_a: object
    pred_b: object

    def __str__(self):
        return f"since({self.pred_a.pretty()}, {self.pred_b.pretty()})"


@dataclass(frozen=True)
class _TaggedAtom:
    """An inner-theory test pinned to a trace position (bounded SAT only)."""

    position: int
    alpha: object

    def __str__(self):
        return f"{self.alpha}@{self.position}"


class _PositionOracle(Theory):
    """Wraps the inner theory so tagged atoms at different positions are independent."""

    name = "ltlf-position-oracle"

    def __init__(self, inner):
        super().__init__()
        self.inner = inner

    def owns_test(self, alpha):
        return isinstance(alpha, _TaggedAtom)

    def satisfiable_conjunction(self, literals):
        by_position = {}
        for atom, polarity in literals:
            by_position.setdefault(atom.position, []).append((atom.alpha, polarity))
        for _, inner_literals in by_position.items():
            if not self.inner.satisfiable_conjunction(inner_literals):
                return False
        return True


class LtlfTheory(Theory):
    """Past-time LTL on finite traces over an arbitrary (state) client theory."""

    name = "ltlf"

    def __init__(self, inner, trace_bound=DEFAULT_TRACE_BOUND):
        super().__init__()
        self.inner = inner
        self.trace_bound = trace_bound
        self._oracle = _PositionOracle(inner)

    # -- recursive knot -------------------------------------------------------
    def attach(self, kmt):
        super().attach(kmt)
        self.inner.attach(kmt)

    # -- ownership ---------------------------------------------------------
    def owns_test(self, alpha):
        return isinstance(alpha, (LtlLast, LtlSince)) or self.inner.owns_test(alpha)

    def owns_action(self, pi):
        return self.inner.owns_action(pi)

    # -- semantics -----------------------------------------------------------
    def initial_state(self):
        return self.inner.initial_state()

    def pred(self, alpha, trace):
        if isinstance(alpha, LtlLast):
            previous = trace.prefix()
            if previous is None:
                return False
            return self.require_kmt().eval_pred(alpha.pred, previous)
        if isinstance(alpha, LtlSince):
            kmt = self.require_kmt()
            if kmt.eval_pred(alpha.pred_b, trace):
                return True
            previous = trace.prefix()
            if previous is None:
                return False
            return kmt.eval_pred(alpha.pred_a, trace) and self.pred(alpha, previous)
        return self.inner.pred(alpha, trace)

    def act(self, pi, state):
        return self.inner.act(pi, state)

    # -- pushback -------------------------------------------------------------
    def push_back(self, pi, alpha):
        kmt = self.require_kmt()
        if isinstance(alpha, LtlLast):
            return [alpha.pred]
        if isinstance(alpha, LtlSince):
            pushed_a = kmt.weakest_precondition(pi, alpha.pred_a)
            pushed_b = kmt.weakest_precondition(pi, alpha.pred_b)
            return [pushed_b, T.pand(pushed_a, T.pprim(alpha))]
        return self.inner.push_back(pi, alpha)

    def subterms(self, alpha):
        if isinstance(alpha, LtlLast):
            return [alpha.pred]
        if isinstance(alpha, LtlSince):
            return [alpha.pred_a, alpha.pred_b]
        return self.inner.subterms(alpha)

    # -- satisfiability ---------------------------------------------------------
    def satisfiable(self, pred):
        from repro.smt.dpll import dpll_satisfiable

        if not _mentions_temporal(pred):
            return dpll_satisfiable(pred, self.inner)
        for length in range(1, self.trace_bound + 1):
            expanded = self._expand(pred, length - 1)
            if dpll_satisfiable(expanded, self._oracle):
                return True
        return False

    def satisfiable_conjunction(self, literals):
        from repro.smt.literals import conjunction_of

        return self.satisfiable(conjunction_of(literals))

    def _expand(self, pred, position):
        """Rewrite ``pred``, evaluated at ``position``, into per-position atoms."""
        if isinstance(pred, (T.PZero, T.POne)):
            return pred
        if isinstance(pred, T.PNot):
            return T.pnot(self._expand(pred.arg, position))
        if isinstance(pred, T.PAnd):
            return T.pand(self._expand(pred.left, position), self._expand(pred.right, position))
        if isinstance(pred, T.POr):
            return T.por(self._expand(pred.left, position), self._expand(pred.right, position))
        if isinstance(pred, T.PPrim):
            alpha = pred.alpha
            if isinstance(alpha, LtlLast):
                if position == 0:
                    return T.pzero()
                return self._expand(alpha.pred, position - 1)
            if isinstance(alpha, LtlSince):
                here_b = self._expand(alpha.pred_b, position)
                if position == 0:
                    return here_b
                here_a = self._expand(alpha.pred_a, position)
                earlier = self._expand(pred, position - 1)
                return T.por(here_b, T.pand(here_a, earlier))
            return T.pprim(_TaggedAtom(position, alpha))
        raise TypeError(f"not a Pred: {pred!r}")

    # -- derived operators ---------------------------------------------------------
    def last(self, pred):
        """``last(pred)`` — pred held in the previous state."""
        return T.pprim(LtlLast(pred))

    def since(self, pred_a, pred_b):
        """``since(a, b)`` — b held in the past and a has held since."""
        return T.pprim(LtlSince(pred_a, pred_b))

    def start(self):
        """``start`` — we are at the first state of the trace."""
        return T.pnot(self.last(T.pone()))

    def wlast(self, pred):
        """Weak last: true at the start of time, otherwise ``last(pred)``."""
        return T.pnot(self.last(T.pnot(pred)))

    def ever(self, pred):
        """``ev(a)`` / ♦a — a held at some point in the past (or now)."""
        return self.since(T.pone(), pred)

    def always(self, pred):
        """``always(a)`` / □a — a has held at every point so far."""
        return T.pnot(self.ever(T.pnot(pred)))

    def back_to(self, pred_a, pred_b):
        """``a B b`` — since(a, b) or a has held forever."""
        return T.por(self.since(pred_a, pred_b), self.always(pred_a))

    # -- parsing ------------------------------------------------------------------
    def parser_keywords(self):
        keywords = {
            "last": self._parse_unary(self.last),
            "wlast": self._parse_unary(self.wlast),
            "ev": self._parse_unary(self.ever),
            "eventually": self._parse_unary(self.ever),
            "always": self._parse_unary(self.always),
            "globally": self._parse_unary(self.always),
            "since": self._parse_binary(self.since),
            "backto": self._parse_binary(self.back_to),
            "start": lambda parser: self.start(),
        }
        keywords.update(self.inner.parser_keywords())
        return keywords

    def _parse_unary(self, build):
        def handler(parser):
            parser.expect_sym("(")
            term = parser.parse_expr()
            parser.expect_sym(")")
            pred = T.pred_of_term(term)
            if pred is None:
                raise ParseError("temporal operators apply to tests only")
            return build(pred)

        return handler

    def _parse_binary(self, build):
        def handler(parser):
            parser.expect_sym("(")
            first_term = parser.parse_expr()
            parser.expect_sym(",")
            second_term = parser.parse_expr()
            parser.expect_sym(")")
            first = T.pred_of_term(first_term)
            second = T.pred_of_term(second_term)
            if first is None or second is None:
                raise ParseError("temporal operators apply to tests only")
            return build(first, second)

        return handler

    def parse_phrase(self, tokens):
        return self.inner.parse_phrase(tokens)

    def test_variables(self, alpha):
        if isinstance(alpha, (LtlLast, LtlSince)):
            return ()
        return self.inner.test_variables(alpha)

    def action_variables(self, pi):
        return self.inner.action_variables(pi)

    def describe(self):
        return f"ltlf({self.inner.describe()})"


def _mentions_temporal(pred):
    if isinstance(pred, T.PPrim):
        return isinstance(pred.alpha, (LtlLast, LtlSince))
    if isinstance(pred, T.PNot):
        return _mentions_temporal(pred.arg)
    if isinstance(pred, (T.PAnd, T.POr)):
        return _mentions_temporal(pred.left) or _mentions_temporal(pred.right)
    return False
