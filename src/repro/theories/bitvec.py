"""The theory of bit vectors / Boolean variables (paper Fig. 3a, Section 2.1).

Primitive tests:   ``b = T``            (``b = F`` is sugar for ``~(b = T)``)
Primitive actions: ``b := T``, ``b := F``
Derived sugar:     ``flip b``  ==  ``b = T; b := F + b = F; b := T``

States map variable names to booleans (unset variables read as false).  Note
the tracing-semantics subtlety discussed in Section 2.1: unlike KAT+B!,
``b := T; b := T`` is *not* equivalent to ``b := T`` here because the two runs
produce different traces.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import terms as T
from repro.core.parser import match_phrase, phrase_text
from repro.core.theory import Theory
from repro.utils.errors import ParseError, TheoryError
from repro.utils.frozendict import FrozenDict


@dataclass(frozen=True)
class BoolEq:
    """The primitive test ``var = T``."""

    var: str

    def __str__(self):
        return f"{self.var} = T"


@dataclass(frozen=True)
class BoolAssign:
    """The primitive action ``var := value``."""

    var: str
    value: bool

    def __str__(self):
        return f"{self.var} := {'T' if self.value else 'F'}"


class BitVecTheory(Theory):
    """Boolean variables with assignment and equality tests."""

    name = "bitvec"

    def __init__(self, variables=None):
        super().__init__()
        #: Optional declared universe of variables (used by initial_state and
        #: random-state generation in tests); undeclared variables still work.
        self.variables = tuple(variables) if variables else ()

    # -- ownership ---------------------------------------------------------
    def owns_test(self, alpha):
        return isinstance(alpha, BoolEq)

    def owns_action(self, pi):
        return isinstance(pi, BoolAssign)

    # -- semantics -----------------------------------------------------------
    def initial_state(self):
        return FrozenDict({v: False for v in self.variables})

    def pred(self, alpha, trace):
        if not isinstance(alpha, BoolEq):
            raise TheoryError(f"bitvec cannot evaluate test {alpha!r}")
        return bool(trace.last_state.get(alpha.var, False))

    def act(self, pi, state):
        if not isinstance(pi, BoolAssign):
            raise TheoryError(f"bitvec cannot execute action {pi!r}")
        return state.set(pi.var, pi.value)

    # -- pushback -------------------------------------------------------------
    def push_back(self, pi, alpha):
        if not isinstance(pi, BoolAssign) or not isinstance(alpha, BoolEq):
            raise TheoryError(f"bitvec push_back on foreign primitives: {pi!r}, {alpha!r}")
        if pi.var != alpha.var:
            # The assignment does not touch the tested variable: commute.
            return [T.pprim(alpha)]
        if pi.value:
            # b := T ; b = T  ==  1 ; b := T          (True-True)
            return [T.pone()]
        # b := F ; b = T  ==  0                        (False-True)
        return [T.pzero()]

    def subterms(self, alpha):
        if not isinstance(alpha, BoolEq):
            raise TheoryError(f"bitvec subterms on foreign test {alpha!r}")
        return []

    # -- satisfiability ---------------------------------------------------------
    def satisfiable_conjunction(self, literals):
        # Each literal constrains a distinct atom (b = T); a positive and a
        # negative literal on the same atom never co-occur in a DPLL branch,
        # and distinct variables are independent, so any branch is consistent.
        seen = {}
        for alpha, polarity in literals:
            if not isinstance(alpha, BoolEq):
                raise TheoryError(f"bitvec literal on foreign test {alpha!r}")
            previous = seen.get(alpha.var)
            if previous is not None and previous != polarity:
                return False
            seen[alpha.var] = polarity
        return True

    # -- parsing ------------------------------------------------------------------
    def parse_phrase(self, tokens):
        matched = match_phrase(tokens, "WORD", "=", "WORD")
        if matched is not None:
            var, value = matched
            if value in ("T", "tt", "True"):
                return ("test", BoolEq(var))
            if value in ("F", "ff", "False"):
                return ("pred", T.pnot(T.pprim(BoolEq(var))))
        matched = match_phrase(tokens, "WORD", ":=", "WORD")
        if matched is not None:
            var, value = matched
            if value in ("T", "tt", "True"):
                return ("action", BoolAssign(var, True))
            if value in ("F", "ff", "False"):
                return ("action", BoolAssign(var, False))
        matched = match_phrase(tokens, "flip", "WORD")
        if matched is None:
            matched = match_phrase(tokens, "flip", "(", "WORD", ")")
        if matched is not None:
            (var,) = matched
            return ("term", self.flip(var))
        raise ParseError(f"bitvec cannot parse phrase: {phrase_text(tokens)!r}")

    # -- convenience builders -----------------------------------------------------
    def eq(self, var, value=True):
        """The test ``var = value`` as a predicate."""
        base = T.pprim(BoolEq(var))
        return base if value else T.pnot(base)

    def assign(self, var, value):
        """The action ``var := value`` as a term."""
        return T.tprim(BoolAssign(var, value))

    def flip(self, var):
        """The derived action ``flip var``."""
        return T.tplus(
            T.tseq(T.ttest(self.eq(var, True)), self.assign(var, False)),
            T.tseq(T.ttest(self.eq(var, False)), self.assign(var, True)),
        )

    def test_variables(self, alpha):
        return (alpha.var,)

    def action_variables(self, pi):
        return (pi.var,)

    def describe(self):
        if self.variables:
            return f"bitvec({', '.join(self.variables)})"
        return "bitvec"
