"""Tracing NetKAT: packets as finite maps from fields to values (paper Fig. 4).

Primitive tests:   ``f = v``       (field ``f`` currently holds value ``v``)
Primitive actions: ``f <- v``      (write value ``v`` into field ``f``)

Weakest preconditions (Fig. 4):

    ``f <- v ; f = v``     WP   ``1``
    ``f <- v ; f = v'``    WP   ``0``        (v distinct from v')
    ``f' <- v ; f = w``    WP   ``f = w``    (f' distinct from f)

This is the *tracing* variant discussed in Section 2.5: every write is
recorded in the trace (as if NetKAT's ``dup`` preceded every field update),
so the packet-merging NetKAT axioms ``PA-Mod-Mod``, ``PA-Filter-Mod`` and
``PA-Mod-Mod-Comm`` do **not** hold here — the tests in ``tests/`` check that
they are indeed rejected.

Fields may be declared with finite value domains.  Domains matter for
satisfiability: with a finite domain a conjunction of negative tests on a
field can exhaust it (the ``PA-Match-All`` axiom ``Σ_v f = v == 1``), whereas
an undeclared field behaves as if its domain were unbounded.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import terms as T
from repro.core.parser import match_phrase, phrase_text
from repro.core.theory import Theory
from repro.utils.errors import ParseError, TheoryError
from repro.utils.frozendict import FrozenDict


@dataclass(frozen=True)
class FieldEq:
    """The primitive test ``field = value``."""

    field: str
    value: object

    def __str__(self):
        return f"{self.field} = {self.value}"


@dataclass(frozen=True)
class FieldAssign:
    """The primitive action ``field <- value``."""

    field: str
    value: object

    def __str__(self):
        return f"{self.field} <- {self.value}"


class NetKatTheory(Theory):
    """Tracing NetKAT over a fixed set of packet fields."""

    name = "netkat"

    def __init__(self, fields=None):
        """``fields`` maps field names to an iterable of possible values.

        A field mapped to ``None`` (or an undeclared field) is treated as
        having an unbounded value domain.
        """
        super().__init__()
        self.fields = {}
        if fields:
            for field, domain in dict(fields).items():
                self.fields[field] = None if domain is None else tuple(domain)

    # -- ownership ---------------------------------------------------------
    def owns_test(self, alpha):
        return isinstance(alpha, FieldEq)

    def owns_action(self, pi):
        return isinstance(pi, FieldAssign)

    # -- semantics -----------------------------------------------------------
    def initial_state(self):
        packet = {}
        for field, domain in self.fields.items():
            packet[field] = domain[0] if domain else 0
        return FrozenDict(packet)

    def pred(self, alpha, trace):
        if not isinstance(alpha, FieldEq):
            raise TheoryError(f"netkat cannot evaluate test {alpha!r}")
        return trace.last_state.get(alpha.field) == alpha.value

    def act(self, pi, state):
        if not isinstance(pi, FieldAssign):
            raise TheoryError(f"netkat cannot execute action {pi!r}")
        return state.set(pi.field, pi.value)

    # -- pushback -------------------------------------------------------------
    def push_back(self, pi, alpha):
        if not isinstance(pi, FieldAssign) or not isinstance(alpha, FieldEq):
            raise TheoryError(f"netkat push_back on foreign primitives: {pi!r}, {alpha!r}")
        if pi.field != alpha.field:
            return [T.pprim(alpha)]
        if pi.value == alpha.value:
            return [T.pone()]
        return [T.pzero()]

    def subterms(self, alpha):
        if not isinstance(alpha, FieldEq):
            raise TheoryError(f"netkat subterms on foreign test {alpha!r}")
        return []

    # -- satisfiability ---------------------------------------------------------
    def satisfiable_conjunction(self, literals):
        positive = {}
        negative = {}
        for alpha, polarity in literals:
            if not isinstance(alpha, FieldEq):
                raise TheoryError(f"netkat literal on foreign test {alpha!r}")
            if polarity:
                existing = positive.get(alpha.field)
                if existing is not None and existing != alpha.value:
                    return False  # one field, two values (PA-Contra)
                positive[alpha.field] = alpha.value
            else:
                negative.setdefault(alpha.field, set()).add(alpha.value)
        for field, excluded in negative.items():
            if field in positive:
                if positive[field] in excluded:
                    return False
                continue
            domain = self.fields.get(field)
            if domain is not None and all(value in excluded for value in domain):
                # Every possible value is excluded (PA-Match-All).
                return False
        return True

    # -- parsing ------------------------------------------------------------------
    def parse_phrase(self, tokens):
        for pattern, kind in (
            (("WORD", "=", "NUM"), "test"),
            (("WORD", "=", "WORD"), "test"),
            (("WORD", "<-", "NUM"), "action"),
            (("WORD", "<-", "WORD"), "action"),
        ):
            matched = match_phrase(tokens, *pattern)
            if matched is not None:
                field, value = matched
                if kind == "test":
                    return ("test", FieldEq(field, value))
                return ("action", FieldAssign(field, value))
        raise ParseError(f"netkat cannot parse phrase: {phrase_text(tokens)!r}")

    # -- convenience builders -----------------------------------------------------
    def eq(self, field, value):
        """The test ``field = value`` as a predicate."""
        return T.pprim(FieldEq(field, value))

    def assign(self, field, value):
        """The action ``field <- value`` as a term."""
        return T.tprim(FieldAssign(field, value))

    def test_variables(self, alpha):
        return (alpha.field,)

    def action_variables(self, pi):
        return (pi.field,)

    def describe(self):
        if self.fields:
            return f"netkat({', '.join(sorted(self.fields))})"
        return "netkat"
