"""The theory of monotonically increasing naturals (paper Fig. 2, Section 1.2).

Primitive tests:   ``x > n``                       (n a natural-number constant)
Primitive actions: ``inc(x)``, ``x := n``, ``x += k`` and ``x *= k``
                   (the latter two are the Section 1.2 "monotone, invertible"
                   extensions: addition of a natural constant and
                   multiplication by a positive constant)

Derived sugar handled by the parser (all definable from ``x > n`` and the
Boolean connectives):

    ``x < n``   ==  ``~(x > n-1)``        (and ``x < 0`` == ``false``)
    ``x >= n``  ==  ``x > n-1``           (and ``x >= 0`` == ``true``)
    ``x <= n``  ==  ``~(x > n)``
    ``x = n``   ==  ``x > n-1 ; ~(x > n)``  (``~(x > 0)`` for n = 0)

The weakest preconditions are those of Fig. 2:

    ``x := n ; x > m``   WP   ``1`` if n > m else ``0``
    ``inc x ; x > 0``    WP   ``1``
    ``inc x ; x > n``    WP   ``x > n-1``      (n > 0)
    ``inc y ; x > n``    WP   ``x > n``        (y distinct from x)
    ``x += k ; x > n``   WP   ``x > n-k``      (``1`` when k > n)
    ``x *= k ; x > n``   WP   ``x > n // k``   (k >= 1)

This theory has genuinely unbounded state — the paper's headline example of
going beyond finite-state KAT extensions.  Comparing two variables (``x = y``)
or decrementing would break the non-increasing pushback requirement (it would
encode counter machines), so neither is provided.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import terms as T
from repro.core.parser import match_phrase, phrase_text
from repro.core.theory import Theory
from repro.smt.natsolver import satisfiable_bounds
from repro.utils.errors import ParseError, TheoryError
from repro.utils.frozendict import FrozenDict


@dataclass(frozen=True)
class Gt:
    """The primitive test ``var > bound``."""

    var: str
    bound: int

    def __post_init__(self):
        if self.bound < 0:
            raise TheoryError(f"Gt bound must be a natural number, got {self.bound}")

    def __str__(self):
        return f"{self.var} > {self.bound}"


@dataclass(frozen=True)
class Incr:
    """The primitive action ``inc(var)``."""

    var: str

    def __str__(self):
        return f"inc({self.var})"


@dataclass(frozen=True)
class AddConst:
    """The primitive action ``var += amount`` (amount a natural constant).

    Section 1.2 notes that IncNat stays sound and complete when extended with
    operations that are monotonically increasing and invertible; addition of a
    constant is the paper's first example (Fig. 1a uses ``j := j + 2``).
    """

    var: str
    amount: int

    def __post_init__(self):
        if self.amount < 0:
            raise TheoryError(f"+= amount must be a natural number, got {self.amount}")

    def __str__(self):
        return f"{self.var} += {self.amount}"


@dataclass(frozen=True)
class MulConst:
    """The primitive action ``var *= factor`` (factor a *positive* constant).

    Multiplication by a positive constant is the paper's second example of a
    monotone, invertible extension (it appears in Fig. 1b as ``j << 1``).
    A factor of zero is rejected: it is not invertible and would break the
    non-increasing weakest-precondition requirement.
    """

    var: str
    factor: int

    def __post_init__(self):
        if self.factor < 1:
            raise TheoryError(f"*= factor must be positive, got {self.factor}")

    def __str__(self):
        return f"{self.var} *= {self.factor}"


@dataclass(frozen=True)
class AssignNat:
    """The primitive action ``var := value``."""

    var: str
    value: int

    def __post_init__(self):
        if self.value < 0:
            raise TheoryError(f"assignment value must be a natural number, got {self.value}")

    def __str__(self):
        return f"{self.var} := {self.value}"


class IncNatTheory(Theory):
    """Increasing natural-number counters."""

    name = "incnat"

    def __init__(self, variables=None):
        super().__init__()
        self.variables = tuple(variables) if variables else ()

    # -- ownership ---------------------------------------------------------
    def owns_test(self, alpha):
        return isinstance(alpha, Gt)

    def owns_action(self, pi):
        return isinstance(pi, (Incr, AssignNat, AddConst, MulConst))

    # -- semantics -----------------------------------------------------------
    def initial_state(self):
        return FrozenDict({v: 0 for v in self.variables})

    def pred(self, alpha, trace):
        if not isinstance(alpha, Gt):
            raise TheoryError(f"incnat cannot evaluate test {alpha!r}")
        return trace.last_state.get(alpha.var, 0) > alpha.bound

    def act(self, pi, state):
        if isinstance(pi, Incr):
            return state.set(pi.var, state.get(pi.var, 0) + 1)
        if isinstance(pi, AssignNat):
            return state.set(pi.var, pi.value)
        if isinstance(pi, AddConst):
            return state.set(pi.var, state.get(pi.var, 0) + pi.amount)
        if isinstance(pi, MulConst):
            return state.set(pi.var, state.get(pi.var, 0) * pi.factor)
        raise TheoryError(f"incnat cannot execute action {pi!r}")

    # -- pushback -------------------------------------------------------------
    def push_back(self, pi, alpha):
        if not isinstance(alpha, Gt):
            raise TheoryError(f"incnat push_back on foreign test {alpha!r}")
        if isinstance(pi, Incr):
            if pi.var != alpha.var:
                return [T.pprim(alpha)]                      # GT-Comm
            if alpha.bound == 0:
                return [T.pone()]                            # Inc-GT-Z
            return [T.pprim(Gt(alpha.var, alpha.bound - 1))]  # Inc-GT
        if isinstance(pi, AssignNat):
            if pi.var != alpha.var:
                return [T.pprim(alpha)]
            # Assgn-GT: the constants decide the test statically.
            return [T.pone()] if pi.value > alpha.bound else [T.pzero()]
        if isinstance(pi, AddConst):
            if pi.var != alpha.var:
                return [T.pprim(alpha)]
            # x += k ; x > n  ==  (x > n - k) ; x += k   (1 when k > n).
            if pi.amount > alpha.bound:
                return [T.pone()]
            return [T.pprim(Gt(alpha.var, alpha.bound - pi.amount))]
        if isinstance(pi, MulConst):
            if pi.var != alpha.var:
                return [T.pprim(alpha)]
            # x *= k ; x > n  ==  (x > n // k) ; x *= k   for k >= 1:
            # k*x > n  iff  x > floor(n / k)  over the naturals.
            return [T.pprim(Gt(alpha.var, alpha.bound // pi.factor))]
        raise TheoryError(f"incnat push_back on foreign action {pi!r}")

    def subterms(self, alpha):
        if not isinstance(alpha, Gt):
            raise TheoryError(f"incnat subterms on foreign test {alpha!r}")
        # sub(x > n) = { x > m | m <= n }; the core adds alpha itself.
        return [T.pprim(Gt(alpha.var, m)) for m in range(alpha.bound)]

    # -- satisfiability ---------------------------------------------------------
    def satisfiable_conjunction(self, literals):
        converted = []
        for alpha, polarity in literals:
            if not isinstance(alpha, Gt):
                raise TheoryError(f"incnat literal on foreign test {alpha!r}")
            converted.append((alpha.var, alpha.bound, polarity))
        return satisfiable_bounds(converted)

    # -- parsing ------------------------------------------------------------------
    def parse_phrase(self, tokens):
        matched = match_phrase(tokens, "WORD", ">", "NUM")
        if matched is not None:
            var, bound = matched
            return ("test", Gt(var, bound))
        matched = match_phrase(tokens, "WORD", ">=", "NUM")
        if matched is not None:
            var, bound = matched
            return ("pred", self.ge(var, bound))
        matched = match_phrase(tokens, "WORD", "<", "NUM")
        if matched is not None:
            var, bound = matched
            return ("pred", self.lt(var, bound))
        matched = match_phrase(tokens, "WORD", "<=", "NUM")
        if matched is not None:
            var, bound = matched
            return ("pred", self.le(var, bound))
        matched = match_phrase(tokens, "WORD", "=", "NUM")
        if matched is not None:
            var, value = matched
            return ("pred", self.eq(var, value))
        matched = match_phrase(tokens, "inc", "(", "WORD", ")")
        if matched is None:
            matched = match_phrase(tokens, "inc", "WORD")
        if matched is not None:
            (var,) = matched
            return ("action", Incr(var))
        matched = match_phrase(tokens, "WORD", ":=", "NUM")
        if matched is not None:
            var, value = matched
            return ("action", AssignNat(var, value))
        matched = match_phrase(tokens, "WORD", "+=", "NUM")
        if matched is not None:
            var, amount = matched
            return ("action", AddConst(var, amount))
        matched = match_phrase(tokens, "WORD", "*=", "NUM")
        if matched is not None:
            var, factor = matched
            return ("action", MulConst(var, factor))
        raise ParseError(f"incnat cannot parse phrase: {phrase_text(tokens)!r}")

    # -- convenience builders -----------------------------------------------------
    def gt(self, var, bound):
        """The primitive test ``var > bound`` as a predicate."""
        return T.pprim(Gt(var, bound))

    def ge(self, var, bound):
        """``var >= bound``."""
        if bound == 0:
            return T.pone()
        return T.pprim(Gt(var, bound - 1))

    def lt(self, var, bound):
        """``var < bound``."""
        if bound == 0:
            return T.pzero()
        return T.pnot(T.pprim(Gt(var, bound - 1)))

    def le(self, var, bound):
        """``var <= bound``."""
        return T.pnot(T.pprim(Gt(var, bound)))

    def eq(self, var, value):
        """``var = value`` encoded with two bounds."""
        if value == 0:
            return T.pnot(T.pprim(Gt(var, 0)))
        return T.pand(T.pprim(Gt(var, value - 1)), T.pnot(T.pprim(Gt(var, value))))

    def inc(self, var):
        """The action ``inc(var)`` as a term."""
        return T.tprim(Incr(var))

    def assign(self, var, value):
        """The action ``var := value`` as a term."""
        return T.tprim(AssignNat(var, value))

    def add(self, var, amount):
        """The action ``var += amount`` as a term."""
        return T.tprim(AddConst(var, amount))

    def mul(self, var, factor):
        """The action ``var *= factor`` as a term."""
        return T.tprim(MulConst(var, factor))

    def test_variables(self, alpha):
        return (alpha.var,)

    def action_variables(self, pi):
        return (pi.var,)

    def describe(self):
        if self.variables:
            return f"incnat({', '.join(self.variables)})"
        return "incnat"
