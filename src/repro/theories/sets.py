"""Unbounded sets over an expression theory (paper Fig. 3c, Section 2.3).

The set theory is *higher order*: it wraps an inner client theory ``E`` that
provides the expressions whose values get inserted into sets.  Its own
primitives are

Primitive tests:   ``in(X, c)``   — is the constant ``c`` a member of set ``X``?
Primitive actions: ``add(X, e)``  — insert the value of expression ``e`` into ``X``

together with all of the inner theory's primitives.  Weakest preconditions
(Fig. 3c)::

    add(Y, e) ; in(X, c)    WP   in(X, c)                     (Y distinct from X)
    add(X, e) ; in(X, c)    WP   (e = c) + in(X, c)           (Add-In)
    add(X, e) ; alpha_E     WP   alpha_E                      (Add-Comm2)
    pi_E      ; in(X, c)    WP   in(X, c)                     (inner actions don't touch sets)
    pi_E      ; alpha_E     WP   delegated to E

The equality test ``e = c`` must be expressible in (and *smaller than*
``in(X, c)`` in the subterm ordering of) the inner theory; an
:class:`ExpressionAdapter` supplies that encoding plus expression evaluation.
The shipped :class:`NatExpressionAdapter` covers the paper's running example
(expressions are IncNat variables or natural constants, with ``x = c``
encoded as ``x > c-1 ; ~(x > c)``).

Only insertion is provided (no deletion, no comparison of two sets); as the
paper notes, richer operations would break the non-increasing pushback
requirement.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import terms as T
from repro.core.parser import match_phrase, phrase_text
from repro.core.theory import Theory
from repro.utils.errors import ParseError, TheoryError
from repro.utils.frozendict import FrozenDict


@dataclass(frozen=True)
class SetIn:
    """The primitive test ``in(set_var, constant)``."""

    set_var: str
    constant: object

    def __str__(self):
        return f"in({self.set_var}, {self.constant})"


@dataclass(frozen=True)
class SetAdd:
    """The primitive action ``add(set_var, expression)``."""

    set_var: str
    expr: object

    def __str__(self):
        return f"add({self.set_var}, {self.expr})"


class ExpressionAdapter:
    """How the set theory talks about the inner theory's expressions.

    Expressions are opaque hashable objects; the adapter must be able to

    * recognise them when parsing (:meth:`parse_expr`),
    * encode the test "expression equals constant" as an inner-theory
      predicate (:meth:`eq_pred`) that is *no larger* than the set-membership
      tests in the subterm ordering,
    * enumerate the equality predicates that pushback might produce for a
      given constant (:meth:`eq_subterms`), which seeds the ordering, and
    * evaluate an expression in an inner-theory state (:meth:`eval_expr`).
    """

    def parse_expr(self, text):
        raise NotImplementedError

    def eq_pred(self, expr, constant):
        raise NotImplementedError

    def eq_subterms(self, constant):
        raise NotImplementedError

    def eval_expr(self, expr, inner_state):
        raise NotImplementedError


class NatExpressionAdapter(ExpressionAdapter):
    """Expressions over an :class:`~repro.theories.incnat.IncNatTheory`.

    An expression is either the name of an IncNat variable or a natural-number
    constant.  ``variables`` declares the variable names that may be inserted
    into sets; it seeds :meth:`eq_subterms` so the maximal-subterm ordering
    knows every equality test pushback can generate.
    """

    def __init__(self, incnat, variables=()):
        self.incnat = incnat
        self.variables = tuple(variables)

    def parse_expr(self, text):
        text = text.strip()
        if text.isdigit():
            return int(text)
        return text

    def eq_pred(self, expr, constant):
        constant = int(constant)
        if isinstance(expr, int):
            return T.pone() if expr == constant else T.pzero()
        return self.incnat.eq(expr, constant)

    def eq_subterms(self, constant):
        preds = []
        for var in self.variables:
            preds.append(self.eq_pred(var, constant))
        return preds

    def eval_expr(self, expr, inner_state):
        if isinstance(expr, int):
            return expr
        return inner_state.get(expr, 0)


class SetTheory(Theory):
    """Unbounded sets of inner-theory values."""

    name = "set"

    def __init__(self, inner, adapter, set_variables=()):
        super().__init__()
        self.inner = inner
        self.adapter = adapter
        self.set_variables = tuple(set_variables)

    # -- recursive knot -------------------------------------------------------
    def attach(self, kmt):
        super().attach(kmt)
        self.inner.attach(kmt)

    # -- ownership ---------------------------------------------------------
    def owns_test(self, alpha):
        return isinstance(alpha, SetIn) or self.inner.owns_test(alpha)

    def owns_action(self, pi):
        return isinstance(pi, SetAdd) or self.inner.owns_action(pi)

    # -- semantics -----------------------------------------------------------
    def initial_state(self):
        sets = FrozenDict({v: frozenset() for v in self.set_variables})
        return (sets, self.inner.initial_state())

    def pred(self, alpha, trace):
        if isinstance(alpha, SetIn):
            sets = trace.last_state[0]
            return alpha.constant in sets.get(alpha.set_var, frozenset())
        projected = trace.map_states(lambda s: s[1])
        return self.inner.pred(alpha, projected)

    def act(self, pi, state):
        sets, inner_state = state
        if isinstance(pi, SetAdd):
            value = self.adapter.eval_expr(pi.expr, inner_state)
            current = sets.get(pi.set_var, frozenset())
            return (sets.set(pi.set_var, current | {value}), inner_state)
        return (sets, self.inner.act(pi, inner_state))

    # -- pushback -------------------------------------------------------------
    def push_back(self, pi, alpha):
        set_action = isinstance(pi, SetAdd)
        set_test = isinstance(alpha, SetIn)
        if set_action and set_test:
            if pi.set_var != alpha.set_var:
                return [T.pprim(alpha)]                              # Add-Comm
            equality = self.adapter.eq_pred(pi.expr, alpha.constant)
            return [equality, T.pprim(alpha)]                        # Add-In
        if set_action and not set_test:
            return [T.pprim(alpha)]                                  # Add-Comm2
        if not set_action and set_test:
            # Inner actions never modify sets.
            return [T.pprim(alpha)]
        return self.inner.push_back(pi, alpha)

    def subterms(self, alpha):
        if isinstance(alpha, SetIn):
            # sub(in(X, c)) must cover every equality test Add-In can produce.
            return list(self.adapter.eq_subterms(alpha.constant))
        return self.inner.subterms(alpha)

    # -- satisfiability ---------------------------------------------------------
    def satisfiable_conjunction(self, literals):
        membership = {}
        inner_literals = []
        for alpha, polarity in literals:
            if isinstance(alpha, SetIn):
                key = (alpha.set_var, alpha.constant)
                previous = membership.get(key)
                if previous is not None and previous != polarity:
                    return False
                membership[key] = polarity
            else:
                inner_literals.append((alpha, polarity))
        # Membership atoms are otherwise unconstrained: any combination of
        # "c in X" facts is realisable by choosing the sets appropriately.
        if inner_literals and not self.inner.satisfiable_conjunction(inner_literals):
            return False
        return True

    # -- parsing ------------------------------------------------------------------
    def parse_phrase(self, tokens):
        matched = match_phrase(tokens, "in", "(", "WORD", ",", "NUM", ")")
        if matched is not None:
            set_var, constant = matched
            return ("test", SetIn(set_var, constant))
        matched = match_phrase(tokens, "add", "(", "WORD", ",", "WORD", ")")
        if matched is not None:
            set_var, expr_text = matched
            return ("action", SetAdd(set_var, self.adapter.parse_expr(expr_text)))
        matched = match_phrase(tokens, "add", "(", "WORD", ",", "NUM", ")")
        if matched is not None:
            set_var, constant = matched
            return ("action", SetAdd(set_var, int(constant)))
        try:
            return self.inner.parse_phrase(tokens)
        except ParseError:
            raise ParseError(f"set theory cannot parse phrase: {phrase_text(tokens)!r}")

    def parser_keywords(self):
        return self.inner.parser_keywords()

    # -- convenience builders -----------------------------------------------------
    def member(self, set_var, constant):
        """The test ``in(set_var, constant)`` as a predicate."""
        return T.pprim(SetIn(set_var, constant))

    def add(self, set_var, expr):
        """The action ``add(set_var, expr)`` as a term."""
        return T.tprim(SetAdd(set_var, expr))

    def test_variables(self, alpha):
        if isinstance(alpha, SetIn):
            return (alpha.set_var,)
        return self.inner.test_variables(alpha)

    def action_variables(self, pi):
        if isinstance(pi, SetAdd):
            return (pi.set_var,)
        return self.inner.action_variables(pi)

    def describe(self):
        return f"set({self.inner.describe()})"
