"""Unbounded maps over key/value expression theories (paper Sections 1.1, 2.3).

The map theory is higher order in the same way as the set theory: it wraps an
inner theory providing the expressions used as keys and values.

Primitive tests:   ``X[ck] = cv``    — does map ``X`` hold value ``cv`` at key ``ck``?
Primitive actions: ``X[ek] := ev``   — write the value of ``ev`` at the key ``ek``

(``ck``/``cv`` are constants, ``ek``/``ev`` arbitrary inner expressions),
plus all of the inner theory's primitives.

The paper displays the pushback axiom

    X[e1] := e2 ; X[c1] = c2   ==   (e1 = c1 ; e2 = c2  +  X[c1] = c2) ; X[e1] := e2

which is sound as an *inequality* (right-to-left) but over-approximates as a
weakest precondition: if ``X[c1] = c2`` held before the write and the write
lands on key ``c1`` with a different value, the test no longer holds
afterwards.  Because this reproduction checks its theories against an
executable tracing semantics, we implement the *precise* weakest
precondition::

    X[e1] := e2 ; X[c1] = c2   WP   e1 = c1 ; e2 = c2   +   ~(e1 = c1) ; X[c1] = c2

which still satisfies the framework's ordering obligations (both summands are
built from subterms of the original test).  ``DESIGN.md`` records this
deviation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import terms as T
from repro.core.parser import match_phrase, phrase_text
from repro.core.theory import Theory
from repro.utils.errors import ParseError, TheoryError
from repro.utils.frozendict import FrozenDict


@dataclass(frozen=True)
class MapEq:
    """The primitive test ``map_var[key_const] = value_const``."""

    map_var: str
    key: object
    value: object

    def __str__(self):
        return f"{self.map_var}[{self.key}] = {self.value}"


@dataclass(frozen=True)
class MapWrite:
    """The primitive action ``map_var[key_expr] := value_expr``."""

    map_var: str
    key_expr: object
    value_expr: object

    def __str__(self):
        return f"{self.map_var}[{self.key_expr}] := {self.value_expr}"


class MapAdapter:
    """How the map theory encodes key/value equality in the inner theory.

    The methods mirror :class:`repro.theories.sets.ExpressionAdapter` but come
    in key and value flavours because the paper's motivating example (Pmap)
    uses natural-number keys and Boolean values.
    """

    def key_eq_pred(self, key_expr, key_const):
        raise NotImplementedError

    def value_eq_pred(self, value_expr, value_const):
        raise NotImplementedError

    def key_eq_subterms(self, key_const):
        raise NotImplementedError

    def value_eq_subterms(self, value_const):
        raise NotImplementedError

    def eval_key(self, key_expr, inner_state):
        raise NotImplementedError

    def eval_value(self, value_expr, inner_state):
        raise NotImplementedError

    def parse_key(self, text):
        raise NotImplementedError

    def parse_value(self, text):
        raise NotImplementedError


class NatBoolMapAdapter(MapAdapter):
    """Keys are IncNat expressions, values are BitVec expressions.

    The inner theory is expected to be ``Product(IncNatTheory, BitVecTheory)``
    (or anything that can evaluate both kinds of state as a pair ``(nat_state,
    bool_state)``); this matches the Pmap example from Fig. 1(c) where
    ``odd[i] := parity``.
    """

    def __init__(self, incnat, bitvec, key_variables=(), value_variables=()):
        self.incnat = incnat
        self.bitvec = bitvec
        self.key_variables = tuple(key_variables)
        self.value_variables = tuple(value_variables)

    # keys ------------------------------------------------------------------
    def key_eq_pred(self, key_expr, key_const):
        key_const = int(key_const)
        if isinstance(key_expr, int):
            return T.pone() if key_expr == key_const else T.pzero()
        return self.incnat.eq(key_expr, key_const)

    def key_eq_subterms(self, key_const):
        return [self.key_eq_pred(v, key_const) for v in self.key_variables]

    def eval_key(self, key_expr, inner_state):
        nat_state = inner_state[0]
        if isinstance(key_expr, int):
            return key_expr
        return nat_state.get(key_expr, 0)

    def parse_key(self, text):
        text = text.strip()
        return int(text) if text.isdigit() else text

    # values ----------------------------------------------------------------
    def value_eq_pred(self, value_expr, value_const):
        value_const = bool(value_const)
        if isinstance(value_expr, bool):
            return T.pone() if value_expr == value_const else T.pzero()
        base = self.bitvec.eq(value_expr, True)
        return base if value_const else T.pnot(base)

    def value_eq_subterms(self, value_const):
        return [self.value_eq_pred(v, value_const) for v in self.value_variables]

    def eval_value(self, value_expr, inner_state):
        bool_state = inner_state[1]
        if isinstance(value_expr, bool):
            return value_expr
        return bool(bool_state.get(value_expr, False))

    def parse_value(self, text):
        text = text.strip()
        if text in ("T", "tt", "True"):
            return True
        if text in ("F", "ff", "False"):
            return False
        return text


class MapTheory(Theory):
    """Unbounded maps from inner-theory keys to inner-theory values."""

    name = "map"

    def __init__(self, inner, adapter, map_variables=()):
        super().__init__()
        self.inner = inner
        self.adapter = adapter
        self.map_variables = tuple(map_variables)

    # -- recursive knot -------------------------------------------------------
    def attach(self, kmt):
        super().attach(kmt)
        self.inner.attach(kmt)

    # -- ownership ---------------------------------------------------------
    def owns_test(self, alpha):
        return isinstance(alpha, MapEq) or self.inner.owns_test(alpha)

    def owns_action(self, pi):
        return isinstance(pi, MapWrite) or self.inner.owns_action(pi)

    # -- semantics -----------------------------------------------------------
    def initial_state(self):
        maps = FrozenDict({v: FrozenDict() for v in self.map_variables})
        return (maps, self.inner.initial_state())

    def pred(self, alpha, trace):
        if isinstance(alpha, MapEq):
            maps = trace.last_state[0]
            mapping = maps.get(alpha.map_var, FrozenDict())
            return mapping.get(alpha.key) == alpha.value
        projected = trace.map_states(lambda s: s[1])
        return self.inner.pred(alpha, projected)

    def act(self, pi, state):
        maps, inner_state = state
        if isinstance(pi, MapWrite):
            key = self.adapter.eval_key(pi.key_expr, inner_state)
            value = self.adapter.eval_value(pi.value_expr, inner_state)
            mapping = maps.get(pi.map_var, FrozenDict())
            return (maps.set(pi.map_var, mapping.set(key, value)), inner_state)
        return (maps, self.inner.act(pi, inner_state))

    # -- pushback -------------------------------------------------------------
    def push_back(self, pi, alpha):
        map_action = isinstance(pi, MapWrite)
        map_test = isinstance(alpha, MapEq)
        if map_action and map_test:
            if pi.map_var != alpha.map_var:
                return [T.pprim(alpha)]
            key_hits = self.adapter.key_eq_pred(pi.key_expr, alpha.key)
            value_matches = self.adapter.value_eq_pred(pi.value_expr, alpha.value)
            overwrite = T.pand(key_hits, value_matches)
            untouched = T.pand(T.pnot(key_hits), T.pprim(alpha))
            return [overwrite, untouched]
        if map_action and not map_test:
            return [T.pprim(alpha)]
        if not map_action and map_test:
            return [T.pprim(alpha)]
        return self.inner.push_back(pi, alpha)

    def subterms(self, alpha):
        if isinstance(alpha, MapEq):
            extras = []
            extras.extend(self.adapter.key_eq_subterms(alpha.key))
            extras.extend(self.adapter.value_eq_subterms(alpha.value))
            return extras
        return self.inner.subterms(alpha)

    # -- satisfiability ---------------------------------------------------------
    def satisfiable_conjunction(self, literals):
        cells = {}
        inner_literals = []
        for alpha, polarity in literals:
            if isinstance(alpha, MapEq):
                key = (alpha.map_var, alpha.key)
                cells.setdefault(key, []).append((alpha.value, polarity))
            else:
                inner_literals.append((alpha, polarity))
        for _, constraints in cells.items():
            positive_values = {value for value, polarity in constraints if polarity}
            negative_values = {value for value, polarity in constraints if not polarity}
            if len(positive_values) > 1:
                return False  # one cell cannot hold two values at once
            if positive_values & negative_values:
                return False
            # With at most one required value and any set of excluded values,
            # the cell is realisable (maps can also be undefined at a key).
        if inner_literals and not self.inner.satisfiable_conjunction(inner_literals):
            return False
        return True

    # -- parsing ------------------------------------------------------------------
    def parse_phrase(self, tokens):
        matched = match_phrase(tokens, "WORD", "[", "NUM", "]", "=", "WORD")
        if matched is None:
            matched = match_phrase(tokens, "WORD", "[", "NUM", "]", "=", "NUM")
        if matched is not None:
            map_var, key, value = matched
            return (
                "test",
                MapEq(map_var, self.adapter.parse_key(str(key)), self.adapter.parse_value(str(value))),
            )
        for value_kind in ("WORD", "NUM"):
            for key_kind in ("WORD", "NUM"):
                matched = match_phrase(tokens, "WORD", "[", key_kind, "]", ":=", value_kind)
                if matched is not None:
                    map_var, key, value = matched
                    return (
                        "action",
                        MapWrite(
                            map_var,
                            self.adapter.parse_key(str(key)),
                            self.adapter.parse_value(str(value)),
                        ),
                    )
        try:
            return self.inner.parse_phrase(tokens)
        except ParseError:
            raise ParseError(f"map theory cannot parse phrase: {phrase_text(tokens)!r}")

    def parser_keywords(self):
        return self.inner.parser_keywords()

    # -- convenience builders -----------------------------------------------------
    def lookup_eq(self, map_var, key, value):
        """The test ``map_var[key] = value`` as a predicate."""
        return T.pprim(MapEq(map_var, key, value))

    def write(self, map_var, key_expr, value_expr):
        """The action ``map_var[key_expr] := value_expr`` as a term."""
        return T.tprim(MapWrite(map_var, key_expr, value_expr))

    def test_variables(self, alpha):
        if isinstance(alpha, MapEq):
            return (alpha.map_var,)
        return self.inner.test_variables(alpha)

    def action_variables(self, pi):
        if isinstance(pi, MapWrite):
            return (pi.map_var,)
        return self.inner.action_variables(pi)

    def describe(self):
        return f"map({self.inner.describe()})"
