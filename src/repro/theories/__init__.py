"""Client theories (the paper's Section 2 case studies).

Each module defines a :class:`~repro.core.theory.Theory` subclass plus the
frozen dataclasses for its primitive tests and actions:

* :mod:`repro.theories.bitvec` — Boolean variables (Fig. 3a, KAT+B! style).
* :mod:`repro.theories.incnat` — monotonically increasing naturals (Fig. 2).
* :mod:`repro.theories.product` — disjoint products of theories (Fig. 3b).
* :mod:`repro.theories.sets` — unbounded sets over an expression theory
  (Fig. 3c).
* :mod:`repro.theories.maps` — unbounded maps over key/value expressions.
* :mod:`repro.theories.netkat` — tracing NetKAT over packet fields (Fig. 4).
* :mod:`repro.theories.ltlf` — past-time LTL on finite traces, a higher-order
  theory over any other theory (Fig. 3d).
* :mod:`repro.theories.temporal_netkat` — LTLf(NetKAT) (Section 2.6).
"""

from repro.theories.bitvec import BitVecTheory
from repro.theories.incnat import IncNatTheory
from repro.theories.ltlf import LtlfTheory
from repro.theories.maps import MapTheory
from repro.theories.netkat import NetKatTheory
from repro.theories.product import ProductTheory
from repro.theories.sets import SetTheory
from repro.theories.temporal_netkat import temporal_netkat

THEORY_PRESET_NAMES = (
    "incnat", "bitvec", "netkat", "product", "ltlf-nat", "ltlf-bool", "temporal-netkat"
)


def build_theory(name):
    """Construct one of the named theory presets (CLI and batch front end)."""
    from repro.utils.errors import KmtError

    name = name.lower()
    if name in ("incnat", "nat", "n"):
        return IncNatTheory()
    if name in ("bitvec", "bool", "b"):
        return BitVecTheory()
    if name in ("netkat",):
        return NetKatTheory()
    if name in ("product", "natbool", "nxb"):
        return ProductTheory(IncNatTheory(), BitVecTheory())
    if name in ("ltlf-nat", "ltlf"):
        return LtlfTheory(IncNatTheory())
    if name in ("ltlf-bool",):
        return LtlfTheory(BitVecTheory())
    if name in ("temporal-netkat", "tnetkat"):
        return temporal_netkat()
    raise KmtError(
        f"unknown theory {name!r}; available: " + ", ".join(THEORY_PRESET_NAMES)
    )


__all__ = [
    "BitVecTheory",
    "IncNatTheory",
    "LtlfTheory",
    "MapTheory",
    "NetKatTheory",
    "ProductTheory",
    "SetTheory",
    "THEORY_PRESET_NAMES",
    "build_theory",
    "temporal_netkat",
]
