"""Client theories (the paper's Section 2 case studies).

Each module defines a :class:`~repro.core.theory.Theory` subclass plus the
frozen dataclasses for its primitive tests and actions:

* :mod:`repro.theories.bitvec` — Boolean variables (Fig. 3a, KAT+B! style).
* :mod:`repro.theories.incnat` — monotonically increasing naturals (Fig. 2).
* :mod:`repro.theories.product` — disjoint products of theories (Fig. 3b).
* :mod:`repro.theories.sets` — unbounded sets over an expression theory
  (Fig. 3c).
* :mod:`repro.theories.maps` — unbounded maps over key/value expressions.
* :mod:`repro.theories.netkat` — tracing NetKAT over packet fields (Fig. 4).
* :mod:`repro.theories.ltlf` — past-time LTL on finite traces, a higher-order
  theory over any other theory (Fig. 3d).
* :mod:`repro.theories.temporal_netkat` — LTLf(NetKAT) (Section 2.6).
"""

from repro.theories.bitvec import BitVecTheory
from repro.theories.incnat import IncNatTheory
from repro.theories.ltlf import LtlfTheory
from repro.theories.maps import MapTheory, NatBoolMapAdapter
from repro.theories.netkat import NetKatTheory
from repro.theories.product import ProductTheory
from repro.theories.sets import NatExpressionAdapter, SetTheory
from repro.theories.temporal_netkat import temporal_netkat

THEORY_PRESET_NAMES = (
    "incnat", "bitvec", "netkat", "product", "ltlf-nat", "ltlf-bool", "temporal-netkat",
    "sets", "maps",
)

#: Inner-theory variables the ``sets``/``maps`` presets declare.  The adapter
#: variables seed the maximal-subterm ordering with every equality test
#: pushback can generate, so expressions inserted into sets/maps from the CLI
#: must use these names (constants are always allowed).
SET_PRESET_EXPR_VARIABLES = ("i", "j", "k")
SET_PRESET_SET_VARIABLES = ("X", "Y")
MAP_PRESET_KEY_VARIABLES = ("i", "j")
MAP_PRESET_VALUE_VARIABLES = ("p", "q")
MAP_PRESET_MAP_VARIABLES = ("m", "odd")


def build_theory(name):
    """Construct one of the named theory presets (CLI and batch front end)."""
    from repro.utils.errors import KmtError

    name = name.lower()
    if name in ("incnat", "nat", "n"):
        return IncNatTheory()
    if name in ("bitvec", "bool", "b"):
        return BitVecTheory()
    if name in ("netkat",):
        return NetKatTheory()
    if name in ("product", "natbool", "nxb"):
        return ProductTheory(IncNatTheory(), BitVecTheory())
    if name in ("ltlf-nat", "ltlf"):
        return LtlfTheory(IncNatTheory())
    if name in ("ltlf-bool",):
        return LtlfTheory(BitVecTheory())
    if name in ("temporal-netkat", "tnetkat"):
        return temporal_netkat()
    if name in ("sets", "set"):
        nat = IncNatTheory()
        adapter = NatExpressionAdapter(nat, variables=SET_PRESET_EXPR_VARIABLES)
        return SetTheory(nat, adapter, set_variables=SET_PRESET_SET_VARIABLES)
    if name in ("maps", "map"):
        nat = IncNatTheory()
        bools = BitVecTheory()
        adapter = NatBoolMapAdapter(
            nat, bools,
            key_variables=MAP_PRESET_KEY_VARIABLES,
            value_variables=MAP_PRESET_VALUE_VARIABLES,
        )
        return MapTheory(
            ProductTheory(nat, bools), adapter,
            map_variables=MAP_PRESET_MAP_VARIABLES,
        )
    raise KmtError(
        f"unknown theory {name!r}; available: " + ", ".join(THEORY_PRESET_NAMES)
    )


__all__ = [
    "BitVecTheory",
    "IncNatTheory",
    "LtlfTheory",
    "MapTheory",
    "NetKatTheory",
    "ProductTheory",
    "SetTheory",
    "THEORY_PRESET_NAMES",
    "build_theory",
    "temporal_netkat",
]
