"""Disjoint products of two client theories (paper Fig. 3b, Section 2.2).

``ProductTheory(left, right)`` combines two theories whose primitives do not
interact: states are pairs of sub-states, each primitive belongs to exactly
one side, and an action of one side commutes with a test of the other
(axioms ``L-R-Comm`` / ``R-L-Comm``), which is exactly what the product's
``push_back`` returns for mixed pairs.

Products compose: ``ProductTheory(ProductTheory(a, b), c)`` works, as does
putting a higher-order theory on either side.  The paper's Fig. 9 population
count benchmark uses ``Product(IncNat, BitVec)``.
"""

from __future__ import annotations

from repro.core.theory import Theory
from repro.utils.errors import ParseError, TheoryError


class ProductTheory(Theory):
    """The disjoint product of two client theories."""

    name = "product"

    def __init__(self, left, right):
        super().__init__()
        self.left = left
        self.right = right

    # -- recursive knot -------------------------------------------------------
    def attach(self, kmt):
        super().attach(kmt)
        # Sub-theories see the *whole* derived KMT so that higher-order
        # components (e.g. LTLf on one side) can push embedded predicates of
        # the combined language back through actions.
        self.left.attach(kmt)
        self.right.attach(kmt)

    # -- ownership ---------------------------------------------------------
    def owns_test(self, alpha):
        return self.left.owns_test(alpha) or self.right.owns_test(alpha)

    def owns_action(self, pi):
        return self.left.owns_action(pi) or self.right.owns_action(pi)

    def _test_owner(self, alpha):
        if self.left.owns_test(alpha):
            return self.left, 0
        if self.right.owns_test(alpha):
            return self.right, 1
        raise TheoryError(f"product: no component owns test {alpha!r}")

    def _action_owner(self, pi):
        if self.left.owns_action(pi):
            return self.left, 0
        if self.right.owns_action(pi):
            return self.right, 1
        raise TheoryError(f"product: no component owns action {pi!r}")

    # -- semantics -----------------------------------------------------------
    def initial_state(self):
        return (self.left.initial_state(), self.right.initial_state())

    def pred(self, alpha, trace):
        owner, index = self._test_owner(alpha)
        projected = trace.map_states(lambda s: s[index])
        return owner.pred(alpha, projected)

    def act(self, pi, state):
        owner, index = self._action_owner(pi)
        left_state, right_state = state
        if index == 0:
            return (owner.act(pi, left_state), right_state)
        return (left_state, owner.act(pi, right_state))

    # -- pushback -------------------------------------------------------------
    def push_back(self, pi, alpha):
        action_owner, action_side = self._action_owner(pi)
        _, test_side = self._test_owner(alpha)
        if action_side == test_side:
            return action_owner.push_back(pi, alpha)
        # Mixed: the action cannot affect the other component's test, so the
        # test commutes unchanged (L-R-Comm / R-L-Comm).
        from repro.core import terms as T

        return [T.pprim(alpha)]

    def subterms(self, alpha):
        owner, _ = self._test_owner(alpha)
        return owner.subterms(alpha)

    # -- satisfiability ---------------------------------------------------------
    def satisfiable_conjunction(self, literals):
        left_literals = []
        right_literals = []
        for alpha, polarity in literals:
            _, side = self._test_owner(alpha)
            (left_literals if side == 0 else right_literals).append((alpha, polarity))
        if left_literals and not self.left.satisfiable_conjunction(left_literals):
            return False
        if right_literals and not self.right.satisfiable_conjunction(right_literals):
            return False
        return True

    # -- optional hooks ------------------------------------------------------------
    def simplify_not(self, alpha):
        owner, _ = self._test_owner(alpha)
        return owner.simplify_not(alpha)

    def simplify_and(self, alpha, beta):
        owner_a, side_a = self._test_owner(alpha)
        _, side_b = self._test_owner(beta)
        if side_a == side_b:
            return owner_a.simplify_and(alpha, beta)
        return None

    def simplify_or(self, alpha, beta):
        owner_a, side_a = self._test_owner(alpha)
        _, side_b = self._test_owner(beta)
        if side_a == side_b:
            return owner_a.simplify_or(alpha, beta)
        return None

    # -- parsing ------------------------------------------------------------------
    def parse_phrase(self, tokens):
        try:
            return self.left.parse_phrase(tokens)
        except ParseError:
            pass
        return self.right.parse_phrase(tokens)

    def parser_keywords(self):
        keywords = dict(self.left.parser_keywords())
        keywords.update(self.right.parser_keywords())
        return keywords

    def test_variables(self, alpha):
        owner, _ = self._test_owner(alpha)
        return owner.test_variables(alpha)

    def action_variables(self, pi):
        owner, _ = self._action_owner(pi)
        return owner.action_variables(pi)

    def describe(self):
        return f"product({self.left.describe()}, {self.right.describe()})"
