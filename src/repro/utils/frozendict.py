"""A small immutable, hashable mapping used for theory states.

Tracing semantics (paper Fig. 5) requires states to be stored inside traces,
which in turn are stored in sets, so states must be hashable.  Client theories
almost always want "a finite map from variables/fields to values"; this class
provides exactly that with value semantics.
"""

from collections.abc import Mapping


class FrozenDict(Mapping):
    """An immutable mapping with structural equality and hashing.

    >>> s = FrozenDict({"x": 1, "y": 2})
    >>> s["x"]
    1
    >>> s.set("x", 5)["x"]
    5
    >>> s == FrozenDict({"y": 2, "x": 1})
    True
    """

    __slots__ = ("_data", "_hash")

    def __init__(self, data=None, **kwargs):
        items = {}
        if data is not None:
            items.update(data)
        items.update(kwargs)
        self._data = dict(items)
        self._hash = None

    # -- Mapping interface -------------------------------------------------
    def __getitem__(self, key):
        return self._data[key]

    def __iter__(self):
        return iter(self._data)

    def __len__(self):
        return len(self._data)

    def __contains__(self, key):
        return key in self._data

    def get(self, key, default=None):
        return self._data.get(key, default)

    # -- value semantics ----------------------------------------------------
    def __hash__(self):
        if self._hash is None:
            self._hash = hash(frozenset(self._data.items()))
        return self._hash

    def __eq__(self, other):
        if isinstance(other, FrozenDict):
            return self._data == other._data
        if isinstance(other, Mapping):
            return self._data == dict(other)
        return NotImplemented

    def __repr__(self):
        inner = ", ".join(f"{k!r}: {v!r}" for k, v in sorted(self._data.items(), key=lambda kv: repr(kv[0])))
        return "FrozenDict({" + inner + "})"

    # -- functional updates --------------------------------------------------
    def set(self, key, value):
        """Return a copy of this mapping with ``key`` bound to ``value``."""
        new = dict(self._data)
        new[key] = value
        return FrozenDict(new)

    def update(self, other):
        """Return a copy of this mapping updated with the entries of ``other``."""
        new = dict(self._data)
        new.update(other)
        return FrozenDict(new)

    def remove(self, key):
        """Return a copy of this mapping without ``key`` (no error if absent)."""
        new = dict(self._data)
        new.pop(key, None)
        return FrozenDict(new)

    def to_dict(self):
        """Return a plain mutable ``dict`` copy."""
        return dict(self._data)


EMPTY_FROZENDICT = FrozenDict()
