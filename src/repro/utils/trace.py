"""Low-overhead per-request span tracing (the recorder half of telemetry).

This lives in :mod:`repro.utils` — not :mod:`repro.engine.telemetry`, which is
the telemetry subsystem's public home and re-exports everything here — because
the *instrumentation points* sit in the core (:mod:`repro.core.decision`,
:mod:`repro.core.compile`, :mod:`repro.core.kernels`) and the core must stay
importable without the engine package.

Design constraints, in order:

1. **Off is free.**  Tracing is off by default; every instrumentation point
   costs exactly one thread-local read plus a ``None`` check when no trace is
   active (:func:`current_trace`).  Nothing is allocated, no clock is read.
2. **On is cheap.**  An active :class:`Trace` records spans as monotonic-clock
   timestamp pairs on a plain per-thread stack — no logging, no string
   formatting, no I/O — and aggregates *self time* per phase name as it goes,
   so rendering the phase breakdown is O(distinct phases).
3. **Thread-local activation.**  The pipeline threads a ``cancel`` callable
   through every layer already; threading a tracer the same way would touch
   every signature again.  Instead the active trace is a thread-local the
   request executor installs around the query (:func:`activate` /
   :func:`deactivate`) and any layer may consult — safe because a session is
   only ever executed by one thread at a time (the session lock), and each
   worker thread/process activates its own trace.

Spans nest: a ``compare`` span opened while a ``signatures`` span is running
charges its duration to the parent's *child time*, so per-phase ``ms`` is
exclusive self time and the phases of one request sum to (at most) its
execution window — the property the server's phase breakdown relies on.
"""

from __future__ import annotations

import threading
import time

_local = threading.local()

#: Spans retained verbatim per trace; beyond this, spans still aggregate into
#: the per-phase totals but the individual (name, start, duration) records are
#: dropped and counted (a pathological query must not build an unbounded
#: response).
DEFAULT_MAX_SPANS = 256


def current_trace():
    """The :class:`Trace` active on this thread, or ``None``.

    This is the disabled-mode hot path: one thread-local attribute read.
    """
    return getattr(_local, "trace", None)


def activate(trace):
    """Install ``trace`` as this thread's active trace (must be clear)."""
    if getattr(_local, "trace", None) is not None:
        raise RuntimeError("a trace is already active on this thread")
    _local.trace = trace
    return trace


def deactivate():
    """Clear this thread's active trace (idempotent)."""
    _local.trace = None


class _SpanHandle:
    """Context manager binding one ``with trace.span(name):`` block."""

    __slots__ = ("_trace", "_name")

    def __init__(self, trace, name):
        self._trace = trace
        self._name = name

    def __enter__(self):
        self._trace.begin(self._name)
        return self

    def __exit__(self, exc_type, exc, tb):
        self._trace.end()
        return False


class Trace:
    """Span recorder for one request.

    ``phase_ms`` maps span name → accumulated **self time** (milliseconds,
    child spans excluded), ``phase_counts`` the number of spans per name;
    ``spans`` keeps up to ``max_spans`` individual ``(name, start_ms,
    duration_ms, depth)`` records in *completion* order (durations there are
    inclusive).  ``counters`` holds free-form event tallies
    (:meth:`count`) — e.g. comparison-memo hits.
    """

    __slots__ = ("max_spans", "spans", "dropped", "phase_ms", "phase_counts",
                 "counters", "_stack", "_origin")

    def __init__(self, max_spans=DEFAULT_MAX_SPANS):
        self.max_spans = max_spans
        self.spans = []
        self.dropped = 0
        self.phase_ms = {}
        self.phase_counts = {}
        self.counters = {}
        self._stack = []  # [name, started_monotonic, child_seconds]
        self._origin = time.monotonic()

    def span(self, name):
        """A context manager recording one span named ``name``."""
        return _SpanHandle(self, name)

    def begin(self, name):
        self._stack.append([name, time.monotonic(), 0.0])

    def end(self):
        name, started, child_s = self._stack.pop()
        duration_s = time.monotonic() - started
        if self._stack:
            # Charge the whole inclusive duration to the parent's child time:
            # the parent's self time must exclude everything spent in here.
            self._stack[-1][2] += duration_s
        self.phase_ms[name] = self.phase_ms.get(name, 0.0) + (duration_s - child_s) * 1000.0
        self.phase_counts[name] = self.phase_counts.get(name, 0) + 1
        if len(self.spans) < self.max_spans:
            self.spans.append(
                (name, (started - self._origin) * 1000.0, duration_s * 1000.0,
                 len(self._stack))
            )
        else:
            self.dropped += 1

    def count(self, name, n=1):
        """Tally a free-form event (reported under ``counters``)."""
        self.counters[name] = self.counters.get(name, 0) + n

    def unwind(self):
        """Close every span still open (an exception unwound past them)."""
        while self._stack:
            self.end()

    def attributed_ms(self):
        """Total self time across all phases (what the spans account for)."""
        return sum(self.phase_ms.values())

    def payload(self):
        """The JSON-able trace block (phases, spans, counters)."""
        out = {
            "phases": {
                name: {"ms": round(ms, 3), "count": self.phase_counts.get(name, 0)}
                for name, ms in sorted(self.phase_ms.items())
            },
            "spans": [
                [name, round(start_ms, 3), round(duration_ms, 3), depth]
                for name, start_ms, duration_ms, depth in self.spans
            ],
        }
        if self.dropped:
            out["spans_dropped"] = self.dropped
        if self.counters:
            out["counters"] = dict(sorted(self.counters.items()))
        return out
