"""Exception hierarchy for the KMT library."""


class KmtError(Exception):
    """Base class for all errors raised by the library."""


class TheoryError(KmtError):
    """A client theory was given an argument it does not understand.

    Raised, for example, when a theory's ``push_back`` is handed a primitive
    action or test that belongs to a different theory, or when a higher-order
    theory (products, sets, LTLf) cannot find an owner for a primitive.
    """


def line_and_column(text, position):
    """1-based ``(line, column)`` of a character offset into ``text``.

    Offsets past the end (the parsers point "unexpected end of input" one
    past the last character) clamp to the end of the text.
    """
    position = max(0, min(position, len(text)))
    prefix = text[:position]
    line = prefix.count("\n") + 1
    column = position - (prefix.rfind("\n") + 1) + 1
    return line, column


def caret_frame(text, position, prefix="  | "):
    """The source line containing ``position`` with a caret under it.

    Tabs in the excerpt are expanded to single spaces so the caret column
    lines up regardless of the reader's tab stops.
    """
    position = max(0, min(position, len(text)))
    start = text.rfind("\n", 0, position) + 1
    end = text.find("\n", position)
    if end == -1:
        end = len(text)
    excerpt = text[start:end].replace("\t", " ")
    return f"{prefix}{excerpt}\n{prefix}{' ' * (position - start)}^"


class ParseError(KmtError):
    """Raised by the concrete-syntax parsers on malformed input.

    Diagnostics are positional: when ``position`` and ``text`` are given, the
    rendered message carries the 1-based ``line``/``column`` plus a
    caret-frame excerpt of the offending source line (``position`` — the flat
    character offset — is kept for backward compatibility).  ``expected`` is
    the set of token spellings the grammar allowed at that point, rendered as
    an "expected one of …" clause and kept machine-readable on the attribute.
    ``bare_message`` preserves the undecorated message so wrappers (the While
    frontend re-anchoring a sub-parse error against the whole program) can
    re-render at a shifted position without stacking location clauses.
    """

    def __init__(self, message, position=None, text=None, expected=None):
        self.bare_message = message
        self.position = position
        self.text = text
        self.expected = tuple(expected) if expected else ()
        self.line = None
        self.column = None
        if self.expected:
            if len(self.expected) == 1:
                message = f"{message}; expected {self.expected[0]}"
            else:
                message = f"{message}; expected one of: {', '.join(self.expected)}"
        if position is not None and text is not None:
            self.line, self.column = line_and_column(text, position)
            message = (
                f"{message} (at line {self.line}, column {self.column})\n"
                f"{caret_frame(text, position)}"
            )
        super().__init__(message)


class NormalizationBudgetExceeded(KmtError):
    """The pushback-based normalization exceeded its step budget.

    Normalization is guaranteed to terminate (Theorem 3.5 of the paper) but can
    take doubly-exponential time on terms with sums nested under Kleene star
    (the ``Denest`` rule blow-up discussed in the paper's evaluation).  A step
    budget turns that blow-up into a catchable exception rather than an
    apparent hang; the Fig. 9 "timeout" row relies on this.
    """

    def __init__(self, budget, message=None):
        self.budget = budget
        super().__init__(message or f"normalization exceeded its step budget of {budget}")


class SolverError(KmtError):
    """A satisfiability query could not be answered by the available solvers."""


class CounterexampleBoundExceeded(KmtError):
    """A bounded counterexample search ran out of budget without a verdict.

    Raised by :func:`repro.core.automata.counterexample_word` when the
    breadth-first product search had to truncate at ``max_length`` before
    finding a distinguishing word: at that point "no word found" means
    *unknown*, not "the languages are equivalent", and silently returning
    ``None`` (the equivalence answer) would conflate the two.  The unbounded
    compiled product walk (:func:`repro.core.compile.compiled_compare`) never
    raises this — derivative automata are finite, so it always reaches a
    verdict.
    """

    def __init__(self, max_length, message=None):
        self.max_length = max_length
        super().__init__(
            message
            or (
                f"counterexample search truncated at word length {max_length} "
                "without a verdict (raise max_length, or use the compiled "
                "product walk which needs no bound)"
            )
        )


class WireProtocolError(KmtError):
    """A compact wire-form request/response failed to encode or decode.

    The wire form (:func:`repro.engine.batch.encode_wire_request` and
    friends) is what the query server ships across the process boundary to
    its worker processes.  ``code`` is the stable machine-readable
    ``error_code`` a front end should put on the error response (one of the
    ``ERROR_*`` constants in :mod:`repro.engine.batch`).
    """

    def __init__(self, message, code="malformed_request"):
        self.code = code
        super().__init__(message)


class SnapshotError(KmtError):
    """A persisted cache snapshot could not be written, read, or applied.

    Raised by :mod:`repro.engine.persist` when a snapshot file is truncated,
    corrupted, carries a foreign format/theory stamp, or fails to decode.
    Imports are staged before they are installed, so a raised
    ``SnapshotError`` always leaves the session's caches untouched — there is
    no partial load.  ``code`` is the stable machine-readable identifier
    surfaced on error responses and in logs.
    """

    def __init__(self, message, code="snapshot_invalid"):
        self.code = code
        super().__init__(message)


class WorkerCrashed(KmtError):
    """A server worker process died while a request was assigned to it.

    Raised inside the process execution backend when the pipe to a worker
    breaks mid-call; the supervisor converts it into a structured
    ``worker_crashed`` error response and respawns the worker.
    """


class BackendDown(KmtError):
    """No reachable backend could serve a routed request.

    Raised inside the cluster router when the backend a request hashes to is
    ejected from the ring and every retry replica fails (or none is left);
    the router converts it into a structured ``backend_down`` error response.
    """


class QueryCancelled(KmtError):
    """A long-running query was cancelled cooperatively.

    The decision-procedure layers (normalization, signature enumeration,
    automata comparison) accept an optional ``cancel`` callable and invoke it
    at their progress points; the callable signals cancellation by raising a
    subclass of this error, which unwinds the search without corrupting any
    memo table (results are only published on completion).
    """


class DeadlineExceeded(QueryCancelled):
    """A query ran past its caller-supplied deadline (``deadline_ms``)."""

    def __init__(self, deadline_ms=None, message=None):
        self.deadline_ms = deadline_ms
        if message is None:
            if deadline_ms is not None:
                message = f"query exceeded its deadline of {deadline_ms} ms"
            else:
                message = "query exceeded its deadline"
        super().__init__(message)
