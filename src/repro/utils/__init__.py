"""Shared utilities for the KMT reproduction.

The submodules here are deliberately small and dependency-free so the rest of
the library (terms, theories, solvers) can rely on them without import cycles.
"""

from repro.utils.errors import (
    KmtError,
    NormalizationBudgetExceeded,
    ParseError,
    TheoryError,
)
from repro.utils.frozendict import FrozenDict

__all__ = [
    "FrozenDict",
    "KmtError",
    "NormalizationBudgetExceeded",
    "ParseError",
    "TheoryError",
]
