"""Satisfiability substrate replacing the paper's Z3 embedding.

The decision procedure (Theorem 3.7) needs one oracle from the client theory:
"is this Boolean combination of primitive tests satisfiable?".  The paper's
OCaml implementation answers it either with hand-written theory solvers or by
encoding into Z3.  Z3 is not available offline, so this package provides:

* :mod:`repro.smt.dpll` — a generic DPLL(T)-style search over primitive-test
  literals with partial-assignment pruning; client theories only implement a
  conjunction-consistency check (``satisfiable_conjunction``).
* :mod:`repro.smt.literals` — substitution/evaluation helpers shared by the
  solvers and by tests.
* :mod:`repro.smt.natsolver` — the bounds-based conjunction solver used by the
  IncNat theory (the "custom solver beats Z3" path from Section 4.1).
"""

from repro.smt.dpll import dpll_satisfiable, enumerate_models, naive_satisfiable

__all__ = ["dpll_satisfiable", "enumerate_models", "naive_satisfiable"]
