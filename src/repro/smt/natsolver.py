"""Bounds reasoning for conjunctions of ``x > n`` literals (IncNat's solver).

The IncNat theory's primitive tests are lower-bound comparisons of program
variables against natural-number constants.  A conjunction of literals

    x > n1, x > n2, ..., ~(x > m1), ~(x > m2), ...

is satisfiable over the naturals iff, for every variable independently, the
strongest lower bound is below the weakest upper bound: writing
``lo = 1 + max(ni)`` (or ``0`` with no positive literal) and
``hi = min(mj)`` (or ``+inf`` with no negative literal), we need ``lo <= hi``.

This is the decidable fragment of Presburger arithmetic the paper appeals to
for IncNat's completeness, specialised to the only atoms the theory can
produce.  It is the "custom solver" of Section 4.1; the generic DPLL engine
uses it as its theory oracle.
"""

from __future__ import annotations

import math


class Bounds:
    """Per-variable lower/upper bounds accumulated from literals."""

    __slots__ = ("lower", "upper")

    def __init__(self):
        self.lower = 0  # variables range over the naturals
        self.upper = math.inf

    def add_greater_than(self, n):
        """Record the literal ``x > n``."""
        self.lower = max(self.lower, n + 1)

    def add_not_greater_than(self, n):
        """Record the literal ``~(x > n)``, i.e. ``x <= n``."""
        self.upper = min(self.upper, n)

    def consistent(self):
        return self.lower <= self.upper

    def witness(self):
        """A satisfying value (meaningful only if :meth:`consistent`)."""
        return self.lower


def satisfiable_bounds(literals):
    """Decide a conjunction of ``(variable, threshold, polarity)`` literals.

    ``polarity`` True means ``variable > threshold``; False means the
    negation.  Returns True iff some assignment of naturals to the variables
    satisfies every literal.
    """
    per_var = {}
    for variable, threshold, polarity in literals:
        bounds = per_var.setdefault(variable, Bounds())
        if polarity:
            bounds.add_greater_than(threshold)
        else:
            bounds.add_not_greater_than(threshold)
    return all(bounds.consistent() for bounds in per_var.values())


def model_bounds(literals):
    """Return a satisfying assignment ``{variable: value}`` or None."""
    per_var = {}
    for variable, threshold, polarity in literals:
        bounds = per_var.setdefault(variable, Bounds())
        if polarity:
            bounds.add_greater_than(threshold)
        else:
            bounds.add_not_greater_than(threshold)
    if not all(bounds.consistent() for bounds in per_var.values()):
        return None
    return {variable: bounds.witness() for variable, bounds in per_var.items()}
