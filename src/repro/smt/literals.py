"""Helpers for manipulating predicates as Boolean formulas over theory literals."""

from __future__ import annotations

from repro.core import terms as T


def atoms_of(pred):
    """The distinct primitive tests occurring in a predicate, in sorted order."""
    atoms = T.primitive_tests_of_pred(pred)
    wrapped = [T.pprim(a) for a in atoms]
    wrapped.sort(key=lambda p: p.sort_key())
    return [p.alpha for p in wrapped]


def substitute(pred, alpha, value):
    """Replace primitive test ``alpha`` with the constant ``value`` (a bool).

    The substitution is performed with the smart constructors, so the result
    is simplified on the fly (e.g. substituting the only atom of ``a ; ~a``
    collapses the predicate to ``0``).
    """
    if isinstance(pred, (T.PZero, T.POne)):
        return pred
    if isinstance(pred, T.PPrim):
        if pred.alpha == alpha:
            return T.pone() if value else T.pzero()
        return pred
    if isinstance(pred, T.PNot):
        return T.pnot(substitute(pred.arg, alpha, value))
    if isinstance(pred, T.PAnd):
        return T.pand(substitute(pred.left, alpha, value), substitute(pred.right, alpha, value))
    if isinstance(pred, T.POr):
        return T.por(substitute(pred.left, alpha, value), substitute(pred.right, alpha, value))
    raise TypeError(f"not a Pred: {pred!r}")


def evaluate(pred, assignment):
    """Evaluate a predicate under a total assignment ``{alpha: bool}``."""
    if isinstance(pred, T.PZero):
        return False
    if isinstance(pred, T.POne):
        return True
    if isinstance(pred, T.PPrim):
        return bool(assignment[pred.alpha])
    if isinstance(pred, T.PNot):
        return not evaluate(pred.arg, assignment)
    if isinstance(pred, T.PAnd):
        return evaluate(pred.left, assignment) and evaluate(pred.right, assignment)
    if isinstance(pred, T.POr):
        return evaluate(pred.left, assignment) or evaluate(pred.right, assignment)
    raise TypeError(f"not a Pred: {pred!r}")


def conjunction_of(literals):
    """Build the predicate conjunction of ``(alpha, polarity)`` literals."""
    out = T.pone()
    for alpha, polarity in literals:
        lit = T.pprim(alpha) if polarity else T.pnot(T.pprim(alpha))
        out = T.pand(out, lit)
    return out
