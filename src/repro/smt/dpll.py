"""A small DPLL(T)-style satisfiability engine for theory predicates.

The query answered here is the one the KMT decision procedure needs (paper
Theorem 3.7): given a Boolean combination of *primitive theory tests*, is
there a state (more precisely, a trace) that satisfies it?

The engine branches over the primitive tests occurring in the predicate, in
the usual DPLL fashion, with two prunings:

* Boolean: after each decision the predicate is simplified under the partial
  assignment; branches whose predicate collapses to ``0`` are abandoned, and
  a predicate that collapses to ``1`` only needs the decided literals to be
  theory-consistent.
* Theory: after each decision the partial literal set is checked for
  consistency with the client theory's ``satisfiable_conjunction`` oracle
  (e.g. ``x > 5`` together with ``~(x > 3)`` is pruned immediately for the
  IncNat theory).

This mirrors the role Z3 plays in the OCaml implementation; the paper notes
custom solvers are usually faster, and every shipped theory supplies a custom
``satisfiable_conjunction``.
"""

from __future__ import annotations

from itertools import product

from repro.core import terms as T
from repro.smt.literals import atoms_of, evaluate, substitute


def dpll_satisfiable(pred, theory):
    """Decide satisfiability of ``pred`` over the given theory's tests."""
    if isinstance(pred, T.POne):
        return True
    if isinstance(pred, T.PZero):
        return False
    atoms = atoms_of(pred)
    return _search(pred, atoms, 0, [], theory)


def _search(pred, atoms, index, literals, theory):
    if isinstance(pred, T.PZero):
        return False
    if literals and not theory.satisfiable_conjunction(literals):
        return False
    if isinstance(pred, T.POne):
        # The remaining atoms are unconstrained; the decided literals are
        # already theory-consistent (checked above), so we are satisfiable.
        return True
    if index >= len(atoms):
        # All atoms decided; pred should have collapsed to a constant, but a
        # theory atom can appear under an uninterpreted wrapper — fall back to
        # evaluation under the assignment.
        assignment = {alpha: polarity for alpha, polarity in literals}
        return evaluate(pred, assignment)
    alpha = atoms[index]
    for polarity in (True, False):
        simplified = substitute(pred, alpha, polarity)
        if _search(simplified, atoms, index + 1, literals + [(alpha, polarity)], theory):
            return True
    return False


def dpll_model(pred, theory):
    """Return a satisfying literal assignment ``[(alpha, bool), ...]`` or None."""
    if isinstance(pred, T.PZero):
        return None
    atoms = atoms_of(pred)
    return _search_model(pred, atoms, 0, [], theory)


def _search_model(pred, atoms, index, literals, theory):
    if isinstance(pred, T.PZero):
        return None
    if literals and not theory.satisfiable_conjunction(literals):
        return None
    if isinstance(pred, T.POne):
        return list(literals)
    if index >= len(atoms):
        assignment = {alpha: polarity for alpha, polarity in literals}
        return list(literals) if evaluate(pred, assignment) else None
    alpha = atoms[index]
    for polarity in (True, False):
        simplified = substitute(pred, alpha, polarity)
        found = _search_model(simplified, atoms, index + 1, literals + [(alpha, polarity)], theory)
        if found is not None:
            return found
    return None


def enumerate_models(pred, theory):
    """Yield every theory-consistent total assignment satisfying ``pred``.

    Exponential in the number of atoms — intended for tests and small
    diagnostics, not for the decision procedure.
    """
    atoms = atoms_of(pred)
    for values in product((True, False), repeat=len(atoms)):
        literals = list(zip(atoms, values))
        if not evaluate(pred, dict(literals)):
            continue
        if literals and not theory.satisfiable_conjunction(literals):
            continue
        yield literals


def naive_satisfiable(pred, theory):
    """Unpruned enumeration-based satisfiability (the ablation baseline)."""
    if isinstance(pred, T.POne):
        return True
    if isinstance(pred, T.PZero):
        return False
    for _ in enumerate_models(pred, theory):
        return True
    return False
