"""A small DPLL(T)-style satisfiability engine for theory predicates.

The query answered here is the one the KMT decision procedure needs (paper
Theorem 3.7): given a Boolean combination of *primitive theory tests*, is
there a state (more precisely, a trace) that satisfies it?

The engine branches over the primitive tests occurring in the predicate, in
the usual DPLL fashion, with two prunings:

* Boolean: after each decision the predicate is simplified under the partial
  assignment; branches whose predicate collapses to ``0`` are abandoned, and
  a predicate that collapses to ``1`` only needs the decided literals to be
  theory-consistent.
* Theory: after each decision the partial literal set is checked for
  consistency with the client theory's ``satisfiable_conjunction`` oracle
  (e.g. ``x > 5`` together with ``~(x > 3)`` is pruned immediately for the
  IncNat theory).

This mirrors the role Z3 plays in the OCaml implementation; the paper notes
custom solvers are usually faster, and every shipped theory supplies a custom
``satisfiable_conjunction``.
"""

from __future__ import annotations

from itertools import product

from repro.core import terms as T
from repro.smt.literals import atoms_of, evaluate, substitute


def dpll_satisfiable(pred, theory):
    """Decide satisfiability of ``pred`` over the given theory's tests."""
    if isinstance(pred, T.POne):
        return True
    if isinstance(pred, T.PZero):
        return False
    atoms = atoms_of(pred)
    return _search(pred, atoms, 0, [], theory)


def _search(pred, atoms, index, literals, theory):
    if isinstance(pred, T.PZero):
        return False
    if literals and not theory.satisfiable_conjunction(literals):
        return False
    if isinstance(pred, T.POne):
        # The remaining atoms are unconstrained; the decided literals are
        # already theory-consistent (checked above), so we are satisfiable.
        return True
    if index >= len(atoms):
        # All atoms decided; pred should have collapsed to a constant, but a
        # theory atom can appear under an uninterpreted wrapper — fall back to
        # evaluation under the assignment.
        assignment = {alpha: polarity for alpha, polarity in literals}
        return evaluate(pred, assignment)
    alpha = atoms[index]
    for polarity in (True, False):
        simplified = substitute(pred, alpha, polarity)
        if _search(simplified, atoms, index + 1, literals + [(alpha, polarity)], theory):
            return True
    return False


def dpll_model(pred, theory):
    """Return a satisfying literal assignment ``[(alpha, bool), ...]`` or None."""
    if isinstance(pred, T.PZero):
        return None
    atoms = atoms_of(pred)
    return _search_model(pred, atoms, 0, [], theory)


def _search_model(pred, atoms, index, literals, theory):
    if isinstance(pred, T.PZero):
        return None
    if literals and not theory.satisfiable_conjunction(literals):
        return None
    if isinstance(pred, T.POne):
        return list(literals)
    if index >= len(atoms):
        assignment = {alpha: polarity for alpha, polarity in literals}
        return list(literals) if evaluate(pred, assignment) else None
    alpha = atoms[index]
    for polarity in (True, False):
        simplified = substitute(pred, alpha, polarity)
        found = _search_model(simplified, atoms, index + 1, literals + [(alpha, polarity)], theory)
        if found is not None:
            return found
    return None


def enumerate_models(pred, theory):
    """Yield every theory-consistent total assignment satisfying ``pred``.

    Exponential in the number of atoms — intended for tests and small
    diagnostics, not for the decision procedure.
    """
    atoms = atoms_of(pred)
    for values in product((True, False), repeat=len(atoms)):
        literals = list(zip(atoms, values))
        if not evaluate(pred, dict(literals)):
            continue
        if literals and not theory.satisfiable_conjunction(literals):
            continue
        yield literals


def naive_satisfiable(pred, theory):
    """Unpruned enumeration-based satisfiability (the ablation baseline)."""
    if isinstance(pred, T.POne):
        return True
    if isinstance(pred, T.PZero):
        return False
    for _ in enumerate_models(pred, theory):
        return True
    return False


# ---------------------------------------------------------------------------
# AllSAT-style enumeration of guard signatures
# ---------------------------------------------------------------------------


class SignatureSearchStats:
    """Counters for one :func:`enumerate_signatures` search."""

    def __init__(self):
        self.decisions = 0
        self.propagations = 0
        self.theory_pruned = 0
        self.blocked_pruned = 0

    def as_dict(self):
        return {
            "decisions": self.decisions,
            "propagations": self.propagations,
            "theory_pruned": self.theory_pruned,
            "blocked_pruned": self.blocked_pruned,
        }

    def __repr__(self):
        return f"SignatureSearchStats({self.as_dict()})"


def enumerate_signatures(guards, theory, satisfiable=None, stats=None, cancel=None):
    """Enumerate the theory-realizable truth valuations of ``guards``.

    ``guards`` is a list of predicates over the theory's primitive tests.  A
    *signature* is a tuple of booleans, one per guard; it is realizable when
    some theory-consistent assignment of the underlying primitive tests gives
    each guard the corresponding truth value.  Yields ``(signature, witness)``
    pairs where ``witness`` is a theory-satisfiable list of
    ``(alpha, polarity)`` literals under which every guard evaluates to its
    signature bit (the witness may be *partial* — primitive tests that no
    guard depends on are left undecided, and any satisfying state for the
    witness extends it without changing the guards).

    This is AllSAT with blocking clauses, projected onto the guard formulas:
    each found signature ``S`` contributes the clause ``∨ᵢ (gᵢ ≠ Sᵢ)``.  A
    single depth-first search over the atoms carries the clause set as a flat
    list (never one nested formula, so depth stays bounded by the clause
    width) and continues after every model instead of restarting; clauses
    discovered in earlier branches are imported lazily into the current path,
    so a subtree all of whose completions reproduce already-seen signatures
    folds to false and is abandoned wholesale.  A clause reduced to a bare
    primitive test (or its negation) is unit-propagated without branching.
    Decisions are pruned against the theory's ``satisfiable_conjunction``
    oracle exactly like :func:`dpll_satisfiable`.

    ``satisfiable`` optionally overrides the consistency oracle (a callable
    on literal lists — the decision procedure passes a memoized wrapper);
    ``stats`` optionally collects :class:`SignatureSearchStats` counters;
    ``cancel`` is an optional cooperative-cancellation callable invoked once
    per decision, aborting the enumeration by raising (see
    :class:`~repro.utils.errors.QueryCancelled`).
    """
    guards = list(guards)
    if stats is None:
        stats = SignatureSearchStats()
    if satisfiable is None:
        def satisfiable(literals):
            return not literals or theory.satisfiable_conjunction(literals)
    blocked = []  # original (unsubstituted) blocking clauses, grown per model
    yield from _search_signatures(guards, list(guards), [], 0, [], blocked,
                                  satisfiable, stats, cancel)


def _import_clauses(clauses, imported, literals, blocked, stats):
    """Bring blocking clauses found in earlier branches into this path.

    Applies the path's literals to every clause in ``blocked[imported:]``;
    returns ``(clauses, imported)`` or ``None`` when a clause folds to false
    (every completion of this path reproduces a seen signature).
    """
    while imported < len(blocked):
        clause = blocked[imported]
        imported += 1
        for alpha, polarity in literals:
            clause = substitute(clause, alpha, polarity)
        value = _constant_value(clause)
        if value is False:
            stats.blocked_pruned += 1
            return None
        if value is not True:
            clauses = clauses + [clause]
    return clauses, imported


def _search_signatures(originals, guards, clauses, imported, literals, blocked,
                       satisfiable, stats, cancel=None):
    state = _import_clauses(clauses, imported, literals, blocked, stats)
    if state is None:
        return
    clauses, imported = state
    # Propagate literals forced by unit clauses before branching.
    while True:
        unit = next((u for u in map(_clause_unit, clauses) if u is not None), None)
        if unit is None:
            break
        alpha, polarity = unit
        stats.propagations += 1
        literals = literals + [(alpha, polarity)]
        if not satisfiable(literals):
            stats.theory_pruned += 1
            return
        guards = [substitute(g, alpha, polarity) for g in guards]
        clauses = _substitute_clauses(clauses, alpha, polarity)
        if clauses is None:
            stats.blocked_pruned += 1
            return
    alpha = _pick_atom(guards)
    if alpha is None:
        # Every guard decided, and no imported clause folded to false — a
        # fresh signature (a seen one would have made its clause false).
        signature = tuple(bool(_constant_value(g)) for g in guards)
        blocked.append(_blocking_clause(originals, signature))
        yield signature, list(literals)
        return
    stats.decisions += 1
    if cancel is not None:
        cancel()
    for polarity in (True, False):
        extended = literals + [(alpha, polarity)]
        if not satisfiable(extended):
            stats.theory_pruned += 1
            continue
        branch_clauses = _substitute_clauses(clauses, alpha, polarity)
        if branch_clauses is None:
            stats.blocked_pruned += 1
            continue
        yield from _search_signatures(
            originals,
            [substitute(g, alpha, polarity) for g in guards],
            branch_clauses,
            imported,
            extended,
            blocked,
            satisfiable,
            stats,
            cancel,
        )


def _substitute_clauses(clauses, alpha, polarity):
    """Apply one literal to every live clause; None when one folds to false."""
    out = []
    for clause in clauses:
        reduced = substitute(clause, alpha, polarity)
        value = _constant_value(reduced)
        if value is False:
            return None
        if value is not True:
            out.append(reduced)
    return out


def _blocking_clause(guards, signature):
    """The clause "at least one guard differs from ``signature``"."""
    return T.por_all(
        T.pnot(guard) if bit else guard for guard, bit in zip(guards, signature)
    )


def _constant_value(pred):
    """``True``/``False`` when ``pred`` contains no primitive tests, else None.

    Substitution normally constant-folds through the smart constructors, but
    those can be switched off (``terms.smart_constructors_disabled``), leaving
    shapes like ``PAnd(POne, POne)`` unfolded — so the search folds logically
    here instead of trusting ``isinstance(_, POne/PZero)``.
    """
    if isinstance(pred, T.POne):
        return True
    if isinstance(pred, T.PZero):
        return False
    if isinstance(pred, T.PPrim):
        return None
    if isinstance(pred, T.PNot):
        value = _constant_value(pred.arg)
        return None if value is None else not value
    if isinstance(pred, T.PAnd):
        left = _constant_value(pred.left)
        if left is False:
            return False
        right = _constant_value(pred.right)
        if right is False:
            return False
        return True if left and right else None
    if isinstance(pred, T.POr):
        left = _constant_value(pred.left)
        if left is True:
            return True
        right = _constant_value(pred.right)
        if right is True:
            return True
        return False if left is False and right is False else None
    raise TypeError(f"not a Pred: {pred!r}")


def _clause_unit(clause):
    """The forced literal of a clause that collapsed to a bare literal, or None."""
    if isinstance(clause, T.PPrim):
        return clause.alpha, True
    if isinstance(clause, T.PNot) and isinstance(clause.arg, T.PPrim):
        return clause.arg.alpha, False
    return None


def _min_atom(pred, best):
    """Fold the smallest primitive test of ``pred`` into ``best``.

    ``best`` is ``(alpha, sort_key)`` or ``(None, None)``; a direct recursive
    walk so the hot search loop avoids building and sorting the full
    ``atoms_of`` list per guard per decision node.
    """
    if isinstance(pred, (T.POne, T.PZero)):
        return best
    if isinstance(pred, T.PPrim):
        key = pred.sort_key()
        if best[1] is None or key < best[1]:
            return (pred.alpha, key)
        return best
    if isinstance(pred, T.PNot):
        return _min_atom(pred.arg, best)
    if isinstance(pred, (T.PAnd, T.POr)):
        return _min_atom(pred.right, _min_atom(pred.left, best))
    raise TypeError(f"not a Pred: {pred!r}")


def _pick_atom(guards):
    """The smallest undecided primitive test still constraining some guard."""
    best = (None, None)
    for guard in guards:
        best = _min_atom(guard, best)
    return best[0]


