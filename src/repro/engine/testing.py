"""Spawn-importable theory factories for tests and benchmarks.

The process execution backend cannot ship an in-process callable to its
worker processes; factory injection crosses the boundary as a
``theory_factory_spec`` string (``"module:attribute"``) that each worker
resolves after spawning.  Test-suite and benchmark factories therefore live
here — a real module on ``PYTHONPATH``, importable in any spawned child —
and are configured through environment variables, which spawned workers
inherit from the parent:

``KMT_TEST_ORACLE_DELAY_MS``
    Per-call sleep (milliseconds) added to ``satisfiable_conjunction`` /
    ``satisfiable``, modeling the out-of-process SMT solver the paper's
    implementations call (Z3 over IPC).  Default ``0`` (no wrapping).

``KMT_TEST_ORACLE_THEORIES``
    Comma-separated theory preset names the delay applies to; empty or unset
    applies it to every theory.

These knobs drive the crash-recovery and deadline tests (a long oracle sleep
opens a deterministic window to kill a worker mid-query, or to expire a
deadline) and the serve benchmark's simulated-solver mode.
"""

from __future__ import annotations

import os
import time

from repro.engine.telemetry import process_metrics
from repro.theories import build_theory


class _ProcessMetricsCounter:
    """Counter adapter bumping ``oracle_calls_total`` in the process-global
    metrics registry.

    Inside a spawned worker that registry's snapshot rides the stats pipe to
    the supervisor (see ``_full_metrics`` in :mod:`repro.engine.server`), so
    oracle-call counts from worker processes are visible to the parent — the
    serve benchmark reads them off ``metrics_snapshot()`` to make the process
    backend's accounting comparable with the in-process modes.
    """

    def __init__(self, theory_name):
        self._labels = (("theory", theory_name),)

    def bump(self):
        process_metrics().inc("oracle_calls_total", self._labels)


class OracleLatencyTheory:
    """Delegating theory wrapper adding per-oracle-call latency.

    Each ``satisfiable_conjunction`` / ``satisfiable`` call sleeps
    ``delay_s`` (releasing the GIL, exactly as real solver IPC would) before
    delegating to the wrapped theory.  ``counter`` (optional, any object with
    a ``bump()`` method) tallies oracle calls — the serve benchmark uses it
    to report how much oracle work each in-process configuration performed.
    """

    def __init__(self, inner, delay_s, counter=None):
        self._inner = inner
        self._delay_s = delay_s
        self._counter = counter

    def _pay(self):
        if self._delay_s > 0:
            time.sleep(self._delay_s)
        if self._counter is not None:
            self._counter.bump()

    def satisfiable_conjunction(self, literals):
        self._pay()
        return self._inner.satisfiable_conjunction(literals)

    def satisfiable(self, pred):
        self._pay()
        return self._inner.satisfiable(pred)

    def __getattr__(self, name):
        return getattr(self._inner, name)


def oracle_latency_factory(theory_name):
    """Build a theory, wrapped with the env-configured oracle latency.

    Spec form: ``"repro.engine.testing:oracle_latency_factory"``.
    """
    theory = build_theory(theory_name)
    delay_ms = float(os.environ.get("KMT_TEST_ORACLE_DELAY_MS", "0") or "0")
    only = os.environ.get("KMT_TEST_ORACLE_THEORIES", "")
    if delay_ms <= 0:
        return theory
    if only and theory_name.lower() not in {name.strip().lower()
                                            for name in only.split(",") if name.strip()}:
        return theory
    return OracleLatencyTheory(theory, delay_ms / 1000.0,
                               counter=_ProcessMetricsCounter(theory_name))
