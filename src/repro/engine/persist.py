"""Persistent snapshot tier: warm-start caches across restarts and respawns.

Every cache the engine builds — normal forms, compiled automata, signature
verdicts, equivalence results, compiled programs — normally dies with the
process.  This module makes that warmth durable:

* :class:`SnapshotCodec` — serializes one session's cache entries to
  JSON-safe data and back.  Fingerprints are process-local counters, so keys
  are serialized *structurally*: every term/predicate node goes into a
  per-session node **pool** (children referenced by index, hash-consed
  subterms encoded exactly once) whose leaves are the theory primitives'
  concrete syntax (``str(pi)`` / ``str(alpha)`` — the same contract the
  witness-word wire serialization relies on).  Decoding rebuilds nodes
  bottom-up through the smart constructors and only runs the text parser on
  the (few, tiny) leaf strings, so importing a multi-megabyte snapshot costs
  milliseconds, not a re-parse of every cached term; hash-consing makes the
  rebuilt terms re-fingerprint onto the same keys.
  ``CompiledAutomaton`` flat tables dump near-verbatim: the ``delta``/``back``
  ``array('i')`` buffers as base64 bytes (stamped with int width and byte
  order), the accepting bitset as hex, and the interned alphabet as pooled
  primitive leaves.

* :class:`SnapshotStore` — a versioned on-disk store.  Files carry a format
  magic + version and a per-session theory stamp; stale or foreign snapshots
  raise :class:`~repro.utils.errors.SnapshotError` (stable code
  ``snapshot_invalid``).  Saves are atomic (write-to-temp + ``os.replace``)
  and imports are staged before they are installed, so a bad snapshot never
  leaves a partially-loaded cache.

* :class:`CheckpointManager` — boot-time load, periodic background
  checkpoints, and a drain-safe final checkpoint, with ``snapshot_*``
  metrics counters and a ``snapshot`` stats block.

The higher layers thread this through everything:
``EngineCaches.export_state/import_state`` (:mod:`repro.engine.cache`) →
``EngineSession.export_state/import_state`` (:mod:`repro.engine.session`) →
``SessionPool`` / ``ShardedSessionPool`` ``export_snapshot/import_snapshot``
(:mod:`repro.engine.batch` / :mod:`repro.engine.server`) → ``kmt serve
--snapshot PATH --checkpoint-interval SECS`` (:mod:`repro.cli`), and the
process-backend supervisor hands the latest payload to respawned workers so
a SIGKILL'd worker comes back warm.
"""

from __future__ import annotations

import base64
import json
import logging
import os
import sys
import tempfile
import threading
import time
from array import array

from repro.core import terms as T
from repro.core.compile import CompiledAutomaton
from repro.core.decision import Counterexample, EquivalenceResult, InclusionResult
from repro.core.normalform import NormalForm
from repro.engine.telemetry import log_event
from repro.utils.errors import KmtError, SnapshotError
from repro.utils.trace import current_trace

#: Stable error code carried by every :class:`SnapshotError` this module
#: raises (mirrors the batch layer's ``ERROR_*`` constants).
ERROR_SNAPSHOT_INVALID = "snapshot_invalid"

#: File format magic; a file without it is foreign and rejected outright.
SNAPSHOT_MAGIC = "kmt-snapshot"

#: Snapshot codec version.  Bump whenever the entry encodings change shape;
#: a version-bumped file is *stale* and rejected atomically (a cold start is
#: always safe, a half-understood snapshot never is).
SNAPSHOT_VERSION = 1

_logger = logging.getLogger("kmt.persist")

#: The cache tables a snapshot persists, in install order.
SNAPSHOT_TABLES = ("norm", "aut", "sig", "equiv", "prog")


def _invalid(message):
    raise SnapshotError(message, code=ERROR_SNAPSHOT_INVALID)


class SnapshotCodec:
    """Serialize one session's cache entries to JSON-safe values and back.

    Built around a live :class:`~repro.engine.session.EngineSession`: decoding
    needs the session's parser (terms come back as source text) and its
    theory (primitive actions/tests are reconstructed through the theory's
    concrete syntax).  Encoding failures raise :class:`SnapshotError`; the
    export path treats them as "skip this entry" (a snapshot is best-effort
    warmth transfer), while the import path treats any decode failure as
    fatal for the whole snapshot (atomic rejection, no partial load).
    """

    def __init__(self, session):
        self.session = session
        self.theory = session.theory
        #: Encoder side: the node pool this codec is writing (attached to the
        #: session state as ``"pool"``) and the live-node → index memo.
        self.pool = []
        self._enc_index = {}
        #: Decoder side: the materialized pool (set by :meth:`load_pool`).
        self._nodes = None

    def invalid(self, message):
        _invalid(message)

    # -- the node pool ---------------------------------------------------
    # Terms and predicates serialize as indices into a per-session pool of
    # ``[tag, ...]`` nodes in bottom-up (children-first) order.  Hash-consing
    # means shared subterms are one pool entry no matter how many cache
    # entries reference them, and decoding is a single linear pass through
    # the smart constructors — no text parsing except at primitive leaves.
    @staticmethod
    def _node_children(node):
        if isinstance(node, (T.TSeq, T.TPlus, T.PAnd, T.POr)):
            return (node.left, node.right)
        if isinstance(node, T.TStar):
            return (node.arg,)
        if isinstance(node, T.TTest):
            return (node.pred,)
        if isinstance(node, T.PNot):
            return (node.arg,)
        return ()

    def _encode_one(self, node, child_refs):
        if isinstance(node, T.TPrim):
            try:
                return ["P", str(node.pi)]
            except Exception as error:
                _invalid(f"primitive action failed to serialize: {error}")
        if isinstance(node, T.PPrim):
            try:
                return ["A", str(node.alpha)]
            except Exception as error:
                _invalid(f"primitive test failed to serialize: {error}")
        if isinstance(node, T.TSeq):
            return [";", child_refs[0], child_refs[1]]
        if isinstance(node, T.TPlus):
            return ["+", child_refs[0], child_refs[1]]
        if isinstance(node, T.TStar):
            return ["*", child_refs[0]]
        if isinstance(node, T.TTest):
            return ["?", child_refs[0]]
        if isinstance(node, T.PAnd):
            return ["&", child_refs[0], child_refs[1]]
        if isinstance(node, T.POr):
            return ["|", child_refs[0], child_refs[1]]
        if isinstance(node, T.PNot):
            return ["!", child_refs[0]]
        if isinstance(node, T.PZero):
            return ["p0"]
        if isinstance(node, T.POne):
            return ["p1"]
        _invalid(f"snapshot cannot encode node type {type(node).__name__}")

    def _encode_node(self, root):
        """Pool index of ``root``, appending any missing subterms (iterative —
        cached normal forms nest far deeper than the recursion limit)."""
        index = self._enc_index
        pool = self.pool
        stack = [root]
        while stack:
            node = stack[-1]
            if node in index:
                stack.pop()
                continue
            children = self._node_children(node)
            pending = [child for child in children if child not in index]
            if pending:
                stack.extend(pending)
                continue
            stack.pop()
            pool.append(self._encode_one(node, [index[child] for child in children]))
            index[node] = len(pool) - 1
        return index[root]

    def load_pool(self, data):
        """Materialize a payload's node pool (decoder side, strict).

        Every malformed node — unknown tag, wrong arity, forward/out-of-range
        child reference, a leaf the theory cannot re-parse — rejects the
        whole snapshot.
        """
        if data is None:
            data = []
        if not isinstance(data, list):
            _invalid(f"snapshot node pool must be a list, got {type(data).__name__}")
        nodes = []
        term_leaves = {}
        pred_leaves = {}

        def child(item, position, want, label):
            ref = item[position]
            if not isinstance(ref, int) or isinstance(ref, bool):
                _invalid(f"snapshot node child reference must be an int, got {ref!r}")
            if not 0 <= ref < len(nodes):
                _invalid(f"snapshot node references {ref} before it is defined")
            node = nodes[ref]
            if not isinstance(node, want):
                _invalid(f"snapshot node {item[0]!r} expects a {label} operand")
            return node

        arities = {"P": 2, "A": 2, ";": 3, "+": 3, "*": 2, "?": 2,
                   "&": 3, "|": 3, "!": 2, "p0": 1, "p1": 1}
        for item in data:
            if not isinstance(item, list) or not item or not isinstance(item[0], str):
                _invalid(f"snapshot pool node malformed: {item!r}")
            tag = item[0]
            if arities.get(tag) != len(item):
                _invalid(f"snapshot pool node has wrong shape: {item!r}")
            if tag == "P":
                node = self._parse_leaf_term(item[1], term_leaves)
            elif tag == "A":
                node = self._parse_leaf_pred(item[1], pred_leaves)
            elif tag == ";":
                node = T.tseq(child(item, 1, T.Term, "term"),
                              child(item, 2, T.Term, "term"))
            elif tag == "+":
                node = T.tplus(child(item, 1, T.Term, "term"),
                               child(item, 2, T.Term, "term"))
            elif tag == "*":
                node = T.tstar(child(item, 1, T.Term, "term"))
            elif tag == "?":
                node = T.ttest(child(item, 1, T.Pred, "predicate"))
            elif tag == "&":
                node = T.pand(child(item, 1, T.Pred, "predicate"),
                              child(item, 2, T.Pred, "predicate"))
            elif tag == "|":
                node = T.por(child(item, 1, T.Pred, "predicate"),
                             child(item, 2, T.Pred, "predicate"))
            elif tag == "!":
                node = T.pnot(child(item, 1, T.Pred, "predicate"))
            elif tag == "p0":
                node = T.pzero()
            else:  # "p1"
                node = T.pone()
            nodes.append(node)
        self._nodes = nodes
        return len(nodes)

    def _parse_leaf_term(self, src, memo):
        if not isinstance(src, str):
            _invalid(f"snapshot primitive action source must be a string, got {src!r}")
        node = memo.get(src)
        if node is None:
            try:
                node = self.session.parse(src)
            except KmtError as error:
                _invalid(f"snapshot primitive action {src!r} failed to re-parse: {error}")
            if not isinstance(node, T.TPrim):
                _invalid(f"snapshot leaf {src!r} is not a primitive action")
            memo[src] = node
        return node

    def _parse_leaf_pred(self, src, memo):
        if not isinstance(src, str):
            _invalid(f"snapshot primitive test source must be a string, got {src!r}")
        node = memo.get(src)
        if node is None:
            try:
                node = self.session.parse_pred(src)
            except KmtError as error:
                _invalid(f"snapshot primitive test {src!r} failed to re-parse: {error}")
            if not isinstance(node, T.PPrim):
                _invalid(f"snapshot leaf {src!r} is not a primitive test")
            memo[src] = node
        return node

    def _ref(self, ref, want, label):
        if self._nodes is None:
            _invalid("snapshot session payload has no node pool")
        if not isinstance(ref, int) or isinstance(ref, bool):
            _invalid(f"snapshot {label} reference must be an int, got {ref!r}")
        if not 0 <= ref < len(self._nodes):
            _invalid(f"snapshot {label} reference {ref} out of pool range")
        node = self._nodes[ref]
        if not isinstance(node, want):
            _invalid(f"snapshot {label} reference {ref} is a {type(node).__name__}")
        return node

    # -- terms and predicates -------------------------------------------
    def encode_term(self, term):
        if not isinstance(term, T.Term):
            _invalid(f"snapshot cannot encode {term!r} as a term")
        return self._encode_node(term)

    def decode_term(self, ref):
        return self._ref(ref, T.Term, "term")

    def encode_pred(self, pred):
        if not isinstance(pred, T.Pred):
            _invalid(f"snapshot cannot encode {pred!r} as a predicate")
        return self._encode_node(pred)

    def decode_pred(self, ref):
        return self._ref(ref, T.Pred, "predicate")

    # -- theory primitives ----------------------------------------------
    def encode_pi(self, pi):
        return self._encode_node(T.tprim(pi))

    def decode_pi(self, ref):
        return self._ref(ref, T.TPrim, "primitive action").pi

    def encode_alpha(self, alpha):
        return self._encode_node(T.pprim(alpha))

    def decode_alpha(self, ref):
        return self._ref(ref, T.PPrim, "primitive test").alpha

    def encode_word(self, word):
        if word is None:
            return None
        return [self.encode_pi(pi) for pi in word]

    def decode_word(self, data):
        if data is None:
            return None
        if not isinstance(data, list):
            _invalid(f"snapshot word must be a list of symbols, got {data!r}")
        return tuple(self.decode_pi(src) for src in data)

    # -- normal forms ----------------------------------------------------
    def encode_normal_form(self, nf):
        return [
            [self.encode_pred(test), self.encode_term(action)]
            for test, action in nf.sorted_pairs()
        ]

    def decode_normal_form(self, data):
        if not isinstance(data, list):
            _invalid(f"snapshot normal form must be a list of pairs, got {data!r}")
        pairs = []
        for item in data:
            if not isinstance(item, list) or len(item) != 2:
                _invalid(f"snapshot normal-form pair malformed: {item!r}")
            pairs.append((self.decode_pred(item[0]), self.decode_term(item[1])))
        try:
            return NormalForm(pairs)
        except KmtError as error:
            _invalid(f"snapshot normal form failed validation: {error}")

    # -- compiled automata -----------------------------------------------
    def encode_automaton(self, automaton):
        return {
            "sigma": [self.encode_pi(pi) for pi in automaton.sigma],
            "n": automaton.n_states,
            "raw": automaton.raw_states,
            "acc": format(automaton.accepting, "x"),
            "delta": base64.b64encode(automaton.delta.tobytes()).decode("ascii"),
            "back": base64.b64encode(automaton.back.tobytes()).decode("ascii"),
            "item": automaton.delta.itemsize,
            "bo": sys.byteorder,
        }

    def decode_automaton(self, data):
        if not isinstance(data, dict):
            _invalid(f"snapshot automaton must be a dict, got {data!r}")
        try:
            sigma = tuple(self.decode_pi(src) for src in data["sigma"])
            n_states = int(data["n"])
            raw_states = int(data["raw"])
            accepting = int(data["acc"], 16)
            delta = array("i")
            delta.frombytes(base64.b64decode(data["delta"], validate=True))
            back = array("i")
            back.frombytes(base64.b64decode(data["back"], validate=True))
            item = int(data["item"])
            byteorder = data["bo"]
        except SnapshotError:
            raise
        except Exception as error:
            _invalid(f"snapshot automaton failed to decode: {error}")
        if item != delta.itemsize:
            _invalid(
                f"snapshot automaton int width {item} does not match this "
                f"platform's {delta.itemsize} (foreign snapshot)"
            )
        if byteorder not in ("little", "big"):
            _invalid(f"snapshot automaton byte order {byteorder!r} unknown")
        if byteorder != sys.byteorder:
            delta.byteswap()
            back.byteswap()
        try:
            automaton = CompiledAutomaton(
                sigma, delta, accepting, back, raw_states, n_states=n_states
            )
        except KmtError as error:
            _invalid(f"snapshot automaton tables inconsistent: {error}")
        self._check_automaton(automaton)
        return automaton

    @staticmethod
    def _check_automaton(automaton):
        """Structural validation beyond table lengths (corruption guard)."""
        n = automaton.n_states
        nsym = len(automaton.sigma)
        for target in automaton.delta:
            if not (-1 <= target < n):
                _invalid(f"snapshot automaton transition target {target} out of range")
        for state in range(n):
            pred = automaton.back[2 * state]
            sym = automaton.back[2 * state + 1]
            if not (-1 <= pred < n) or not (-1 <= sym < nsym):
                _invalid(
                    f"snapshot automaton back-pointer ({pred}, {sym}) out of range"
                )
        if automaton.accepting < 0 or (n >= 0 and automaton.accepting >> max(n, 0) != 0):
            _invalid("snapshot automaton accepting bitset has bits beyond its states")

    # -- decision results -------------------------------------------------
    def encode_counterexample(self, counterexample):
        if counterexample is None:
            return None
        return {
            "cell": [
                [self.encode_alpha(alpha), bool(value)]
                for alpha, value in counterexample.cell
            ],
            "l": self.encode_term(counterexample.left_actions),
            "r": self.encode_term(counterexample.right_actions),
            "w": self.encode_word(counterexample.word),
        }

    def decode_counterexample(self, data):
        if data is None:
            return None
        if not isinstance(data, dict):
            _invalid(f"snapshot counterexample must be a dict, got {data!r}")
        try:
            cell_data = data["cell"]
            left = data["l"]
            right = data["r"]
            word = data["w"]
        except KeyError as error:
            _invalid(f"snapshot counterexample missing field: {error}")
        if not isinstance(cell_data, list):
            _invalid(f"snapshot counterexample cell malformed: {cell_data!r}")
        cell = []
        for item in cell_data:
            if not isinstance(item, list) or len(item) != 2:
                _invalid(f"snapshot cell literal malformed: {item!r}")
            cell.append((self.decode_alpha(item[0]), bool(item[1])))
        return Counterexample(
            cell=cell,
            left_actions=self.decode_term(left),
            right_actions=self.decode_term(right),
            word=self.decode_word(word),
        )

    def encode_result(self, result):
        if isinstance(result, EquivalenceResult):
            verdict = result.equivalent
        elif isinstance(result, InclusionResult):
            verdict = result.includes
        else:
            _invalid(f"snapshot cannot encode result type {type(result).__name__}")
        return {
            "ok": bool(verdict),
            "ce": self.encode_counterexample(result.counterexample),
            "cells": result.cells_explored,
            "pruned": result.cells_pruned,
            "sigs": result.signatures_explored,
        }

    def decode_result(self, data, kind):
        if not isinstance(data, dict):
            _invalid(f"snapshot result must be a dict, got {data!r}")
        counterexample = self.decode_counterexample(data.get("ce"))
        kwargs = {
            "counterexample": counterexample,
            "cells_explored": int(data.get("cells", 0)),
            "cells_pruned": int(data.get("pruned", 0)),
            "signatures_explored": int(data.get("sigs", 0)),
        }
        if kind == "incl":
            return InclusionResult(includes=bool(data["ok"]), **kwargs)
        return EquivalenceResult(equivalent=bool(data["ok"]), **kwargs)

    # -- programs ---------------------------------------------------------
    def decode_program(self, src):
        """Re-parse + re-compile a While program (the ``prog`` cache value)."""
        from repro.lang.while_lang import parse_program

        if not isinstance(src, str):
            _invalid(f"snapshot program source must be a string, got {src!r}")
        try:
            program = parse_program(src, self.theory)
            return (program, program.compile())
        except KmtError as error:
            _invalid(f"snapshot program failed to re-compile: {error}")


# ----------------------------------------------------------------------
# session-level export / import
# ----------------------------------------------------------------------
def export_session_state(session):
    """One session's persistable cache state, stamped with its theory.

    Entries that fail to encode (e.g. a custom theory whose primitives do
    not round-trip through the parser) are skipped individually — export is
    best-effort warmth transfer, never a failure mode for a running server.
    """
    codec = SnapshotCodec(session)
    trace = current_trace()
    if trace is None:
        state = session.caches.export_state(codec)
    else:
        with trace.span("snapshot_save"):
            state = session.caches.export_state(codec)
    # The export path emits entries in canonical (sort-key) order, so the
    # pool's encounter order — and with it the whole file — is byte-stable
    # for a given cache state, independent of access history.
    state["pool"] = codec.pool
    state["theory"] = session.theory.describe()
    return state


def stage_session_state(session, state):
    """Decode one session's payload against its live theory (no install).

    Raises :class:`SnapshotError` on a theory-stamp mismatch or any decode
    failure; on success returns the staged entries for
    ``EngineCaches.install_state``.
    """
    if not isinstance(state, dict):
        _invalid(f"snapshot session payload must be a dict, got {type(state).__name__}")
    stamp = state.get("theory")
    live = session.theory.describe()
    if stamp != live:
        _invalid(
            f"snapshot theory stamp {stamp!r} does not match the live theory "
            f"{live!r} (foreign or stale snapshot)"
        )
    codec = SnapshotCodec(session)
    try:
        codec.load_pool(state.get("pool"))
        return session.caches.stage_state(state, codec)
    except SnapshotError:
        raise
    except Exception as error:
        _invalid(f"snapshot session payload failed to decode: {error}")


def import_session_state(session, state):
    """Stage and install one session's payload; returns per-table counts."""
    trace = current_trace()
    if trace is None:
        staged = stage_session_state(session, state)
    else:
        with trace.span("snapshot_load"):
            staged = stage_session_state(session, state)
    return session.caches.install_state(staged)


# ----------------------------------------------------------------------
# whole-payload envelope
# ----------------------------------------------------------------------
def make_payload(sessions):
    """Wrap per-theory session states in the versioned snapshot envelope."""
    return {
        "format": SNAPSHOT_MAGIC,
        "version": SNAPSHOT_VERSION,
        "sessions": dict(sessions),
    }


def check_payload(payload):
    """Validate the envelope; returns the ``{theory: state}`` sessions dict."""
    if not isinstance(payload, dict):
        _invalid(f"snapshot payload must be a dict, got {type(payload).__name__}")
    magic = payload.get("format")
    if magic != SNAPSHOT_MAGIC:
        _invalid(f"not a kmt snapshot (format {magic!r})")
    version = payload.get("version")
    if version != SNAPSHOT_VERSION:
        _invalid(
            f"snapshot version {version!r} is not the supported "
            f"version {SNAPSHOT_VERSION} (stale snapshot)"
        )
    sessions = payload.get("sessions")
    if not isinstance(sessions, dict):
        _invalid("snapshot payload has no sessions dict")
    return sessions


def count_payload_entries(payload):
    """Total table entries across every session of a payload (for stats)."""
    total = 0
    for state in payload.get("sessions", {}).values():
        tables = state.get("tables", {}) if isinstance(state, dict) else {}
        for entries in tables.values():
            total += len(entries)
    return total


def _entry_dedup_key(table, entry):
    if table in ("norm", "aut"):
        return entry.get("t")
    if table == "sig":
        return (entry.get("k"), entry.get("l"), entry.get("r"))
    if table == "equiv":
        return (
            entry.get("k"),
            json.dumps(entry.get("l"), sort_keys=True),
            json.dumps(entry.get("r"), sort_keys=True),
        )
    return entry.get("src")


class _PoolMerger:
    """Hash-cons several contributors' node pools into one merged pool.

    Works purely on the serialized form (no theory needed — the supervisor
    process merging worker payloads has no sessions): a node's identity is
    its tag plus its *merged* child indices, so structurally equal subterms
    from different contributors collapse onto one merged entry and entry
    references become comparable across contributors.
    """

    def __init__(self):
        self.pool = []
        self._index = {}

    def add_pool(self, pool_data):
        """Map one contributor pool in; returns its index → merged-index list."""
        if pool_data is None:
            pool_data = []
        if not isinstance(pool_data, list):
            _invalid(f"snapshot node pool must be a list, got {type(pool_data).__name__}")
        mapping = []
        for item in pool_data:
            if not isinstance(item, list) or not item or not isinstance(item[0], str):
                _invalid(f"snapshot pool node malformed: {item!r}")
            tag = item[0]
            if tag in ("P", "A"):
                if len(item) != 2 or not isinstance(item[1], str):
                    _invalid(f"snapshot pool node has wrong shape: {item!r}")
                key = (tag, item[1])
            elif tag in ("p0", "p1"):
                if len(item) != 1:
                    _invalid(f"snapshot pool node has wrong shape: {item!r}")
                key = (tag,)
            elif tag in (";", "+", "&", "|"):
                if len(item) != 3:
                    _invalid(f"snapshot pool node has wrong shape: {item!r}")
                key = (tag, self._child(mapping, item[1]), self._child(mapping, item[2]))
            elif tag in ("*", "?", "!"):
                if len(item) != 2:
                    _invalid(f"snapshot pool node has wrong shape: {item!r}")
                key = (tag, self._child(mapping, item[1]))
            else:
                _invalid(f"snapshot pool node tag {tag!r} unknown")
            merged = self._index.get(key)
            if merged is None:
                self.pool.append(list(key))
                merged = len(self.pool) - 1
                self._index[key] = merged
            mapping.append(merged)
        return mapping

    @staticmethod
    def _child(mapping, ref):
        if not isinstance(ref, int) or isinstance(ref, bool) or not 0 <= ref < len(mapping):
            _invalid(f"snapshot pool child reference {ref!r} invalid")
        return mapping[ref]


def _remap_entry(table, entry, mapping):
    """One entry with every pool reference rewritten through ``mapping``."""
    if not isinstance(entry, dict):
        _invalid(f"snapshot entry must be a dict, got {entry!r}")

    def ref(value):
        return _PoolMerger._child(mapping, value)

    def word(data):
        if data is None:
            return None
        if not isinstance(data, list):
            _invalid(f"snapshot word must be a list, got {data!r}")
        return [ref(value) for value in data]

    def normal_form(data):
        if not isinstance(data, list):
            _invalid(f"snapshot normal form must be a list, got {data!r}")
        pairs = []
        for pair in data:
            if not isinstance(pair, list) or len(pair) != 2:
                _invalid(f"snapshot normal-form pair malformed: {pair!r}")
            pairs.append([ref(pair[0]), ref(pair[1])])
        return pairs

    entry = dict(entry)
    if table == "norm":
        entry["t"] = ref(entry.get("t"))
        entry["nf"] = normal_form(entry.get("nf"))
    elif table == "aut":
        entry["t"] = ref(entry.get("t"))
        automaton = entry.get("a")
        if not isinstance(automaton, dict) or not isinstance(automaton.get("sigma"), list):
            _invalid(f"snapshot automaton malformed: {automaton!r}")
        automaton = dict(automaton)
        automaton["sigma"] = [ref(value) for value in automaton["sigma"]]
        entry["a"] = automaton
    elif table == "sig":
        entry["l"] = ref(entry.get("l"))
        entry["r"] = ref(entry.get("r"))
        entry["w"] = word(entry.get("w"))
    elif table == "equiv":
        entry["l"] = normal_form(entry.get("l"))
        entry["r"] = normal_form(entry.get("r"))
        result = entry.get("res")
        if not isinstance(result, dict):
            _invalid(f"snapshot result must be a dict, got {result!r}")
        result = dict(result)
        counterexample = result.get("ce")
        if counterexample is not None:
            if not isinstance(counterexample, dict):
                _invalid(f"snapshot counterexample malformed: {counterexample!r}")
            counterexample = dict(counterexample)
            cell = counterexample.get("cell")
            if not isinstance(cell, list):
                _invalid(f"snapshot counterexample cell malformed: {cell!r}")
            remapped_cell = []
            for literal in cell:
                if not isinstance(literal, list) or len(literal) != 2:
                    _invalid(f"snapshot cell literal malformed: {literal!r}")
                remapped_cell.append([ref(literal[0]), bool(literal[1])])
            counterexample["cell"] = remapped_cell
            counterexample["l"] = ref(counterexample.get("l"))
            counterexample["r"] = ref(counterexample.get("r"))
            counterexample["w"] = word(counterexample.get("w"))
            result["ce"] = counterexample
        entry["res"] = result
    return entry


def merge_payloads(payloads):
    """Merge several snapshot payloads into one (first entry per key wins).

    Used by the sharded pool (one payload per stripe) and the process
    backend (one payload per worker): stripes serve disjoint key ranges but
    share theories, so their exports overlap heavily.  Each contributor's
    node pool is hash-consed into the merged session pool and its entry
    references remapped, making entries comparable (and dedupable) across
    contributors.  A contributor session that fails to merge — malformed
    pool, mismatched theory stamp — is skipped, not fatal: merging runs on
    the checkpoint path, which must degrade, never crash serving.
    """
    sessions = {}
    seen = {}
    mergers = {}
    for payload in payloads:
        for name, state in check_payload(payload).items():
            if not isinstance(state, dict):
                continue
            into = sessions.get(name)
            if into is None:
                into = sessions[name] = {
                    "theory": state.get("theory"),
                    "tables": {table: [] for table in SNAPSHOT_TABLES},
                }
                seen[name] = {table: set() for table in SNAPSHOT_TABLES}
                mergers[name] = _PoolMerger()
            elif into["theory"] != state.get("theory"):
                # Theory stamps must agree across contributors; a mismatch
                # means one side is stale — drop its entries, keep the first.
                continue
            try:
                mapping = mergers[name].add_pool(state.get("pool"))
                for table in SNAPSHOT_TABLES:
                    for entry in state.get("tables", {}).get(table, ()):
                        remapped = (
                            entry if table == "prog"
                            else _remap_entry(table, entry, mapping)
                        )
                        key = _entry_dedup_key(table, remapped)
                        if key in seen[name][table]:
                            continue
                        seen[name][table].add(key)
                        into["tables"][table].append(remapped)
            except SnapshotError as error:
                log_event(_logger, logging.WARNING, "snapshot_merge_skipped",
                          theory=str(name), error=str(error))
                continue
    for name, into in sessions.items():
        into["pool"] = mergers[name].pool
    return make_payload(sessions)


# ----------------------------------------------------------------------
# on-disk store
# ----------------------------------------------------------------------
class SnapshotStore:
    """A versioned snapshot file with atomic saves and strict loads.

    ``save`` writes to a temp file in the target directory and
    ``os.replace``s it into place, so readers only ever see a complete file
    (a crash mid-write leaves the previous snapshot intact).  ``load``
    rejects truncated, corrupted, foreign, or version-bumped files with
    :class:`SnapshotError` (code ``snapshot_invalid``).
    """

    def __init__(self, path):
        self.path = os.path.abspath(os.fspath(path))

    def exists(self):
        return os.path.exists(self.path)

    def load(self):
        """Read and envelope-validate the snapshot payload."""
        try:
            with open(self.path, "rb") as handle:
                raw = handle.read()
        except FileNotFoundError:
            _invalid(f"snapshot file {self.path} does not exist")
        except OSError as error:
            _invalid(f"snapshot file {self.path} unreadable: {error}")
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as error:
            _invalid(
                f"snapshot file {self.path} is truncated or corrupted: {error}"
            )
        check_payload(payload)
        return payload

    def save(self, payload):
        """Atomically write a payload; returns the byte size written."""
        check_payload(payload)  # never persist an envelope a load would reject
        data = json.dumps(payload, sort_keys=True).encode("utf-8")
        directory = os.path.dirname(self.path) or "."
        fd, tmp_path = tempfile.mkstemp(
            dir=directory, prefix=os.path.basename(self.path) + ".", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, self.path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        return len(data)


# ----------------------------------------------------------------------
# checkpointing
# ----------------------------------------------------------------------
class CheckpointManager:
    """Boot load + periodic checkpoints + drain-safe final save for a server.

    ``exporter`` returns the current snapshot payload (e.g.
    ``server.export_snapshot``); ``importer`` applies one (e.g.
    ``server.import_snapshot``).  ``interval`` seconds between background
    checkpoints (``None``/``0`` disables the thread; :meth:`close` still
    writes the final checkpoint).  ``metrics`` is an optional
    :class:`~repro.engine.telemetry.MetricsRegistry` receiving the
    ``snapshot_*`` counters.
    """

    def __init__(self, store, exporter, importer=None, interval=None, metrics=None):
        self.store = store
        self.exporter = exporter
        self.importer = importer
        self.interval = interval if interval and interval > 0 else None
        self.metrics = metrics
        self._stop = threading.Event()
        self._thread = None
        self._save_lock = threading.Lock()
        self._closed = False
        # counters surfaced via stats()
        self.loads = 0
        self.load_errors = 0
        self.saves = 0
        self.save_errors = 0
        self.last_save_unix = None
        self.last_save_ms = None
        self.last_save_bytes = None
        self.last_save_entries = None
        self.loaded_entries = None

    # -- boot ------------------------------------------------------------
    def load(self):
        """Warm-start from the store if a valid snapshot exists.

        A missing file is a normal cold start (returns ``None``); an invalid
        one is logged and counted but also leaves the server cold — refusing
        to serve because last week's snapshot went stale would be backwards.
        """
        if self.importer is None or not self.store.exists():
            return None
        try:
            payload = self.store.load()
            counts = self.importer(payload)
        except SnapshotError as error:
            self.load_errors += 1
            if self.metrics is not None:
                self.metrics.inc("snapshot_load_errors")
            log_event(
                _logger, logging.WARNING, "snapshot_load_failed",
                path=self.store.path, error=str(error), error_code=error.code,
            )
            return None
        self.loads += 1
        self.loaded_entries = count_payload_entries(payload)
        if self.metrics is not None:
            self.metrics.inc("snapshot_loads")
        log_event(
            _logger, logging.INFO, "snapshot_loaded",
            path=self.store.path, entries=self.loaded_entries,
        )
        return counts

    # -- checkpointing ---------------------------------------------------
    def checkpoint(self):
        """Export and atomically persist one snapshot; returns byte size."""
        with self._save_lock:
            started = time.perf_counter()
            payload = self.exporter()
            nbytes = self.store.save(payload)
            elapsed_ms = (time.perf_counter() - started) * 1000.0
            self.saves += 1
            self.last_save_unix = time.time()
            self.last_save_ms = round(elapsed_ms, 3)
            self.last_save_bytes = nbytes
            self.last_save_entries = count_payload_entries(payload)
            if self.metrics is not None:
                self.metrics.inc("snapshot_saves")
                self.metrics.observe("snapshot_save_ms", elapsed_ms)
            log_event(
                _logger, logging.INFO, "snapshot_saved",
                path=self.store.path, bytes=nbytes,
                entries=self.last_save_entries, elapsed_ms=self.last_save_ms,
            )
            return nbytes

    def _checkpoint_guarded(self):
        try:
            self.checkpoint()
        except Exception as error:  # noqa: BLE001 — checkpointing must not kill serving
            self.save_errors += 1
            if self.metrics is not None:
                self.metrics.inc("snapshot_save_errors")
            log_event(
                _logger, logging.WARNING, "snapshot_save_failed",
                path=self.store.path, error=str(error),
            )

    def start(self):
        """Start the background checkpoint thread (no-op without an interval)."""
        if self.interval is None or self._thread is not None:
            return
        def run():
            while not self._stop.wait(self.interval):
                self._checkpoint_guarded()
        self._thread = threading.Thread(
            target=run, name="kmt-snapshot-checkpoint", daemon=True
        )
        self._thread.start()

    def close(self, final=True):
        """Stop the checkpoint thread and write the final checkpoint.

        Call after the server drained (queues empty, workers idle) and
        before the backend shuts down — the export path still needs live
        workers to collect their tables.
        """
        if self._closed:
            return
        self._closed = True
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=30)
            self._thread = None
        if final:
            self._checkpoint_guarded()

    def stats(self):
        """The ``snapshot`` block surfaced in ``stats`` responses."""
        return {
            "path": self.store.path,
            "checkpoint_interval": self.interval,
            "loads": self.loads,
            "load_errors": self.load_errors,
            "loaded_entries": self.loaded_entries,
            "saves": self.saves,
            "save_errors": self.save_errors,
            "last_save_unix": self.last_save_unix,
            "last_save_ms": self.last_save_ms,
            "last_save_bytes": self.last_save_bytes,
            "last_save_entries": self.last_save_entries,
        }
