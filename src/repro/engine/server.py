"""A concurrent JSONL query server with shard affinity and session striping.

This replaces the blocking one-line-at-a-time serve loop
(:func:`repro.engine.batch.serve`) for served workloads.  The protocol is the
same JSONL request/response format as ``kmt batch`` (see
:mod:`repro.engine.batch` — parsing, validation and query execution are
literally shared), extended with serving concerns:

* **Bounded intake queue with backpressure** — at most ``queue_limit``
  requests are in flight; a submitter either blocks (stdin / per-connection
  reader threads, which turns into pipe/TCP backpressure on the client) or
  receives a structured ``queue_full`` error (``block=False``).

* **Shard affinity with session striping** — every query is routed to a
  *shard*: a ``(theory, stripe)`` pair owning one persistent
  :class:`~repro.engine.session.EngineSession`.  The stripe is chosen by
  hashing the query *content*, so identical queries always land on the same
  warm session (cache affinity) while distinct queries for one hot theory
  spread over ``stripes`` sessions instead of serializing on a single
  session the way ``BatchRunner._execute_grouped`` does.  Each shard is
  pinned to exactly one worker thread, so sessions are never contended.

* **Out-of-order completion with correct ids** — responses are emitted as
  soon as their worker finishes; every response carries the request's ``id``
  (defaulting to the client's 0-based input line number).  ``ordered=True``
  buffers completions per client and releases them in submission order.

* **Per-request deadlines** — ``"deadline_ms": N`` bounds a request's life
  from submission (queue wait included).  Expiry is checked before execution
  and cooperatively *during* normalization, signature enumeration and
  automata comparison (see the ``cancel`` plumbing in
  :mod:`repro.core.pushback` / :mod:`repro.smt.dpll` /
  :mod:`repro.core.automata`); an expired request answers with error code
  ``deadline_exceeded``.  Cancellation never corrupts session caches —
  memo tables are only written on completion.

* **Graceful drain** — ``{"op": "quit"}`` (and SIGTERM in the CLI) stops
  intake, waits for every in-flight request to answer, then shuts the
  workers down.  In socket mode ``quit`` is connection-scoped: that client
  is drained and closed while the server keeps serving others.

* **Observability** — the ``stats`` op reports, on top of the per-theory
  cache accounting, a ``server`` block with queue depth/peak/limit,
  completed/error counts per error code, and latency percentiles.  Control
  ops (``stats``/``ping``) are answered inline by the submitting thread —
  they bypass the bounded queue *and* ordered-mode buffering so
  observability keeps working when the queue is jammed — which makes
  ``stats`` an *immediate snapshot*: it does not wait for queries submitted
  earlier on the same stream (wait for their responses first if you want
  post-work numbers).

Note on scaling: worker threads overlap wherever the GIL is released —
client I/O, and theory oracles that call out of process (the paper's
implementations use Z3 over IPC).  Pure in-process compute on CPython still
serializes; ``benchmarks/bench_serve.py`` reports both regimes honestly.
"""

from __future__ import annotations

import heapq
import json
import socket
import threading
import time
import zlib
from collections import deque
from queue import Full, Queue

from repro.core.pushback import DEFAULT_BUDGET
from repro.engine.batch import (
    DEFAULT_THEORY,
    ERROR_DEADLINE,
    ERROR_INTERNAL,
    ERROR_INVALID,
    ERROR_QUEUE_FULL,
    ERROR_SHUTDOWN,
    ERROR_UNKNOWN_THEORY,
    classify_query_error,
    error_response,
    execute_query,
    parse_request_line,
)
from repro.engine.cache import installed_derivative_stats
from repro.engine.session import EngineSession
from repro.theories import build_theory
from repro.utils.errors import DeadlineExceeded, KmtError

_STOP = object()

#: Shard-affinity fields: the request content that determines which stripe
#: (and therefore which warm session) a query lands on.
_AFFINITY_FIELDS = ("op", "left", "right", "term", "pred")

#: How many recent request latencies back the percentile report.
_LATENCY_WINDOW = 4096


def _affinity_stripe(record, stripes):
    """Stable content hash of a query onto ``range(stripes)``.

    Identical queries must map to the same stripe so repeats hit that
    session's caches; crc32 (not ``hash``) keeps the mapping stable across
    processes and ``PYTHONHASHSEED``.
    """
    payload = "\x1f".join(str(record.get(field)) for field in _AFFINITY_FIELDS)
    return zlib.crc32(payload.encode("utf-8", "backslashreplace")) % stripes


class ShardedSessionPool:
    """Persistent per-``(theory, stripe)`` engine sessions.

    The striped analogue of :class:`repro.engine.batch.SessionPool`: a hot
    theory gets up to ``stripes`` independent sessions so its queries can be
    spread over that many workers.  ``theory_factory`` (default
    :func:`repro.theories.build_theory`) is the injection point for wrapped
    theories in tests and benchmarks.
    """

    def __init__(self, stripes=4, budget=DEFAULT_BUDGET, prune_unsat_cells=True,
                 cell_search="signature", theory_factory=None):
        if stripes < 1:
            raise ValueError(f"stripes must be at least 1, got {stripes}")
        self.stripes = stripes
        self.budget = budget
        self.prune_unsat_cells = prune_unsat_cells
        self.cell_search = cell_search
        self.theory_factory = build_theory if theory_factory is None else theory_factory
        self._sessions = {}  # (theory_name, stripe) -> EngineSession
        self._lock = threading.Lock()

    def session(self, theory_name, stripe=0):
        key = (theory_name.lower(), stripe % self.stripes)
        with self._lock:
            existing = self._sessions.get(key)
            if existing is not None:
                return existing
        # Build outside the lock (theory construction may be slow or raise
        # for unknown presets); a racing duplicate is discarded.
        session = EngineSession(
            self.theory_factory(key[0]), budget=self.budget,
            prune_unsat_cells=self.prune_unsat_cells, cell_search=self.cell_search,
        )
        with self._lock:
            return self._sessions.setdefault(key, session)

    def theories(self):
        with self._lock:
            return sorted({name for name, _ in self._sessions})

    def stats(self):
        """Per-theory cache accounting aggregated over stripes.

        Same top-level shape as ``SessionPool.stats()`` — theory names plus a
        ``"shared"`` block for whatever derivative memo is actually installed
        — with per-theory blocks additionally reporting the live stripe count.
        """
        with self._lock:
            sessions = dict(self._sessions)
        by_theory = {}
        for (name, _), session in sorted(sessions.items()):
            by_theory.setdefault(name, []).append(session.stats(include_shared=False))
        out = {}
        for name, blocks in by_theory.items():
            tables = {}
            for block in blocks:
                for table_name, table in block["tables"].items():
                    agg = tables.setdefault(
                        table_name,
                        {"name": table_name, "hits": 0, "misses": 0, "puts": 0, "evictions": 0},
                    )
                    for counter in ("hits", "misses", "puts", "evictions"):
                        agg[counter] += table[counter]
            for table in tables.values():
                lookups = table["hits"] + table["misses"]
                table["hit_rate"] = round(table["hits"] / lookups, 4) if lookups else 0.0
            out[name] = {
                "stripes": len(blocks),
                "queries": sum(block["session"]["queries"] for block in blocks),
                "tables": tables,
                "totals": {
                    "hits": sum(block["totals"]["hits"] for block in blocks),
                    "misses": sum(block["totals"]["misses"] for block in blocks),
                },
            }
        out["shared"] = installed_derivative_stats()
        return out


class ResponseSink:
    """Thread-safe response writer for one client (stdout or a socket).

    Assigns per-client sequence numbers at submission time; ``ordered=True``
    buffers out-of-order completions in a heap and releases them in
    submission order.  A write failure (client went away) marks the sink
    broken and silently drops the remaining responses — workers must never
    die because a client hung up.
    """

    def __init__(self, write_line, ordered=False):
        self._write_line = write_line
        self.ordered = ordered
        self._lock = threading.Lock()
        self._drained = threading.Condition(self._lock)
        self._next_seq = 0   # next sequence number to assign
        self._next_emit = 0  # (ordered) next sequence to release
        self._written = 0    # responses actually written (or dropped as broken)
        self._pending = []   # (ordered) heap of (seq, serialized line)
        self.broken = False

    def next_seq(self):
        with self._lock:
            seq = self._next_seq
            self._next_seq += 1
            return seq

    def _write(self, line):
        if not self.broken:
            try:
                self._write_line(line)
            except (OSError, ValueError):
                self.broken = True
        self._written += 1
        self._drained.notify_all()

    def emit(self, seq, response):
        line = json.dumps(response, sort_keys=True)
        with self._lock:
            if not self.ordered:
                self._write(line)
                return
            heapq.heappush(self._pending, (seq, line))
            while self._pending and self._pending[0][0] == self._next_emit:
                _, ready = heapq.heappop(self._pending)
                self._next_emit += 1
                self._write(ready)

    def emit_now(self, response):
        """Write immediately, outside the sequence stream (control responses).

        ``stats``/``ping`` replies jump the line even under ordered mode —
        observability must not wait behind jammed queries — so they carry no
        sequence number and do not count toward :meth:`wait_drained`.
        """
        line = json.dumps(response, sort_keys=True)
        with self._lock:
            if not self.broken:
                try:
                    self._write_line(line)
                except (OSError, ValueError):
                    self.broken = True

    def wait_drained(self, timeout=None):
        """Block until every assigned sequence number has been written."""
        with self._lock:
            return self._drained.wait_for(
                lambda: self._written >= self._next_seq, timeout=timeout
            )


class _Request:
    __slots__ = ("record", "theory", "stripe", "sink", "seq", "fallback_id",
                 "submitted", "deadline", "deadline_ms")

    def __init__(self, record, theory, stripe, sink, seq, fallback_id, submitted,
                 deadline, deadline_ms):
        self.record = record
        self.theory = theory
        self.stripe = stripe
        self.sink = sink
        self.seq = seq
        self.fallback_id = fallback_id
        self.submitted = submitted
        self.deadline = deadline
        self.deadline_ms = deadline_ms


class QueryServer:
    """The scheduler: bounded intake, shard-affine dispatch, worker threads.

    Front ends (:func:`serve_stdio`, :class:`SocketServer`) feed raw protocol
    lines to :meth:`submit_line` together with the client's
    :class:`ResponseSink`; everything after that — validation, backpressure,
    shard routing, deadline handling, emission — happens here.  Usable as a
    context manager (``with QueryServer() as server: ...``), which drains on
    exit.
    """

    def __init__(self, workers=4, stripes=None, queue_limit=128, default_theory=DEFAULT_THEORY,
                 budget=DEFAULT_BUDGET, cell_search="signature", theory_factory=None, pool=None):
        if workers < 1:
            raise ValueError(f"workers must be at least 1, got {workers}")
        if queue_limit < 1:
            raise ValueError(f"queue_limit must be at least 1, got {queue_limit}")
        self.workers = workers
        self.stripes = workers if stripes is None else stripes
        self.queue_limit = queue_limit
        self.default_theory = default_theory
        if pool is not None:
            self.pool = pool
            self.stripes = pool.stripes
        else:
            self.pool = ShardedSessionPool(
                stripes=self.stripes, budget=budget, cell_search=cell_search,
                theory_factory=theory_factory,
            )
        self._queues = [Queue() for _ in range(workers)]
        self._threads = []
        self._capacity = threading.Semaphore(queue_limit)
        self._state = threading.Lock()
        self._idle = threading.Condition(self._state)
        self._in_flight = 0       # queued or executing
        self._queued = 0          # queued, not yet picked up by a worker
        self._peak_queued = 0
        self._completed = 0
        self._error_counts = {}
        self._latencies = deque(maxlen=_LATENCY_WINDOW)
        self._accepting = True
        self._started = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self):
        if self._started:
            return self
        self._started = True
        for index, queue in enumerate(self._queues):
            thread = threading.Thread(
                target=self._worker_loop, args=(queue,),
                name=f"kmt-server-worker-{index}", daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        return self

    def __enter__(self):
        return self.start()

    def __exit__(self, exc_type, exc, tb):
        self.shutdown(drain=exc_type is None)

    def drain(self):
        """Stop accepting new queries and wait for all in-flight to answer."""
        with self._state:
            self._accepting = False
            self._idle.wait_for(lambda: self._in_flight == 0)

    def wait_idle(self, timeout=None):
        """Wait for in-flight work to finish without stopping intake."""
        with self._state:
            return self._idle.wait_for(lambda: self._in_flight == 0, timeout=timeout)

    def shutdown(self, drain=True):
        """Drain (optionally) and stop the worker threads."""
        if drain:
            self.drain()
        else:
            with self._state:
                self._accepting = False
        if self._started:
            for queue in self._queues:
                queue.put(_STOP)
            for thread in self._threads:
                thread.join()
            self._threads = []
            self._started = False

    # ------------------------------------------------------------------
    # intake
    # ------------------------------------------------------------------
    def submit_line(self, raw, sink, lineno=None, block=True, timeout=None):
        """Parse and dispatch one raw protocol line for a client.

        Returns the line's disposition: ``"skip"``, ``"quit"``, ``"control"``,
        ``"queued"``, ``"error"`` (protocol-invalid line) or ``"rejected"``
        (valid query refused by backpressure/shutdown — the client got a
        structured error response).  ``block=False`` turns a full queue into
        an immediate ``queue_full`` rejection instead of blocking the caller.
        """
        kind, payload = parse_request_line(raw)
        if kind == "skip":
            return "skip"
        if kind == "quit":
            return "quit"
        if kind == "control":
            # Answered inline and emitted out-of-band (no sequence number):
            # control ops bypass both the bounded queue and ordered-mode
            # buffering so observability works while the queue is jammed.
            record = payload
            fallback_id = lineno if lineno is not None else record.get("id")
            sink.emit_now(self._control_response(record, fallback_id))
            return "control"
        seq = sink.next_seq()
        fallback_id = lineno if lineno is not None else seq
        if kind == "error":
            message, code, request = payload
            self._count_error(code)
            sink.emit(seq, error_response(request, fallback_id, None, message, code))
            return "error"
        record = payload
        theory = str(record.get("theory", self.default_theory)).lower()
        deadline, deadline_ms, deadline_error = self._parse_deadline(record)
        if deadline_error is not None:
            self._count_error(ERROR_INVALID)
            sink.emit(seq, error_response(record, fallback_id, theory, deadline_error,
                                          ERROR_INVALID))
            return "error"
        with self._state:
            accepting = self._accepting
        if not accepting:
            self._count_error(ERROR_SHUTDOWN)
            sink.emit(seq, error_response(
                record, fallback_id, theory, "server is shutting down", ERROR_SHUTDOWN))
            return "rejected"
        if not self._capacity.acquire(blocking=block, timeout=timeout):
            self._count_error(ERROR_QUEUE_FULL)
            sink.emit(seq, error_response(
                record, fallback_id, theory,
                f"request queue is full (limit {self.queue_limit})", ERROR_QUEUE_FULL))
            return "rejected"
        stripe = _affinity_stripe(record, self.stripes)
        request = _Request(record, theory, stripe, sink, seq, fallback_id,
                           time.monotonic(), deadline, deadline_ms)
        with self._state:
            if not self._accepting:
                # Raced with drain()/shutdown(): refuse rather than wedge it.
                self._capacity.release()
                self._count_error_locked(ERROR_SHUTDOWN)
                rejected = True
            else:
                self._in_flight += 1
                self._queued += 1
                self._peak_queued = max(self._peak_queued, self._queued)
                # Enqueue under the state lock: shutdown() flips _accepting
                # under the same lock before posting _STOP sentinels, so a
                # request can never land behind a sentinel and silently vanish
                # (worker queues are unbounded — this put cannot block).
                self._queues[self._worker_index(theory, stripe)].put(request)
                rejected = False
        if rejected:
            sink.emit(seq, error_response(
                record, fallback_id, theory, "server is shutting down", ERROR_SHUTDOWN))
            return "rejected"
        return "queued"

    @staticmethod
    def _parse_deadline(record):
        """Extract ``deadline_ms``; returns ``(deadline, ms, error_message)``."""
        deadline_ms = record.get("deadline_ms")
        if deadline_ms is None:
            return None, None, None
        if isinstance(deadline_ms, bool) or not isinstance(deadline_ms, (int, float)) \
                or deadline_ms <= 0:
            return None, None, f"deadline_ms must be a positive number, got {deadline_ms!r}"
        return time.monotonic() + deadline_ms / 1000.0, deadline_ms, None

    def _worker_index(self, theory, stripe):
        # Pin each (theory, stripe) shard to one worker so its session is
        # never touched by two threads; offsetting by a theory hash keeps a
        # hot theory's stripes covering all workers.
        return (zlib.crc32(theory.encode("utf-8", "backslashreplace")) + stripe) % self.workers

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _worker_loop(self, queue):
        while True:
            request = queue.get()
            if request is _STOP:
                return
            with self._state:
                self._queued -= 1
            try:
                response = self._execute(request)
            except Exception as error:  # noqa: BLE001 — a lost seq wedges ordered sinks
                message, code = str(error), ERROR_INTERNAL
                response = error_response(request.record, request.fallback_id,
                                          request.theory, message, code)
            request.sink.emit(request.seq, response)
            latency = time.monotonic() - request.submitted
            self._capacity.release()
            with self._state:
                self._in_flight -= 1
                self._completed += 1
                self._latencies.append(latency)
                code = response.get("error_code")
                if code is not None:
                    self._error_counts[code] = self._error_counts.get(code, 0) + 1
                if self._in_flight == 0:
                    self._idle.notify_all()

    def _execute(self, request):
        record = request.record
        if request.deadline is not None and time.monotonic() >= request.deadline:
            return error_response(
                record, request.fallback_id, request.theory,
                f"deadline of {request.deadline_ms} ms expired while queued",
                ERROR_DEADLINE)
        cancel = None
        if request.deadline is not None:
            deadline, deadline_ms = request.deadline, request.deadline_ms

            def cancel():
                if time.monotonic() >= deadline:
                    raise DeadlineExceeded(deadline_ms)
        try:
            session = self.pool.session(request.theory, request.stripe)
        except KmtError as error:
            return error_response(record, request.fallback_id, request.theory,
                                  str(error), ERROR_UNKNOWN_THEORY)
        base = {
            "id": record.get("id", request.fallback_id),
            "op": record["op"],
            "theory": request.theory,
        }
        try:
            with session.lock:
                base["ok"] = True
                base["result"] = execute_query(session, record, cancel=cancel)
        except (KmtError, KeyError, TypeError, ValueError) as error:
            message, code = classify_query_error(error)
            return error_response(record, request.fallback_id, request.theory, message, code)
        return base

    # ------------------------------------------------------------------
    # control / observability
    # ------------------------------------------------------------------
    def _count_error(self, code):
        with self._state:
            self._count_error_locked(code)

    def _count_error_locked(self, code):
        self._error_counts[code] = self._error_counts.get(code, 0) + 1

    def server_stats(self):
        """Scheduler-level counters: queue gauges and latency percentiles."""
        with self._state:
            latencies = sorted(self._latencies)
            queued = self._queued
            peak = self._peak_queued
            in_flight = self._in_flight
            completed = self._completed
            errors = dict(self._error_counts)

        def percentile(fraction):
            if not latencies:
                return None
            index = min(len(latencies) - 1, int(fraction * len(latencies)))
            return round(latencies[index] * 1000.0, 3)

        return {
            "workers": self.workers,
            "stripes": self.stripes,
            "queue": {
                "depth": queued,
                "peak": peak,
                "limit": self.queue_limit,
                "in_flight": in_flight,
            },
            "requests": {"completed": completed, "errors": errors},
            "latency_ms": {
                "count": len(latencies),
                "p50": percentile(0.50),
                "p90": percentile(0.90),
                "p99": percentile(0.99),
                "max": round(latencies[-1] * 1000.0, 3) if latencies else None,
            },
        }

    def _control_response(self, record, fallback_id):
        response = {"id": record.get("id", fallback_id), "op": record["op"], "ok": True}
        if record["op"] == "stats":
            result = self.pool.stats()
            result["server"] = self.server_stats()
            response["result"] = result
        else:
            response["result"] = {"pong": True, "theories": self.pool.theories()}
        return response


# ---------------------------------------------------------------------------
# front ends
# ---------------------------------------------------------------------------


def serve_stdio(stdin, stdout, workers=4, stripes=None, queue_limit=128, ordered=False,
                default_theory=DEFAULT_THEORY, budget=DEFAULT_BUDGET, cell_search="signature",
                theory_factory=None, server=None):
    """Serve the JSONL protocol from ``stdin`` to ``stdout`` concurrently.

    The drop-in concurrent replacement for :func:`repro.engine.batch.serve`:
    same protocol, same default-``id`` semantics (0-based input line number),
    but requests overlap across worker shards and completions are emitted
    out-of-order unless ``ordered=True``.  Runs until EOF or
    ``{"op": "quit"}``, drains in-flight requests, and returns the number of
    protocol-valid requests accepted (malformed lines are answered with error
    records but not counted — same contract as the fixed legacy loop).

    An externally-managed ``server`` may be passed (it is then only drained,
    not shut down); otherwise one is created from the keyword options.
    """
    own_server = server is None
    if own_server:
        server = QueryServer(workers=workers, stripes=stripes, queue_limit=queue_limit,
                             default_theory=default_theory, budget=budget,
                             cell_search=cell_search, theory_factory=theory_factory)
    server.start()
    sink = ResponseSink(
        lambda line: (stdout.write(line + "\n"), stdout.flush()), ordered=ordered)
    served = 0
    try:
        for lineno, raw in enumerate(stdin):
            outcome = server.submit_line(raw, sink, lineno=lineno)
            if outcome == "quit":
                break
            if outcome in ("queued", "control"):
                served += 1
    finally:
        if own_server:
            server.shutdown(drain=True)
        else:
            # A shared server stays usable for other clients: wait for this
            # stream's work without flipping the server to non-accepting.
            server.wait_idle()
        sink.wait_drained(timeout=5.0)
    return served


#: Per-connection bound on responses waiting for a slow client to read them.
#: A client further behind than this is treated as gone: its sink goes broken
#: and later responses for it are dropped, so one reader that stalls can never
#: wedge the workers (and with them every other client).
_WRITER_QUEUE_LIMIT = 256


class _ConnectionWriter:
    """Decouples workers from client sockets with a bounded queue + writer thread.

    Workers must never block on a slow client's TCP send buffer while holding
    global queue capacity.  ``write_line`` therefore only enqueues (raising
    ``OSError`` when the client is :data:`_WRITER_QUEUE_LIMIT` responses
    behind, which flips the sink to broken); the dedicated writer thread does
    the actual blocking socket I/O.
    """

    _SENTINEL = object()

    def __init__(self, stream):
        self._stream = stream
        self._queue = Queue(maxsize=_WRITER_QUEUE_LIMIT)
        self._broken = False
        self._thread = threading.Thread(target=self._loop, name="kmt-server-writer",
                                        daemon=True)
        self._thread.start()

    def write_line(self, line):
        try:
            self._queue.put_nowait(line)
        except Full:
            raise OSError(
                f"client is more than {_WRITER_QUEUE_LIMIT} responses behind") from None

    def _loop(self):
        while True:
            item = self._queue.get()
            if item is self._SENTINEL:
                return
            if self._broken:
                continue  # keep consuming so producers/close never block
            try:
                self._stream.write(item + "\n")
                self._stream.flush()
            except (OSError, ValueError):
                self._broken = True

    def close(self, force_close=None, timeout=10.0):
        """Flush queued responses and stop the writer thread.

        ``force_close`` (a callable shutting the socket) is invoked when the
        writer is stuck mid-``flush`` on an unresponsive client — closing the
        socket makes the blocked write raise so the thread can exit.
        """
        try:
            self._queue.put(self._SENTINEL, timeout=timeout)
        except Full:
            self._broken = True
            if force_close is not None:
                force_close()
            self._queue.put(self._SENTINEL)
        self._thread.join(timeout=timeout)
        if self._thread.is_alive() and force_close is not None:
            force_close()
            self._thread.join(timeout=timeout)


class SocketServer:
    """TCP front end: one JSONL protocol conversation per connection.

    Each accepted connection gets a reader thread and its own
    :class:`ResponseSink` (so ids, ordering and backpressure blocking are all
    per-client).  ``{"op": "quit"}`` is connection-scoped — that client is
    drained and closed while the server keeps running; stop the whole server
    with :meth:`close` (the CLI wires SIGTERM to it).

    ``port=0`` binds an ephemeral port; the actual one is in ``self.port``
    after :meth:`start`.
    """

    def __init__(self, host="127.0.0.1", port=0, server=None, ordered=False, **server_options):
        self.host = host
        self.requested_port = port
        self.port = None
        self.ordered = ordered
        self.server = server if server is not None else QueryServer(**server_options)
        self._listener = None
        self._accept_thread = None
        self._conn_threads = []
        self._conns = set()
        self._conn_lock = threading.Lock()
        self._closing = False

    def start(self):
        self.server.start()
        self._listener = socket.create_server((self.host, self.requested_port))
        # A thread blocked in accept() is not reliably woken by closing the
        # listener from another thread; poll with a short timeout instead so
        # close() completes promptly.
        self._listener.settimeout(0.2)
        self.port = self._listener.getsockname()[1]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="kmt-server-accept", daemon=True)
        self._accept_thread.start()
        return self

    def __enter__(self):
        return self.start()

    def __exit__(self, exc_type, exc, tb):
        self.close(drain=exc_type is None)

    def _accept_loop(self):
        while True:
            try:
                conn, _addr = self._listener.accept()
            except TimeoutError:
                with self._conn_lock:
                    if self._closing:
                        return
                continue
            except OSError:
                return  # listener closed
            conn.settimeout(None)  # inherited accept timeout must not apply to I/O
            thread = threading.Thread(
                target=self._handle_connection, args=(conn,),
                name="kmt-server-conn", daemon=True)
            with self._conn_lock:
                if self._closing:
                    conn.close()
                    return
                self._conn_threads.append(thread)
                self._conns.add(conn)
            thread.start()

    @staticmethod
    def _force_close(conn):
        try:
            conn.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            conn.close()
        except OSError:
            pass

    def _handle_connection(self, conn):
        reader = conn.makefile("r", encoding="utf-8", newline="\n")
        writer_stream = conn.makefile("w", encoding="utf-8", newline="\n")
        writer = _ConnectionWriter(writer_stream)
        sink = ResponseSink(writer.write_line, ordered=self.ordered)
        try:
            for lineno, raw in enumerate(reader):
                outcome = self.server.submit_line(raw, sink, lineno=lineno)
                if outcome == "quit":
                    break
        except (OSError, ValueError):
            pass  # client went away mid-read; drain whatever was accepted
        finally:
            # Connection-scoped drain: every accepted request is handed to the
            # writer before the socket closes (unless the client is gone).
            sink.wait_drained(timeout=30.0)
            writer.close(force_close=lambda: self._force_close(conn))
            for handle in (reader, writer_stream):
                try:
                    handle.close()
                except OSError:
                    pass
            self._force_close(conn)
            with self._conn_lock:
                self._conns.discard(conn)
                try:
                    self._conn_threads.remove(threading.current_thread())
                except ValueError:
                    pass  # close() already snapshotted the list

    def close(self, drain=True):
        """Stop accepting, optionally drain in-flight work, stop the workers."""
        with self._conn_lock:
            self._closing = True
            threads = list(self._conn_threads)
            conns = list(self._conns)
        if self._listener is not None:
            self._listener.close()
        # Stop intake FIRST: shutting the read side unblocks (and EOFs) every
        # connection reader, so no client can keep streaming new requests
        # while we wait — otherwise a chatty client could hold the drain open
        # forever.  Handlers still flush responses for already-accepted
        # requests before closing their sockets.
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RD)
            except OSError:
                pass
        if drain:
            self.server.wait_idle()
        for thread in threads:
            thread.join(timeout=30.0)
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        self.server.shutdown(drain=drain)
