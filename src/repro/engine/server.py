"""A concurrent JSONL query server with shard affinity and session striping.

This replaces the blocking one-line-at-a-time serve loop
(:func:`repro.engine.batch.serve`) for served workloads.  The protocol is the
same JSONL request/response format as ``kmt batch`` (see
:mod:`repro.engine.batch` — parsing, validation and query execution are
literally shared), extended with serving concerns:

* **Bounded intake queue with backpressure** — at most ``queue_limit``
  requests are in flight; a submitter either blocks (stdin / per-connection
  reader threads, which turns into pipe/TCP backpressure on the client) or
  receives a structured ``queue_full`` error (``block=False``).

* **Shard affinity with session striping** — every query is routed to a
  *shard*: a ``(theory, stripe)`` pair owning one persistent
  :class:`~repro.engine.session.EngineSession`.  The stripe is chosen by
  hashing the query *content*, so identical queries always land on the same
  warm session (cache affinity) while distinct queries for one hot theory
  spread over ``stripes`` sessions instead of serializing on a single
  session the way ``BatchRunner._execute_grouped`` does.  Each shard is
  pinned to exactly one worker thread, so sessions are never contended.

* **Out-of-order completion with correct ids** — responses are emitted as
  soon as their worker finishes; every response carries the request's ``id``
  (defaulting to the client's 0-based input line number).  ``ordered=True``
  buffers completions per client and releases them in submission order.

* **Per-request deadlines** — ``"deadline_ms": N`` bounds a request's life
  from submission (queue wait included).  Expiry is checked before execution
  and cooperatively *during* normalization, signature enumeration and
  automata comparison (see the ``cancel`` plumbing in
  :mod:`repro.core.pushback` / :mod:`repro.smt.dpll` /
  :mod:`repro.core.automata`); an expired request answers with error code
  ``deadline_exceeded``.  Cancellation never corrupts session caches —
  memo tables are only written on completion.

* **Graceful drain** — ``{"op": "quit"}`` (and SIGTERM in the CLI) stops
  intake, waits for every in-flight request to answer, then shuts the
  workers down.  In socket mode ``quit`` is connection-scoped: that client
  is drained and closed while the server keeps serving others.

* **Observability** — the ``stats`` op reports, on top of the per-theory
  cache accounting, a ``server`` block with queue depth/peak/limit,
  completed/error counts per error code, and latency percentiles.  Control
  ops (``stats``/``ping``) are answered inline by the submitting thread —
  they bypass the bounded queue *and* ordered-mode buffering so
  observability keeps working when the queue is jammed — which makes
  ``stats`` an *immediate snapshot*: it does not wait for queries submitted
  earlier on the same stream (wait for their responses first if you want
  post-work numbers).

* **Pluggable execution backends** — one scheduler (intake, shard routing,
  deadlines, ordering, drain) drives either of two execution backends.  The
  default ``thread`` backend executes on a :class:`ShardedSessionPool` inside
  this process: worker threads overlap wherever the GIL is released — client
  I/O, and theory oracles that call out of process (the paper's
  implementations use Z3 over IPC) — but pure in-process compute on CPython
  still serializes.  The ``process`` backend pins each shard's worker to a
  *worker process* (``multiprocessing``, spawn-safe) holding its own warm
  sessions and caches, so CPU-bound queries genuinely parallelize across
  cores.  Requests and responses cross the process boundary in the validated
  compact wire form (:func:`repro.engine.batch.encode_wire_request` and
  friends), deadlines are re-anchored in the worker's clock and cancelled
  cooperatively there, per-worker cache stats are merged into the ``stats``
  response, and a supervisor detects a crashed worker, respawns it, and
  answers the in-flight request with a structured ``worker_crashed`` error —
  no id is ever lost or duplicated.  ``benchmarks/bench_serve.py`` reports
  both backends in both latency regimes honestly.
"""

from __future__ import annotations

import heapq
import importlib
import json
import logging
import multiprocessing
import os
import socket
import threading
import time
import zlib
from collections import deque
from queue import Full, Queue

from repro.core.pushback import DEFAULT_BUDGET
from repro.engine.batch import (
    DEFAULT_THEORY,
    ERROR_DEADLINE,
    ERROR_INTERNAL,
    ERROR_INVALID,
    ERROR_QUEUE_FULL,
    ERROR_SHUTDOWN,
    ERROR_UNKNOWN_THEORY,
    ERROR_WORKER_CRASHED,
    classify_query_error,
    decode_wire_request,
    decode_wire_response,
    encode_wire_request,
    encode_wire_response,
    error_response,
    parse_request_line,
    run_query,
)
from repro.engine.cache import installed_derivative_stats
from repro.engine.session import EngineSession
from repro.engine.telemetry import (
    MetricsRegistry,
    empty_snapshot,
    log_event,
    merge_metrics,
    render_prometheus,
)
from repro.theories import build_theory
from repro.utils.errors import DeadlineExceeded, KmtError, WireProtocolError, WorkerCrashed

_log = logging.getLogger("kmt.server")

_STOP = object()

#: Shard-affinity fields: the request content that determines which stripe
#: (and therefore which warm session) a query lands on.  ``word`` is a
#: ``member`` request's action word (a JSON list; ``str`` of it is stable).
#: ``pre``/``program``/``post`` are the program-analysis ops' While source —
#: hashing the program text keeps an edit-recheck loop pinned to the stripe
#: whose ``prog``/norm/aut caches are already warm for that program.
_AFFINITY_FIELDS = ("op", "left", "right", "term", "pred", "word",
                    "pre", "program", "post")

#: How many recent request latencies back the percentile report.
_LATENCY_WINDOW = 4096


def affinity_hash(record):
    """Stable content hash of a query's shard-affinity fields.

    crc32 (not ``hash``) keeps the value stable across processes and
    ``PYTHONHASHSEED``.  This is the *shared* routing key: the server maps it
    onto ``range(stripes)`` to pick a warm session, and the cluster router
    (:mod:`repro.engine.router`) feeds the same value into its consistent-hash
    ring — so a query lands on the same warm stripe whether it enters through
    the router or hits a backend socket directly.
    """
    payload = "\x1f".join(str(record.get(field)) for field in _AFFINITY_FIELDS)
    return zlib.crc32(payload.encode("utf-8", "backslashreplace"))


def _affinity_stripe(record, stripes):
    """Stable content hash of a query onto ``range(stripes)``.

    Identical queries must map to the same stripe so repeats hit that
    session's caches.
    """
    return affinity_hash(record) % stripes


def _merge_cache_tables(into, tables):
    """Accumulate one stats block's table counters into ``into`` (by name)."""
    for table_name, table in tables.items():
        agg = into.setdefault(
            table_name,
            {"name": table_name, "hits": 0, "misses": 0, "puts": 0, "evictions": 0},
        )
        for counter in ("hits", "misses", "puts", "evictions"):
            agg[counter] += table.get(counter, 0)


def _finish_hit_rates(tables):
    """Recompute ``hit_rate`` on aggregated table counters."""
    for table in tables.values():
        lookups = table["hits"] + table["misses"]
        table["hit_rate"] = round(table["hits"] / lookups, 4) if lookups else 0.0


class ShardedSessionPool:
    """Persistent per-``(theory, stripe)`` engine sessions.

    The striped analogue of :class:`repro.engine.batch.SessionPool`: a hot
    theory gets up to ``stripes`` independent sessions so its queries can be
    spread over that many workers.  ``theory_factory`` (default
    :func:`repro.theories.build_theory`) is the injection point for wrapped
    theories in tests and benchmarks.
    """

    def __init__(self, stripes=4, budget=DEFAULT_BUDGET, prune_unsat_cells=True,
                 cell_search="signature", theory_factory=None, walk_kernel="flat"):
        if stripes < 1:
            raise ValueError(f"stripes must be at least 1, got {stripes}")
        self.stripes = stripes
        self.budget = budget
        self.prune_unsat_cells = prune_unsat_cells
        self.cell_search = cell_search
        self.walk_kernel = walk_kernel
        self.theory_factory = build_theory if theory_factory is None else theory_factory
        self._sessions = {}  # (theory_name, stripe) -> EngineSession
        self._lock = threading.Lock()

    def session(self, theory_name, stripe=0):
        key = (theory_name.lower(), stripe % self.stripes)
        with self._lock:
            existing = self._sessions.get(key)
            if existing is not None:
                return existing
        # Build outside the lock (theory construction may be slow or raise
        # for unknown presets); a racing duplicate is discarded.
        session = EngineSession(
            self.theory_factory(key[0]), budget=self.budget,
            prune_unsat_cells=self.prune_unsat_cells, cell_search=self.cell_search,
            walk_kernel=self.walk_kernel,
        )
        with self._lock:
            return self._sessions.setdefault(key, session)

    def theories(self):
        with self._lock:
            return sorted({name for name, _ in self._sessions})

    def stats(self):
        """Per-theory cache accounting aggregated over stripes.

        Same top-level shape as ``SessionPool.stats()`` — theory names plus a
        ``"shared"`` block for whatever derivative memo is actually installed
        — with per-theory blocks additionally reporting the live stripe count.
        """
        with self._lock:
            sessions = dict(self._sessions)
        by_theory = {}
        for (name, _), session in sorted(sessions.items()):
            by_theory.setdefault(name, []).append(session.stats(include_shared=False))
        out = {}
        for name, blocks in by_theory.items():
            tables = {}
            for block in blocks:
                _merge_cache_tables(tables, block["tables"])
            _finish_hit_rates(tables)
            out[name] = {
                "stripes": len(blocks),
                "queries": sum(block["session"]["queries"] for block in blocks),
                "states_compiled": sum(
                    block["session"].get("states_compiled", 0) for block in blocks
                ),
                "aut_bytes": sum(
                    block["session"].get("aut_bytes", 0) for block in blocks
                ),
                "tables": tables,
                "totals": {
                    "hits": sum(block["totals"]["hits"] for block in blocks),
                    "misses": sum(block["totals"]["misses"] for block in blocks),
                },
            }
        out["shared"] = installed_derivative_stats()
        return out

    def export_snapshot(self):
        """Every stripe session's state, merged into one snapshot payload.

        Stripes of one theory serve disjoint request shards but overlap on
        cached entries; the merge dedups by serialized key, so the payload is
        roughly one warm session's worth per theory.
        """
        from repro.engine import persist

        with self._lock:
            sessions = dict(self._sessions)
        payloads = [
            persist.make_payload({name: session.export_state()})
            for (name, _), session in sorted(sessions.items())
        ]
        return persist.merge_payloads(payloads)

    def import_snapshot(self, payload):
        """Warm every stripe from a snapshot payload; returns per-theory counts.

        Each theory's payload is decoded **once** (against the stripe-0
        session: fingerprints are process-global, so the staged keys are
        valid for every stripe) and the decoded values — automata, normal
        forms, verdicts — are installed into all stripes, shared by
        reference.  Staging completes for every theory before any stripe is
        touched, keeping rejection atomic.
        """
        from repro.engine import persist
        from repro.utils.errors import SnapshotError

        sessions_payload = persist.check_payload(payload)
        staged = []
        for name, state in sorted(sessions_payload.items()):
            try:
                primary = self.session(str(name), 0)
            except KmtError as error:
                raise SnapshotError(
                    f"snapshot references unavailable theory preset {name!r}: {error}"
                ) from error
            staged.append(
                (str(name).lower(), persist.stage_session_state(primary, state))
            )
        counts = {}
        for name, entries in staged:
            for stripe in range(self.stripes):
                stripe_counts = self.session(name, stripe).caches.install_state(entries)
            counts[name] = stripe_counts
        return counts


def execute_record(pool, record, default_theory, fallback_id, cancel=None,
                   theory=None, stripe=None):
    """Execute one parsed query record on a sharded pool; returns the response.

    The single execution codepath shared by the thread backend (worker
    threads in this process) and the process backend (inside each worker
    process): session lookup, query execution and error classification all
    happen here, so the two backends cannot drift apart on semantics.
    ``theory``/``stripe`` accept the scheduler's already-computed routing (the
    thread backend passes them to avoid re-hashing the request content); when
    absent they are derived from the record — identically, since the process
    worker only receives the record itself.
    """
    if theory is None:
        theory = str(record.get("theory", default_theory)).lower()
    if stripe is None:
        stripe = _affinity_stripe(record, pool.stripes)
    try:
        session = pool.session(theory, stripe)
    except KmtError as error:
        return error_response(record, fallback_id, theory, str(error), ERROR_UNKNOWN_THEORY)
    base = {
        "id": record.get("id", fallback_id),
        "op": record["op"],
        "theory": theory,
    }
    try:
        with session.lock:
            base["ok"] = True
            # ``"trace": true`` requests get their phase breakdown attached
            # here — under the session lock, so the cache deltas in the trace
            # belong to this request alone.  Inside a worker process this is
            # where the trace block enters the response; it then crosses the
            # pipe as a wire-form extra field, byte-exact, and the scheduler
            # re-anchors queue/total timings in its own clock domain.
            base["result"], trace_payload = run_query(session, record, cancel=cancel)
            if trace_payload is not None:
                base["trace"] = trace_payload
    except (KmtError, KeyError, TypeError, ValueError) as error:
        message, code = classify_query_error(error)
        return error_response(record, fallback_id, theory, message, code)
    return base


def resolve_theory_factory(spec):
    """Resolve a ``"module:attribute"`` spec to a theory-factory callable.

    The process backend cannot ship an arbitrary in-process callable to its
    workers, so factory injection crosses the boundary *by name*: the spec is
    plain data, and each worker imports and resolves it after spawning
    (``None`` resolves to :func:`repro.theories.build_theory`).
    """
    if spec is None:
        return build_theory
    module_name, _, attribute = spec.partition(":")
    if not module_name or not attribute:
        raise ValueError(f"theory factory spec must look like 'module:attribute', got {spec!r}")
    module = importlib.import_module(module_name)
    factory = module
    for part in attribute.split("."):
        factory = getattr(factory, part)
    if not callable(factory):
        raise ValueError(f"theory factory spec {spec!r} resolved to a non-callable")
    return factory


def merge_pool_stats(blocks):
    """Merge per-worker :meth:`ShardedSessionPool.stats` blocks into one.

    Worker processes each own private sessions *and* a private process-wide
    derivative memo; the merged report sums table counters per theory across
    workers (recomputing hit rates) and folds every worker's ``"shared"``
    block into one.  The result has the same shape as a single pool's stats,
    so ``stats`` responses look identical under both backends.
    """
    out = {}
    shared_tables = {}
    for block in blocks:
        for name, theory_block in block.items():
            if name == "shared":
                _merge_cache_tables(shared_tables, theory_block.get("tables", {}))
                continue
            agg = out.setdefault(
                name,
                {"stripes": 0, "queries": 0, "states_compiled": 0, "aut_bytes": 0,
                 "tables": {}, "totals": {"hits": 0, "misses": 0}},
            )
            agg["stripes"] += theory_block.get("stripes", 0)
            agg["queries"] += theory_block.get("queries", 0)
            agg["states_compiled"] += theory_block.get("states_compiled", 0)
            agg["aut_bytes"] += theory_block.get("aut_bytes", 0)
            _merge_cache_tables(agg["tables"], theory_block.get("tables", {}))
            for counter in ("hits", "misses"):
                agg["totals"][counter] += theory_block.get("totals", {}).get(counter, 0)
    for agg in out.values():
        _finish_hit_rates(agg["tables"])
    _finish_hit_rates(shared_tables)
    merged = dict(sorted(out.items()))
    merged["shared"] = {"tables": shared_tables}
    return merged


class ThreadExecutionBackend:
    """Execute queries on a :class:`ShardedSessionPool` in this process."""

    name = "thread"

    def __init__(self, pool, default_theory):
        self.pool = pool
        self.default_theory = default_theory

    def start(self):
        pass

    def wait_ready(self, timeout=None):
        return True

    def execute(self, worker_index, request):
        cancel = None
        if request.deadline is not None:
            deadline, deadline_ms = request.deadline, request.deadline_ms

            def cancel():
                if time.monotonic() >= deadline:
                    raise DeadlineExceeded(deadline_ms)
        return execute_record(self.pool, request.record, self.default_theory,
                              request.fallback_id, cancel,
                              theory=request.theory, stripe=request.stripe)

    def pool_stats(self):
        return self.pool.stats()

    def theories(self):
        return self.pool.theories()

    def worker_info(self):
        return None

    def worker_metrics(self):
        # Thread-backend execution happens in the scheduler's own process;
        # everything is already in the server-side registry.
        return None

    def refresh_stats(self, timeout=None):
        # In-process stats are always exact; nothing to pull.
        return 0

    def export_snapshot(self):
        return self.pool.export_snapshot()

    def import_snapshot(self, payload):
        return self.pool.import_snapshot(payload)

    def shutdown(self):
        pass


#: Every Nth response (after the first few) carries a fresh cache-stats
#: snapshot from the worker process; between snapshots the supervisor serves
#: the last one it saw.
_STATS_SNAPSHOT_PERIOD = 16


def _full_metrics(metrics):
    """A worker's metrics snapshot merged with its process-global counters.

    Instrumentation that cannot see the worker's registry — e.g. the test
    oracle wrapper counting out-of-process solver calls
    (:mod:`repro.engine.testing`) — records into the process-global registry
    (:func:`repro.engine.telemetry.process_metrics`); merging the two here
    makes those counters ride the same stats pipe to the supervisor.
    """
    from repro.engine.telemetry import process_metrics

    return merge_metrics([metrics.snapshot(), process_metrics().snapshot()])


def _process_worker_main(conn, config):
    """Entry point of one worker process (spawn-safe: module-level, plain-data
    config).  Builds a private warm session pool, then answers ``exec``
    messages from the supervisor until ``stop`` or EOF; a request never kills
    the worker — execution failures become error responses."""
    import signal

    # The parent owns lifecycle (SIGTERM drain in the CLI, KeyboardInterrupt
    # in a terminal); a stray SIGINT to the process group must not corrupt
    # the wire conversation mid-message.
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # not the main thread, exotic platform
        pass
    pool = ShardedSessionPool(
        stripes=config["stripes"],
        budget=config["budget"],
        prune_unsat_cells=config["prune_unsat_cells"],
        cell_search=config["cell_search"],
        theory_factory=resolve_theory_factory(config["theory_factory_spec"]),
        walk_kernel=config.get("walk_kernel", "flat"),
    )
    default_theory = config["default_theory"]
    worker_label = str(config.get("worker_index", ""))
    metrics = MetricsRegistry()
    served = 0
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return  # supervisor went away
        tag = message[0]
        if tag == "stop":
            return
        # Replies echo the supervisor's sequence number: a ping the
        # supervisor gave up waiting for (wait_ready timeout) must not have
        # its late pong mistaken for the next request's reply.
        if tag == "ping":
            conn.send(("pong", message[1], os.getpid()))
            continue
        # Snapshot traffic shares the pipe with queries (same seq-echo
        # discipline).  Import is how a respawned worker comes back warm —
        # the supervisor hands it the latest payload right after spawn —
        # and export is how checkpoints collect this worker's tables.
        if tag == "snapshot_import":
            _, seq, payload = message
            try:
                counts = pool.import_snapshot(payload)
            except Exception as error:  # noqa: BLE001 — a bad snapshot must not kill the worker
                conn.send(("snapshot_err", seq, str(error)))
            else:
                conn.send(("snapshot_ok", seq, counts))
            continue
        if tag == "snapshot_export":
            seq = message[1]
            try:
                payload = pool.export_snapshot()
            except Exception as error:  # noqa: BLE001
                conn.send(("snapshot_err", seq, str(error)))
            else:
                conn.send(("snapshot_ok", seq, payload))
            continue
        # On-demand stats (same shape as the piggybacked snapshot): lets the
        # supervisor collect *exact* post-drain numbers — e.g. total oracle
        # calls for a benchmark — instead of the bounded-staleness piggyback.
        if tag == "stats_pull":
            seq = message[1]
            conn.send(("stats", seq,
                       {"pool": pool.stats(), "metrics": _full_metrics(metrics)}))
            continue
        _, seq, wire, fallback_id, remaining_ms, deadline_ms = message
        exec_started = time.monotonic()
        try:
            record = decode_wire_request(wire)
            cancel = None
            if remaining_ms is not None:
                # Deadlines are re-anchored in this process's clock: the
                # supervisor sends the time *remaining* at dispatch (queue
                # wait already charged), so clock domains never mix.
                local_deadline = time.monotonic() + remaining_ms / 1000.0

                def cancel():
                    if time.monotonic() >= local_deadline:
                        raise DeadlineExceeded(deadline_ms)
            response = execute_record(pool, record, default_theory, fallback_id, cancel)
        except WireProtocolError as error:
            response = error_response({}, fallback_id, None, str(error), error.code)
        except Exception as error:  # noqa: BLE001 — a worker must never die on one request
            response = error_response({}, fallback_id, None,
                                      f"worker internal error: {error}", ERROR_INTERNAL)
        try:
            wire_response = encode_wire_response(response)
        except WireProtocolError as error:
            wire_response = encode_wire_response(error_response(
                {}, fallback_id, None, f"response not wire-serializable: {error}",
                ERROR_INTERNAL))
        served += 1
        metrics.inc("worker_requests_total", (
            ("worker", worker_label),
            ("theory", str(response.get("theory", ""))),
            ("op", str(response.get("op", ""))),
            ("outcome", response.get("error_code") or "ok"),
        ))
        metrics.observe(
            "worker_exec_latency_ms", (time.monotonic() - exec_started) * 1000.0,
            (("worker", worker_label),
             ("theory", str(response.get("theory", ""))),
             ("op", str(response.get("op", "")))))
        # Computing and pickling the stats tables on every response would tax
        # the hot path stats are not on; snapshots piggyback on the first few
        # responses (new sessions appear during warmup) and every
        # _STATS_SNAPSHOT_PERIOD-th after that — bounded staleness, zero
        # extra IPC — and the parent keeps the latest per worker.  The worker
        # metrics registry rides along on the same cadence and is merged in
        # the parent by ``merge_metrics``, like ``merge_pool_stats``.
        snapshot = {"pool": pool.stats(), "metrics": _full_metrics(metrics)} \
            if served <= 4 or served % _STATS_SNAPSHOT_PERIOD == 0 else None
        conn.send(("done", seq, wire_response, snapshot))


class _WorkerHandle:
    """Supervisor-side handle for one worker process.

    Only the owning dispatcher thread calls :meth:`call`, so the pipe needs
    no locking; :meth:`respawn` replaces a dead worker in place (fresh
    process, cold caches) and the shard→worker pinning is untouched, so
    affinity keeps working across crashes.
    """

    def __init__(self, index, config, ctx):
        self.index = index
        self.restarts = 0
        self.requests = 0
        self.generation = 0
        self._config = config
        self._ctx = ctx
        self._seq = 0
        # Serializes pipe conversations: the dispatcher thread owns normal
        # traffic, but wait_ready() pings arrive from other threads and two
        # concurrent recv()s on one Connection steal/corrupt replies.
        self._lock = threading.Lock()
        self.process = None
        self.conn = None
        self._spawn()

    def _spawn(self):
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        config = dict(self._config, worker_index=self.index)
        process = self._ctx.Process(
            target=_process_worker_main, args=(child_conn, config),
            name=f"kmt-server-proc-{self.index}", daemon=True,
        )
        process.start()
        child_conn.close()  # the worker holds the only other end now
        self.process = process
        self.conn = parent_conn

    @property
    def pid(self):
        return self.process.pid if self.process is not None else None

    def call(self, tag, *payload, timeout=None):
        """One request/response round trip; raises ``WorkerCrashed`` on a
        broken pipe (the worker died — killed, OOMed, or segfaulted).

        Every message carries a sequence number the worker echoes in its
        reply; replies bearing an older sequence are discarded.  That keeps
        the pipe usable after a *timed-out* call (``timeout`` in seconds,
        ``None`` returned on expiry): a ping the supervisor stopped waiting
        for — e.g. ``wait_ready`` against a worker still importing — answers
        late, and without the sequence check that stale pong would be read as
        the next request's reply, desyncing the conversation for good.
        Queries run unbounded (deadlines are the cooperative, in-worker
        mechanism); the timeout exists for liveness probes.

        Calls are serialized per handle: a bounded call that cannot take the
        pipe within its timeout (a query is mid-flight on the dispatcher)
        reports not-ready rather than recv-racing the dispatcher for its
        reply.
        """
        if timeout is None:
            self._lock.acquire()
        elif not self._lock.acquire(timeout=timeout):
            return None
        try:
            pid = self.pid
            self._seq += 1
            seq = self._seq
            deadline = None if timeout is None else time.monotonic() + timeout
            try:
                self.conn.send((tag, seq) + payload)
                while True:
                    if deadline is not None:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0 or not self.conn.poll(remaining):
                            return None
                    reply = self.conn.recv()
                    if reply[1] == seq:
                        return reply
                    # Stale reply to an abandoned earlier call: drop, re-wait.
            except (EOFError, OSError) as error:
                detail = f": {error}" if str(error) else ""
                raise WorkerCrashed(
                    f"worker process {self.index} (pid {pid}) died mid-request{detail}"
                ) from error
        finally:
            self._lock.release()

    def respawn(self, observed_generation=None):
        """Replace a dead worker; a no-op if another observer already did.

        Two threads can see the same crash (a dispatcher's exec and a
        ``wait_ready`` ping both hitting the dead pipe); ``observed_generation``
        — captured before the failed call — makes the second respawn
        recognize that the worker it saw die is already replaced, instead of
        tearing down the healthy replacement.
        """
        with self._lock:
            if observed_generation is not None and observed_generation != self.generation:
                return
            try:
                self.conn.close()
            except OSError:
                pass
            self.process.join(timeout=5.0)
            if self.process.is_alive():  # crashed pipe but wedged process
                self.process.kill()
                self.process.join(timeout=5.0)
            self.restarts += 1
            self.generation += 1
            self._spawn()

    def stop(self, timeout=5.0):
        with self._lock:
            try:
                self.conn.send(("stop",))
            except (EOFError, OSError):
                pass  # already dead
            self.process.join(timeout=timeout)
            if self.process.is_alive():
                self.process.terminate()
                self.process.join(timeout=timeout)
            if self.process.is_alive():
                self.process.kill()
                self.process.join(timeout=timeout)
            try:
                self.conn.close()
            except OSError:
                pass


class ProcessExecutionBackend:
    """Execute queries in per-worker *processes* (true CPU parallelism).

    Each of ``workers`` processes holds its own :class:`ShardedSessionPool`
    (plus a private derivative memo); the scheduler's shard→worker pinning
    means a given ``(theory, stripe)`` shard always executes in the same
    process, so cache affinity works exactly as in the thread backend.
    Requests/responses cross the pipe in the compact wire form; theory
    injection crosses by ``theory_factory_spec`` (``"module:attribute"``,
    resolved inside each worker).  A crashed worker is respawned by its
    dispatcher thread and the in-flight request answered with a structured
    ``worker_crashed`` error — requests queued behind it are executed by the
    respawned worker, so no id is lost or duplicated.
    """

    name = "process"

    def __init__(self, workers, stripes, budget=DEFAULT_BUDGET, prune_unsat_cells=True,
                 cell_search="signature", default_theory=DEFAULT_THEORY,
                 theory_factory_spec=None, start_method="spawn", walk_kernel="flat"):
        if theory_factory_spec is not None:
            # Fail fast in the parent on a bad spec instead of crash-looping
            # every worker at spawn.
            resolve_theory_factory(theory_factory_spec)
        self.workers = workers
        self._config = {
            "stripes": stripes,
            "budget": budget,
            "prune_unsat_cells": prune_unsat_cells,
            "cell_search": cell_search,
            "default_theory": default_theory,
            "theory_factory_spec": theory_factory_spec,
            "walk_kernel": walk_kernel,
        }
        self._ctx = multiprocessing.get_context(start_method)
        self._handles = []
        self._stats_lock = threading.Lock()
        self._last_pool_stats = {}  # worker index -> latest cache-stats snapshot
        self._last_metrics = {}     # worker index -> latest metrics snapshot
        # Latest known-good snapshot payload: installed at boot by
        # ``import_snapshot`` and refreshed by every ``export_snapshot``
        # (checkpoint).  A respawned worker is warmed from it over the pipe,
        # so a SIGKILL'd worker comes back with its caches instead of cold.
        self._warm_lock = threading.Lock()
        self._warm_payload = None
        self.warm_restores = 0
        self.warm_restore_errors = 0

    def start(self):
        if not self._handles:
            self._handles = [
                _WorkerHandle(index, self._config, self._ctx)
                for index in range(self.workers)
            ]

    def wait_ready(self, timeout=None):
        """Block until every worker process answers a ping (imports done).

        Useful to keep interpreter spawn/import cost out of latency-sensitive
        paths (benchmarks warm up explicitly; serving just absorbs it).
        ``False`` when the timeout elapses (including a worker that spawned
        but wedged without answering) or a worker crashed at spawn.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        for handle in self._handles:
            remaining = None
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
            generation = handle.generation
            try:
                reply = handle.call("ping", timeout=remaining)
            except WorkerCrashed:
                handle.respawn(generation)
                self._warm_respawned(handle)
                return False
            if reply is None or reply[0] != "pong":
                return False
        return True

    def _warm_respawned(self, handle):
        """Hand the latest snapshot payload to a freshly respawned worker.

        Best-effort: a worker that cannot be warmed (snapshot decode failure,
        another crash, timeout) serves cold — warm restarts are an
        optimization, never a liveness dependency.
        """
        with self._warm_lock:
            payload = self._warm_payload
        if payload is None:
            return
        try:
            reply = handle.call("snapshot_import", payload, timeout=120.0)
        except WorkerCrashed as crash:
            reply = ("snapshot_err", None, str(crash))
        if reply is not None and reply[0] == "snapshot_ok":
            self.warm_restores += 1
            log_event(_log, logging.INFO, "worker_warm_restored",
                      worker=handle.index, pid=handle.pid, counts=reply[2])
        else:
            self.warm_restore_errors += 1
            detail = "timed out" if reply is None else reply[2]
            log_event(_log, logging.WARNING, "worker_warm_restore_failed",
                      worker=handle.index, pid=handle.pid, error=detail)

    def execute(self, worker_index, request):
        handle = self._handles[worker_index]
        record = request.record
        remaining_ms = None
        if request.deadline is not None:
            # The queued-too-long case was already answered by the scheduler;
            # anything left is the execution budget, re-anchored worker-side.
            remaining_ms = max(0.001, (request.deadline - time.monotonic()) * 1000.0)
        try:
            wire = encode_wire_request(record)
        except WireProtocolError as error:
            return error_response(record, request.fallback_id, request.theory,
                                  str(error), error.code)
        generation = handle.generation
        try:
            reply = handle.call("exec", wire, request.fallback_id, remaining_ms,
                                request.deadline_ms)
            if reply[0] != "done":
                raise WorkerCrashed(
                    f"worker process {handle.index} (pid {handle.pid}) broke protocol "
                    f"(sent {reply[0]!r})")
            _, _, wire_response, snapshot = reply
            response = decode_wire_response(wire_response)
        except WorkerCrashed as crash:
            crashed_pid = handle.pid
            handle.respawn(generation)
            log_event(_log, logging.WARNING, "worker_respawned",
                      worker=handle.index, crashed_pid=crashed_pid,
                      new_pid=handle.pid, restarts=handle.restarts,
                      error=str(crash))
            self._warm_respawned(handle)
            return error_response(
                record, request.fallback_id, request.theory,
                f"{crash}; worker respawned as pid {handle.pid} (the request was "
                "not retried)", ERROR_WORKER_CRASHED)
        handle.requests += 1
        if snapshot is not None:
            with self._stats_lock:
                self._last_pool_stats[handle.index] = snapshot["pool"]
                self._last_metrics[handle.index] = snapshot["metrics"]
        return response

    def pool_stats(self):
        """Merged per-worker cache stats (latest periodic snapshot each).

        Workers piggyback snapshots every :data:`_STATS_SNAPSHOT_PERIOD`
        responses, so the merge can trail the most recent requests slightly —
        a deliberate trade against taxing every response with stats traffic.
        """
        with self._stats_lock:
            blocks = list(self._last_pool_stats.values())
        return merge_pool_stats(blocks)

    def theories(self):
        with self._stats_lock:
            blocks = list(self._last_pool_stats.values())
        return sorted({name for block in blocks for name in block if name != "shared"})

    def worker_metrics(self):
        """Merged per-worker metrics (same snapshot cadence as pool stats)."""
        with self._stats_lock:
            snapshots = list(self._last_metrics.values())
        if not snapshots:
            return None
        return merge_metrics(snapshots)

    def refresh_stats(self, timeout=30.0):
        """Pull a fresh stats snapshot from every reachable worker *now*.

        The piggybacked snapshots trail the hot path by up to
        :data:`_STATS_SNAPSHOT_PERIOD` responses; call this after a drain when
        exact totals matter (``bench_serve.py`` uses it so the process
        backend's oracle-call count is comparable with the in-process modes).
        Busy or crashed workers keep their last piggybacked snapshot.
        Returns the number of workers that answered.
        """
        refreshed = 0
        for handle in self._handles:
            try:
                reply = handle.call("stats_pull", timeout=timeout)
            except WorkerCrashed:
                continue  # the next exec on this shard respawns it
            if reply is None or reply[0] != "stats":
                continue
            snapshot = reply[2]
            with self._stats_lock:
                self._last_pool_stats[handle.index] = snapshot["pool"]
                self._last_metrics[handle.index] = snapshot["metrics"]
            refreshed += 1
        return refreshed

    def import_snapshot(self, payload):
        """Broadcast a snapshot payload to every worker (and remember it).

        Raises :class:`~repro.utils.errors.SnapshotError` if any worker
        rejects the payload or cannot be reached; workers stage the decode
        before installing, so a rejecting worker's caches are untouched.
        Returns the per-theory entry counts reported by the first worker
        (every worker imports the identical payload).
        """
        from repro.engine import persist
        from repro.utils.errors import SnapshotError

        persist.check_payload(payload)
        counts = {}
        failures = []
        for handle in self._handles:
            try:
                reply = handle.call("snapshot_import", payload, timeout=300.0)
            except WorkerCrashed as crash:
                failures.append(f"worker {handle.index}: {crash}")
                continue
            if reply is None:
                failures.append(f"worker {handle.index}: snapshot import timed out")
            elif reply[0] != "snapshot_ok":
                failures.append(f"worker {handle.index}: {reply[2]}")
            elif not counts:
                counts = reply[2]
        if failures:
            raise SnapshotError("; ".join(failures))
        with self._warm_lock:
            self._warm_payload = payload
        return counts

    def export_snapshot(self):
        """Merged snapshot payload collected from every reachable worker.

        Busy or just-crashed workers are skipped (their tables ride the next
        checkpoint); raises :class:`~repro.utils.errors.SnapshotError` only
        when *no* worker could contribute, so a checkpoint never replaces a
        good on-disk snapshot with an empty one.
        """
        from repro.engine import persist
        from repro.utils.errors import SnapshotError

        payloads = []
        for handle in self._handles:
            generation = handle.generation
            try:
                reply = handle.call("snapshot_export", timeout=60.0)
            except WorkerCrashed:
                handle.respawn(generation)
                self._warm_respawned(handle)
                continue
            if reply is None:
                continue  # worker busy with a long query; skip this round
            if reply[0] != "snapshot_ok":
                log_event(_log, logging.WARNING, "snapshot_export_worker_failed",
                          worker=handle.index, error=reply[2])
                continue
            payloads.append(reply[2])
        if not payloads:
            raise SnapshotError("no worker could export a snapshot")
        merged = persist.merge_payloads(payloads)
        with self._warm_lock:
            self._warm_payload = merged
        return merged

    def worker_info(self):
        return [
            {
                "index": handle.index,
                "pid": handle.pid,
                "alive": handle.process.is_alive() if handle.process is not None else False,
                "requests": handle.requests,
                "restarts": handle.restarts,
            }
            for handle in self._handles
        ]

    def shutdown(self):
        for handle in self._handles:
            handle.stop()
        self._handles = []


class ResponseSink:
    """Thread-safe response writer for one client (stdout or a socket).

    Assigns per-client sequence numbers at submission time; ``ordered=True``
    buffers out-of-order completions in a heap and releases them in
    submission order.  A write failure (client went away) marks the sink
    broken and silently drops the remaining responses — workers must never
    die because a client hung up.
    """

    def __init__(self, write_line, ordered=False):
        self._write_line = write_line
        self.ordered = ordered
        self._lock = threading.Lock()
        self._drained = threading.Condition(self._lock)
        self._next_seq = 0   # next sequence number to assign
        self._next_emit = 0  # (ordered) next sequence to release
        self._written = 0    # responses actually written (or dropped as broken)
        self._pending = []   # (ordered) heap of (seq, serialized line)
        self.broken = False

    def next_seq(self):
        with self._lock:
            seq = self._next_seq
            self._next_seq += 1
            return seq

    def _write(self, line):
        if not self.broken:
            try:
                self._write_line(line)
            except (OSError, ValueError):
                self.broken = True
        self._written += 1
        self._drained.notify_all()

    def emit(self, seq, response):
        line = json.dumps(response, sort_keys=True)
        with self._lock:
            if not self.ordered:
                self._write(line)
                return
            heapq.heappush(self._pending, (seq, line))
            while self._pending and self._pending[0][0] == self._next_emit:
                _, ready = heapq.heappop(self._pending)
                self._next_emit += 1
                self._write(ready)

    def emit_now(self, response):
        """Write immediately, outside the sequence stream (control responses).

        ``stats``/``ping`` replies jump the line even under ordered mode —
        observability must not wait behind jammed queries — so they carry no
        sequence number and do not count toward :meth:`wait_drained`.
        """
        line = json.dumps(response, sort_keys=True)
        with self._lock:
            if not self.broken:
                try:
                    self._write_line(line)
                except (OSError, ValueError):
                    self.broken = True

    def wait_drained(self, timeout=None):
        """Block until every assigned sequence number has been written."""
        with self._lock:
            return self._drained.wait_for(
                lambda: self._written >= self._next_seq, timeout=timeout
            )


class _Request:
    __slots__ = ("record", "theory", "stripe", "sink", "seq", "fallback_id",
                 "submitted", "deadline", "deadline_ms", "dispatched", "wants_trace")

    def __init__(self, record, theory, stripe, sink, seq, fallback_id, submitted,
                 deadline, deadline_ms):
        self.record = record
        self.theory = theory
        self.stripe = stripe
        self.sink = sink
        self.seq = seq
        self.fallback_id = fallback_id
        self.submitted = submitted
        self.deadline = deadline
        self.deadline_ms = deadline_ms
        self.dispatched = None            # set by the worker loop
        self.wants_trace = bool(record.get("trace"))


class QueryServer:
    """The scheduler: bounded intake, shard-affine dispatch, worker threads.

    Front ends (:func:`serve_stdio`, :class:`SocketServer`) feed raw protocol
    lines to :meth:`submit_line` together with the client's
    :class:`ResponseSink`; everything after that — validation, backpressure,
    shard routing, deadline handling, emission — happens here.  Usable as a
    context manager (``with QueryServer() as server: ...``), which drains on
    exit.
    """

    def __init__(self, workers=4, stripes=None, queue_limit=128, default_theory=DEFAULT_THEORY,
                 budget=DEFAULT_BUDGET, cell_search="signature", theory_factory=None, pool=None,
                 backend="thread", theory_factory_spec=None, start_method="spawn",
                 slow_query_ms=None, enable_metrics=True, walk_kernel="flat"):
        if workers < 1:
            raise ValueError(f"workers must be at least 1, got {workers}")
        if queue_limit < 1:
            raise ValueError(f"queue_limit must be at least 1, got {queue_limit}")
        if backend not in ("thread", "process"):
            raise ValueError(f"backend must be 'thread' or 'process', got {backend!r}")
        if stripes is not None and stripes < 1:
            # Validated here for both backends: the process backend only
            # builds its (stripe-validating) pools inside the spawned
            # workers, far too late for a clean startup error.
            raise ValueError(f"stripes must be at least 1, got {stripes}")
        self.workers = workers
        self.stripes = workers if stripes is None else stripes
        self.queue_limit = queue_limit
        self.default_theory = default_theory
        self.backend_name = backend
        if backend == "process":
            if pool is not None:
                raise ValueError("the process backend builds per-worker pools; "
                                 "an in-process pool cannot be shared across it")
            if theory_factory is not None:
                raise ValueError("theory_factory is in-process only; pass "
                                 "theory_factory_spec='module:attribute' for the "
                                 "process backend")
            self.pool = None
            self.backend = ProcessExecutionBackend(
                workers=workers, stripes=self.stripes, budget=budget,
                cell_search=cell_search, default_theory=default_theory,
                theory_factory_spec=theory_factory_spec, start_method=start_method,
                walk_kernel=walk_kernel,
            )
        else:
            if theory_factory is not None and theory_factory_spec is not None:
                raise ValueError("pass either theory_factory or theory_factory_spec, "
                                 "not both")
            if theory_factory_spec is not None:
                theory_factory = resolve_theory_factory(theory_factory_spec)
            if pool is not None:
                self.pool = pool
                self.stripes = pool.stripes
            else:
                self.pool = ShardedSessionPool(
                    stripes=self.stripes, budget=budget, cell_search=cell_search,
                    theory_factory=theory_factory, walk_kernel=walk_kernel,
                )
            self.backend = ThreadExecutionBackend(self.pool, default_theory)
        if slow_query_ms is not None and slow_query_ms < 0:
            raise ValueError(f"slow_query_ms must be non-negative, got {slow_query_ms}")
        self.slow_query_ms = slow_query_ms
        # ``enable_metrics=False`` removes even the (cheap) registry updates
        # from the completion path — the telemetry benchmark's baseline mode.
        self.metrics = MetricsRegistry() if enable_metrics else None
        self._queues = [Queue() for _ in range(workers)]
        self._threads = []
        self._capacity = threading.Semaphore(queue_limit)
        self._state = threading.Lock()
        self._idle = threading.Condition(self._state)
        self._in_flight = 0       # queued or executing
        self._queued = 0          # queued, not yet picked up by a worker
        self._peak_queued = 0
        self._completed = 0
        self._op_counts = {}      # op -> completed count (satellite: stats by_op)
        self._error_counts = {}
        self._latencies = deque(maxlen=_LATENCY_WINDOW)
        self._queue_latencies = deque(maxlen=_LATENCY_WINDOW)
        self._exec_latencies = deque(maxlen=_LATENCY_WINDOW)
        self._accepting = True
        self._started = False
        self._started_monotonic = time.monotonic()
        self._started_at = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
        # Attached by the CLI when serving with ``--snapshot``; surfaced in
        # ``stats`` responses so operators can watch checkpoint health.
        self.snapshot_manager = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self):
        if self._started:
            return self
        self._started = True
        self._started_monotonic = time.monotonic()
        self._started_at = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
        with self._state:
            # A stopped server may be started again (shutdown() tears the
            # workers down but leaves the object reusable); intake must
            # reopen with it or every request gets `shutting_down`.
            self._accepting = True
        log_event(_log, logging.INFO, "server_start",
                  backend=self.backend_name, workers=self.workers,
                  stripes=self.stripes, queue_limit=self.queue_limit,
                  slow_query_ms=self.slow_query_ms)
        self.backend.start()
        for index, queue in enumerate(self._queues):
            thread = threading.Thread(
                target=self._worker_loop, args=(queue, index),
                name=f"kmt-server-worker-{index}", daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        return self

    def wait_ready(self, timeout=None):
        """Block until the execution backend is warm (worker processes up)."""
        return self.backend.wait_ready(timeout=timeout)

    def __enter__(self):
        return self.start()

    def __exit__(self, exc_type, exc, tb):
        self.shutdown(drain=exc_type is None)

    def drain(self):
        """Stop accepting new queries and wait for all in-flight to answer."""
        with self._state:
            self._accepting = False
            self._idle.wait_for(lambda: self._in_flight == 0)

    def wait_idle(self, timeout=None):
        """Wait for in-flight work to finish without stopping intake."""
        with self._state:
            return self._idle.wait_for(lambda: self._in_flight == 0, timeout=timeout)

    def shutdown(self, drain=True):
        """Drain (optionally) and stop the worker threads."""
        if drain:
            self.drain()
        else:
            with self._state:
                self._accepting = False
        if self._started:
            for queue in self._queues:
                queue.put(_STOP)
            for thread in self._threads:
                thread.join()
            self._threads = []
            self._started = False
            with self._state:
                completed, errors = self._completed, dict(self._error_counts)
            log_event(_log, logging.INFO, "server_stop",
                      backend=self.backend_name, completed=completed, errors=errors)
        self.backend.shutdown()

    # ------------------------------------------------------------------
    # intake
    # ------------------------------------------------------------------
    def submit_line(self, raw, sink, lineno=None, block=True, timeout=None):
        """Parse and dispatch one raw protocol line for a client.

        Returns the line's disposition: ``"skip"``, ``"quit"``, ``"control"``,
        ``"queued"``, ``"error"`` (protocol-invalid line) or ``"rejected"``
        (valid query refused by backpressure/shutdown — the client got a
        structured error response).  ``block=False`` turns a full queue into
        an immediate ``queue_full`` rejection instead of blocking the caller.
        """
        kind, payload = parse_request_line(raw)
        if kind == "skip":
            return "skip"
        if kind == "quit":
            return "quit"
        if kind == "control":
            # Answered inline and emitted out-of-band (no sequence number):
            # control ops bypass both the bounded queue and ordered-mode
            # buffering so observability works while the queue is jammed.
            record = payload
            fallback_id = lineno if lineno is not None else record.get("id")
            sink.emit_now(self._control_response(record, fallback_id))
            return "control"
        seq = sink.next_seq()
        fallback_id = lineno if lineno is not None else seq
        if kind == "error":
            message, code, request = payload
            self._count_error(code)
            sink.emit(seq, error_response(request, fallback_id, None, message, code))
            return "error"
        record = payload
        theory = str(record.get("theory", self.default_theory)).lower()
        deadline, deadline_ms, deadline_error = self._parse_deadline(record)
        if deadline_error is not None:
            self._count_error(ERROR_INVALID)
            sink.emit(seq, error_response(record, fallback_id, theory, deadline_error,
                                          ERROR_INVALID))
            return "error"
        with self._state:
            accepting = self._accepting
        if not accepting:
            self._count_error(ERROR_SHUTDOWN)
            sink.emit(seq, error_response(
                record, fallback_id, theory, "server is shutting down", ERROR_SHUTDOWN))
            return "rejected"
        if not self._capacity.acquire(blocking=block, timeout=timeout):
            self._count_error(ERROR_QUEUE_FULL)
            sink.emit(seq, error_response(
                record, fallback_id, theory,
                f"request queue is full (limit {self.queue_limit})", ERROR_QUEUE_FULL))
            return "rejected"
        stripe = _affinity_stripe(record, self.stripes)
        request = _Request(record, theory, stripe, sink, seq, fallback_id,
                           time.monotonic(), deadline, deadline_ms)
        with self._state:
            if not self._accepting:
                # Raced with drain()/shutdown(): refuse rather than wedge it.
                self._capacity.release()
                self._count_error_locked(ERROR_SHUTDOWN)
                rejected = True
            else:
                self._in_flight += 1
                self._queued += 1
                self._peak_queued = max(self._peak_queued, self._queued)
                # Enqueue under the state lock: shutdown() flips _accepting
                # under the same lock before posting _STOP sentinels, so a
                # request can never land behind a sentinel and silently vanish
                # (worker queues are unbounded — this put cannot block).
                self._queues[self._worker_index(theory, stripe)].put(request)
                rejected = False
        if rejected:
            sink.emit(seq, error_response(
                record, fallback_id, theory, "server is shutting down", ERROR_SHUTDOWN))
            return "rejected"
        return "queued"

    @staticmethod
    def _parse_deadline(record):
        """Extract ``deadline_ms``; returns ``(deadline, ms, error_message)``."""
        deadline_ms = record.get("deadline_ms")
        if deadline_ms is None:
            return None, None, None
        if isinstance(deadline_ms, bool) or not isinstance(deadline_ms, (int, float)) \
                or deadline_ms <= 0:
            return None, None, f"deadline_ms must be a positive number, got {deadline_ms!r}"
        return time.monotonic() + deadline_ms / 1000.0, deadline_ms, None

    def _worker_index(self, theory, stripe):
        # Pin each (theory, stripe) shard to one worker so its session is
        # never touched by two threads; offsetting by a theory hash keeps a
        # hot theory's stripes covering all workers.
        return (zlib.crc32(theory.encode("utf-8", "backslashreplace")) + stripe) % self.workers

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _worker_loop(self, queue, worker_index):
        while True:
            request = queue.get()
            if request is _STOP:
                return
            request.dispatched = time.monotonic()
            with self._state:
                self._queued -= 1
            try:
                response = self._execute(worker_index, request)
            except Exception as error:  # noqa: BLE001 — a lost seq wedges ordered sinks
                message, code = str(error), ERROR_INTERNAL
                response = error_response(request.record, request.fallback_id,
                                          request.theory, message, code)
            # One clock read covers the latency sample, its queue/exec split
            # and the trace's re-anchored totals, so they can never disagree.
            done = time.monotonic()
            latency = done - request.submitted
            queue_s = request.dispatched - request.submitted
            exec_s = done - request.dispatched
            trace_block = response.get("trace")
            if trace_block is not None:
                if not request.wants_trace:
                    # Force-traced for the slow-query log only: the client did
                    # not ask for a trace and must not receive one.
                    del response["trace"]
                else:
                    # Re-anchor in the scheduler's clock domain: exec_ms was
                    # measured next to the query (possibly in another
                    # process); queue wait and the end-to-end total are the
                    # scheduler's to report, the same split the deadline
                    # plumbing uses.
                    trace_block["queue_ms"] = round(queue_s * 1000.0, 3)
                    trace_block["total_ms"] = round(latency * 1000.0, 3)
            request.sink.emit(request.seq, response)
            self._capacity.release()
            op = request.record.get("op", "unknown")
            with self._state:
                self._in_flight -= 1
                self._completed += 1
                self._op_counts[op] = self._op_counts.get(op, 0) + 1
                self._latencies.append(latency)
                self._queue_latencies.append(queue_s)
                self._exec_latencies.append(exec_s)
                code = response.get("error_code")
                if code is not None:
                    self._error_counts[code] = self._error_counts.get(code, 0) + 1
                if self._in_flight == 0:
                    self._idle.notify_all()
            if self.metrics is not None:
                labels = (("theory", request.theory), ("op", op))
                self.metrics.inc("requests_total",
                                 labels + (("outcome", code or "ok"),))
                self.metrics.observe("request_latency_ms", latency * 1000.0, labels)
                self.metrics.observe("queue_latency_ms", queue_s * 1000.0, labels)
                self.metrics.observe("exec_latency_ms", exec_s * 1000.0, labels)
            if self.slow_query_ms is not None and latency * 1000.0 >= self.slow_query_ms:
                log_event(_log, logging.WARNING, "slow_query",
                          request_id=response.get("id"), op=op,
                          theory=request.theory, outcome=code or "ok",
                          total_ms=round(latency * 1000.0, 3),
                          queue_ms=round(queue_s * 1000.0, 3),
                          exec_ms=round(exec_s * 1000.0, 3),
                          phases=(trace_block or {}).get("phases"),
                          cache=(trace_block or {}).get("cache"))

    def _execute(self, worker_index, request):
        # The queued-too-long check lives in the scheduler (one clock, one
        # owner for queue time); everything past here is the backend's.
        if request.deadline is not None and time.monotonic() >= request.deadline:
            return error_response(
                request.record, request.fallback_id, request.theory,
                f"deadline of {request.deadline_ms} ms expired while queued",
                ERROR_DEADLINE)
        if self.slow_query_ms is not None and not request.wants_trace:
            # Force a trace so a slow offender can be logged with its full
            # phase breakdown; the worker loop strips it from the client
            # response.  The flag crosses the process pipe as a wire extra.
            request.record["trace"] = True
        return self.backend.execute(worker_index, request)

    # ------------------------------------------------------------------
    # control / observability
    # ------------------------------------------------------------------
    def _count_error(self, code):
        with self._state:
            self._count_error_locked(code)

    def _count_error_locked(self, code):
        self._error_counts[code] = self._error_counts.get(code, 0) + 1
        if self.metrics is not None:
            # A leaf lock under self._state — the registry never takes
            # scheduler locks, so the ordering is safe.
            self.metrics.inc("rejected_total", (("code", code),))

    @staticmethod
    def _percentile_block(samples_sorted):
        """Percentiles over a sorted window of second-valued samples."""
        def percentile(fraction):
            if not samples_sorted:
                return None
            index = min(len(samples_sorted) - 1, int(fraction * len(samples_sorted)))
            return round(samples_sorted[index] * 1000.0, 3)

        return {
            "count": len(samples_sorted),
            "p50": percentile(0.50),
            "p90": percentile(0.90),
            "p99": percentile(0.99),
            "max": round(samples_sorted[-1] * 1000.0, 3) if samples_sorted else None,
        }

    def server_stats(self):
        """Scheduler-level counters: queue gauges and latency percentiles.

        ``latency_ms`` is end-to-end (submission to response); ``queue_ms``
        and ``exec_ms`` split the same window at worker dispatch, so an
        operator can tell backpressure from slow compute at a glance.
        """
        with self._state:
            latencies = sorted(self._latencies)
            queue_latencies = sorted(self._queue_latencies)
            exec_latencies = sorted(self._exec_latencies)
            queued = self._queued
            peak = self._peak_queued
            in_flight = self._in_flight
            completed = self._completed
            by_op = dict(sorted(self._op_counts.items()))
            errors = dict(self._error_counts)

        out = {
            "backend": self.backend_name,
            "workers": self.workers,
            "stripes": self.stripes,
            "uptime_s": round(time.monotonic() - self._started_monotonic, 3),
            "started_at": self._started_at,
            "queue": {
                "depth": queued,
                "peak": peak,
                "limit": self.queue_limit,
                "in_flight": in_flight,
            },
            "requests": {"completed": completed, "errors": errors, "by_op": by_op},
            "latency_ms": self._percentile_block(latencies),
            "queue_ms": self._percentile_block(queue_latencies),
            "exec_ms": self._percentile_block(exec_latencies),
        }
        worker_info = self.backend.worker_info()
        if worker_info is not None:
            out["process_workers"] = worker_info
            out["warm_restores"] = getattr(self.backend, "warm_restores", 0)
            out["warm_restore_errors"] = getattr(self.backend, "warm_restore_errors", 0)
        if self.snapshot_manager is not None:
            out["snapshot"] = self.snapshot_manager.stats()
        return out

    # ------------------------------------------------------------------
    # snapshot save / load (see repro.engine.persist)
    # ------------------------------------------------------------------
    def export_snapshot(self):
        """Snapshot payload of the live cache state (all workers merged)."""
        return self.backend.export_snapshot()

    def import_snapshot(self, payload):
        """Warm every worker from a snapshot payload; returns entry counts."""
        return self.backend.import_snapshot(payload)

    def metrics_snapshot(self):
        """The aggregated metrics: scheduler registry + merged worker blocks.

        Parent-side counters/histograms, the process workers' merged
        registries (when that backend is active — same piggyback cadence as
        their cache stats), live scheduler gauges, and the pool's cache
        tables re-expressed as ``cache_*_total`` counters labeled by theory
        and table.
        """
        snapshots = [self.metrics.snapshot() if self.metrics is not None
                     else empty_snapshot()]
        worker = self.backend.worker_metrics()
        if worker is not None:
            snapshots.append(worker)
        # Ambient process-global counters (e.g. the test oracle wrapper's
        # oracle_calls_total under the thread backend, where execution happens
        # in this very process).  Under the process backend the same counters
        # arrive via the workers' piggybacked snapshots instead; this
        # process's registry is simply empty then — no double counting.
        from repro.engine.telemetry import process_metrics

        snapshots.append(process_metrics().snapshot())
        merged = merge_metrics(snapshots)
        with self._state:
            gauge_values = {
                "queue_depth": self._queued,
                "queue_peak": self._peak_queued,
                "queue_limit": self.queue_limit,
                "in_flight": self._in_flight,
            }
        gauge_values.update({
            "workers": self.workers,
            "stripes": self.stripes,
            "uptime_seconds": round(time.monotonic() - self._started_monotonic, 3),
        })
        for name, value in gauge_values.items():
            merged["gauges"][name] = [{"labels": {}, "value": value}]
        counters = merged["counters"]
        for theory, block in self.backend.pool_stats().items():
            for table, stats in block.get("tables", {}).items():
                labels = {"theory": theory, "table": table}
                for counter, metric in (("hits", "cache_hits_total"),
                                        ("misses", "cache_misses_total"),
                                        ("evictions", "cache_evictions_total")):
                    value = stats.get(counter, 0)
                    if value:
                        counters.setdefault(metric, []).append(
                            {"labels": labels, "value": value})
        return merged

    def metrics_prometheus(self):
        """The metrics snapshot in Prometheus text exposition format."""
        return render_prometheus(self.metrics_snapshot())

    def _control_response(self, record, fallback_id):
        response = {"id": record.get("id", fallback_id), "op": record["op"], "ok": True}
        if record["op"] == "stats":
            result = self.backend.pool_stats()
            result["server"] = self.server_stats()
            if self.snapshot_manager is not None:
                result["snapshot"] = self.snapshot_manager.stats()
            response["result"] = result
        elif record["op"] == "metrics":
            response["result"] = self.metrics_snapshot()
        else:
            response["result"] = {"pong": True, "theories": self.backend.theories()}
        return response


# ---------------------------------------------------------------------------
# front ends
# ---------------------------------------------------------------------------


def serve_stdio(stdin, stdout, workers=4, stripes=None, queue_limit=128, ordered=False,
                default_theory=DEFAULT_THEORY, budget=DEFAULT_BUDGET, cell_search="signature",
                theory_factory=None, server=None, backend="thread", theory_factory_spec=None,
                walk_kernel="flat"):
    """Serve the JSONL protocol from ``stdin`` to ``stdout`` concurrently.

    The drop-in concurrent replacement for :func:`repro.engine.batch.serve`:
    same protocol, same default-``id`` semantics (0-based input line number),
    but requests overlap across worker shards and completions are emitted
    out-of-order unless ``ordered=True``.  Runs until EOF or
    ``{"op": "quit"}``, drains in-flight requests, and returns the number of
    protocol-valid requests accepted (malformed lines are answered with error
    records but not counted — same contract as the fixed legacy loop).

    An externally-managed ``server`` may be passed (it is then only drained,
    not shut down); otherwise one is created from the keyword options.
    """
    own_server = server is None
    if own_server:
        server = QueryServer(workers=workers, stripes=stripes, queue_limit=queue_limit,
                             default_theory=default_theory, budget=budget,
                             cell_search=cell_search, theory_factory=theory_factory,
                             backend=backend, theory_factory_spec=theory_factory_spec,
                             walk_kernel=walk_kernel)
    server.start()
    sink = ResponseSink(
        lambda line: (stdout.write(line + "\n"), stdout.flush()), ordered=ordered)
    served = 0
    try:
        for lineno, raw in enumerate(stdin):
            outcome = server.submit_line(raw, sink, lineno=lineno)
            if outcome == "quit":
                break
            if outcome in ("queued", "control"):
                served += 1
    finally:
        if own_server:
            server.shutdown(drain=True)
        else:
            # A shared server stays usable for other clients: wait for this
            # stream's work without flipping the server to non-accepting.
            server.wait_idle()
        sink.wait_drained(timeout=5.0)
    return served


#: Per-connection bound on responses waiting for a slow client to read them.
#: A client further behind than this is treated as gone: its sink goes broken
#: and later responses for it are dropped, so one reader that stalls can never
#: wedge the workers (and with them every other client).
_WRITER_QUEUE_LIMIT = 256


class _ConnectionWriter:
    """Decouples workers from client sockets with a bounded queue + writer thread.

    Workers must never block on a slow client's TCP send buffer while holding
    global queue capacity.  ``write_line`` therefore only enqueues (raising
    ``OSError`` when the client is :data:`_WRITER_QUEUE_LIMIT` responses
    behind, which flips the sink to broken); the dedicated writer thread does
    the actual blocking socket I/O.
    """

    _SENTINEL = object()

    def __init__(self, stream):
        self._stream = stream
        self._queue = Queue(maxsize=_WRITER_QUEUE_LIMIT)
        self._broken = False
        self._thread = threading.Thread(target=self._loop, name="kmt-server-writer",
                                        daemon=True)
        self._thread.start()

    def write_line(self, line):
        try:
            self._queue.put_nowait(line)
        except Full:
            raise OSError(
                f"client is more than {_WRITER_QUEUE_LIMIT} responses behind") from None

    def _loop(self):
        while True:
            item = self._queue.get()
            if item is self._SENTINEL:
                return
            if self._broken:
                continue  # keep consuming so producers/close never block
            try:
                self._stream.write(item + "\n")
                self._stream.flush()
            except (OSError, ValueError):
                self._broken = True

    def close(self, force_close=None, timeout=10.0):
        """Flush queued responses and stop the writer thread.

        ``force_close`` (a callable shutting the socket) is invoked when the
        writer is stuck mid-``flush`` on an unresponsive client — closing the
        socket makes the blocked write raise so the thread can exit.
        """
        try:
            self._queue.put(self._SENTINEL, timeout=timeout)
        except Full:
            self._broken = True
            if force_close is not None:
                force_close()
            self._queue.put(self._SENTINEL)
        self._thread.join(timeout=timeout)
        if self._thread.is_alive() and force_close is not None:
            force_close()
            self._thread.join(timeout=timeout)


class SocketServer:
    """TCP front end: one JSONL protocol conversation per connection.

    Each accepted connection gets a reader thread and its own
    :class:`ResponseSink` (so ids, ordering and backpressure blocking are all
    per-client).  ``{"op": "quit"}`` is connection-scoped — that client is
    drained and closed while the server keeps running; stop the whole server
    with :meth:`close` (the CLI wires SIGTERM to it).

    ``port=0`` binds an ephemeral port; the actual one is in ``self.port``
    after :meth:`start`.
    """

    def __init__(self, host="127.0.0.1", port=0, server=None, ordered=False, **server_options):
        self.host = host
        self.requested_port = port
        self.port = None
        self.ordered = ordered
        self.server = server if server is not None else QueryServer(**server_options)
        self._listener = None
        self._accept_thread = None
        self._conn_threads = []
        self._conns = set()
        self._conn_lock = threading.Lock()
        self._closing = False

    def start(self):
        self.server.start()
        self._listener = socket.create_server((self.host, self.requested_port))
        # A thread blocked in accept() is not reliably woken by closing the
        # listener from another thread; poll with a short timeout instead so
        # close() completes promptly.
        self._listener.settimeout(0.2)
        self.port = self._listener.getsockname()[1]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="kmt-server-accept", daemon=True)
        self._accept_thread.start()
        return self

    def __enter__(self):
        return self.start()

    def __exit__(self, exc_type, exc, tb):
        self.close(drain=exc_type is None)

    def _accept_loop(self):
        while True:
            try:
                conn, _addr = self._listener.accept()
            except TimeoutError:
                with self._conn_lock:
                    if self._closing:
                        return
                continue
            except OSError:
                return  # listener closed
            conn.settimeout(None)  # inherited accept timeout must not apply to I/O
            thread = threading.Thread(
                target=self._handle_connection, args=(conn,),
                name="kmt-server-conn", daemon=True)
            with self._conn_lock:
                if self._closing:
                    conn.close()
                    return
                self._conn_threads.append(thread)
                self._conns.add(conn)
            thread.start()

    @staticmethod
    def _force_close(conn):
        try:
            conn.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            conn.close()
        except OSError:
            pass

    def _handle_connection(self, conn):
        reader = conn.makefile("r", encoding="utf-8", newline="\n")
        writer_stream = conn.makefile("w", encoding="utf-8", newline="\n")
        writer = _ConnectionWriter(writer_stream)
        sink = ResponseSink(writer.write_line, ordered=self.ordered)
        try:
            for lineno, raw in enumerate(reader):
                outcome = self.server.submit_line(raw, sink, lineno=lineno)
                if outcome == "quit":
                    break
        except (OSError, ValueError):
            pass  # client went away mid-read; drain whatever was accepted
        finally:
            # Connection-scoped drain: every accepted request is handed to the
            # writer before the socket closes (unless the client is gone).
            sink.wait_drained(timeout=30.0)
            writer.close(force_close=lambda: self._force_close(conn))
            for handle in (reader, writer_stream):
                try:
                    handle.close()
                except OSError:
                    pass
            self._force_close(conn)
            with self._conn_lock:
                self._conns.discard(conn)
                try:
                    self._conn_threads.remove(threading.current_thread())
                except ValueError:
                    pass  # close() already snapshotted the list

    def close(self, drain=True):
        """Stop accepting, optionally drain in-flight work, stop the workers."""
        with self._conn_lock:
            self._closing = True
            threads = list(self._conn_threads)
            conns = list(self._conns)
        if self._listener is not None:
            self._listener.close()
        # Stop intake FIRST: shutting the read side unblocks (and EOFs) every
        # connection reader, so no client can keep streaming new requests
        # while we wait — otherwise a chatty client could hold the drain open
        # forever.  Handlers still flush responses for already-accepted
        # requests before closing their sockets.
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RD)
            except OSError:
                pass
        if drain:
            self.server.wait_idle()
        for thread in threads:
            thread.join(timeout=30.0)
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        self.server.shutdown(drain=drain)
