"""Stable fingerprints for hash-consed terms, predicates and normal forms.

The core already hash-conses nodes (structurally equal terms are one Python
object), which makes ``hash``/``==`` cheap — but object identity is not a
*stable* name: it changes across :func:`repro.core.terms.clear_intern_table`
calls and across processes constructing the same term.  The engine's memo
tables instead key on *fingerprints*: small integers assigned per structural
shape, cached directly on the node (the ``_fp`` slot reserved by the core) so
the hot path is a single attribute load.

Fingerprints are assigned either lazily on first use, or eagerly at
construction time when :func:`install` routes the core's interning smart
constructors through this module (``terms.set_intern_hook``).
"""

from __future__ import annotations

import itertools
import threading

from repro.core import terms as T


class InternStats:
    """Counters for the fingerprint registry."""

    def __init__(self):
        self.assigned = 0
        self.rekeyed = 0  # structurally-equal node seen again (e.g. after a table clear)

    def as_dict(self):
        return {"assigned": self.assigned, "rekeyed": self.rekeyed}

    def __repr__(self):
        return f"InternStats({self.as_dict()})"


_LOCK = threading.Lock()
_COUNTER = itertools.count(1)
_BY_KEY = {}  # (class, structural key) -> fingerprint
STATS = InternStats()


def fingerprint(node):
    """The stable fingerprint id of a ``Term`` or ``Pred`` node.

    Structurally equal nodes always receive the same fingerprint, even when
    hash consing is disabled or the intern table has been cleared in between
    (the registry keys on the structural ``_key``, not on identity).
    """
    fp = getattr(node, "_fp", None)
    if fp is not None:
        return fp
    key = (node.__class__, node._key())
    with _LOCK:
        fp = _BY_KEY.get(key)
        if fp is None:
            fp = next(_COUNTER)
            _BY_KEY[key] = fp
            STATS.assigned += 1
        else:
            STATS.rekeyed += 1
    try:
        node._fp = fp
    except AttributeError:
        # Foreign objects without the slot still get a (recomputed) answer.
        pass
    return fp


def fingerprint_normal_form(nf):
    """A stable key for a :class:`~repro.core.normalform.NormalForm`.

    The frozenset of ``(test, action)`` fingerprint pairs, cached on the
    normal form.  Two normal forms get the same key iff they are equal.
    """
    fp = getattr(nf, "_fp", None)
    if fp is not None:
        return fp
    fp = frozenset((fingerprint(test), fingerprint(action)) for test, action in nf.pairs)
    try:
        nf._fp = fp
    except AttributeError:
        pass
    return fp


def install():
    """Route the core's interning constructors through this registry.

    After this call every freshly interned node is fingerprinted eagerly,
    so cache lookups later never pay the registry lock.  Idempotent.
    """
    T.set_intern_hook(fingerprint)


def uninstall():
    """Remove the intern hook (fingerprints fall back to lazy assignment)."""
    T.set_intern_hook(None)


def registry_size():
    """Number of distinct structural shapes fingerprinted so far."""
    with _LOCK:
        return len(_BY_KEY)


def clear_registry():
    """Drop all fingerprints (tests only — invalidates engine cache keys).

    Nodes that already carry a ``_fp`` keep it; callers pairing this with
    :func:`repro.core.terms.clear_intern_table` get a fully fresh world.
    """
    global _COUNTER
    with _LOCK:
        _BY_KEY.clear()
        _COUNTER = itertools.count(1)
        STATS.assigned = 0
        STATS.rekeyed = 0
